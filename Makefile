# Development entry points for the TopkRGS reproduction.

GO ?= go

.PHONY: all build vet analyze analyze-json test race bench perf speedup loadbench refreshbench experiments fuzz serve clean

all: build vet analyze test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: conventions (bitset aliasing, float
# compares, panic and error hygiene) plus the contract-verification
# layer (allocfree, visitoralias, ctxflow, sentinelwrap, atomicguard).
# See DESIGN.md §7.
analyze:
	$(GO) run ./cmd/vetsuite ./...

# Machine-readable findings (schema vetsuite-findings/2). CI diffs this
# against the checked-in empty baseline; regenerate the baseline with
#   make analyze-json && cp vetsuite-findings.json .vetsuite-baseline.json
# after adding an analyzer (the rule table is part of the output).
analyze-json:
	$(GO) run ./cmd/vetsuite -json ./... > vetsuite-findings.json

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One Go benchmark per paper table/figure plus ablations (gene-scaled).
bench:
	$(GO) test -bench=. -benchmem ./...

# Perf trajectory: Mine benchmarks with allocation counts, plus the
# miner×workers nodes/sec table archived as BENCH_fig6.json. Compare the
# JSON against the checked-in copy to judge a kernel change.
perf: speedup
	$(GO) test -run '^$$' -bench 'Mine' -benchmem -count=5 ./...
	$(GO) run ./cmd/benchrunner -exp perf -scale 30

# Work-stealing speedup curve: topk wall time across worker counts on
# three sizes of the PC profile, archived as BENCH_speedup.json. The
# k=60 / 70% minsup point saturates the per-row top-k lists, so the
# curve exercises the full streaming-merge + frontier machinery, not a
# trivially pruned tree. The 4-worker wall-clock assertion only binds
# on machines with >= 4 CPUs (it is skipped with a warning elsewhere);
# CI enforces it.
speedup:
	$(GO) run ./cmd/benchrunner -exp speedup -scale 15 -minsups 0.7 -k 60 -assert-speedup 1.0

# Serving read-path trajectory: closed- and open-loop load against an
# in-process server (rule-major batch kernel + prediction cache),
# archived as BENCH_serving.json. The gate fails the run when any
# (mode, batch) cell's p99 latency exceeds 1.5x its archived value —
# compare the JSON against the checked-in copy to judge a read-path
# change, like `make perf` for the mining kernel.
loadbench:
	$(GO) run ./cmd/loadgen -scale 30 -requests 200 -concurrency 4 -qps 200 -gate 1.5

# Streaming ingestion trajectory: per-append wall time of the
# datastore's incremental snapshot refresh vs a from-scratch
# discretize+transform of the same matrix, archived as
# BENCH_refresh.json. Compare the JSON against the checked-in copy to
# judge an ingestion-path change.
refreshbench:
	$(GO) run ./cmd/benchrunner -exp refresh -scale 4 -refresh-chunks 8

# Paper-scale regeneration of every table and figure into results/.
experiments:
	mkdir -p results
	$(GO) run ./cmd/benchrunner -exp table1       > results/table1.txt
	$(GO) run ./cmd/benchrunner -exp table2       > results/table2.txt
	$(GO) run ./cmd/benchrunner -exp defaultclass > results/defaultclass.txt
	$(GO) run ./cmd/benchrunner -exp fig6 -datasets ALL,LC -budget 500000 > results/fig6_all_lc.txt
	$(GO) run ./cmd/benchrunner -exp fig6 -datasets PC -budget 500000 -minsups 0.95,0.9,0.85 > results/fig6_pc.txt
	$(GO) run ./cmd/benchrunner -exp fig6 -datasets OC -budget 500000 -minsups 0.95,0.9 -topkbudget 50000000 > results/fig6_oc.txt
	$(GO) run ./cmd/benchrunner -exp fig6e        > results/fig6e.txt
	$(GO) run ./cmd/benchrunner -exp fig7         > results/fig7.txt
	$(GO) run ./cmd/benchrunner -exp fig8         > results/fig8.txt
	$(GO) run ./cmd/benchrunner -exp minsupsweep  > results/minsupsweep.txt
	$(GO) run ./cmd/benchrunner -exp groupcount   > results/groupcount.txt
	$(GO) run ./cmd/benchrunner -exp topgenes     > results/topgenes.txt
	$(GO) run ./cmd/benchrunner -exp ablation -budget 500000 > results/ablation.txt

# Serve the checked-in model fixture locally. Point real deployments at
# models written by `go run ./cmd/rcbt -train ... -save model.json`.
serve:
	$(GO) run ./cmd/rcbtserved -model fixture=internal/serve/testdata/model.json -addr :8344

# Short fuzzing sessions over the dataset parsers, the bit-set algebra
# and the discretizer.
fuzz:
	$(GO) test -fuzz FuzzReadMatrix -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzReadDataset -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzSetOps -fuzztime 30s ./internal/bitset/
	$(GO) test -fuzz FuzzFusedOps -fuzztime 30s ./internal/bitset/
	$(GO) test -fuzz FuzzDiscretize -fuzztime 30s ./internal/discretize/

clean:
	rm -f test_output.txt bench_output.txt
