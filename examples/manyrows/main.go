// Manyrows demonstrates the Section 8 extension: top-k covering rule
// group mining on a dataset with many rows via column-partitioned row
// enumeration (internal/hybrid), checked against direct mining.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hybrid"
	"repro/internal/rules"
)

func main() {
	rows := flag.Int("rows", 600, "number of rows")
	items := flag.Int("items", 40, "number of items")
	k := flag.Int("k", 2, "covering rule groups per row")
	minsup := flag.Int("minsup", 40, "absolute minimum support")
	flag.Parse()

	d := buildDataset(*rows, *items, 99)
	fmt.Printf("dataset: %d rows x %d items (%d/%d per class)\n",
		d.NumRows(), d.NumItems(), d.ClassCount(0), d.ClassCount(1))

	start := time.Now()
	direct, err := core.Mine(d, 0, core.DefaultConfig(*minsup, *k))
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(start)

	start = time.Now()
	hyb, err := hybrid.Mine(d, 0, hybrid.Config{K: *k, Minsup: *minsup})
	if err != nil {
		log.Fatal(err)
	}
	hybridTime := time.Since(start)

	fmt.Printf("direct row enumeration: %v, %d groups\n", directTime.Round(time.Millisecond), len(direct.Groups))
	fmt.Printf("hybrid (column -> row): %v, %d groups over %d partitions\n",
		hybridTime.Round(time.Millisecond), len(hyb.Groups), hyb.Partitions)

	// Verify per-row agreement.
	mismatches := 0
	for r, want := range direct.PerRow {
		got := hyb.PerRow[r]
		if len(got) != len(want) {
			mismatches++
			continue
		}
		for i := range want {
			if rules.CompareConf(got[i].Confidence, want[i].Confidence) != 0 || got[i].Support != want[i].Support {
				mismatches++
				break
			}
		}
	}
	fmt.Printf("per-row top-%d lists agree for %d/%d rows\n",
		*k, len(direct.PerRow)-mismatches, len(direct.PerRow))
}

func buildDataset(rows, items int, seed int64) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &dataset.Dataset{ClassNames: []string{"case", "control"}}
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: fmt.Sprintf("G%03d", i)})
	}
	for row := 0; row < rows; row++ {
		label := dataset.Label(row % 2)
		var its []int
		for i := 0; i < items; i++ {
			p := 0.12
			if int(label) == i%2 {
				p = 0.45
			}
			if r.Float64() < p {
				its = append(its, i)
			}
		}
		d.Rows = append(d.Rows, its)
		d.Labels = append(d.Labels, label)
	}
	return d
}
