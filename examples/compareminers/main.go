// Compareminers times MineTopkRGS against the FARMER engines and the
// column-enumeration miners (CHARM with diffsets, CLOSET+) on one
// synthetic dataset — a single-point slice of Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/farmer"
	"repro/internal/synth"
)

func main() {
	scale := flag.Int("scale", 16, "gene-count divisor")
	minsup := flag.Float64("minsup", 0.85, "relative minimum support")
	budget := flag.Int("budget", 2_000_000, "baseline node budget before DNF")
	flag.Parse()

	p := synth.Scaled(synth.ALL(), *scale)
	train, _, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dz.Transform(train)
	if err != nil {
		log.Fatal(err)
	}
	n := d.ClassCount(0)
	ms := int(*minsup*float64(n)) + 1
	fmt.Printf("%s: %d rows, %d items, minsup=%d (%.0f%% of class %s)\n\n",
		p.Name, d.NumRows(), d.NumItems(), ms, *minsup*100, d.ClassNames[0])
	fmt.Printf("%-24s %10s %10s %8s\n", "algorithm", "time", "results", "note")

	report := func(name string, elapsed time.Duration, results int, aborted bool) {
		note := ""
		if aborted {
			note = "DNF"
		}
		fmt.Printf("%-24s %10s %10d %8s\n", name, fmt.Sprintf("%.3fs", elapsed.Seconds()), results, note)
	}

	for _, k := range []int{1, 10, 100} {
		start := time.Now()
		res, err := core.Mine(d, dataset.Label(0), core.DefaultConfig(ms, k))
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("MineTopkRGS(k=%d)", k), time.Since(start), len(res.Groups), false)
	}
	for _, cfg := range []struct {
		name    string
		engine  farmer.Engine
		minconf float64
	}{
		{"FARMER bitset (c=0.9)", farmer.EngineBitset, 0.9},
		{"FARMER prefix (c=0.9)", farmer.EnginePrefix, 0.9},
		{"FARMER naive (c=0.9)", farmer.EngineNaive, 0.9},
		{"FARMER naive (c=0)", farmer.EngineNaive, 0},
	} {
		start := time.Now()
		res, err := farmer.Mine(d, dataset.Label(0), farmer.Config{
			Minsup: ms, Minconf: cfg.minconf, Engine: cfg.engine, MaxNodes: *budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		report(cfg.name, time.Since(start), len(res.Groups), res.Aborted)
	}
	colMS := ms // same absolute threshold for the unlabeled miners
	{
		start := time.Now()
		res, err := carpenter.Mine(d, carpenter.Config{Minsup: colMS, MaxNodes: *budget})
		if err != nil {
			log.Fatal(err)
		}
		report("CARPENTER (rows)", time.Since(start), len(res.Closed), res.Aborted)
	}
	{
		start := time.Now()
		res, err := charm.Mine(d, charm.Config{Minsup: colMS, MaxNodes: *budget})
		if err != nil {
			log.Fatal(err)
		}
		report("CHARM (diffsets)", time.Since(start), len(res.Closed), res.Aborted)
	}
	{
		start := time.Now()
		res, err := closet.Mine(d, closet.Config{Minsup: colMS, MaxNodes: *budget})
		if err != nil {
			log.Fatal(err)
		}
		report("CLOSET+", time.Since(start), len(res.Closed), res.Aborted)
	}
}
