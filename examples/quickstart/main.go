// Quickstart walks the paper's running example (Figure 1): it builds
// the 5-row dataset, mines the top-1 covering rule groups for both
// classes, and derives lower-bound rules — reproducing Examples 1.1,
// 2.2 and 3.1.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/rules"
	"repro/topkrgs"
)

func main() {
	d, _ := dataset.RunningExample()
	fmt.Println("Running example (Figure 1a):")
	for r, row := range d.Rows {
		names := d.ItemNames(row)
		letters := make([]byte, len(names))
		for i, n := range names {
			letters[i] = n[0]
		}
		fmt.Printf("  r%d: %s -> %s\n", r+1, letters, d.ClassNames[d.Labels[r]])
	}

	for cls := 0; cls < d.NumClasses(); cls++ {
		label := dataset.Label(cls)
		fmt.Printf("\nTop-1 covering rule groups, consequent %s (minsup=2):\n", d.ClassNames[cls])
		res, err := topkrgs.Mine(context.Background(), d,
			topkrgs.MineOptions{Class: label, Minsup: 2, K: 1})
		if err != nil {
			log.Fatal(err)
		}
		for r := 0; r < d.NumRows(); r++ {
			gs, ok := res.PerRow[r]
			if !ok {
				continue
			}
			for _, g := range gs {
				fmt.Printf("  r%d: %s\n", r+1, g.Render(d))
			}
		}
		fmt.Printf("  enumeration visited %d nodes (%d backward-pruned, %d threshold-pruned)\n",
			res.Stats.Nodes, res.Stats.BackwardPruned,
			res.Stats.PrunedBeforeScan+res.Stats.PrunedAfterScan)

		// Example 2.2: the lower bounds of the group with upper bound abc.
		if cls == 0 {
			for _, g := range res.Groups {
				if rules.CompareConf(g.Confidence, 1.0) == 0 {
					fmt.Printf("  lower bounds of %s:\n", g.Render(d))
					for _, lb := range topkrgs.LowerBounds(d, g, 5) {
						fmt.Printf("    %s\n", lb.Render(d))
					}
				}
			}
		}
	}
}
