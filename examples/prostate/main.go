// Prostate reproduces the Figure 8 analysis on the synthetic prostate
// cancer profile: it mines the top-1 covering rule groups, extracts
// their shortest lower-bound rules, and relates each gene's chi-square
// rank to how often it participates in those rules — the paper's
// evidence that low-ranked genes supply necessary supplementary
// information for globally significant rules.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/lowerbound"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	scale := flag.Int("scale", 8, "gene-count divisor (1 = full 12600 genes)")
	nl := flag.Int("nl", 20, "lower-bound rules per group")
	top := flag.Int("top", 10, "how many most-frequent genes to list")
	flag.Parse()

	p := synth.PC()
	if *scale > 1 {
		p = synth.Scaled(p, *scale)
	}
	train, _, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dz.Transform(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d genes, %d after discretization, %d items, %d rows\n",
		p.Name, p.NumGenes, dz.NumSelectedGenes(), d.NumItems(), d.NumRows())

	// Chi-square score per gene (max over its items).
	chi := make([]float64, train.NumGenes())
	classTotal := []int{d.ClassCount(0), d.ClassCount(1)}
	for i := 0; i < d.NumItems(); i++ {
		present := []int{0, 0}
		d.ItemRows(i).ForEach(func(r int) bool {
			present[int(d.Labels[r])]++
			return true
		})
		v := stats.ChiSquareBinary(present[0], present[1],
			classTotal[0]-present[0], classTotal[1]-present[1])
		if g := d.Items[i].Gene; v > chi[g] {
			chi[g] = v
		}
	}
	ranks := stats.Rank(chi)

	// Frequency of each gene in the shortest lower bounds of top-1
	// covering rule groups (both consequents).
	freq := make([]int, train.NumGenes())
	scores := lowerbound.DefaultItemScores(d)
	for cls := 0; cls < d.NumClasses(); cls++ {
		n := d.ClassCount(dataset.Label(cls))
		ms := int(0.7*float64(n)) + 1
		res, err := core.Mine(d, dataset.Label(cls), core.DefaultConfig(ms, 1))
		if err != nil {
			log.Fatal(err)
		}
		for _, g := range res.Groups {
			for _, lb := range lowerbound.Find(d, g, lowerbound.Config{
				NL: *nl, MaxLen: 5, MaxCandidates: 1 << 18, ItemScore: scores,
			}) {
				for _, item := range lb.Antecedent {
					freq[d.Items[item].Gene]++
				}
			}
		}
	}

	inRules, highRankOcc, totalOcc := 0, 0, 0
	type row struct {
		gene, rank, freq int
	}
	var rows []row
	for g, f := range freq {
		if f == 0 {
			continue
		}
		inRules++
		totalOcc += f
		if ranks[g] <= train.NumGenes()/2 {
			highRankOcc += f
		}
		rows = append(rows, row{g, ranks[g], f})
	}
	fmt.Printf("genes participating in top-1 lower-bound rules: %d\n", inRules)
	if totalOcc > 0 {
		fmt.Printf("rule occurrences from top-half-ranked genes: %.1f%%\n",
			100*float64(highRankOcc)/float64(totalOcc))
	}
	// Most frequent genes (the paper labels genes with > 200 occurrences).
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].freq > rows[i].freq {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	fmt.Printf("%-12s %8s %8s\n", "gene", "chi-rank", "freq")
	for i, r := range rows {
		if i >= *top {
			break
		}
		fmt.Printf("%-12s %8d %8d\n", train.GeneNames[r.gene], r.rank, r.freq)
	}
}
