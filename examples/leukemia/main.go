// Leukemia runs the full RCBT pipeline on the synthetic ALL/AML
// profile: generation, entropy-MDL discretization, top-k covering rule
// group mining, classifier construction with standby classifiers, and
// test-set evaluation — the workflow behind the ALL column of Table 2.
//
// Pass -scale to shrink the gene count for a faster demonstration.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/discretize"
	"repro/internal/rcbt"
	"repro/internal/synth"
)

func main() {
	scale := flag.Int("scale", 8, "gene-count divisor (1 = full 7129 genes)")
	k := flag.Int("k", 10, "covering rule groups per row")
	nl := flag.Int("nl", 20, "lower-bound rules per group")
	flag.Parse()

	p := synth.ALL()
	if *scale > 1 {
		p = synth.Scaled(p, *scale)
	}
	fmt.Printf("dataset %s: %d genes, train %d (%d %s : %d %s), test %d\n",
		p.Name, p.NumGenes, p.Train1+p.Train0, p.Train1, p.Class1, p.Train0, p.Class0,
		p.Test1+p.Test0)

	train, test, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		log.Fatal(err)
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		log.Fatal(err)
	}
	dTest, err := dz.Transform(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entropy-MDL discretization kept %d genes (%d items)\n",
		dz.NumSelectedGenes(), dTrain.NumItems())

	c, err := rcbt.Train(dTrain, rcbt.Config{
		K: *k, NL: *nl, MinsupFrac: 0.7, LBMaxLen: 5, LBMaxCandidates: 1 << 18,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCBT: %d classifiers (1 main + %d standby), default class %s\n",
		c.NumClassifiers(), c.NumClassifiers()-1, dTrain.ClassNames[c.Default()])

	preds, stats := c.PredictDataset(dTest)
	correct := 0
	confusion := [2][2]int{}
	for r, lab := range preds {
		truth := dTest.Labels[r]
		confusion[int(truth)][int(lab)]++
		if lab == truth {
			correct++
		}
	}
	fmt.Printf("test accuracy: %d/%d = %.2f%%\n", correct, dTest.NumRows(),
		100*float64(correct)/float64(dTest.NumRows()))
	fmt.Printf("confusion:  pred-%s pred-%s\n", p.Class1, p.Class0)
	for t := 0; t < 2; t++ {
		name := p.Class1
		if t == 1 {
			name = p.Class0
		}
		fmt.Printf("  true-%-6s %6d %9d\n", name, confusion[t][0], confusion[t][1])
	}
	fmt.Printf("decided by: main=%d standby=%v default=%d\n",
		at(stats.ByClassifier, 0), tail(stats.ByClassifier), stats.Defaults)
}

func at(xs []int, i int) int {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

func tail(xs []int) []int {
	if len(xs) <= 1 {
		return nil
	}
	return xs[1:]
}
