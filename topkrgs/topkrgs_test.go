package topkrgs_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/topkrgs"
)

// TestFacadePipeline drives the whole public API end to end: generate,
// serialize, parse, discretize, mine, derive lower bounds, train both
// classifiers, persist and reload them.
func TestFacadePipeline(t *testing.T) {
	p := synth.Scaled(synth.ALL(), 80)
	trainM, testM, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	// Matrix text round trip through the facade.
	var buf bytes.Buffer
	if err := topkrgs.WriteMatrix(&buf, trainM); err != nil {
		t.Fatal(err)
	}
	parsed, err := topkrgs.ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumRows() != trainM.NumRows() {
		t.Fatal("matrix round trip lost rows")
	}

	// Discretize, persist the discretizer, reload it.
	dz, err := topkrgs.Discretize(trainM)
	if err != nil {
		t.Fatal(err)
	}
	var dzBuf bytes.Buffer
	if err := dz.Write(&dzBuf); err != nil {
		t.Fatal(err)
	}
	dz2, err := topkrgs.LoadDiscretizer(&dzBuf)
	if err != nil {
		t.Fatal(err)
	}
	train, err := dz2.Transform(trainM)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dz2.Transform(testM)
	if err != nil {
		t.Fatal(err)
	}

	// Mine and inspect rule groups.
	minsup := train.ClassCount(0) * 7 / 10
	res, err := topkrgs.Mine(context.Background(), train,
		topkrgs.MineOptions{Minsup: minsup, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no rule groups mined")
	}
	lbs := topkrgs.LowerBounds(train, res.Groups[0], 5)
	if len(lbs) == 0 {
		t.Fatal("no lower bounds found")
	}
	if s := res.Groups[0].Render(train); !strings.Contains(s, "->") {
		t.Fatalf("Render = %q", s)
	}

	// RCBT train, persist, reload, predict.
	cfg := topkrgs.DefaultRCBTConfig()
	cfg.K, cfg.NL = 3, 5
	clf, err := topkrgs.TrainRCBT(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if err := clf.Save(&model); err != nil {
		t.Fatal(err)
	}
	clf2, err := topkrgs.LoadRCBT(&model)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for r := 0; r < test.NumRows(); r++ {
		lab, _ := clf2.Predict(test.RowItemSet(r))
		if lab == test.Labels[r] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.NumRows()); acc < 0.7 {
		t.Fatalf("facade RCBT accuracy %.2f", acc)
	}

	// CBA via the facade.
	cbaCfg := topkrgs.DefaultCBAConfig()
	cbaClf, err := topkrgs.TrainCBA(train, cbaCfg)
	if err != nil {
		t.Fatal(err)
	}
	var cbaBuf bytes.Buffer
	if err := cbaClf.Save(&cbaBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := topkrgs.LoadCBA(&cbaBuf); err != nil {
		t.Fatal(err)
	}
}

func TestGroupFromItemsFacade(t *testing.T) {
	d, idx := dataset.RunningExample()
	g := topkrgs.GroupFromItems(d, []int{idx["a"]}, 0)
	if len(g.Antecedent) != 3 || g.Confidence != 1.0 || g.Support != 2 {
		t.Fatalf("closure of {a} = %+v", g)
	}
}
