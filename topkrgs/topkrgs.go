// Package topkrgs is the public API of this repository: top-k covering
// rule group mining and RCBT classification for gene expression data,
// from "Mining Top-k Covering Rule Groups for Gene Expression Data"
// (Cong, Tan, Tung, Xu — SIGMOD 2005).
//
// The typical pipeline:
//
//	dz, _ := topkrgs.Discretize(trainMatrix)            // entropy-MDL cuts
//	train, _ := dz.Transform(trainMatrix)               // rows -> itemsets
//	res, _ := topkrgs.Mine(ctx, train,
//		topkrgs.MineOptions{Minsup: 19, K: 10})         // top-10 groups/row
//	clf, _ := topkrgs.TrainRCBT(ctx, train, topkrgs.RCBTConfig{})
//	label, which := clf.Predict(test.RowItemSet(0))
//
// Every entry point that can run long takes a context.Context first and
// stops promptly with ctx.Err() on cancellation or deadline expiry.
// Option structs default their zero values to the paper's settings, so
// MineOptions{} and RCBTConfig{} "just work"; invalid options are
// reported through the exported sentinel errors (ErrBadK, ErrBadMinsup,
// ...), matchable with errors.Is.
//
// The facade re-exports the load-bearing types of the internal
// packages via aliases, so values flow between the facade and the
// internals without conversion. Specialized knobs (engine ablations,
// baselines, the experiment harness) live in the internal packages and
// the cmd/ tools.
package topkrgs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cba"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/lowerbound"
	"repro/internal/rcbt"
	"repro/internal/rules"
)

// Core data model aliases.
type (
	// Matrix is a real-valued gene expression profile.
	Matrix = dataset.Matrix
	// Dataset is a discretized table of item-set rows.
	Dataset = dataset.Dataset
	// Label identifies a class.
	Label = dataset.Label
	// Item is one gene expression interval.
	Item = dataset.Item
	// Rule is an association rule antecedent -> class.
	Rule = rules.Rule
	// Group is a rule group, identified by its upper-bound rule.
	Group = rules.Group
	// Discretizer converts matrices to datasets using entropy-MDL cuts.
	Discretizer = discretize.Discretizer
	// MiningResult holds per-row top-k covering rule groups.
	MiningResult = core.Result
	// MiningStats reports enumeration effort and abort state.
	MiningStats = engine.Stats
	// ProgressSnapshot is one periodic view of a running enumeration.
	ProgressSnapshot = engine.ProgressSnapshot
	// ProgressFunc receives ProgressSnapshots during a mine; see
	// MineOptions.Progress.
	ProgressFunc = engine.ProgressFunc
	// RCBT is a trained RCBT classifier.
	RCBT = rcbt.Classifier
	// Model bundles a trained RCBT classifier with its discretization
	// cuts and metadata — the unit cmd/rcbt saves and rcbtserved loads.
	Model = rcbt.Model
	// ModelMeta is the provenance section of a model envelope.
	ModelMeta = rcbt.Meta
	// CBA is a trained CBA classifier.
	CBA = cba.Classifier
	// RCBTConfig parameterizes RCBT training. The zero value trains
	// with the paper's defaults; see DefaultRCBTConfig.
	RCBTConfig = rcbt.Config
	// CBAConfig parameterizes CBA training.
	CBAConfig = cba.Config
)

// Validation sentinels: every option error returned by Mine and
// TrainRCBT wraps one of these, so callers can branch with errors.Is
// without string matching.
var (
	// ErrNilDataset is returned when the dataset argument is nil.
	ErrNilDataset = errors.New("topkrgs: nil dataset")
	// ErrBadClass is returned when MineOptions.Class is outside the
	// dataset's class universe.
	ErrBadClass = errors.New("topkrgs: class outside dataset universe")
	// ErrBadK is returned when MineOptions.K is negative.
	ErrBadK = errors.New("topkrgs: K must be >= 1")
	// ErrBadMinsup is returned when MineOptions.Minsup is negative.
	ErrBadMinsup = errors.New("topkrgs: Minsup must be >= 1")
	// ErrBadOption is returned for out-of-range tuning fields (negative
	// Workers, MaxNodes or Timeout).
	ErrBadOption = errors.New("topkrgs: invalid option")
)

// ReadMatrix parses the matrix text format (see cmd/datagen output).
func ReadMatrix(r io.Reader) (*Matrix, error) { return dataset.ReadMatrix(r) }

// WriteMatrix serializes a matrix in the text format.
func WriteMatrix(w io.Writer, m *Matrix) error { return dataset.WriteMatrix(w, m) }

// Discretize learns entropy-MDL cut points from a training matrix
// (Fayyad–Irani; doubles as feature selection).
func Discretize(train *Matrix) (*Discretizer, error) { return discretize.FitMatrix(train) }

// LoadDiscretizer parses cut points written by Discretizer.Write.
func LoadDiscretizer(r io.Reader) (*Discretizer, error) { return discretize.Read(r) }

// MineOptions configures Mine. The zero value mines the paper's
// defaults for class 0: top-10 covering rule groups per row at a
// minimum support of 70% of the consequent class, sequentially.
type MineOptions struct {
	// Class is the consequent class the rule groups predict (default 0).
	Class Label
	// Minsup is the absolute minimum support: the number of
	// consequent-class rows an antecedent must cover. 0 derives the
	// paper's default, ceil(0.7 · |class rows|).
	Minsup int
	// K is the number of covering rule groups kept per row (0 = 10, the
	// paper's setting).
	K int
	// Workers sets the enumeration worker count: 1 (and 0) runs
	// sequentially; N > 1 mines on N work-stealing goroutines that
	// split subtrees adaptively (idle workers steal queued subtrees,
	// busy runs stay inline) while a streaming merge replays results in
	// sequential order; AllCores uses every CPU. Parallel output is
	// deterministically identical to sequential at every worker count.
	Workers int
	// MaxNodes caps enumeration nodes (0 = unbounded); when exceeded
	// the run returns its partial result with Stats.Aborted set.
	MaxNodes int
	// Timeout bounds the mine (0 = no limit); it composes with any
	// deadline already on the caller's context.
	Timeout time.Duration
	// Progress, when non-nil, receives periodic snapshots of the
	// enumeration (node and group counts, current dynamic confidence
	// floor, budget remaining). Calls are serialized but may come from
	// any worker goroutine; a slow hook stalls the emitting worker. The
	// hook adds no steady-state allocations to the kernel.
	Progress ProgressFunc
	// ProgressEvery is the node stride between snapshots (0 = the
	// engine default of 4096).
	ProgressEvery int
}

// AllCores is the MineOptions.Workers value that runs one enumeration
// worker per CPU core.
const AllCores = -1

// Validate reports the first invalid field as an error wrapping one of
// the exported sentinels. It does not need the dataset; Class range
// checking happens in Mine.
func (o MineOptions) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("%w (got %d)", ErrBadK, o.K)
	}
	if o.Minsup < 0 {
		return fmt.Errorf("%w (got %d)", ErrBadMinsup, o.Minsup)
	}
	if o.Workers < 0 && o.Workers != AllCores {
		return fmt.Errorf("%w: Workers %d", ErrBadOption, o.Workers)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("%w: MaxNodes %d", ErrBadOption, o.MaxNodes)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("%w: Timeout %v", ErrBadOption, o.Timeout)
	}
	if o.ProgressEvery < 0 {
		return fmt.Errorf("%w: ProgressEvery %d", ErrBadOption, o.ProgressEvery)
	}
	return nil
}

// Mine discovers the top-k covering rule groups for every row of the
// consequent class, with the paper's full optimization set (Algorithm
// MineTopkRGS). The run stops promptly with ctx.Err() when ctx is
// cancelled or times out; opts.MaxNodes instead yields the partial
// result with Stats.Aborted set and a nil error.
func Mine(ctx context.Context, d *Dataset, opts MineOptions) (*MiningResult, error) {
	if d == nil {
		return nil, ErrNilDataset
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if int(opts.Class) < 0 || int(opts.Class) >= d.NumClasses() {
		return nil, fmt.Errorf("%w: class %d, dataset has %d classes",
			ErrBadClass, int(opts.Class), d.NumClasses())
	}
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.Minsup == 0 {
		n := d.ClassCount(opts.Class)
		opts.Minsup = (n*7 + 9) / 10 // ceil(0.7 n)
		if opts.Minsup < 1 {
			opts.Minsup = 1
		}
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	cfg := core.DefaultConfig(opts.Minsup, opts.K)
	switch opts.Workers {
	case AllCores:
		cfg.Workers = (engine.Options{}).EffectiveWorkers()
	case 0:
		cfg.Workers = 1
	default:
		cfg.Workers = opts.Workers
	}
	cfg.MaxNodes = opts.MaxNodes
	cfg.Progress = opts.Progress
	cfg.ProgressEvery = opts.ProgressEvery
	return core.MineContext(ctx, d, opts.Class, cfg)
}

// LowerBounds returns up to nl shortest lower-bound rules of a rule
// group (algorithm FindLB).
func LowerBounds(d *Dataset, g *Group, nl int) []*Rule {
	return lowerbound.Find(d, g, lowerbound.Config{NL: nl})
}

// GroupFromItems builds the rule group generated by an itemset: closure
// antecedent, support set, and class-counted support/confidence.
func GroupFromItems(d *Dataset, items []int, cls Label) *Group {
	return rules.GroupFromItems(d, items, cls)
}

// DefaultRCBTConfig returns the paper's RCBT settings (k=10, nl=20,
// minsup = 0.7 of each class). The zero RCBTConfig behaves
// identically; this constructor remains for explicitness.
func DefaultRCBTConfig() RCBTConfig { return rcbt.DefaultConfig() }

// TrainRCBT builds an RCBT classifier (main + standby classifiers with
// score voting) from a discretized training dataset. Training stops
// promptly with ctx.Err() on cancellation or deadline expiry
// (including cfg.Timeout). The zero RCBTConfig trains the paper's
// defaults.
func TrainRCBT(ctx context.Context, d *Dataset, cfg RCBTConfig) (*RCBT, error) {
	if d == nil {
		return nil, ErrNilDataset
	}
	return rcbt.TrainContext(ctx, d, cfg)
}

// LoadRCBT reads a classifier written by (*RCBT).Save.
func LoadRCBT(r io.Reader) (*RCBT, error) { return rcbt.Load(r) }

// LoadModel reads a model envelope (classifier + discretization cuts +
// metadata) written by (*Model).Save or cmd/rcbt -save.
func LoadModel(r io.Reader) (*Model, error) { return rcbt.LoadModel(r) }

// DefaultCBAConfig returns the paper's CBA settings.
func DefaultCBAConfig() CBAConfig { return cba.DefaultConfig() }

// TrainCBA builds a CBA classifier from the top-1 covering rule groups
// of each training row (Section 5.1).
func TrainCBA(d *Dataset, cfg CBAConfig) (*CBA, error) { return cba.Train(d, cfg) }

// LoadCBA reads a classifier written by (*CBA).Save.
func LoadCBA(r io.Reader) (*CBA, error) { return cba.Load(r) }
