package topkrgs

import "context"

// This file carries the pre-redesign facade entry points for one
// release. Each shim delegates to the context-first options API; the
// vetsuite deprecatedapi analyzer keeps the repository itself off
// these (see DESIGN.md §8).

// Options tunes MineContext beyond the paper's defaults.
//
// Deprecated: use MineOptions with Mine. Note the Workers semantics
// changed: MineOptions.Workers 0 runs sequentially and AllCores (-1)
// uses every CPU, whereas Options.Workers 0 meant all cores.
type Options struct {
	// Workers sets the enumeration worker count: 0 uses all CPU cores,
	// 1 runs sequentially, N > 1 mines first-level subtrees on N
	// goroutines.
	Workers int
	// MaxNodes caps enumeration nodes (0 = unbounded).
	MaxNodes int
}

// MineLegacy is the pre-redesign positional mining call
// (Mine(d, cls, minsup, k) before the context-first API).
//
// Deprecated: use Mine(ctx, d, MineOptions{Class: cls, Minsup: minsup,
// K: k}).
func MineLegacy(d *Dataset, cls Label, minsup, k int) (*MiningResult, error) {
	//vet:ignore ctxflow deprecated context-free shim kept for the pre-redesign API
	return Mine(context.Background(), d, MineOptions{Class: cls, Minsup: minsup, K: k})
}

// MineContext is the pre-redesign positional mining call with
// cancellation and tuning.
//
// Deprecated: use Mine(ctx, d, MineOptions{...}); MineOptions carries
// Class, Minsup and K alongside the tuning fields.
func MineContext(ctx context.Context, d *Dataset, cls Label, minsup, k int, opts Options) (*MiningResult, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = AllCores
	}
	return Mine(ctx, d, MineOptions{
		Class:    cls,
		Minsup:   minsup,
		K:        k,
		Workers:  workers,
		MaxNodes: opts.MaxNodes,
	})
}

// TrainRCBTLegacy is the pre-redesign training call without a context.
//
// Deprecated: use TrainRCBT(ctx, d, cfg).
func TrainRCBTLegacy(d *Dataset, cfg RCBTConfig) (*RCBT, error) {
	//vet:ignore ctxflow deprecated context-free shim kept for the pre-redesign API
	return TrainRCBT(context.Background(), d, cfg)
}
