package topkrgs_test

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/topkrgs"
)

// Example mines the paper's running example through the public facade
// and classifies its rows with RCBT.
func Example() {
	ctx := context.Background()
	d, _ := dataset.RunningExample()

	res, err := topkrgs.Mine(ctx, d, topkrgs.MineOptions{Minsup: 2, K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("top-1 group of r1:", res.PerRow[0][0].Render(d))

	cfg := topkrgs.RCBTConfig{K: 2, NL: 3, MinsupFrac: 0.5}
	clf, err := topkrgs.TrainRCBT(ctx, d, cfg)
	if err != nil {
		panic(err)
	}
	label, _ := clf.Predict(d.RowItemSet(0))
	fmt.Println("r1 classified as:", d.ClassNames[label])
	// Output:
	// top-1 group of r1: a[0,1) b[0,1) c[0,1) -> C (sup=2 conf=1.000)
	// r1 classified as: C
}
