package topkrgs_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/topkrgs"

	// Register every miner adapter so TestEngineWorkerValidation sweeps
	// the full registry.
	_ "repro/internal/carpenter"
	_ "repro/internal/charm"
	_ "repro/internal/closet"
	_ "repro/internal/core"
	_ "repro/internal/farmer"
	_ "repro/internal/hybrid"
)

func TestMineOptionSentinels(t *testing.T) {
	ctx := context.Background()
	d, _ := dataset.RunningExample()
	for name, tc := range map[string]struct {
		d    *topkrgs.Dataset
		opts topkrgs.MineOptions
		want error
	}{
		"nil dataset":       {nil, topkrgs.MineOptions{}, topkrgs.ErrNilDataset},
		"negative k":        {d, topkrgs.MineOptions{K: -1}, topkrgs.ErrBadK},
		"negative minsup":   {d, topkrgs.MineOptions{Minsup: -2}, topkrgs.ErrBadMinsup},
		"class too large":   {d, topkrgs.MineOptions{Class: 9}, topkrgs.ErrBadClass},
		"negative class":    {d, topkrgs.MineOptions{Class: -1}, topkrgs.ErrBadClass},
		"negative workers":  {d, topkrgs.MineOptions{Workers: -2}, topkrgs.ErrBadOption},
		"negative maxnodes": {d, topkrgs.MineOptions{MaxNodes: -1}, topkrgs.ErrBadOption},
		"negative timeout":  {d, topkrgs.MineOptions{Timeout: -time.Second}, topkrgs.ErrBadOption},
		"negative stride":   {d, topkrgs.MineOptions{ProgressEvery: -1}, topkrgs.ErrBadOption},
	} {
		if _, err := topkrgs.Mine(ctx, tc.d, tc.opts); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
}

// TestEngineWorkerValidation pins the engine-level sentinel behind the
// facade check: every registered miner rejects a negative worker count
// with an error wrapping engine.ErrBadWorkers before touching the data.
func TestEngineWorkerValidation(t *testing.T) {
	err := engine.Options{Workers: -3}.Validate()
	if !errors.Is(err, engine.ErrBadWorkers) {
		t.Fatalf("Validate(Workers:-3) = %v, want ErrBadWorkers", err)
	}
	if err == engine.ErrBadWorkers {
		t.Fatal("Validate must wrap ErrBadWorkers with context, not return it bare")
	}
	d, _ := dataset.RunningExample()
	for _, name := range engine.Miners() {
		m, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("registered miner %q not found", name)
		}
		_, _, err := m.Mine(context.Background(), d, engine.Options{Minsup: 2, K: 1, Workers: -3})
		if !errors.Is(err, engine.ErrBadWorkers) {
			t.Errorf("%s: Mine(Workers:-3) err = %v, want ErrBadWorkers", name, err)
		}
	}
	for _, ok := range []int{0, 1, 8} {
		if err := (engine.Options{Workers: ok}).Validate(); err != nil {
			t.Errorf("Validate(Workers:%d) = %v, want nil", ok, err)
		}
	}
}

func TestMineZeroOptionsDefaults(t *testing.T) {
	// MineOptions{} must mine class 0 with k=10 and minsup=ceil(0.7·n).
	d, _ := dataset.RunningExample()
	res, err := topkrgs.Mine(context.Background(), d, topkrgs.MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 has 3 rows -> default minsup ceil(2.1) = 3... which no
	// group reaches except those covering all three rows; the mine must
	// still succeed and produce per-row lists.
	if len(res.PerRow) == 0 {
		t.Fatal("zero-options mine produced no per-row lists")
	}
}

// TestMineProgress asserts the facade forwards the progress hook: the
// snapshots are monotone and the final one matches the run's stats.
func TestMineProgress(t *testing.T) {
	d, _ := dataset.RunningExample()
	var snaps []topkrgs.ProgressSnapshot
	res, err := topkrgs.Mine(context.Background(), d, topkrgs.MineOptions{
		Minsup: 2, K: 2, ProgressEvery: 1,
		Progress: func(p topkrgs.ProgressSnapshot) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Nodes < snaps[i-1].Nodes || snaps[i].Groups < snaps[i-1].Groups {
			t.Fatalf("snapshots regressed at %d: %+v -> %+v", i, snaps[i-1], snaps[i])
		}
	}
	last := snaps[len(snaps)-1]
	if last.Nodes != int64(res.Stats.Nodes) || last.Groups != int64(res.Stats.Groups) {
		t.Fatalf("final snapshot %+v != stats %+v", last, res.Stats)
	}
	if last.BudgetRemaining != -1 {
		t.Fatalf("unbounded run: BudgetRemaining = %d, want -1", last.BudgetRemaining)
	}
}

// TestMineDeterministicAcrossWorkers asserts the facade's parallel
// path returns the same result as the sequential one.
func TestMineDeterministicAcrossWorkers(t *testing.T) {
	d, _ := dataset.RunningExample()
	seq, err := topkrgs.Mine(context.Background(), d,
		topkrgs.MineOptions{Minsup: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := topkrgs.Mine(context.Background(), d,
		topkrgs.MineOptions{Minsup: 2, K: 2, Workers: topkrgs.AllCores})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.PerRow, par.PerRow) {
		t.Fatal("parallel facade mine differs from sequential")
	}
}

func TestMineCancellation(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := topkrgs.Mine(ctx, d, topkrgs.MineOptions{Minsup: 2, K: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled mine must not return a result")
	}
}

func TestMineTimeout(t *testing.T) {
	d, _ := dataset.RunningExample()
	_, err := topkrgs.Mine(context.Background(), d,
		topkrgs.MineOptions{Minsup: 2, K: 1, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestTrainRCBTCancellation is the facade-path regression test for the
// bug where caller context was ignored: a cancelled context must stop
// training hard with ctx.Err().
func TestTrainRCBTCancellation(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clf, err := topkrgs.TrainRCBT(ctx, d, topkrgs.RCBTConfig{K: 2, NL: 3, MinsupFrac: 0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if clf != nil {
		t.Fatal("cancelled training must not return a classifier")
	}
}

func TestTrainRCBTZeroConfig(t *testing.T) {
	d, _ := dataset.RunningExample()
	clf, err := topkrgs.TrainRCBT(context.Background(), d, topkrgs.RCBTConfig{})
	if err != nil {
		t.Fatalf("zero RCBTConfig must train the paper defaults: %v", err)
	}
	if clf.NumClassifiers() < 1 && clf.Default() < 0 {
		t.Fatal("degenerate classifier")
	}
}
