package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/jobs"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/synth"
)

// newWorker starts a worker replica: a jobs manager plus the serve
// surface, exactly the process rcbtserved runs.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	jm, err := jobs.Open(context.Background(), jobs.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Jobs: jm})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		jm.Close() // vetsuite:allow uncheckederr -- test teardown
	})
	return ts
}

// groupSig is the full identity of a mined group: antecedent, class,
// measures and global support rows. Deep equality of results is
// equality of these signatures in order.
func groupSig(g *rules.Group) string {
	return fmt.Sprintf("%v|%d|%d|%s|%v", g.Antecedent, g.Class, g.Support,
		strconv.FormatFloat(g.Confidence, 'g', -1, 64), g.Rows.Indices())
}

// assertDeepEqual requires the cluster result to match the single-node
// hybrid result group for group and row for row.
func assertDeepEqual(t *testing.T, tag string, got *engine.Result, want *hybrid.Result) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, single-node %d", tag, len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if gs, ws := groupSig(got.Groups[i]), groupSig(want.Groups[i]); gs != ws {
			t.Fatalf("%s: group %d:\n  cluster     %s\n  single-node %s", tag, i, gs, ws)
		}
	}
	if len(got.PerRow) != len(want.PerRow) {
		t.Fatalf("%s: %d per-row boards, single-node %d", tag, len(got.PerRow), len(want.PerRow))
	}
	for r, ws := range want.PerRow {
		gs, ok := got.PerRow[r]
		if !ok {
			t.Fatalf("%s: row %d missing from cluster result", tag, r)
		}
		if len(gs) != len(ws) {
			t.Fatalf("%s: row %d: %d groups, single-node %d", tag, r, len(gs), len(ws))
		}
		for i := range ws {
			if a, b := groupSig(gs[i]), groupSig(ws[i]); a != b {
				t.Fatalf("%s: row %d rank %d:\n  cluster     %s\n  single-node %s", tag, r, i, a, b)
			}
		}
	}
}

func mineBoth(t *testing.T, c *Coordinator, d *dataset.Dataset, cls dataset.Label, minsup, k int) (*engine.Result, *hybrid.Result) {
	t.Helper()
	want, err := hybrid.Mine(d, cls, hybrid.Config{K: k, Minsup: minsup})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Mine(context.Background(), d, engine.Options{Class: cls, K: k, Minsup: minsup})
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

func TestClusterOracleFigure1(t *testing.T) {
	peers := []string{newWorker(t).URL, newWorker(t).URL}
	c := New(Config{Peers: peers})
	d, _ := dataset.RunningExample()
	for cls := dataset.Label(0); cls <= 1; cls++ {
		for k := 1; k <= 3; k++ {
			got, want := mineBoth(t, c, d, cls, 2, k)
			assertDeepEqual(t, fmt.Sprintf("class %d k %d", cls, k), got, want)
			if got.Partitions != want.Partitions {
				t.Fatalf("class %d k %d: %d partitions, single-node %d", cls, k, got.Partitions, want.Partitions)
			}
		}
	}
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(9)
	nItems := 2 + r.Intn(10)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	d.Labels[0] = 0
	return d
}

func TestClusterOracleQuick(t *testing.T) {
	peers := []string{newWorker(t).URL, newWorker(t).URL}
	c := New(Config{Peers: peers})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		k := 1 + r.Intn(3)
		for cls := dataset.Label(0); cls <= 1; cls++ {
			if d.ClassCount(cls) == 0 {
				continue
			}
			got, want := mineBoth(t, c, d, cls, minsup, k)
			assertDeepEqual(t, fmt.Sprintf("seed %d class %d", seed, cls), got, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterNoPeersOracle pins the degenerate single-process cluster
// (every partition on the local fallback path) to the hybrid merge.
func TestClusterNoPeersOracle(t *testing.T) {
	c := New(Config{})
	d, _ := dataset.RunningExample()
	got, want := mineBoth(t, c, d, 0, 2, 3)
	assertDeepEqual(t, "no peers", got, want)
}

// flakyWorker fronts a healthy worker with injected failures: the
// first 503s sub-job submissions, then it stalls them past the
// coordinator's sub-job deadline, then it heals. Reads (job polls)
// always pass through.
type flakyWorker struct {
	backend  http.Handler
	mode     atomic.Int64 // 0: 503, 1: stall, 2: healthy
	injected atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		switch f.mode.Load() {
		case 0:
			f.injected.Add(1)
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		case 1:
			f.injected.Add(1)
			// Stall past the sub-job deadline; the client context expires
			// long before this returns.
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			http.Error(w, "stalled", http.StatusServiceUnavailable)
			return
		}
	}
	f.backend.ServeHTTP(w, r)
}

// TestClusterPeerFailureOracle injects a peer that 503s, then times
// out, then heals, and requires the merged result to stay deep-equal
// to single-node mining throughout the degradation ladder.
func TestClusterPeerFailureOracle(t *testing.T) {
	healthy := newWorker(t)
	jm, err := jobs.Open(context.Background(), jobs.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Jobs: jm})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyWorker{backend: srv}
	flakyTS := httptest.NewServer(flaky)
	t.Cleanup(func() {
		flakyTS.Close()
		jm.Close() // vetsuite:allow uncheckederr -- test teardown
	})

	c := New(Config{
		Peers:         []string{healthy.URL, flakyTS.URL},
		SubJobTimeout: 250 * time.Millisecond,
		Retries:       1,
		Backoff:       time.Millisecond,
	})
	d, _ := dataset.RunningExample()
	for mode, tag := range map[int64]string{0: "503", 1: "timeout", 2: "healed"} {
		flaky.mode.Store(mode)
		got, want := mineBoth(t, c, d, 0, 2, 3)
		assertDeepEqual(t, tag, got, want)
	}
	if flaky.injected.Load() == 0 {
		t.Fatal("failure injection never fired; the test exercised nothing")
	}
}

// specRecorder fronts a worker and records the Minconf of every
// sub-job submission, so the test can see the floors the coordinator
// exchanged between rounds.
type specRecorder struct {
	backend http.Handler
	mu      chan struct{}
	floors  []float64
}

func (s *specRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		var req struct {
			Minconf float64 `json:"minconf"`
		}
		body, err := io.ReadAll(r.Body)
		if err == nil && json.Unmarshal(body, &req) == nil {
			s.mu <- struct{}{}
			s.floors = append(s.floors, req.Minconf)
			<-s.mu
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	s.backend.ServeHTTP(w, r)
}

// TestClusterFloorsExchanged mines a table large enough to fill every
// per-row board early and asserts that later rounds carried a positive
// minconf floor to the workers — and that pruning under that floor
// still reproduces the single-node result exactly.
func TestClusterFloorsExchanged(t *testing.T) {
	jm, err := jobs.Open(context.Background(), jobs.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Jobs: jm})
	if err != nil {
		t.Fatal(err)
	}
	rec := &specRecorder{backend: srv, mu: make(chan struct{}, 1)}
	ts := httptest.NewServer(rec)
	t.Cleanup(func() {
		ts.Close()
		jm.Close() // vetsuite:allow uncheckederr -- test teardown
	})

	// One peer per round: the floor refreshes between every partition.
	c := New(Config{Peers: []string{ts.URL}})
	r := rand.New(rand.NewSource(7))
	nRows, nItems := 120, 18
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(row%2))
	}

	got, want := mineBoth(t, c, d, 0, 2, 2)
	assertDeepEqual(t, "floors", got, want)

	rec.mu <- struct{}{}
	floors := append([]float64(nil), rec.floors...)
	<-rec.mu
	if len(floors) < 2 {
		t.Fatalf("expected several sub-jobs, saw %d", len(floors))
	}
	if floors[0] != 0 {
		t.Fatalf("first round floor = %v, want 0 (no boards merged yet)", floors[0])
	}
	positive := 0
	for _, f := range floors {
		if f > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("no positive floor ever reached a worker; the exchange is dead weight")
	}
}

// TestClusterFloorsOraclePaperProfile is the acceptance oracle: the
// synthetic PC profile at scale 15 with k=60 — full boards, deep
// enumeration, hundreds of partitions — mined by a two-worker cluster
// must deep-equal single-node hybrid mining.
func TestClusterFloorsOraclePaperProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := synth.Scaled(synth.PC(), 15)
	train, _, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dz.Transform(train)
	if err != nil {
		t.Fatal(err)
	}
	n := d.ClassCount(0)
	minsup := (n*7 + 9) / 10
	if minsup < 1 {
		minsup = 1
	}

	peers := []string{newWorker(t).URL, newWorker(t).URL}
	c := New(Config{Peers: peers})
	got, want := mineBoth(t, c, d, 0, minsup, 60)
	if len(want.Groups) == 0 {
		t.Fatal("single-node run found no groups; profile no longer exercises the tree")
	}
	assertDeepEqual(t, "PC/15 k=60", got, want)
}

func TestClusterRejectsNodeBudget(t *testing.T) {
	c := New(Config{})
	d, _ := dataset.RunningExample()
	if _, _, err := c.Mine(context.Background(), d, engine.Options{K: 1, Minsup: 1, MaxNodes: 10}); err == nil {
		t.Fatal("MaxNodes accepted; cluster mode cannot enforce a cross-process budget")
	}
}

func TestClusterCancellation(t *testing.T) {
	c := New(Config{})
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Mine(ctx, d, engine.Options{K: 2, Minsup: 1}); err == nil {
		t.Fatal("cancelled context not honored")
	}
}
