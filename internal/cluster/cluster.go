// Package cluster runs TopkRGS mining across a set of rcbtserved
// worker replicas: a Coordinator splits the job into the column-phase
// partitions of hybrid.PlanPartitions, ships each partition to a peer
// as a mine job over the /v1/jobs HTTP surface, and merges the
// returned rule groups into per-row top-k boards that deep-equal the
// single-node result.
//
// Sub-jobs run in rounds of len(Peers) partitions. Between rounds the
// coordinator recomputes the global minimum-confidence floor — the
// weakest threshold confidence across all merged per-row boards, 0
// while any board is still short — and sends it as the next round's
// Spec.Minconf, so remote workers prune subtrees the merged boards
// have already outclassed. The floor is sound: thresholds only rise,
// so a group strictly below the floor can never qualify for any final
// board, and floor-tied groups are kept on both sides (the core's
// MinConf clamp uses support 0). Workers may return extra groups that
// only lead their floored local boards; the merge rejects them,
// because the partition's own stronger groups arrive first in
// significance order and fill the global boards at or above them.
//
// Failure handling: a partition whose peer fails (connection error,
// non-2xx, failed job, per-sub-job deadline) is retried with
// exponential backoff, then mined locally by the coordinator with the
// same floor — degraded throughput, identical output. Merge order is
// deterministic (partition plan order, each partition's groups in
// significance order, dedup by group key), so the merged result is
// byte-for-byte the single-node hybrid result regardless of which
// peers answered.
//
// The Coordinator implements engine.Miner under the name "cluster";
// registering it (cmd/rcbtserved -peers) makes distributed mining
// reachable through the ordinary jobs API with {"miner": "cluster"}.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hybrid"
	"repro/internal/jobs"
	"repro/internal/rules"
	"repro/internal/serve"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultSubJobTimeout = time.Minute
	DefaultRetries       = 1
	DefaultBackoff       = 50 * time.Millisecond
	DefaultPollInterval  = 20 * time.Millisecond
)

// Config configures a Coordinator.
type Config struct {
	// Peers are the worker base URLs ("http://host:port"). Partition i
	// of each round goes to Peers[i mod len(Peers)]. An empty list is a
	// degenerate single-node cluster: every partition is mined locally,
	// which is also the oracle the distributed path must match.
	Peers []string
	// Client issues the sub-job HTTP requests (nil = a default client;
	// deadlines come from per-attempt contexts, not Client.Timeout).
	Client *http.Client
	// SubJobTimeout bounds one attempt at one partition — submit plus
	// poll to completion — and is also sent as the sub-job's own
	// Spec.Timeout so an orphaned job cannot occupy a worker forever
	// (0 = DefaultSubJobTimeout).
	SubJobTimeout time.Duration
	// Retries is the number of re-attempts after a failed first try
	// against a partition's peer before degrading to local mining
	// (0 = DefaultRetries; negative = no retries).
	Retries int
	// Backoff is the first retry delay, doubled per attempt
	// (0 = DefaultBackoff).
	Backoff time.Duration
	// PollInterval spaces the GET /v1/jobs/{id} polls while a sub-job
	// runs (0 = DefaultPollInterval).
	PollInterval time.Duration
	// Logger receives per-partition dispatch, retry and degrade lines
	// (nil = silent).
	Logger *slog.Logger
}

// Coordinator is the cluster-mode miner. Create with New; safe for
// concurrent use.
type Coordinator struct {
	peers         []string
	client        *http.Client
	subJobTimeout time.Duration
	retries       int
	backoff       time.Duration
	pollInterval  time.Duration
	logger        *slog.Logger
}

// New builds a Coordinator, applying Config defaults.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		peers:         append([]string(nil), cfg.Peers...),
		client:        cfg.Client,
		subJobTimeout: cfg.SubJobTimeout,
		retries:       cfg.Retries,
		backoff:       cfg.Backoff,
		pollInterval:  cfg.PollInterval,
		logger:        cfg.Logger,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.subJobTimeout == 0 {
		c.subJobTimeout = DefaultSubJobTimeout
	}
	if c.retries == 0 {
		c.retries = DefaultRetries
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.backoff == 0 {
		c.backoff = DefaultBackoff
	}
	if c.pollInterval == 0 {
		c.pollInterval = DefaultPollInterval
	}
	return c
}

// Name is the engine-registry key.
func (c *Coordinator) Name() string { return "cluster" }

// Mine implements engine.Miner: distributed TopkRGS over the
// configured peers. Options fields beyond Class, K, Minsup and
// Workers are not supported in cluster mode — MaxNodes is rejected
// (a node budget cannot be enforced across processes), the rest are
// ignored. Workers is forwarded to each sub-job (and to local
// fallback mining); parallel and sequential runs are identical, so it
// does not affect the result.
func (c *Coordinator) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	if opts.MaxNodes > 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: node budgets are not supported in cluster mode")
	}
	if opts.K < 1 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: k must be >= 1, got %d", opts.K)
	}
	if opts.Minsup < 1 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: minsup must be >= 1, got %d", opts.Minsup)
	}
	cls := opts.Class
	if int(cls) < 0 || int(cls) >= d.NumClasses() {
		return nil, engine.Stats{}, fmt.Errorf("cluster: class %d outside [0,%d)", cls, d.NumClasses())
	}
	pos := d.RowSet(cls)
	if pos.Count() == 0 {
		return nil, engine.Stats{}, fmt.Errorf("cluster: no rows of class %s", d.ClassNames[cls])
	}

	res := &engine.Result{PerRow: map[int][]*rules.Group{}}
	lists := map[int]*rules.TopKList{}
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] == cls {
			res.PerRow[r] = nil
			lists[r] = rules.NewTopKList(opts.K)
		}
	}
	for i := 0; i < d.NumItems(); i++ {
		if d.ItemRows(i).IntersectionCount(pos) >= opts.Minsup {
			res.NumFrequentItems++
		}
	}

	// The same partition plan single-node hybrid mining uses; no row
	// cap, so there is no residual pass and every partition ships whole.
	parts, _ := hybrid.PlanPartitions(d, cls, opts.Minsup, 0)
	res.Partitions = len(parts)

	seen := map[string]bool{}
	var stats engine.Stats
	stats.Workers = 1

	roundSize := len(c.peers)
	if roundSize < 1 {
		roundSize = 1
	}
	floor := 0.0
	for start := 0; start < len(parts); start += roundSize {
		round := parts[start:min(start+roundSize, len(parts))]
		type partOut struct {
			groups []*rules.Group
			stats  engine.Stats
			err    error
		}
		outs := make([]partOut, len(round))
		var wg sync.WaitGroup
		for i, part := range round {
			wg.Add(1)
			go func(i int, part []int) {
				defer wg.Done()
				gs, st, err := c.minePartition(ctx, d, cls, part, start+i, opts, floor)
				outs[i] = partOut{gs, st, err}
			}(i, part)
		}
		wg.Wait()
		// Merge strictly in plan order: boundary ties are broken by
		// arrival, so the offer sequence must not depend on which peer
		// answered first.
		for _, out := range outs {
			if out.err != nil {
				return nil, engine.Stats{}, out.err
			}
			absorb(&stats, out.stats)
			for _, g := range out.groups {
				offer(g, lists, seen)
			}
		}
		floor = computeFloor(lists)
	}

	collected := map[*rules.Group]bool{}
	for r, l := range lists {
		gs := l.Groups()
		out := make([]*rules.Group, len(gs))
		copy(out, gs)
		res.PerRow[r] = out
		for _, g := range gs {
			if !collected[g] {
				collected[g] = true
				res.Groups = append(res.Groups, g)
			}
		}
	}
	rules.SortGroups(res.Groups)
	return res, stats, nil
}

// minePartition obtains one partition's rule groups (global row ids,
// significance order): from the partition's peer with retry/backoff,
// then — every attempt spent — mined locally with the same floor.
func (c *Coordinator) minePartition(ctx context.Context, d *dataset.Dataset, cls dataset.Label, part []int, partIdx int, opts engine.Options, floor float64) ([]*rules.Group, engine.Stats, error) {
	if len(c.peers) > 0 {
		peer := c.peers[partIdx%len(c.peers)]
		backoff := c.backoff
		for attempt := 0; attempt <= c.retries; attempt++ {
			if attempt > 0 {
				if err := sleepCtx(ctx, backoff); err != nil {
					return nil, engine.Stats{}, err
				}
				backoff *= 2
			}
			gs, st, err := c.mineRemote(ctx, peer, d, cls, part, opts, floor)
			if err == nil {
				return gs, st, nil
			}
			if ctx.Err() != nil {
				return nil, engine.Stats{}, ctx.Err()
			}
			c.logw("sub-job attempt failed", "peer", peer, "partition", partIdx, "attempt", attempt, "err", err)
		}
		c.logw("peer exhausted, mining partition locally", "peer", peer, "partition", partIdx)
	}
	return c.mineLocal(ctx, d, cls, part, opts, floor)
}

// mineRemote runs one partition on one peer: submit the sub-job, poll
// it to a terminal state, convert the returned group list to global
// row ids. The whole attempt shares one SubJobTimeout deadline.
func (c *Coordinator) mineRemote(ctx context.Context, peer string, d *dataset.Dataset, cls dataset.Label, part []int, opts engine.Options, floor float64) ([]*rules.Group, engine.Stats, error) {
	actx, cancel := context.WithTimeout(ctx, c.subJobTimeout)
	defer cancel()

	req := serve.JobRequest{
		Spec: jobs.Spec{
			Kind:         jobs.KindMine,
			Miner:        "topk",
			Class:        d.ClassNames[cls],
			K:            opts.K,
			Minsup:       opts.Minsup,
			Minconf:      floor,
			ReturnGroups: true,
			Workers:      opts.Workers,
			Timeout:      jobs.Duration(c.subJobTimeout),
		},
		Data: &serve.InlineDataset{
			Classes:  d.ClassNames,
			NumItems: d.NumItems(),
			Rows:     make([]serve.InlineRow, len(part)),
		},
	}
	for i, r := range part {
		req.Data.Rows[i] = serve.InlineRow{Items: d.Rows[r], Label: int(d.Labels[r])}
	}

	rec, err := c.submitJob(actx, peer, &req)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	for !rec.Terminal() {
		if err := sleepCtx(actx, c.pollInterval); err != nil {
			return nil, engine.Stats{}, err
		}
		if rec, err = c.getJob(actx, peer, rec.ID); err != nil {
			return nil, engine.Stats{}, err
		}
	}
	if rec.State != jobs.StateSucceeded || rec.Partial {
		return nil, engine.Stats{}, fmt.Errorf("cluster: sub-job %s on %s ended %s: %s", rec.ID, peer, rec.State, rec.Error)
	}
	var st engine.Stats
	var list []jobs.MinedGroup
	if rec.Result != nil {
		st.Nodes = rec.Result.Nodes
		st.Groups = rec.Result.Groups
		list = rec.Result.GroupList
	}
	groups := make([]*rules.Group, len(list))
	for i, mg := range list {
		rows := bitset.New(d.NumRows())
		for _, lr := range mg.Rows {
			if lr < 0 || lr >= len(part) {
				return nil, engine.Stats{}, fmt.Errorf("cluster: sub-job %s on %s returned row %d outside partition of %d rows", rec.ID, peer, lr, len(part))
			}
			rows.Add(part[lr])
		}
		groups[i] = &rules.Group{
			Antecedent: mg.Items,
			Class:      dataset.Label(mg.Class),
			Support:    mg.Support,
			Confidence: mg.Confidence,
			Rows:       rows,
		}
	}
	return groups, st, nil
}

// mineLocal is the degraded path: the exact computation a healthy
// worker performs, run in-process. Group row sets are remapped to
// global ids; res.Groups is already in significance order.
func (c *Coordinator) mineLocal(ctx context.Context, d *dataset.Dataset, cls dataset.Label, part []int, opts engine.Options, floor float64) ([]*rules.Group, engine.Stats, error) {
	cfg := core.DefaultConfig(opts.Minsup, opts.K)
	cfg.Workers = opts.Workers
	cfg.MinConf = floor
	res, err := core.MineContext(ctx, d.Subset(part), cls, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	for _, g := range res.Groups {
		global := bitset.New(d.NumRows())
		g.Rows.ForEach(func(localR int) bool {
			global.Add(part[localR])
			return true
		})
		g.Rows = global
	}
	return res.Groups, res.Stats, nil
}

// submitJob POSTs the sub-job and decodes the accepted record.
func (c *Coordinator) submitJob(ctx context.Context, peer string, jr *serve.JobRequest) (*jobs.Record, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode sub-job: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJob(req, http.StatusAccepted)
}

// getJob fetches one job record from a peer.
func (c *Coordinator) getJob(ctx context.Context, peer, id string) (*jobs.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.doJob(req, http.StatusOK)
}

func (c *Coordinator) doJob(req *http.Request, want int) (*jobs.Record, error) {
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() // vetsuite:allow uncheckederr -- response body, nothing buffered to lose
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) // vetsuite:allow uncheckederr -- best-effort error detail
		return nil, fmt.Errorf("cluster: %s %s: status %d: %s", req.Method, req.URL.Path, resp.StatusCode, msg)
	}
	var rec jobs.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("cluster: decode job record: %w", err)
	}
	return &rec, nil
}

// offer inserts a group into the boards of the positive rows it
// covers, deduplicating groups rediscovered from several partitions —
// the same merge hybrid.MineContext performs.
func offer(g *rules.Group, lists map[int]*rules.TopKList, seen map[string]bool) {
	key := g.Key()
	if seen[key] {
		return
	}
	seen[key] = true
	g.Rows.ForEach(func(r int) bool {
		if l, ok := lists[r]; ok {
			l.Consider(g)
		}
		return true
	})
}

// computeFloor returns the confidence every remaining group must reach
// to enter any per-row board: the weakest threshold confidence across
// the boards, or 0 while any board is short of k entries. Thresholds
// only tighten as partitions merge, so the floor is a sound static
// prune for all later rounds.
func computeFloor(lists map[int]*rules.TopKList) float64 {
	floor := -1.0
	for _, l := range lists {
		if l.Len() < l.K() {
			return 0
		}
		conf, _ := l.Threshold()
		if floor < 0 || rules.CompareConf(conf, floor) < 0 {
			floor = conf
		}
	}
	if floor < 0 {
		return 0
	}
	return floor
}

// absorb folds one partition's statistics into the run totals. Remote
// partitions report nodes and group counts only; the prune counters
// cover just locally-mined partitions.
func absorb(total *engine.Stats, st engine.Stats) {
	total.Nodes += st.Nodes
	total.BackwardPruned += st.BackwardPruned
	total.PrunedBeforeScan += st.PrunedBeforeScan
	total.PrunedAfterScan += st.PrunedAfterScan
	total.Groups += st.Groups
	total.MaxDepth = max(total.MaxDepth, st.MaxDepth)
	total.Workers = max(total.Workers, st.Workers)
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) logw(msg string, args ...any) {
	if c.logger != nil {
		c.logger.Warn(msg, args...)
	}
}
