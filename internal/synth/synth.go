// Package synth generates deterministic synthetic gene expression
// datasets that substitute the four clinical benchmarks of the paper's
// Table 1 (ALL/AML leukemia, lung cancer, ovarian cancer, prostate
// cancer), which are not redistributable.
//
// The generator reproduces the properties the paper's algorithms are
// sensitive to rather than the biology:
//
//   - matrix shape: thousands of genes, tens to a couple hundred samples,
//     matching Table 1's train/test splits and class ratios;
//   - a controlled informative fraction: informative genes receive a
//     class-conditional mean shift large enough for entropy-MDL
//     discretization to accept a cut, so "# genes after discretization"
//     lands near the paper's counts while pure-noise genes are rejected;
//   - correlated blocks: informative genes come in blocks sharing a
//     per-sample latent factor, so rows of the same class share long
//     itemsets, producing the long closed patterns and rule-group
//     explosion at low minsup that row enumeration exploits;
//   - graded effect sizes: later blocks shift less, so some informative
//     genes are low-ranked by chi-square yet still participate in
//     covering rules (the Figure 8 phenomenon).
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Profile parameterizes a synthetic dataset.
type Profile struct {
	Name        string
	NumGenes    int // total genes in the raw matrix
	Informative int // genes with a class-conditional shift
	BlockSize   int // informative genes per correlated block
	Class1      string
	Class0      string
	Train1      int // training rows of class 1 (label 0, the consequent)
	Train0      int // training rows of class 0 (label 1)
	Test1       int
	Test0       int
	Seed        int64

	// MinEffect and MaxEffect bound the class-mean shift (in noise SDs)
	// assigned to blocks; blocks are graded from MaxEffect down to
	// MinEffect.
	MinEffect, MaxEffect float64
	// BlockCorr is the share of an informative gene's variance explained
	// by its block's latent factor.
	BlockCorr float64
	// NoiseSD is the iid per-gene noise standard deviation.
	NoiseSD float64
	// TestEffectScale shrinks class effects in the test split to model
	// train/test distribution shift (0 means 1.0 = no shift).
	TestEffectScale float64
	// BlockPenetrance is the probability that a block's class effect is
	// active in a given sample (0 means 1.0 = always). Below 1.0 it
	// creates subtype structure: no single gene covers a whole class, so
	// rule groups and their lower bounds diversify across blocks — the
	// regime where Figure 8's low-ranked-gene participation appears.
	BlockPenetrance float64
	// EffectDecay, when nonzero, grades block effects geometrically:
	// effect(b) = MinEffect + (MaxEffect-MinEffect)·EffectDecay^b, so a
	// handful of leading blocks dominates (PC uses this). Zero selects
	// the default linear grading.
	EffectDecay float64
	// TestFlipGeneFrac flips the class-effect direction of this fraction
	// of informative genes (chosen uniformly across blocks) in the test
	// split — diffuse covariate shift that degrades weight-spreading
	// models (SVM) in addition to the concentrated TestFlipTopBlocks.
	TestFlipGeneFrac float64
	// TestFlipTopBlocks inverts the class effect of the leading (most
	// discriminative) informative blocks in the test split. This models
	// the prostate dataset's documented train/test site difference: the
	// top-ranked genes mislead at test time while lower-ranked blocks
	// stay informative, which is what collapses C4.5 (it splits on the
	// top genes) but not rule ensembles that also use low-ranked genes
	// (Section 6.2 / Figure 8).
	TestFlipTopBlocks int
}

func defaults(p Profile) Profile {
	if p.BlockSize == 0 {
		p.BlockSize = 12
	}
	if p.MaxEffect == 0 {
		p.MaxEffect = 3.0
	}
	if p.MinEffect == 0 {
		p.MinEffect = 1.2
	}
	if p.BlockCorr == 0 {
		p.BlockCorr = 0.5
	}
	if p.NoiseSD == 0 {
		p.NoiseSD = 1.0
	}
	return p
}

// ALL mirrors the ALL/AML leukemia dataset: 7129 genes, 866 after
// discretization, 38 training rows (27 ALL : 11 AML), 34 test rows.
func ALL() Profile {
	return Profile{
		Name: "ALL", NumGenes: 7129, Informative: 866,
		Class1: "ALL", Class0: "AML",
		Train1: 27, Train0: 11, Test1: 20, Test0: 14,
		Seed: 7129,
	}
}

// LC mirrors the lung cancer dataset: 12533 genes, 2173 after
// discretization, 32 training rows (16 MPM : 16 ADCA), 149 test rows.
func LC() Profile {
	return Profile{
		Name: "LC", NumGenes: 12533, Informative: 2173,
		Class1: "MPM", Class0: "ADCA",
		Train1: 16, Train0: 16, Test1: 15, Test0: 134,
		Seed: 12533,
	}
}

// OC mirrors the ovarian cancer dataset: 15154 genes, 5769 after
// discretization, 210 training rows (133 tumor : 77 normal), 43 test
// rows.
func OC() Profile {
	return Profile{
		Name: "OC", NumGenes: 15154, Informative: 5769,
		Class1: "tumor", Class0: "normal",
		Train1: 133, Train0: 77, Test1: 29, Test0: 14,
		Seed: 15154,
	}
}

// PC mirrors the prostate cancer dataset: 12600 genes, 1554 after
// discretization, 102 training rows (52 tumor : 50 normal), 34 test
// rows. The paper's PC test split is known to be drawn from a different
// distribution than training (why C4.5 collapses to 26%); we model that
// by shrinking test effect sizes for the leading blocks.
func PC() Profile {
	return Profile{
		Name: "PC", NumGenes: 12600, Informative: 1554,
		Class1: "tumor", Class0: "normal",
		Train1: 52, Train0: 50, Test1: 25, Test0: 9,
		Seed:              12600,
		MaxEffect:         4.5,
		MinEffect:         1.2,
		EffectDecay:       0.8,  // a few dominant blocks, long informative tail
		BlockPenetrance:   0.85, // subtype structure: no gene covers a whole class
		TestEffectScale:   0.9,  // modest overall shift plus
		TestFlipTopBlocks: 3,    // misleading top-ranked genes at test time (§6.2)
	}
}

// Profiles returns the four Table 1 profiles in paper order.
func Profiles() []Profile { return []Profile{ALL(), LC(), OC(), PC()} }

// Scaled returns a copy of p with gene counts divided by factor (row
// counts are preserved — the algorithms are row-enumeration based and
// their cost is driven by items × rows; scaling genes keeps benches
// fast while preserving shape). factor must be >= 1.
func Scaled(p Profile, factor int) Profile {
	if factor < 1 {
		// vetsuite:allow panic -- programmer-error precondition, not data-dependent
		panic(fmt.Sprintf("synth: scale factor %d < 1", factor))
	}
	p.Name = fmt.Sprintf("%s/%d", p.Name, factor)
	p.NumGenes /= factor
	p.Informative /= factor
	if p.Informative < 1 {
		p.Informative = 1
	}
	if p.NumGenes < p.Informative {
		p.NumGenes = p.Informative
	}
	return p
}

// Generate produces the training and test matrices for a profile. The
// same profile always yields identical data.
func Generate(p Profile) (train, test *dataset.Matrix, err error) {
	p = defaults(p)
	if p.Informative > p.NumGenes {
		return nil, nil, fmt.Errorf("synth: %d informative genes exceed %d total", p.Informative, p.NumGenes)
	}
	if p.Train1 <= 0 || p.Train0 <= 0 {
		return nil, nil, fmt.Errorf("synth: each class needs at least one training row")
	}
	rng := rand.New(rand.NewSource(p.Seed))

	numBlocks := (p.Informative + p.BlockSize - 1) / p.BlockSize
	// Graded effect per block: block 0 strongest.
	blockEffect := make([]float64, numBlocks)
	decay := 1.0
	for b := range blockEffect {
		if p.EffectDecay > 0 {
			blockEffect[b] = p.MinEffect + (p.MaxEffect-p.MinEffect)*decay
			decay *= p.EffectDecay
			continue
		}
		frac := 0.0
		if numBlocks > 1 {
			frac = float64(b) / float64(numBlocks-1)
		}
		blockEffect[b] = p.MaxEffect - frac*(p.MaxEffect-p.MinEffect)
	}
	// Per-gene baseline and direction (+1: higher in class 1).
	base := make([]float64, p.NumGenes)
	dir := make([]float64, p.NumGenes)
	for g := 0; g < p.NumGenes; g++ {
		base[g] = rng.NormFloat64() * 2
		if rng.Intn(2) == 0 {
			dir[g] = 1
		} else {
			dir[g] = -1
		}
	}

	genNames := make([]string, p.NumGenes)
	for g := range genNames {
		genNames[g] = fmt.Sprintf("G%05d_at", g)
	}

	penetrance := p.BlockPenetrance
	if penetrance == 0 {
		penetrance = 1.0
	}
	geneFlipped := make([]bool, p.NumGenes)
	for g := 0; g < p.Informative; g++ {
		geneFlipped[g] = rng.Float64() < p.TestFlipGeneFrac
	}
	sample := func(label dataset.Label, effectScale float64, flipBlocks int, applyGeneFlips bool) []float64 {
		row := make([]float64, p.NumGenes)
		// One latent factor and one activation flag per block per sample.
		latent := make([]float64, numBlocks)
		active := make([]bool, numBlocks)
		for b := range latent {
			latent[b] = rng.NormFloat64()
			active[b] = rng.Float64() < penetrance
		}
		classSign := 1.0
		if label != 0 {
			classSign = -1
		}
		for g := 0; g < p.NumGenes; g++ {
			v := base[g] + rng.NormFloat64()*p.NoiseSD
			if g < p.Informative {
				b := g / p.BlockSize
				v += latent[b] * p.BlockCorr
				if active[b] {
					eff := blockEffect[b] * effectScale
					if b < flipBlocks || (applyGeneFlips && geneFlipped[g]) {
						eff = -eff
					}
					v += classSign * dir[g] * eff / 2
				}
			}
			row[g] = v
		}
		return row
	}

	build := func(n1, n0 int, effectScale float64, flipBlocks int, isTest bool) *dataset.Matrix {
		m := &dataset.Matrix{
			GeneNames:  genNames,
			ClassNames: []string{p.Class1, p.Class0},
		}
		for i := 0; i < n1; i++ {
			m.Values = append(m.Values, sample(0, effectScale, flipBlocks, isTest))
			m.Labels = append(m.Labels, 0)
		}
		for i := 0; i < n0; i++ {
			m.Values = append(m.Values, sample(1, effectScale, flipBlocks, isTest))
			m.Labels = append(m.Labels, 1)
		}
		return m
	}

	train = build(p.Train1, p.Train0, 1.0, 0, false)
	testScale := p.TestEffectScale
	if testScale == 0 {
		testScale = 1.0
	}
	test = build(p.Test1, p.Test0, testScale, p.TestFlipTopBlocks, true)
	return train, test, nil
}
