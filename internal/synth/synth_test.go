package synth

import (
	"reflect"
	"testing"

	"repro/internal/discretize"
)

func TestProfilesMatchTable1Shapes(t *testing.T) {
	cases := []struct {
		p              Profile
		genes          int
		train1, train0 int
		test           int
	}{
		{ALL(), 7129, 27, 11, 34},
		{LC(), 12533, 16, 16, 149},
		{OC(), 15154, 133, 77, 43},
		{PC(), 12600, 52, 50, 34},
	}
	for _, c := range cases {
		if c.p.NumGenes != c.genes {
			t.Errorf("%s genes = %d, want %d", c.p.Name, c.p.NumGenes, c.genes)
		}
		if c.p.Train1 != c.train1 || c.p.Train0 != c.train0 {
			t.Errorf("%s train = (%d:%d), want (%d:%d)", c.p.Name, c.p.Train1, c.p.Train0, c.train1, c.train0)
		}
		if c.p.Test1+c.p.Test0 != c.test {
			t.Errorf("%s test = %d, want %d", c.p.Name, c.p.Test1+c.p.Test0, c.test)
		}
	}
}

func TestGenerateShapesAndValidity(t *testing.T) {
	p := Scaled(ALL(), 20)
	train, test, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	if train.NumRows() != p.Train1+p.Train0 {
		t.Fatalf("train rows = %d", train.NumRows())
	}
	if test.NumRows() != p.Test1+p.Test0 {
		t.Fatalf("test rows = %d", test.NumRows())
	}
	if train.NumGenes() != p.NumGenes || test.NumGenes() != p.NumGenes {
		t.Fatal("gene count mismatch")
	}
	if train.ClassCount(0) != p.Train1 {
		t.Fatalf("class1 train count = %d, want %d", train.ClassCount(0), p.Train1)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Scaled(LC(), 50)
	a1, b1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.Values, a2.Values) || !reflect.DeepEqual(b1.Values, b2.Values) {
		t.Fatal("same profile must generate identical data")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	p := Scaled(ALL(), 50)
	a, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed++
	b, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Values, b.Values) {
		t.Fatal("different seeds must generate different data")
	}
}

func TestGenerateErrors(t *testing.T) {
	p := ALL()
	p.Informative = p.NumGenes + 1
	if _, _, err := Generate(p); err == nil {
		t.Fatal("informative > total must error")
	}
	p = ALL()
	p.Train0 = 0
	if _, _, err := Generate(p); err == nil {
		t.Fatal("empty class must error")
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(OC(), 10)
	if p.NumGenes != 1515 || p.Informative != 576 {
		t.Fatalf("scaled = (%d, %d)", p.NumGenes, p.Informative)
	}
	if p.Train1 != 133 {
		t.Fatal("scaling must preserve row counts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled with factor 0 should panic")
		}
	}()
	Scaled(OC(), 0)
}

func TestDiscretizationKeepsMostlyInformativeGenes(t *testing.T) {
	// The MDL discretizer should retain a gene set close to the
	// informative count and reject most noise genes, reproducing the
	// Table 1 "# genes after discretization" behaviour in miniature.
	p := Scaled(ALL(), 20) // 356 genes, 43 informative
	train, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	kept := dz.NumSelectedGenes()
	if kept < p.Informative/2 {
		t.Fatalf("kept %d genes, want at least half of %d informative", kept, p.Informative)
	}
	if kept > p.Informative*3 {
		t.Fatalf("kept %d genes, far above %d informative — noise rejection failed", kept, p.Informative)
	}
	// The strongest (earliest) informative genes must essentially all be kept.
	strongKept := 0
	for _, g := range dz.SelectedGenes() {
		if g < p.BlockSize {
			strongKept++
		}
	}
	if strongKept < p.BlockSize*3/4 {
		t.Fatalf("only %d/%d strongest genes kept", strongKept, p.BlockSize)
	}
}

func TestDiscretizedRowsShareLongItemsets(t *testing.T) {
	// Same-class rows must share long itemsets — the property that makes
	// row enumeration the right search strategy.
	p := Scaled(ALL(), 40)
	train, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dz.Transform(train)
	if err != nil {
		t.Fatal(err)
	}
	// Average pairwise intersection within class 0 should be clearly
	// larger than across classes.
	within, across := 0.0, 0.0
	nw, na := 0, 0
	for i := 0; i < d.NumRows(); i++ {
		ri := d.RowItemSet(i)
		for j := i + 1; j < d.NumRows(); j++ {
			c := ri.IntersectionCount(d.RowItemSet(j))
			if d.Labels[i] == d.Labels[j] {
				within += float64(c)
				nw++
			} else {
				across += float64(c)
				na++
			}
		}
	}
	if nw == 0 || na == 0 {
		t.Fatal("degenerate dataset")
	}
	within /= float64(nw)
	across /= float64(na)
	if within <= across {
		t.Fatalf("within-class overlap %.1f not greater than across-class %.1f", within, across)
	}
}

func TestPCTestSetHarder(t *testing.T) {
	// PC applies a test-time effect shrink; verify the flag is plumbed:
	// generating PC twice must still be deterministic, and the test
	// matrix must differ from what an unshrunk build would produce is
	// hard to observe directly, so just check determinism + validity.
	train, test, err := Generate(Scaled(PC(), 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}
