// Package report renders experiment series as ASCII charts, so the
// benchrunner can show the *shape* of the paper's figures — log-scale
// runtime curves for Figure 6, accuracy curves for Figure 7, and the
// rank/frequency scatter of Figure 8 — directly in a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve of (x, y) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement; Censored marks lower-bound values (DNF
// runs), rendered with a '^' marker.
type Point struct {
	X        float64
	Y        float64
	Censored bool
}

// LineChart renders series on a shared grid. When logY is set the y
// axis is log10-scaled (non-positive values are clamped to the smallest
// positive y). Each series gets a distinct marker; censored points use
// '^' regardless.
func LineChart(w io.Writer, title, xLabel, yLabel string, series []Series, width, height int, logY bool) {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Gather ranges.
	var xs, ys []float64
	for _, s := range series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			if p.Y > 0 || !logY {
				ys = append(ys, p.Y)
			}
		}
	}
	if len(xs) == 0 || len(ys) == 0 {
		fmt.Fprintf(w, "%s: no data\n", title)
		return
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	ty := func(y float64) float64 { return y }
	if logY {
		if minY <= 0 {
			minY = 1e-9
		}
		ty = func(y float64) float64 {
			if y < minY {
				y = minY
			}
			return math.Log10(y)
		}
	}
	loY, hiY := ty(minY), ty(maxY)
	if hiY == loY {
		hiY = loY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		return clamp(c, 0, width-1)
	}
	rowOf := func(y float64) int {
		r := int((ty(y) - loY) / (hiY - loY) * float64(height-1))
		return clamp(height-1-r, 0, height-1)
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			mk := m
			if p.Censored {
				mk = '^'
			}
			grid[rowOf(p.Y)][col(p.X)] = mk
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	scale := ""
	if logY {
		scale = " (log scale)"
	}
	fmt.Fprintf(w, "y: %s%s, top=%.3g bottom=%.3g\n", yLabel, scale, maxY, minY)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", row)
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   x: %s, left=%.3g right=%.3g\n", xLabel, minX, maxX)
	for si, s := range series {
		marker := string(markers[si%len(markers)])
		fmt.Fprintf(w, "   %s %s\n", marker, s.Name)
	}
	fmt.Fprintln(w, "   ^ budget-censored (DNF): true value lies above")
}

// Scatter renders a single unnamed point cloud (Figure 8's rank vs
// frequency view).
func Scatter(w io.Writer, title, xLabel, yLabel string, pts []Point, width, height int) {
	LineChart(w, title, xLabel, yLabel, []Series{{Name: "genes", Points: pts}}, width, height, false)
}

// SortSeriesPoints orders each series by x for readable charts.
func SortSeriesPoints(series []Series) {
	for i := range series {
		sort.Slice(series[i].Points, func(a, b int) bool {
			return series[i].Points[a].X < series[i].Points[b].X
		})
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
