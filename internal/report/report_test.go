package report

import (
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	var sb strings.Builder
	series := []Series{
		{Name: "fast", Points: []Point{{X: 1, Y: 0.001}, {X: 2, Y: 0.002}}},
		{Name: "slow", Points: []Point{{X: 1, Y: 1}, {X: 2, Y: 10, Censored: true}}},
	}
	LineChart(&sb, "runtime", "minsup", "seconds", series, 40, 10, true)
	out := sb.String()
	for _, want := range []string{"runtime", "log scale", "fast", "slow", "^", "*", "o", "minsup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The slow series must render above the fast one: find rows.
	lines := strings.Split(out, "\n")
	rowOf := func(marker string) int {
		for i, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "|") && strings.Contains(l, marker) {
				return i
			}
		}
		return -1
	}
	if fast, slow := rowOf("*"), rowOf("o"); fast >= 0 && slow >= 0 && slow > fast {
		t.Fatalf("slow series rendered below fast one (rows %d vs %d)", slow, fast)
	}
}

func TestLineChartEmpty(t *testing.T) {
	var sb strings.Builder
	LineChart(&sb, "empty", "x", "y", nil, 40, 10, false)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	var sb strings.Builder
	// Single point: equal min/max on both axes must not divide by zero.
	LineChart(&sb, "single", "x", "y", []Series{
		{Name: "s", Points: []Point{{X: 5, Y: 5}}},
	}, 40, 10, true)
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("single point should render")
	}
	// Non-positive y under log scale is clamped, not NaN.
	var sb2 strings.Builder
	LineChart(&sb2, "zeroes", "x", "y", []Series{
		{Name: "s", Points: []Point{{X: 1, Y: 0}, {X: 2, Y: 3}}},
	}, 40, 10, true)
	if strings.Contains(sb2.String(), "NaN") {
		t.Fatal("log chart produced NaN")
	}
}

func TestScatterAndSort(t *testing.T) {
	series := []Series{{Name: "s", Points: []Point{{X: 3, Y: 1}, {X: 1, Y: 2}}}}
	SortSeriesPoints(series)
	if series[0].Points[0].X != 1 {
		t.Fatal("SortSeriesPoints should order by x")
	}
	var sb strings.Builder
	Scatter(&sb, "sc", "rank", "freq", series[0].Points, 30, 8)
	if !strings.Contains(sb.String(), "genes") {
		t.Fatal("scatter legend missing")
	}
}
