package rcbt

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// persisted is the wire form of a Classifier (gob requires exported
// fields; the in-memory type keeps its internals private).
type persisted struct {
	Subs       []persistedSub
	Def        dataset.Label
	ClassCount []int
	NumClasses int
}

type persistedSub struct {
	Rules []*rules.Rule
	Norm  []float64
}

// Save serializes the classifier with encoding/gob. Rule row-support
// bitsets are not part of the model and are not written.
func (c *Classifier) Save(w io.Writer) error {
	p := persisted{
		Def:        c.def,
		ClassCount: c.classCount,
		NumClasses: c.numClasses,
	}
	for _, sub := range c.subs {
		p.Subs = append(p.Subs, persistedSub{Rules: sub.rules, Norm: sub.norm})
	}
	return gob.NewEncoder(w).Encode(p)
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("rcbt: load: %v", err)
	}
	if p.NumClasses < 2 || len(p.ClassCount) != p.NumClasses {
		return nil, fmt.Errorf("rcbt: load: malformed model (%d classes, %d counts)",
			p.NumClasses, len(p.ClassCount))
	}
	c := &Classifier{
		def:        p.Def,
		classCount: p.ClassCount,
		numClasses: p.NumClasses,
	}
	for _, sub := range p.Subs {
		if len(sub.Norm) != p.NumClasses {
			return nil, fmt.Errorf("rcbt: load: sub-classifier norm length %d != %d classes",
				len(sub.Norm), p.NumClasses)
		}
		c.subs = append(c.subs, subClassifier{rules: sub.Rules, norm: sub.Norm})
	}
	return c, nil
}
