package rcbt

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rules"
)

// ModelSchemaVersion is the envelope schema written by Save. Load
// accepts exactly this version; the field exists so a future layout
// change can fail loudly instead of mis-decoding old files.
const ModelSchemaVersion = 1

// modelKind tags the envelope so an RCBT loader rejects files written
// by other model types (see internal/cba).
const modelKind = "rcbt-model"

// Meta is free-form dataset provenance carried inside the envelope: it
// is not needed to classify, but it lets a serving layer report what a
// model was trained on.
type Meta struct {
	// Dataset names the training data (file path or profile name).
	Dataset string `json:"dataset,omitempty"`
	// DatasetVersion is the datastore snapshot version the model was
	// trained on (0 = unversioned data: a file or an inline payload).
	// Operators use it to see which snapshot a serving model reflects.
	DatasetVersion int `json:"datasetVersion,omitempty"`
	// TrainRows / Genes record the training matrix shape.
	TrainRows int `json:"trainRows,omitempty"`
	Genes     int `json:"genes,omitempty"`
	// CreatedAt is an RFC3339 timestamp set by the writer.
	CreatedAt string `json:"createdAt,omitempty"`
}

// Model bundles everything needed to serve classifications: the
// trained classifier, the discretization cuts that map raw expression
// values to item ids (optional — models trained on pre-discretized
// datasets have none), the class names, and provenance metadata.
type Model struct {
	Classifier  *Classifier
	Discretizer *discretize.Discretizer // nil when trained on an item dataset
	ClassNames  []string
	NumItems    int // item universe size rule antecedents index into
	Meta        Meta
}

// envelope is the on-disk JSON layout (schema version 1).
type envelope struct {
	Schema     int               `json:"schema"`
	Kind       string            `json:"kind"`
	Meta       Meta              `json:"meta,omitempty"`
	ClassNames []string          `json:"classNames,omitempty"`
	NumItems   int               `json:"numItems,omitempty"`
	Cuts       *cutsSection      `json:"discretizer,omitempty"`
	Classifier classifierSection `json:"classifier"`
}

// cutsSection serializes a discretizer: per-gene entropy-MDL cut
// points. Genes with no cuts were rejected by MDL and yield no items.
type cutsSection struct {
	ClassNames []string   `json:"classes"`
	Genes      []geneCuts `json:"genes"`
}

type geneCuts struct {
	Name string    `json:"name"`
	Cuts []float64 `json:"cuts,omitempty"`
}

type classifierSection struct {
	Default    dataset.Label `json:"default"`
	ClassCount []int         `json:"classCount"`
	NumClasses int           `json:"numClasses"`
	Subs       []subSection  `json:"subs"`
}

type subSection struct {
	Rules []ruleSection `json:"rules"`
	Norm  []float64     `json:"norm"`
}

type ruleSection struct {
	Items      []int         `json:"items"`
	Class      dataset.Label `json:"class"`
	Support    int           `json:"sup"`
	Confidence float64       `json:"conf"`
}

// NumClasses returns the class universe size the classifier votes over.
func (c *Classifier) NumClasses() int { return c.numClasses }

// section converts the in-memory classifier to its wire form.
func (c *Classifier) section() classifierSection {
	s := classifierSection{
		Default:    c.def,
		ClassCount: c.classCount,
		NumClasses: c.numClasses,
	}
	for _, sub := range c.subs {
		ws := subSection{Norm: sub.norm}
		for _, r := range sub.rules {
			ws.Rules = append(ws.Rules, ruleSection{
				Items:      r.Antecedent,
				Class:      r.Class,
				Support:    r.Support,
				Confidence: r.Confidence,
			})
		}
		s.Subs = append(s.Subs, ws)
	}
	return s
}

// classifierFromSection rebuilds a Classifier, validating shape
// invariants so a truncated or hand-edited file fails here rather than
// at prediction time.
func classifierFromSection(s classifierSection) (*Classifier, error) {
	if s.NumClasses < 2 || len(s.ClassCount) != s.NumClasses {
		return nil, fmt.Errorf("rcbt: load: malformed model (%d classes, %d counts)",
			s.NumClasses, len(s.ClassCount))
	}
	if int(s.Default) < 0 || int(s.Default) >= s.NumClasses {
		return nil, fmt.Errorf("rcbt: load: default class %d outside [0,%d)", s.Default, s.NumClasses)
	}
	c := &Classifier{
		def:        s.Default,
		classCount: s.ClassCount,
		numClasses: s.NumClasses,
	}
	for i, sub := range s.Subs {
		if len(sub.Norm) != s.NumClasses {
			return nil, fmt.Errorf("rcbt: load: sub-classifier %d norm length %d != %d classes",
				i, len(sub.Norm), s.NumClasses)
		}
		ms := subClassifier{norm: sub.Norm}
		for _, r := range sub.Rules {
			if int(r.Class) < 0 || int(r.Class) >= s.NumClasses {
				return nil, fmt.Errorf("rcbt: load: rule class %d outside [0,%d)", r.Class, s.NumClasses)
			}
			ms.rules = append(ms.rules, &rules.Rule{
				Antecedent: r.Items,
				Class:      r.Class,
				Support:    r.Support,
				Confidence: r.Confidence,
			})
		}
		c.subs = append(c.subs, ms)
	}
	return c, nil
}

// Save writes the classifier alone as a schema-versioned JSON envelope.
// Rule row-support bitsets are not part of the model and are not
// written. To bundle discretization cuts for serving raw expression
// rows, save a Model instead.
func (c *Classifier) Save(w io.Writer) error {
	return writeEnvelope(w, envelope{
		Schema:     ModelSchemaVersion,
		Kind:       modelKind,
		Classifier: c.section(),
	})
}

// Save writes the full model envelope: classifier, discretization
// cuts, class names and metadata.
func (m *Model) Save(w io.Writer) error {
	if m.Classifier == nil {
		return fmt.Errorf("rcbt: save: model has no classifier")
	}
	env := envelope{
		Schema:     ModelSchemaVersion,
		Kind:       modelKind,
		Meta:       m.Meta,
		ClassNames: m.ClassNames,
		NumItems:   m.NumItems,
		Classifier: m.Classifier.section(),
	}
	if dz := m.Discretizer; dz != nil {
		cs := &cutsSection{ClassNames: dz.ClassNames}
		for g, name := range dz.GeneNames {
			cs.Genes = append(cs.Genes, geneCuts{Name: name, Cuts: dz.Cuts[g]})
		}
		env.Cuts = cs
	}
	return writeEnvelope(w, env)
}

func writeEnvelope(w io.Writer, env envelope) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// Load reads a classifier written by (*Classifier).Save or
// (*Model).Save, discarding any bundled discretizer.
func Load(r io.Reader) (*Classifier, error) {
	m, err := LoadModel(r)
	if err != nil {
		return nil, err
	}
	return m.Classifier, nil
}

// LoadModel reads a model envelope written by Save, verifying the
// schema version and kind tag.
func LoadModel(r io.Reader) (*Model, error) {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("rcbt: load: %w", err)
	}
	if env.Kind != modelKind {
		return nil, fmt.Errorf("rcbt: load: not an RCBT model (kind %q)", env.Kind)
	}
	if env.Schema != ModelSchemaVersion {
		return nil, fmt.Errorf("rcbt: load: unsupported schema version %d (supported: %d)",
			env.Schema, ModelSchemaVersion)
	}
	c, err := classifierFromSection(env.Classifier)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Classifier: c,
		ClassNames: env.ClassNames,
		NumItems:   env.NumItems,
		Meta:       env.Meta,
	}
	if env.Cuts != nil {
		names := make([]string, len(env.Cuts.Genes))
		cuts := make([][]float64, len(env.Cuts.Genes))
		for i, g := range env.Cuts.Genes {
			names[i] = g.Name
			cuts[i] = g.Cuts
		}
		dz, err := discretize.FromCuts(env.Cuts.ClassNames, names, cuts)
		if err != nil {
			return nil, fmt.Errorf("rcbt: load: %w", err)
		}
		m.Discretizer = dz
		if m.NumItems == 0 {
			m.NumItems = dz.NumItems()
		}
		if len(m.ClassNames) == 0 {
			m.ClassNames = dz.ClassNames
		}
	}
	return m, nil
}
