// Package rcbt implements RCBT (Refined Classification Based on
// TopkRGS, Section 5.2): a main classifier plus k-1 standby classifiers
// built from the top-1..top-k covering rule groups, each classifying by
// aggregating normalized voting scores S(γ) = conf·sup/d_c over all of
// its matching rules, with the default class used only when no
// classifier matches — addressing CBA's open default-class problem.
package rcbt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/cba"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/lowerbound"
	"repro/internal/rules"
)

// Config controls RCBT training. The zero value trains with the
// paper's defaults (K=10, NL=20, MinsupFrac=0.7); any field left at
// zero takes its default. The tuning fields share the engine.Options
// vocabulary: Workers, MaxNodes, Timeout.
type Config struct {
	// K is the number of covering rule groups per row: one main
	// classifier plus K-1 standby classifiers (paper: 10; 0 = 10).
	K int
	// NL is the number of shortest lower-bound rules per rule group
	// (paper: 20; 0 = 20).
	NL int
	// MinsupFrac is the per-class relative minimum support (paper: 0.7;
	// 0 = 0.7).
	MinsupFrac float64
	// LBMaxLen / LBMaxCandidates bound the FindLB search (0 = defaults).
	LBMaxLen        int
	LBMaxCandidates int
	// Workers is the mining worker count per class (0 or 1 =
	// sequential); the trained classifier is identical either way.
	Workers int
	// MaxNodes caps enumeration nodes per mined class (0 = unbounded);
	// when exceeded the miner returns its partial per-row lists and
	// training proceeds on those.
	MaxNodes int
	// Timeout bounds the whole training run (0 = no limit). It composes
	// with any deadline already on the caller's context; whichever
	// expires first aborts training with context.DeadlineExceeded.
	Timeout time.Duration
	// Progress, when non-nil, receives engine.ProgressSnapshots from the
	// per-class mining runs (the expensive half of training). Snapshots
	// restart from zero for each mined class.
	Progress      engine.ProgressFunc
	ProgressEvery int
}

// DefaultConfig mirrors the paper's RCBT setup (k=10, nl=20,
// minsup=0.7). Since the zero Config now defaults every unset field,
// DefaultConfig is equivalent to Config{} and kept for readability.
func DefaultConfig() Config { return Config{K: 10, NL: 20, MinsupFrac: 0.7} }

// withDefaults resolves zero fields to the paper's defaults.
func (cfg Config) withDefaults() Config {
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.NL == 0 {
		cfg.NL = 20
	}
	if cfg.MinsupFrac == 0 {
		cfg.MinsupFrac = 0.7
	}
	return cfg
}

// Validate reports the first invalid field of the config, after
// zero-value defaulting. A nil error means Train will accept it.
func (cfg Config) Validate() error {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return fmt.Errorf("rcbt: K must be >= 1, got %d", cfg.K)
	}
	if cfg.NL < 1 {
		return fmt.Errorf("rcbt: NL must be >= 1, got %d", cfg.NL)
	}
	if cfg.MinsupFrac < 0 || cfg.MinsupFrac > 1 {
		return fmt.Errorf("rcbt: MinsupFrac %v outside (0,1]", cfg.MinsupFrac)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("rcbt: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.MaxNodes < 0 {
		return fmt.Errorf("rcbt: MaxNodes must be >= 0, got %d", cfg.MaxNodes)
	}
	if cfg.Timeout < 0 {
		return fmt.Errorf("rcbt: Timeout must be >= 0, got %v", cfg.Timeout)
	}
	return nil
}

// subClassifier is one of CL_1..CL_k: a coverage-selected rule list
// with per-class score normalizers.
type subClassifier struct {
	rules []*rules.Rule
	norm  []float64 // per class: sum of S(γ) over the classifier's rules
}

// Classifier is a trained RCBT model.
type Classifier struct {
	subs       []subClassifier
	def        dataset.Label
	classCount []int // training rows per class (the d_c of S(γ))
	numClasses int
}

// ConstantClassifier builds a rule-free classifier that answers def
// for every row (every prediction reports the default-class path,
// classifier index -1). It exists for serving tests and placeholders —
// notably hot-swap tests that need a model guaranteed to disagree with
// a trained one on any row.
func ConstantClassifier(def dataset.Label, numClasses int) *Classifier {
	if numClasses <= int(def) || def < 0 {
		// vetsuite:allow panic -- programmer-error precondition, not data-dependent
		panic(fmt.Sprintf("rcbt: default label %d outside [0,%d)", def, numClasses))
	}
	return &Classifier{
		def:        def,
		classCount: make([]int, numClasses),
		numClasses: numClasses,
	}
}

// Stats summarizes a batch prediction for the Section 6.2 analyses.
type Stats struct {
	// ByClassifier[j] = test rows decided by CL_{j+1}.
	ByClassifier []int
	// Defaults = test rows that fell through to the default class.
	Defaults int
}

// Train builds an RCBT classifier from a discretized training dataset.
// It is TrainContext without cancellation.
func Train(d *dataset.Dataset, cfg Config) (*Classifier, error) {
	return TrainContext(context.Background(), d, cfg) //vet:ignore ctxflow Train is the documented context-free convenience wrapper over TrainContext
}

// TrainContext builds an RCBT classifier with cancellation: ctx
// cancellation or deadline expiry (including cfg.Timeout) stops the
// underlying mining and lower-bound search promptly and returns
// ctx.Err() with a nil Classifier. The zero Config trains with the
// paper's defaults.
func TrainContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	classCount := make([]int, d.NumClasses())
	for _, l := range d.Labels {
		classCount[int(l)]++
	}

	// Mine top-k covering rule groups per class.
	perClass := make([]*core.Result, d.NumClasses())
	for cls := 0; cls < d.NumClasses(); cls++ {
		label := dataset.Label(cls)
		if classCount[cls] == 0 {
			continue
		}
		minsup := int(cfg.MinsupFrac * float64(classCount[cls]))
		if float64(minsup) < cfg.MinsupFrac*float64(classCount[cls]) {
			minsup++
		}
		if minsup < 1 {
			minsup = 1
		}
		mc := core.DefaultConfig(minsup, cfg.K)
		mc.Workers = cfg.Workers
		mc.MaxNodes = cfg.MaxNodes
		mc.Progress = cfg.Progress
		mc.ProgressEvery = cfg.ProgressEvery
		res, err := core.MineContext(ctx, d, label, mc)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("rcbt: mining class %s: %w", d.ClassNames[cls], err)
		}
		perClass[cls] = res
	}

	c := &Classifier{
		classCount: classCount,
		numClasses: d.NumClasses(),
	}
	itemScores := lowerbound.DefaultItemScores(d)
	lbCache := map[*rules.Group][]*rules.Rule{}
	for j := 0; j < cfg.K; j++ {
		// The lower-bound search below can dwarf the mining time on wide
		// datasets; honor cancellation between ranks.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// RG_j: groups appearing at rank j for at least one training row.
		seen := map[*rules.Group]bool{}
		var rg []*rules.Group
		for _, res := range perClass {
			if res == nil {
				continue
			}
			for _, gs := range res.PerRow {
				if j < len(gs) && !seen[gs[j]] {
					seen[gs[j]] = true
					rg = append(rg, gs[j])
				}
			}
		}
		if len(rg) == 0 {
			continue
		}
		// Search lower bounds for the rank's uncached groups in parallel.
		var missing []*rules.Group
		for _, g := range rg {
			if _, ok := lbCache[g]; !ok {
				missing = append(missing, g)
			}
		}
		if len(missing) > 0 {
			found := lowerbound.FindAll(d, missing, lowerbound.Config{
				NL:            cfg.NL,
				MaxLen:        cfg.LBMaxLen,
				MaxCandidates: cfg.LBMaxCandidates,
				ItemScore:     itemScores,
			})
			for i, g := range missing {
				lbCache[g] = found[i]
			}
		}
		var pool []*rules.Rule
		dedup := map[string]bool{}
		for _, g := range rg {
			for _, lb := range lbCache[g] {
				key := fmt.Sprintf("%d|%v", lb.Class, lb.Antecedent)
				if dedup[key] {
					continue
				}
				dedup[key] = true
				pool = append(pool, lb)
			}
		}
		rules.SortCBA(pool)
		// Section 5.2: sub-classifiers are pruned by coverage (Step 3)
		// only, without CBA's error-minimizing truncation.
		selected, def := cba.CoverageSelect(d, pool)
		if j == 0 {
			c.def = def // default class comes from the main classifier
		}
		if len(selected) == 0 {
			continue
		}
		sub := subClassifier{rules: selected, norm: make([]float64, d.NumClasses())}
		for _, r := range selected {
			sub.norm[int(r.Class)] += score(r, classCount)
		}
		c.subs = append(c.subs, sub)
	}
	if len(c.subs) == 0 {
		// Degenerate training set: fall back to majority class.
		best, bestC := dataset.Label(0), -1
		for cls, cnt := range classCount {
			if cnt > bestC {
				best, bestC = dataset.Label(cls), cnt
			}
		}
		c.def = best
	}
	return c, nil
}

// score is S(γ) = conf · sup / d_c.
func score(r *rules.Rule, classCount []int) float64 {
	dc := classCount[int(r.Class)]
	if dc == 0 {
		return 0
	}
	return r.Confidence * float64(r.Support) / float64(dc)
}

// NumClassifiers returns how many sub-classifiers were built (main +
// standby).
func (c *Classifier) NumClassifiers() int { return len(c.subs) }

// Default returns the default class.
func (c *Classifier) Default() dataset.Label { return c.def }

// maxStackClasses bounds the class count classified on a stack-resident
// score buffer. Gene expression datasets have 2-5 classes, so the
// one-row path never heap-allocates; wider label spaces fall back to a
// heap slice.
const maxStackClasses = 16

// Predict classifies one test row. classifierIdx is the 0-based index
// of the sub-classifier that decided (the main classifier is 0), or -1
// when the default class was used. Predict is safe for concurrent use
// and allocation-free up to maxStackClasses classes.
//
//vet:allocfree
func (c *Classifier) Predict(rowItems *bitset.Set) (label dataset.Label, classifierIdx int) {
	var buf [maxStackClasses]float64
	var scores []float64
	if c.numClasses <= maxStackClasses {
		scores = buf[:c.numClasses]
	} else {
		scores = make([]float64, c.numClasses) //vet:ignore allocfree wide label spaces exceed the stack bound; the common gene-expression path stays on buf
	}
	for j := range c.subs {
		sub := &c.subs[j]
		clear(scores)
		matched := false
		for _, r := range sub.rules {
			if r.Matches(rowItems) {
				matched = true
				scores[int(r.Class)] += score(r, c.classCount)
			}
		}
		if !matched {
			continue
		}
		best, bestScore := 0, -1.0
		for cls := range scores {
			if sub.norm[cls] > 0 {
				scores[cls] /= sub.norm[cls]
			}
			if scores[cls] > bestScore {
				best, bestScore = cls, scores[cls]
			}
		}
		return dataset.Label(best), j
	}
	return c.def, -1
}

// PredictDataset classifies every row of a discretized dataset. The
// row item set is rebuilt into one reused scratch, so the loop itself
// performs no per-row allocations.
func (c *Classifier) PredictDataset(d *dataset.Dataset) ([]dataset.Label, Stats) {
	stats := Stats{ByClassifier: make([]int, len(c.subs))}
	out := make([]dataset.Label, d.NumRows())
	rowItems := bitset.New(d.NumItems())
	for r := 0; r < d.NumRows(); r++ {
		d.RowItemSetInto(r, rowItems)
		lab, idx := c.Predict(rowItems)
		out[r] = lab
		if idx < 0 {
			stats.Defaults++
		} else {
			stats.ByClassifier[idx]++
		}
	}
	return out, stats
}
