package rcbt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rules"
	"repro/internal/synth"
)

// randomClassifier builds a classifier directly (bypassing Train) so
// the oracle can exercise shapes training rarely emits: score ties,
// rules with zero-count classes, standby-only matches, empty subs.
func randomClassifier(rng *rand.Rand, numItems, numClasses, numSubs int) *Classifier {
	classCount := make([]int, numClasses)
	for cls := range classCount {
		classCount[cls] = rng.Intn(20) // zero counts allowed: score 0 paths
	}
	c := &Classifier{
		def:        dataset.Label(rng.Intn(numClasses)),
		classCount: classCount,
		numClasses: numClasses,
	}
	for j := 0; j < numSubs; j++ {
		sub := subClassifier{norm: make([]float64, numClasses)}
		numRules := 1 + rng.Intn(6)
		for ri := 0; ri < numRules; ri++ {
			antLen := 1 + rng.Intn(4)
			seen := map[int]bool{}
			var ant []int
			for len(ant) < antLen {
				it := rng.Intn(numItems)
				if !seen[it] {
					seen[it] = true
					ant = append(ant, it)
				}
			}
			// Coarse support/confidence grids force frequent exact score
			// ties across rules and classes.
			r := &rules.Rule{
				Antecedent: ant,
				Class:      dataset.Label(rng.Intn(numClasses)),
				Support:    1 + rng.Intn(4),
				Confidence: float64(1+rng.Intn(4)) / 4,
			}
			sub.rules = append(sub.rules, r)
			sub.norm[int(r.Class)] += score(r, classCount)
		}
		c.subs = append(c.subs, sub)
	}
	return c
}

// randomRows yields rows with a mix of densities, including empty rows
// (default-class path) and near-full rows (many rules match).
func randomRows(rng *rand.Rand, n, numItems int) []*bitset.Set {
	rows := make([]*bitset.Set, n)
	for i := range rows {
		rows[i] = bitset.New(numItems)
		switch rng.Intn(4) {
		case 0: // empty: falls through every sub-classifier
		case 1: // dense
			for it := 0; it < numItems; it++ {
				if rng.Intn(4) > 0 {
					rows[i].Add(it)
				}
			}
		default: // sparse
			for k := 0; k < 1+rng.Intn(5); k++ {
				rows[i].Add(rng.Intn(numItems))
			}
		}
	}
	return rows
}

// TestBatchScorerOracleRandom: PredictInto must deep-equal the scalar
// Predict on every row, across seeded random classifiers and batches —
// including default-class rows, standby fallthrough and score ties.
func TestBatchScorerOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numItems := 5 + rng.Intn(120)
		numClasses := 2 + rng.Intn(4)
		c := randomClassifier(rng, numItems, numClasses, rng.Intn(4))
		b := NewBatchScorer(c, numItems)
		for batch := 0; batch < 3; batch++ {
			rows := randomRows(rng, rng.Intn(70), numItems)
			labels, idxs := b.PredictBatch(rows)
			for r, row := range rows {
				wantLab, wantIdx := c.Predict(row)
				if labels[r] != wantLab || idxs[r] != wantIdx {
					t.Fatalf("seed %d batch %d row %d: batch (%d,%d), scalar (%d,%d)",
						seed, batch, r, labels[r], idxs[r], wantLab, wantIdx)
				}
			}
		}
	}
}

// TestBatchScorerOracleTrained pins the kernel against scalar
// prediction on a real trained model over the PC synth profile,
// train and test splits both (the test split has default-class rows).
func TestBatchScorerOracleTrained(t *testing.T) {
	trainM, testM, err := synth.Generate(synth.Scaled(synth.PC(), 60))
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(trainM)
	if err != nil {
		t.Fatal(err)
	}
	train, err := dz.Transform(trainM)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dz.Transform(testM)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(train, Config{K: 3, NL: 5, MinsupFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchScorer(c, train.NumItems())
	for _, d := range []*dataset.Dataset{train, test} {
		gotLabels, gotStats := b.PredictDatasetBatch(d)
		wantLabels, wantStats := c.PredictDataset(d)
		for r := range wantLabels {
			if gotLabels[r] != wantLabels[r] {
				t.Fatalf("row %d: batch %d, scalar %d", r, gotLabels[r], wantLabels[r])
			}
		}
		if gotStats.Defaults != wantStats.Defaults {
			t.Fatalf("defaults: batch %d, scalar %d", gotStats.Defaults, wantStats.Defaults)
		}
		for j := range wantStats.ByClassifier {
			if gotStats.ByClassifier[j] != wantStats.ByClassifier[j] {
				t.Fatalf("classifier %d: batch %d, scalar %d",
					j, gotStats.ByClassifier[j], wantStats.ByClassifier[j])
			}
		}
	}
}

// TestBatchScorerReuse: back-to-back batches of different sizes through
// one scorer must not leak state between calls (the column-clear
// invariant).
func TestBatchScorerReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	numItems := 60
	c := randomClassifier(rng, numItems, 3, 3)
	b := NewBatchScorer(c, numItems)
	for _, n := range []int{40, 3, 0, 17, 40, 1} {
		rows := randomRows(rng, n, numItems)
		labels, idxs := b.PredictBatch(rows)
		for r, row := range rows {
			wantLab, wantIdx := c.Predict(row)
			if labels[r] != wantLab || idxs[r] != wantIdx {
				t.Fatalf("n=%d row %d: batch (%d,%d), scalar (%d,%d)",
					n, r, labels[r], idxs[r], wantLab, wantIdx)
			}
		}
	}
}

// TestPredictAllocFree pins the scalar one-row path at zero heap
// allocations (the per-row scores slice now lives on the stack).
func TestPredictAllocFree(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	row := d.RowItemSet(0)
	if allocs := testing.AllocsPerRun(200, func() {
		c.Predict(row)
	}); allocs != 0 {
		t.Errorf("Predict: %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchScorerAllocFree pins the steady state: once the arenas have
// grown to the batch size, PredictInto performs zero heap allocations.
func TestBatchScorerAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	numItems := 90
	c := randomClassifier(rng, numItems, 3, 4)
	b := NewBatchScorer(c, numItems)
	rows := randomRows(rng, 64, numItems)
	labels := make([]dataset.Label, len(rows))
	idxs := make([]int, len(rows))
	b.PredictInto(rows, labels, idxs) // warm-up growth
	if allocs := testing.AllocsPerRun(100, func() {
		b.PredictInto(rows, labels, idxs)
	}); allocs != 0 {
		t.Errorf("PredictInto steady state: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkBatchClassify compares the row-at-a-time loop against the
// rule-major kernel on PC-profile synth data across batch sizes. The
// rows/s custom metric is the acceptance number: the kernel must reach
// >= 4x the scalar loop's rate at batch >= 256.
func BenchmarkBatchClassify(b *testing.B) {
	// Serving-shaped data: a production training cohort (4x the PC
	// profile's clinical split, giving ~200 selected rules across the 10
	// sub-classifiers) and a test pool larger than the biggest batch, so
	// every row in a batch is distinct — as in real serving traffic.
	p := synth.Scaled(synth.PC(), 30)
	p.Train1 *= 4
	p.Train0 *= 4
	p.Test1 = 600
	p.Test0 = 600
	trainM, testM, err := synth.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	dz, err := discretize.FitMatrix(trainM)
	if err != nil {
		b.Fatal(err)
	}
	train, err := dz.Transform(trainM)
	if err != nil {
		b.Fatal(err)
	}
	test, err := dz.Transform(testM)
	if err != nil {
		b.Fatal(err)
	}
	// Paper-default model size (K=10, NL=20): the shape a production
	// RCBT deployment actually serves.
	c, err := Train(train, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}

	for _, batch := range []int{64, 256, 1024} {
		rows := make([]*bitset.Set, batch)
		for i := range rows {
			rows[i] = test.RowItemSet(i % test.NumRows())
		}
		labels := make([]dataset.Label, batch)
		idxs := make([]int, batch)

		b.Run(fmt.Sprintf("rowmajor/batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r, row := range rows {
					labels[r], idxs[r] = c.Predict(row)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})

		b.Run(fmt.Sprintf("rulemajor/batch=%d", batch), func(b *testing.B) {
			sc := NewBatchScorer(c, train.NumItems())
			sc.Grow(batch)
			sc.PredictInto(rows, labels, idxs) // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.PredictInto(rows, labels, idxs)
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
