package rcbt

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// PredictItems classifies a row given as discretized item ids (the
// vocabulary the model was trained on). Item ids outside the model's
// universe are rejected so a schema-mismatched caller fails loudly.
func (m *Model) PredictItems(items []int) (dataset.Label, int, error) {
	n := m.NumItems
	if n == 0 {
		// Classifier-only envelopes may omit the universe size; fall back
		// to the largest referenced id.
		for _, it := range items {
			if it >= n {
				n = it + 1
			}
		}
	}
	set := bitset.New(n)
	for _, it := range items {
		if it < 0 || it >= n {
			return 0, 0, fmt.Errorf("rcbt: item id %d outside model universe [0,%d)", it, n)
		}
		set.Add(it)
	}
	label, idx := m.Classifier.Predict(set)
	return label, idx, nil
}

// PredictValues classifies a raw expression row (one value per gene of
// the training matrix) by discretizing with the model's bundled cut
// points. It errors when the model carries no discretizer or the row
// width does not match the fitted gene count.
func (m *Model) PredictValues(values []float64) (dataset.Label, int, error) {
	if m.Discretizer == nil {
		return 0, 0, fmt.Errorf("rcbt: model has no discretizer; classify by item ids instead")
	}
	if got, want := len(values), len(m.Discretizer.GeneNames); got != want {
		return 0, 0, fmt.Errorf("rcbt: row has %d values, model fitted on %d genes", got, want)
	}
	return m.PredictItems(m.Discretizer.RowItems(values))
}

// ClassName renders a label with the model's class names, falling back
// to the numeric label for classifier-only envelopes.
func (m *Model) ClassName(l dataset.Label) string {
	if int(l) >= 0 && int(l) < len(m.ClassNames) {
		return m.ClassNames[l]
	}
	return fmt.Sprintf("%d", int(l))
}
