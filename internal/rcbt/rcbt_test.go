package rcbt

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rules"
	"repro/internal/synth"
)

func TestTrainOnRunningExample(t *testing.T) {
	d, _ := dataset.RunningExample()
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.NL = 5
	cfg.MinsupFrac = 0.5
	c, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClassifiers() < 1 {
		t.Fatal("want at least the main classifier")
	}
	preds, stats := c.PredictDataset(d)
	correct := 0
	for r, p := range preds {
		if p == d.Labels[r] {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("training accuracy %d/5 too low", correct)
	}
	total := stats.Defaults
	for _, n := range stats.ByClassifier {
		total += n
	}
	if total != d.NumRows() {
		t.Fatalf("stats account for %d rows, want %d", total, d.NumRows())
	}
}

func TestValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Train(d, Config{K: -1, NL: 1, MinsupFrac: 0.5}); err == nil {
		t.Fatal("K<0 must error")
	}
	if _, err := Train(d, Config{K: 1, NL: -1, MinsupFrac: 0.5}); err == nil {
		t.Fatal("NL<0 must error")
	}
	if _, err := Train(d, Config{K: 1, NL: 1, MinsupFrac: 1.5}); err == nil {
		t.Fatal("MinsupFrac>1 must error")
	}
	if _, err := Train(d, Config{K: 1, NL: 1, MinsupFrac: -0.5}); err == nil {
		t.Fatal("MinsupFrac<0 must error")
	}
	if err := (Config{Workers: -1}).Validate(); err == nil {
		t.Fatal("Workers<0 must error")
	}
	if err := (Config{MaxNodes: -1}).Validate(); err == nil {
		t.Fatal("MaxNodes<0 must error")
	}
	if err := (Config{Timeout: -time.Second}).Validate(); err == nil {
		t.Fatal("Timeout<0 must error")
	}
}

func TestZeroConfigIsDefault(t *testing.T) {
	// The zero Config must behave exactly like DefaultConfig.
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	got, want := Config{}.withDefaults(), DefaultConfig()
	if got.K != want.K || got.NL != want.NL || got.MinsupFrac != want.MinsupFrac {
		t.Fatalf("zero-config defaults %+v != DefaultConfig %+v", got, want)
	}
	d, _ := dataset.RunningExample()
	// Training the 5-row example with the full paper defaults must work.
	if _, err := Train(d, Config{}); err != nil {
		t.Fatalf("Train with zero config: %v", err)
	}
}

func TestTrainContextCancellation(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := TrainContext(ctx, d, Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c != nil {
		t.Fatal("cancelled training must not return a classifier")
	}
}

func TestTrainContextTimeout(t *testing.T) {
	// An already-expired composed deadline must abort with
	// context.DeadlineExceeded through the cfg.Timeout path.
	d, _ := dataset.RunningExample()
	_, err := TrainContext(context.Background(), d,
		Config{K: 2, NL: 3, MinsupFrac: 0.5, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestScoreFormula(t *testing.T) {
	// S(γ) = conf · sup / d_c, in [0, 1].
	c, _ := Train(func() *dataset.Dataset { d, _ := dataset.RunningExample(); return d }(),
		Config{K: 1, NL: 1, MinsupFrac: 0.5})
	for _, sub := range c.subs {
		for _, r := range sub.rules {
			s := score(r, c.classCount)
			if s < 0 || s > 1 {
				t.Fatalf("score %v outside [0,1]", s)
			}
		}
	}
}

func TestStandbyClassifierUsed(t *testing.T) {
	// Craft a test row covered only by the standby classifier's rules.
	// Training: class C rows share items {0,1}; class notC rows share
	// {2,3}. A test row containing only item 1 should miss main rules
	// built on higher-ranked groups if those use item 0... since rule
	// selection is data dependent, just verify the plumbing: predictions
	// from all classifiers are consistent and stats sum correctly.
	d := &dataset.Dataset{
		Items: []dataset.Item{
			{GeneName: "a"}, {GeneName: "b"}, {GeneName: "c"}, {GeneName: "d"},
		},
		Rows: [][]int{
			{0, 1}, {0, 1}, {0, 1},
			{2, 3}, {2, 3}, {2, 3},
		},
		Labels:     []dataset.Label{0, 0, 0, 1, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	c, err := Train(d, Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly matching row classifies without default.
	lab, idx := c.Predict(bitset.FromIndices(4, 0, 1))
	if lab != 0 || idx < 0 {
		t.Fatalf("row {0,1}: got (%v, %d)", lab, idx)
	}
	lab, idx = c.Predict(bitset.FromIndices(4, 2, 3))
	if lab != 1 || idx < 0 {
		t.Fatalf("row {2,3}: got (%v, %d)", lab, idx)
	}
	// An empty row falls to the default class.
	_, idx = c.Predict(bitset.New(4))
	if idx != -1 {
		t.Fatal("empty row should use the default class")
	}
}

func TestVotingAggregation(t *testing.T) {
	// A row matching rules of both classes goes to the higher normalized
	// score. Class C has a high-support perfect rule; notC a weak one.
	d := &dataset.Dataset{
		Items: []dataset.Item{{GeneName: "a"}, {GeneName: "b"}},
		Rows: [][]int{
			{0}, {0}, {0}, {0},
			{1}, {1},
		},
		Labels:     []dataset.Label{0, 0, 0, 0, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	c, err := Train(d, Config{K: 1, NL: 2, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Row with both items: matches a -> C (sup 4/4) and b -> notC (sup
	// 2/2). Normalized scores tie at 1.0 each when each class has one
	// rule; prediction must still be deterministic (first max wins).
	lab, idx := c.Predict(bitset.FromIndices(2, 0, 1))
	if idx < 0 {
		t.Fatal("should be decided by a classifier, not default")
	}
	_ = lab
}

func TestEndToEndSyntheticAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic end-to-end in -short mode")
	}
	p := synth.Scaled(synth.ALL(), 40) // ~178 genes, 21 informative
	train, test, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		t.Fatal(err)
	}
	dTest, err := dz.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(dTrain, Config{K: 4, NL: 5, MinsupFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	preds, _ := c.PredictDataset(dTest)
	correct := 0
	for r, pr := range preds {
		if pr == dTest.Labels[r] {
			correct++
		}
	}
	acc := float64(correct) / float64(dTest.NumRows())
	if acc < 0.8 {
		t.Fatalf("synthetic test accuracy %.2f < 0.8", acc)
	}
}

func TestDefaultAccessors(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{K: 1, NL: 1, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClassifiers() < 1 {
		t.Fatal("NumClassifiers")
	}
	_ = c.Default()
}

func TestTrainDegenerateNoRules(t *testing.T) {
	// A dataset where no rule group reaches minsup: the classifier falls
	// back to the majority class.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "a"}, {GeneName: "b"}},
		Rows:       [][]int{{0}, {1}, {0}, {}},
		Labels:     []dataset.Label{0, 1, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	c, err := Train(d, Config{K: 1, NL: 1, MinsupFrac: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Default() != 1 {
		t.Fatalf("default = %v, want majority class notC", c.Default())
	}
	lab, idx := c.Predict(bitset.New(2))
	if lab != 1 || idx >= c.NumClassifiers() {
		t.Fatalf("prediction = (%v, %d)", lab, idx)
	}
}

func TestScoreZeroClassCount(t *testing.T) {
	if s := score(&rules.Rule{Class: 0, Support: 3, Confidence: 1}, []int{0, 5}); s != 0 {
		t.Fatalf("score with empty class = %v, want 0", s)
	}
}

func TestLoadRejectsMalformedModels(t *testing.T) {
	// Structurally valid JSON with inconsistent fields must be rejected.
	for name, doc := range map[string]string{
		"single class": `{"schema":1,"kind":"rcbt-model",
			"classifier":{"default":0,"classCount":[3],"numClasses":1,"subs":[]}}`,
		"norm length": `{"schema":1,"kind":"rcbt-model",
			"classifier":{"default":0,"classCount":[1,1],"numClasses":2,
			"subs":[{"rules":[],"norm":[1]}]}}`,
		"default out of range": `{"schema":1,"kind":"rcbt-model",
			"classifier":{"default":5,"classCount":[1,1],"numClasses":2,"subs":[]}}`,
		"rule class out of range": `{"schema":1,"kind":"rcbt-model",
			"classifier":{"default":0,"classCount":[1,1],"numClasses":2,
			"subs":[{"rules":[{"items":[0],"class":7,"sup":1,"conf":1}],"norm":[1,1]}]}}`,
		"wrong kind": `{"schema":1,"kind":"cba-model",
			"classifier":{"default":0,"classCount":[1,1],"numClasses":2,"subs":[]}}`,
		"future schema": `{"schema":99,"kind":"rcbt-model",
			"classifier":{"default":0,"classCount":[1,1],"numClasses":2,"subs":[]}}`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: malformed model must be rejected", name)
		}
	}
}
