package rcbt

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// BatchScorer is the rule-major batch classification kernel: instead of
// walking every rule once per row (the scalar Predict loop), it builds
// the transposed item-presence view of a batch — per item, the set of
// batch rows containing it — with bitset.ColumnView's 64×64 block
// transpose, and evaluates each rule against all rows at once as one
// fused bitset sweep (ColumnView.MatchRows ANDs the rule's antecedent
// columns, accumulates the matched rows, and scatter-adds the rule's
// score in a single pass). Each sweep is masked by the set of rows no
// earlier sub-classifier decided, so later sub-classifiers cost nothing
// for rows the main classifier already settled — the batch analogue of
// the scalar loop's early return. Per-row per-class scores accumulate
// into preallocated arenas, so after warm-up a batch costs zero heap
// allocations.
//
// A BatchScorer is bound to one Classifier and one item universe. It is
// NOT safe for concurrent use: callers pool scorers (one per in-flight
// batch) rather than locking one.
//
// Output equivalence: for every row, PredictInto yields exactly the
// (label, classifierIdx) pair of Classifier.Predict on that row. Rules
// are visited in the same order, so per-row score accumulation performs
// the identical float64 additions in the identical order — ties and
// rounding behave bit-for-bit the same.
type BatchScorer struct {
	c        *Classifier
	numItems int

	// view holds the transposed batch; only word groups containing an
	// item some rule antecedent references are materialized.
	view *bitset.ColumnView

	// ruleScore[j][ri] is the precomputed S(γ) of rule ri of sub j;
	// ruleBases[j][ri] its antecedent column bases into the view.
	// Bases depend on the view's capacity, so Grow rebuilds them.
	ruleScore [][]float64
	ruleBases [][][]int32

	capRows   int
	matchedJ  *bitset.Set // undecided rows matched by any rule of the sub
	undecided *bitset.Set
	rowBuf    []int
	scores    []float64 // numClasses × capRows, class-major stripes
}

// NewBatchScorer builds a scorer for c over an item universe of
// numItems (the model's NumItems; every rule antecedent must index
// into it). Arenas start at capacity zero and grow on first use; call
// Grow to pre-size them.
func NewBatchScorer(c *Classifier, numItems int) *BatchScorer {
	b := &BatchScorer{c: c, numItems: numItems}
	used := bitset.New(numItems)
	b.ruleScore = make([][]float64, len(c.subs))
	for j := range c.subs {
		sub := &c.subs[j]
		b.ruleScore[j] = make([]float64, len(sub.rules))
		for ri, r := range sub.rules {
			for _, it := range r.Antecedent {
				if it < 0 || it >= numItems {
					// vetsuite:allow panic -- corrupt-envelope precondition; recover-probed at model registration
					panic(fmt.Sprintf("rcbt: rule antecedent item %d outside universe [0,%d)", it, numItems))
				}
				used.Add(it)
			}
			b.ruleScore[j][ri] = score(r, c.classCount)
		}
	}
	b.view = bitset.NewColumnView(numItems, used)
	return b
}

// Grow ensures the arenas hold a batch of up to n rows. It is called
// automatically by PredictInto; pre-growing (e.g. to a server's max
// batch size) moves every allocation out of the steady state.
func (b *BatchScorer) Grow(n int) {
	if n <= b.capRows {
		return
	}
	b.capRows = n
	b.view.Grow(n)
	b.matchedJ = bitset.New(n)
	b.undecided = bitset.New(n)
	b.rowBuf = make([]int, 0, n)
	b.scores = make([]float64, b.c.numClasses*n)
	b.ruleBases = make([][][]int32, len(b.c.subs))
	for j := range b.c.subs {
		sub := &b.c.subs[j]
		b.ruleBases[j] = make([][]int32, len(sub.rules))
		for ri, r := range sub.rules {
			bases := make([]int32, len(r.Antecedent))
			for k, it := range r.Antecedent {
				bases[k] = b.view.ColumnBase(it)
			}
			b.ruleBases[j][ri] = bases
		}
	}
}

// PredictBatch classifies a batch of rows (item sets over the scorer's
// universe) and returns freshly allocated label and classifier-index
// slices; see PredictInto for the zero-allocation form.
func (b *BatchScorer) PredictBatch(rows []*bitset.Set) ([]dataset.Label, []int) {
	labels := make([]dataset.Label, len(rows))
	idxs := make([]int, len(rows))
	b.PredictInto(rows, labels, idxs)
	return labels, idxs
}

// PredictInto classifies rows[i] into labels[i] and idxs[i] (the
// deciding sub-classifier, or -1 for the default class). labels and
// idxs must have at least len(rows) elements. After the arenas have
// grown to the batch size, the call performs zero heap allocations.
//
//vet:allocfree
func (b *BatchScorer) PredictInto(rows []*bitset.Set, labels []dataset.Label, idxs []int) {
	n := len(rows)
	if n == 0 {
		return
	}
	b.Grow(n) //vet:ignore allocfree one-time arena growth; the steady state takes the n <= capRows fast path

	// Item-major view of the batch: the column of item i = the rows
	// containing i, for every item some rule antecedent references.
	b.view.Build(rows)

	numClasses := b.c.numClasses
	b.undecided.FillBelow(n)
	for j := range b.c.subs {
		if b.undecided.IsEmpty() {
			break
		}
		sub := &b.c.subs[j]
		for cls := 0; cls < numClasses; cls++ {
			clear(b.scores[cls*b.capRows : cls*b.capRows+n])
		}
		b.matchedJ.Clear()
		for ri, r := range sub.rules {
			// match = undecided ∩ (∩ antecedent columns): the undecided
			// mask leads the sweep, so rows decided by an earlier
			// sub-classifier are skipped before any scoring work. Decided
			// rows' scores are never read, so skipping their additions
			// preserves output equivalence.
			b.view.MatchRows(b.undecided, b.ruleBases[j][ri], b.matchedJ,
				b.scores[int(r.Class)*b.capRows:], b.ruleScore[j][ri])
		}
		if b.matchedJ.IsEmpty() {
			continue
		}
		// Decide the rows this sub-classifier matched (all of matchedJ is
		// still undecided by construction).
		b.rowBuf = b.matchedJ.AppendIndicesBelow(b.rowBuf[:0], n)
		norm := sub.norm
		for _, rr := range b.rowBuf {
			best, bestScore := 0, -1.0
			for cls := 0; cls < numClasses; cls++ {
				v := b.scores[cls*b.capRows+rr]
				if norm[cls] > 0 {
					v /= norm[cls]
				}
				if v > bestScore {
					best, bestScore = cls, v
				}
			}
			labels[rr] = dataset.Label(best)
			idxs[rr] = j
		}
		b.undecided.DifferenceWith(b.matchedJ)
	}

	// Default class for whatever no sub-classifier matched.
	b.rowBuf = b.undecided.AppendIndicesBelow(b.rowBuf[:0], n)
	for _, rr := range b.rowBuf {
		labels[rr] = b.c.def
		idxs[rr] = -1
	}
}

// PredictDatasetBatch classifies every row of a discretized dataset
// through the rule-major kernel; output deep-equals
// Classifier.PredictDataset.
func (b *BatchScorer) PredictDatasetBatch(d *dataset.Dataset) ([]dataset.Label, Stats) {
	n := d.NumRows()
	rows := make([]*bitset.Set, n)
	for r := 0; r < n; r++ {
		rows[r] = d.RowItemSet(r)
	}
	labels := make([]dataset.Label, n)
	idxs := make([]int, n)
	b.PredictInto(rows, labels, idxs)
	stats := Stats{ByClassifier: make([]int, len(b.c.subs))}
	for _, idx := range idxs {
		if idx < 0 {
			stats.Defaults++
		} else {
			stats.ByClassifier[idx]++
		}
	}
	return labels, stats
}
