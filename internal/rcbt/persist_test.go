package rcbt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/synth"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClassifiers() != c.NumClassifiers() || loaded.Default() != c.Default() {
		t.Fatal("model shape changed across save/load")
	}
	// Predictions must be identical on every training row.
	for r := 0; r < d.NumRows(); r++ {
		items := d.RowItemSet(r)
		l1, i1 := c.Predict(items)
		l2, i2 := loaded.Predict(items)
		if l1 != l2 || i1 != i2 {
			t.Fatalf("row %d: prediction changed (%v,%d) vs (%v,%d)", r, l1, i1, l2, i2)
		}
	}
}

func TestEnvelopeIsVersionedJSON(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{K: 1, NL: 2, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Schema int    `json:"schema"`
		Kind   string `json:"kind"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not JSON: %v", err)
	}
	if env.Schema != ModelSchemaVersion || env.Kind != "rcbt-model" {
		t.Fatalf("envelope header = %+v", env)
	}
}

// TestModelRoundTripSynthetic trains on a synthetic matrix, saves the
// full envelope (classifier + discretization cuts), reloads it, and
// requires bit-identical predictions on every raw test row — the
// train-once / classify-many lifecycle cmd/rcbt -save and rcbtserved
// rely on.
func TestModelRoundTripSynthetic(t *testing.T) {
	p := synth.Scaled(synth.ALL(), 80)
	trainM, testM, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(trainM)
	if err != nil {
		t.Fatal(err)
	}
	dTrain, err := dz.Transform(trainM)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(dTrain, Config{K: 2, NL: 3, MinsupFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Classifier:  c,
		Discretizer: dz,
		ClassNames:  dTrain.ClassNames,
		NumItems:    dTrain.NumItems(),
		Meta:        Meta{Dataset: p.Name, TrainRows: trainM.NumRows(), Genes: trainM.NumGenes()},
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Discretizer == nil {
		t.Fatal("discretizer lost in round trip")
	}
	if loaded.NumItems != m.NumItems {
		t.Fatalf("NumItems %d != %d", loaded.NumItems, m.NumItems)
	}
	if loaded.Meta.Dataset != p.Name {
		t.Fatalf("meta lost: %+v", loaded.Meta)
	}
	// Classify raw rows through both pipelines.
	for r := 0; r < testM.NumRows(); r++ {
		l1, i1, err1 := m.PredictValues(testM.Values[r])
		l2, i2, err2 := loaded.PredictValues(testM.Values[r])
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d: predict errors %v / %v", r, err1, err2)
		}
		if l1 != l2 || i1 != i2 {
			t.Fatalf("row %d: prediction changed (%v,%d) vs (%v,%d)", r, l1, i1, l2, i2)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a json document")); err == nil {
		t.Fatal("garbage input must error")
	}
}
