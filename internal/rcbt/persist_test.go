package rcbt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClassifiers() != c.NumClassifiers() || loaded.Default() != c.Default() {
		t.Fatal("model shape changed across save/load")
	}
	// Predictions must be identical on every training row.
	for r := 0; r < d.NumRows(); r++ {
		items := d.RowItemSet(r)
		l1, i1 := c.Predict(items)
		l2, i2 := loaded.Predict(items)
		if l1 != l2 || i1 != i2 {
			t.Fatalf("row %d: prediction changed (%v,%d) vs (%v,%d)", r, l1, i1, l2, i2)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage input must error")
	}
}
