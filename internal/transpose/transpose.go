// Package transpose implements the transposed table TT and X-projected
// transposed tables TT|X of Section 3: the representation on which row
// enumeration operates. Each tuple of TT corresponds to one item of the
// original table and lists the rows containing it.
//
// The materialized tables here are the reference ("naive FARMER")
// engine and the golden model for tests; the production miner in
// internal/core keeps the same structure implicitly as bitsets.
package transpose

import (
	"sort"

	"repro/internal/dataset"
)

// Tuple is one row of a transposed table: the item it represents and
// the ascending ids of original-table rows containing it.
type Tuple struct {
	Item int
	Rows []int
}

// Table is a (possibly projected) transposed table.
type Table struct {
	Tuples  []Tuple
	NumRows int // size of the row universe of the original table
}

// FromDataset builds TT|∅ from a discretized dataset. Items that occur
// in no row are omitted (they would be empty tuples).
func FromDataset(d *dataset.Dataset) *Table {
	t := &Table{NumRows: d.NumRows()}
	for i := range d.Items {
		rows := d.ItemRows(i).Indices()
		if len(rows) == 0 {
			continue
		}
		t.Tuples = append(t.Tuples, Tuple{Item: i, Rows: rows})
	}
	return t
}

// Project returns TT|(X ∪ {r}) from TT|X per the definition in Section
// 3: keep tuples containing r, and within each, keep only rows ordered
// after r. The receiver must already be projected on all rows of X less
// than r (projections compose left to right).
//
// The projected tuples are materialized copies — the cost model of the
// original FARMER's explicitly constructed projected tables, which the
// prefix tree representation (internal/prefixtree) avoids.
func (t *Table) Project(r int) *Table {
	p := &Table{NumRows: t.NumRows}
	for _, tu := range t.Tuples {
		i := sort.SearchInts(tu.Rows, r)
		if i == len(tu.Rows) || tu.Rows[i] != r {
			continue
		}
		p.Tuples = append(p.Tuples, Tuple{Item: tu.Item, Rows: append([]int(nil), tu.Rows[i+1:]...)})
	}
	return p
}

// ProjectSet projects TT|∅ on an ascending row set X, composing
// single-row projections.
func (t *Table) ProjectSet(x []int) *Table {
	cur := t
	for _, r := range x {
		cur = cur.Project(r)
	}
	return cur
}

// Items returns the item ids of the table's tuples: I(X) for TT|X.
func (t *Table) Items() []int {
	out := make([]int, len(t.Tuples))
	for i, tu := range t.Tuples {
		out[i] = tu.Item
	}
	return out
}

// Frequencies returns freq(r) for every row: the number of tuples of
// the table containing r (Step 10 of MineTopkRGS).
func (t *Table) Frequencies() map[int]int {
	f := make(map[int]int)
	for _, tu := range t.Tuples {
		for _, r := range tu.Rows {
			f[r]++
		}
	}
	return f
}

// FullRows returns the rows appearing in every tuple of the table: the
// rows that join X by forward closure (or trigger backward pruning).
func (t *Table) FullRows() []int {
	var out []int
	for r, c := range t.Frequencies() {
		if c == len(t.Tuples) {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}
