package transpose

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// figure1 returns the running example plus its name->id map.
func figure1(t *testing.T) (*dataset.Dataset, map[string]int, *Table) {
	t.Helper()
	d, idx := dataset.RunningExample()
	return d, idx, FromDataset(d)
}

func rowsOf(tt *Table, item int) []int {
	for _, tu := range tt.Tuples {
		if tu.Item == item {
			return tu.Rows
		}
	}
	return nil
}

func TestFromDatasetMatchesFigure1b(t *testing.T) {
	_, idx, tt := figure1(t)
	if len(tt.Tuples) != 10 {
		t.Fatalf("TT has %d tuples, want 10", len(tt.Tuples))
	}
	want := map[string][]int{
		"a": {0, 1}, "b": {0, 1}, "c": {0, 1, 2, 3}, "d": {0, 2, 3},
		"e": {0, 2, 3, 4}, "f": {2, 3, 4}, "g": {2, 3, 4}, "h": {4},
		"o": {1, 4}, "p": {1},
	}
	for name, rows := range want {
		if got := rowsOf(tt, idx[name]); !reflect.DeepEqual(got, rows) {
			t.Errorf("TT tuple %s = %v, want %v", name, got, rows)
		}
	}
}

func TestProjectMatchesFigure1c(t *testing.T) {
	// TT|{1} (0-indexed: project on row 0): tuples a,b,c,d,e with rows
	// after r1. Figure 1(c): a:{2} b:{2} c:{2,3,4} d:{3,4} e:{3,4,5}
	// (1-indexed).
	_, idx, tt := figure1(t)
	p := tt.Project(0)
	want := map[string][]int{
		"a": {1}, "b": {1}, "c": {1, 2, 3}, "d": {2, 3}, "e": {2, 3, 4},
	}
	if len(p.Tuples) != len(want) {
		t.Fatalf("TT|1 has %d tuples, want %d", len(p.Tuples), len(want))
	}
	for name, rows := range want {
		if got := rowsOf(p, idx[name]); !reflect.DeepEqual(got, rows) {
			t.Errorf("TT|1 tuple %s = %v, want %v", name, got, rows)
		}
	}
}

func TestProjectSetMatchesFigure1d(t *testing.T) {
	// TT|{1,3} (0-indexed {0,2}): Figure 1(d): c:{4} d:{4} e:{4,5}.
	_, idx, tt := figure1(t)
	p := tt.ProjectSet([]int{0, 2})
	want := map[string][]int{"c": {3}, "d": {3}, "e": {3, 4}}
	if len(p.Tuples) != len(want) {
		t.Fatalf("TT|13 has %d tuples, want %d", len(p.Tuples), len(want))
	}
	for name, rows := range want {
		if got := rowsOf(p, idx[name]); !reflect.DeepEqual(got, rows) {
			t.Errorf("TT|13 tuple %s = %v, want %v", name, got, rows)
		}
	}
	items := p.Items()
	wantItems := []int{idx["c"], idx["d"], idx["e"]}
	sort.Ints(wantItems)
	if !reflect.DeepEqual(items, wantItems) {
		t.Errorf("I({1,3}) = %v, want %v", items, wantItems)
	}
}

func TestProjectIncrementalEqualsDirect(t *testing.T) {
	// Projection composes: projecting TT on 0 then 2 equals ProjectSet.
	_, _, tt := figure1(t)
	step := tt.Project(0).Project(2)
	direct := tt.ProjectSet([]int{0, 2})
	if !reflect.DeepEqual(step, direct) {
		t.Fatal("stepwise and direct projection disagree")
	}
}

func TestFrequenciesAndFullRows(t *testing.T) {
	_, _, tt := figure1(t)
	p := tt.ProjectSet([]int{0, 2}) // tuples c:{3} d:{3} e:{3,4}
	f := p.Frequencies()
	if f[3] != 3 || f[4] != 1 {
		t.Fatalf("frequencies = %v", f)
	}
	// Row 3 occurs in all 3 tuples: it is a full row (closure of {0,2}
	// is {0,2,3} — R(cde) = {r1,r3,r4}).
	if got := p.FullRows(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("FullRows = %v, want [3]", got)
	}
}

func TestProjectExhaustedTuples(t *testing.T) {
	_, idx, tt := figure1(t)
	p := tt.ProjectSet([]int{0, 1}) // TT|{r1,r2}: tuples a, b, c
	if len(p.Tuples) != 3 {
		t.Fatalf("TT|12 tuples = %d, want 3 (a, b, c)", len(p.Tuples))
	}
	// a and b are exhausted (no rows after r2); c keeps {r3, r4}.
	if got := rowsOf(p, idx["a"]); len(got) != 0 {
		t.Fatalf("tuple a suffix = %v, want empty", got)
	}
	if got := rowsOf(p, idx["b"]); len(got) != 0 {
		t.Fatalf("tuple b suffix = %v, want empty", got)
	}
	if got := rowsOf(p, idx["c"]); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("tuple c suffix = %v, want [2 3]", got)
	}
	// Projecting on a row absent from every tuple yields an empty table.
	if got := p.Project(4); len(got.Tuples) != 0 {
		t.Fatalf("projection on absent row should be empty, got %d tuples", len(got.Tuples))
	}
}

func TestEmptyDataset(t *testing.T) {
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}},
		Rows:       [][]int{{}, {}},
		Labels:     []dataset.Label{0, 1},
		ClassNames: []string{"C", "notC"},
	}
	tt := FromDataset(d)
	if len(tt.Tuples) != 0 {
		t.Fatalf("item with no rows must be omitted, got %d tuples", len(tt.Tuples))
	}
	if got := tt.FullRows(); len(got) != 0 {
		t.Fatalf("FullRows of empty table = %v", got)
	}
}
