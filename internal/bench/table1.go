package bench

import (
	"fmt"
	"io"
)

// Table1Row is one dataset's characteristics (Table 1).
type Table1Row struct {
	Dataset       string
	OriginalGenes int
	GenesAfter    int
	Class1        string
	Class0        string
	Train         int
	Train1        int
	Train0        int
	Test          int
}

// Table1 regenerates Table 1: the datasets' shapes and the number of
// genes surviving entropy discretization.
func Table1(w io.Writer, scale Scale) ([]Table1Row, error) {
	header(w, "Table 1: Gene Expression Datasets")
	fmt.Fprintf(w, "%-10s %10s %12s %10s %10s %16s %6s\n",
		"Dataset", "#Genes", "#AfterDisc", "Class1", "Class0", "#Train", "#Test")
	var rows []Table1Row
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Dataset:       p.Name,
			OriginalGenes: p.NumGenes,
			GenesAfter:    pr.dz.NumSelectedGenes(),
			Class1:        p.Class1,
			Class0:        p.Class0,
			Train:         p.Train1 + p.Train0,
			Train1:        p.Train1,
			Train0:        p.Train0,
			Test:          p.Test1 + p.Test0,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %10d %12d %10s %10s %9d (%d:%d) %6d\n",
			row.Dataset, row.OriginalGenes, row.GenesAfter, row.Class1, row.Class0,
			row.Train, row.Train1, row.Train0, row.Test)
	}
	return rows, nil
}
