package bench

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/lowerbound"
	"repro/internal/stats"
)

// Fig8Gene is one gene's chi-square rank and its frequency of
// occurrence in the shortest lower-bound rules of the top-1 rule
// groups.
type Fig8Gene struct {
	Gene      int
	GeneName  string
	ChiSquare float64
	Rank      int
	Frequency int
}

// Fig8Result summarizes the Figure 8 analysis.
type Fig8Result struct {
	Genes []Fig8Gene // genes with Frequency > 0, sorted by Frequency desc
	// GenesInRules = number of distinct genes participating (the paper
	// reports 415 on PC).
	GenesInRules int
	// HighRankShare = fraction of rule occurrences contributed by genes
	// in the top half of the chi-square ranking (the paper's "most are
	// ranked 700th and above" observation).
	HighRankShare float64
	TotalGenes    int
}

// Fig8 regenerates Figure 8 on the PC dataset: chi-square based gene
// ranks against the frequency with which each gene's items occur in the
// shortest lower bounds of the top-1 covering rule groups.
func Fig8(ctx context.Context, w io.Writer, scale Scale, nl int, topLabel int) (*Fig8Result, error) {
	if nl == 0 {
		nl = 20
	}
	var pcProfile = profiles(scale)[3] // PC is the fourth Table 1 dataset
	pr, err := prepare(pcProfile)
	if err != nil {
		return nil, err
	}
	d := pr.dTrain

	// Chi-square score per gene: the max over the gene's items of the
	// item-presence vs class 2x2 statistic.
	chi := make([]float64, pr.train.NumGenes())
	classTotal := []int{d.ClassCount(0), d.ClassCount(1)}
	for i := 0; i < d.NumItems(); i++ {
		it := d.Items[i]
		present := []int{0, 0}
		d.ItemRows(i).ForEach(func(r int) bool {
			present[int(d.Labels[r])]++
			return true
		})
		v := stats.ChiSquareBinary(present[0], present[1],
			classTotal[0]-present[0], classTotal[1]-present[1])
		if v > chi[it.Gene] {
			chi[it.Gene] = v
		}
	}
	ranks := stats.Rank(chi)

	// Top-1 covering rule groups for both classes; shortest lower bounds.
	freq := make([]int, pr.train.NumGenes())
	scores := lowerbound.DefaultItemScores(d)
	for cls := 0; cls < d.NumClasses(); cls++ {
		n := d.ClassCount(dataset.Label(cls))
		ms := int(0.7 * float64(n))
		if float64(ms) < 0.7*float64(n) {
			ms++
		}
		if ms < 1 {
			ms = 1
		}
		res, _, err := mineVia(ctx, "topk", d, engine.Options{
			Class: dataset.Label(cls), K: 1, Minsup: ms, Workers: 1,
		})
		if err != nil {
			return nil, err
		}
		for _, g := range res.Groups {
			lbs := lowerbound.Find(d, g, lowerbound.Config{
				NL: nl, MaxLen: 5, MaxCandidates: 1 << 18, ItemScore: scores,
			})
			for _, lb := range lbs {
				for _, item := range lb.Antecedent {
					freq[d.Items[item].Gene]++
				}
			}
		}
	}

	out := &Fig8Result{TotalGenes: pr.train.NumGenes()}
	occTotal, occHigh := 0, 0
	half := pr.train.NumGenes() / 2
	for g, f := range freq {
		if f == 0 {
			continue
		}
		out.Genes = append(out.Genes, Fig8Gene{
			Gene: g, GeneName: pr.train.GeneNames[g],
			ChiSquare: chi[g], Rank: ranks[g], Frequency: f,
		})
		occTotal += f
		if ranks[g] <= half {
			occHigh += f
		}
	}
	out.GenesInRules = len(out.Genes)
	if occTotal > 0 {
		out.HighRankShare = float64(occHigh) / float64(occTotal)
	}
	sort.Slice(out.Genes, func(i, j int) bool {
		if out.Genes[i].Frequency != out.Genes[j].Frequency {
			return out.Genes[i].Frequency > out.Genes[j].Frequency
		}
		return out.Genes[i].Rank < out.Genes[j].Rank
	})

	header(w, "Figure 8: chi-square gene ranks vs rule participation (PC)")
	fmt.Fprintf(w, "genes in top-1 lower-bound rules: %d of %d\n", out.GenesInRules, out.TotalGenes)
	fmt.Fprintf(w, "occurrences from top-half-ranked genes: %.1f%%\n", out.HighRankShare*100)
	fmt.Fprintf(w, "%-14s %8s %10s %10s\n", "gene", "rank", "chi2", "freq")
	for i, g := range out.Genes {
		if i >= topLabel && topLabel > 0 {
			break
		}
		fmt.Fprintf(w, "%-14s %8d %10.2f %10d\n", g.GeneName, g.Rank, g.ChiSquare, g.Frequency)
	}
	return out, nil
}
