package bench

import (
	"io"

	"repro/internal/report"
)

// ChartFig6 renders the Figure 6 measurements as one log-scale ASCII
// chart per dataset: runtime versus relative minimum support, one curve
// per algorithm, with DNF points censored.
func ChartFig6(w io.Writer, pts []Fig6Point) {
	byDataset := map[string]map[string][]report.Point{}
	var datasets []string
	for _, p := range pts {
		if byDataset[p.Dataset] == nil {
			byDataset[p.Dataset] = map[string][]report.Point{}
			datasets = append(datasets, p.Dataset)
		}
		byDataset[p.Dataset][p.Algorithm] = append(byDataset[p.Dataset][p.Algorithm], report.Point{
			X:        p.Minsup,
			Y:        p.Elapsed.Seconds(),
			Censored: p.Aborted,
		})
	}
	for _, ds := range datasets {
		var series []report.Series
		for _, alg := range fig6AlgorithmOrder(byDataset[ds]) {
			series = append(series, report.Series{Name: alg, Points: byDataset[ds][alg]})
		}
		report.SortSeriesPoints(series)
		report.LineChart(w, "Figure 6 — "+ds, "relative minsup", "runtime (s)", series, 64, 18, true)
	}
}

// fig6AlgorithmOrder yields algorithm names in a stable, paper-like
// order (TopkRGS series first).
func fig6AlgorithmOrder(m map[string][]report.Point) []string {
	preferred := []string{
		"TopkRGS(k=1)", "TopkRGS(k=100)",
		"FARMER+prefix(c=0.9)", "FARMER+prefix(c=0)",
		"FARMER(c=0.9)", "FARMER(c=0)",
		"CHARM(diffsets)", "CLOSET+",
	}
	var out []string
	for _, n := range preferred {
		if _, ok := m[n]; ok {
			out = append(out, n)
		}
	}
	for n := range m {
		seen := false
		for _, o := range out {
			if o == n {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, n)
		}
	}
	return out
}

// ChartFig7 renders Figure 7: RCBT accuracy versus nl, one curve per
// dataset.
func ChartFig7(w io.Writer, pts []Fig7Point) {
	byDataset := map[string][]report.Point{}
	var datasets []string
	for _, p := range pts {
		if byDataset[p.Dataset] == nil {
			datasets = append(datasets, p.Dataset)
		}
		byDataset[p.Dataset] = append(byDataset[p.Dataset], report.Point{
			X: float64(p.NL), Y: p.Accuracy * 100,
		})
	}
	var series []report.Series
	for _, ds := range datasets {
		series = append(series, report.Series{Name: ds, Points: byDataset[ds]})
	}
	report.SortSeriesPoints(series)
	report.LineChart(w, "Figure 7 — RCBT accuracy vs nl", "nl", "accuracy (%)", series, 64, 14, false)
}

// ChartFig8 renders Figure 8's scatter: chi-square rank (x) against
// frequency of occurrence in top-1 lower-bound rules (y).
func ChartFig8(w io.Writer, res *Fig8Result) {
	pts := make([]report.Point, 0, len(res.Genes))
	for _, g := range res.Genes {
		pts = append(pts, report.Point{X: float64(g.Rank), Y: float64(g.Frequency)})
	}
	report.Scatter(w, "Figure 8 — gene rank vs rule participation (PC)",
		"chi-square rank (1 = best)", "occurrences in lower-bound rules", pts, 64, 16)
}
