package bench

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/synth"
)

// Experiments run at heavy gene-count reduction so the suite stays fast;
// the benchrunner CLI runs them at paper scale.
const testScale = Scale(60)

func TestTable1(t *testing.T) {
	var sb strings.Builder
	rows, err := Table1(&sb, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.GenesAfter <= 0 || r.GenesAfter > r.OriginalGenes {
			t.Errorf("%s: genes after = %d of %d", r.Dataset, r.GenesAfter, r.OriginalGenes)
		}
		if r.Train1+r.Train0 != r.Train {
			t.Errorf("%s: class split mismatch", r.Dataset)
		}
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("missing header")
	}
}

func TestFig6SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep in -short mode")
	}
	cfg := Fig6Config{
		Scale:               testScale,
		Minsups:             []float64{0.9, 0.8},
		BaselineBudget:      200000,
		IncludeColumnMiners: true,
		Datasets:            []string{"ALL/60"},
	}
	var sb strings.Builder
	pts, err := Fig6(context.Background(), &sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no measurements")
	}
	// Every algorithm appears for every minsup.
	algs := map[string]int{}
	for _, p := range pts {
		algs[p.Algorithm]++
	}
	for _, want := range []string{"TopkRGS(k=1)", "TopkRGS(k=100)", "FARMER(c=0.9)", "FARMER+prefix(c=0.9)", "CHARM(diffsets)", "CLOSET+"} {
		if algs[want] != 2 {
			t.Errorf("algorithm %s measured %d times, want 2", want, algs[want])
		}
	}
	// MineTopkRGS must never abort.
	for _, p := range pts {
		if strings.HasPrefix(p.Algorithm, "TopkRGS") && p.Aborted {
			t.Errorf("TopkRGS aborted at minsup %.2f", p.Minsup)
		}
	}
}

func TestFig6e(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep in -short mode")
	}
	var sb strings.Builder
	pts, err := Fig6e(context.Background(), &sb, testScale, 0.8, []int{1, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two datasets (ALL, PC) x two k values.
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
}

func TestTable2AndDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("classification run in -short mode")
	}
	opts := eval.Options{MinsupFrac: 0.85, K: 3, NL: 5, BagRounds: 3, BoostRounds: 3}
	var sb strings.Builder
	results, err := Table2(&sb, testScale, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(sb.String(), "Average") {
		t.Fatal("missing average row")
	}
	if _, err := DefaultClassStats(io.Discard, testScale, opts); err != nil {
		t.Fatal(err)
	}
}

func TestFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("classification run in -short mode")
	}
	var sb strings.Builder
	pts, err := Fig7(&sb, testScale, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // ALL and LC x two nl values
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("accuracy %v out of range", p.Accuracy)
		}
	}
}

func TestFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis run in -short mode")
	}
	var sb strings.Builder
	res, err := Fig8(context.Background(), &sb, testScale, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.GenesInRules == 0 {
		t.Fatal("no genes participate in rules")
	}
	// The paper's observation: most occurrences come from high-ranked
	// genes.
	if res.HighRankShare < 0.5 {
		t.Errorf("high-rank share = %.2f, expected the top half to dominate", res.HighRankShare)
	}
	// Sorted by frequency.
	for i := 1; i < len(res.Genes); i++ {
		if res.Genes[i].Frequency > res.Genes[i-1].Frequency {
			t.Fatal("genes not sorted by frequency")
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	var sb strings.Builder
	eng, err := AblationEngines(context.Background(), &sb, testScale, 0.85, 0.9, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng) != 12 { // 4 datasets x 3 engines
		t.Fatalf("engine points = %d", len(eng))
	}
	pr, err := AblationPruning(context.Background(), &sb, testScale, 0.85, 3, 300000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr) != 24 { // 4 datasets x 6 variants
		t.Fatalf("pruning points = %d", len(pr))
	}
	// Disabling top-k pruning must not reduce node count (unless the
	// budget cut the run short).
	type rec struct {
		nodes   int
		aborted bool
	}
	byKey := map[string]rec{}
	for _, p := range pr {
		byKey[p.Dataset+"|"+p.Variant] = rec{p.Nodes, p.Aborted}
	}
	for _, ds := range []string{"ALL/60", "LC/60", "OC/60", "PC/60"} {
		off := byKey[ds+"|-topk"]
		on := byKey[ds+"|full"]
		if !off.aborted && !on.aborted && off.nodes < on.nodes {
			t.Errorf("%s: disabling top-k pruning reduced nodes (%d < %d)",
				ds, off.nodes, on.nodes)
		}
	}
}

// TestAllMinersRegistered pins the engine registry: every miner in the
// repo is dispatchable by name, which is what lets the experiments (and
// mineVia) avoid per-miner entry points entirely.
func TestAllMinersRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, name := range engine.Miners() {
		have[name] = true
	}
	for _, want := range []string{"carpenter", "charm", "closet", "farmer", "hybrid", "topk"} {
		if !have[want] {
			t.Errorf("miner %q not registered (have %v)", want, engine.Miners())
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep in -short mode")
	}
	var sb strings.Builder
	pts, err := ParallelSpeedup(context.Background(), &sb, testScale, 0.8, 3, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	// Determinism: the parallel run finds exactly the sequential groups.
	if pts[0].Groups != pts[1].Groups {
		t.Fatalf("group counts differ across worker counts: %d vs %d", pts[0].Groups, pts[1].Groups)
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v, want 1", pts[0].Speedup)
	}
}

func TestMinsupSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := MinsupSweep(io.Discard, testScale, []float64{0.8, 0.85}); err != nil {
		t.Fatal(err)
	}
}

func TestCharts(t *testing.T) {
	var sb strings.Builder
	ChartFig6(&sb, []Fig6Point{
		{Dataset: "ALL", Algorithm: "TopkRGS(k=1)", Minsup: 0.9, Elapsed: 1e6},
		{Dataset: "ALL", Algorithm: "FARMER(c=0)", Minsup: 0.9, Elapsed: 1e9, Aborted: true},
	})
	if !strings.Contains(sb.String(), "Figure 6") || !strings.Contains(sb.String(), "^") {
		t.Fatalf("fig6 chart:\n%s", sb.String())
	}
	sb.Reset()
	ChartFig7(&sb, []Fig7Point{{Dataset: "ALL", NL: 1, Accuracy: 0.9}, {Dataset: "ALL", NL: 10, Accuracy: 0.91}})
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Fatal("fig7 chart missing")
	}
	sb.Reset()
	ChartFig8(&sb, &Fig8Result{Genes: []Fig8Gene{{Rank: 1, Frequency: 10}, {Rank: 500, Frequency: 1}}})
	if !strings.Contains(sb.String(), "Figure 8") {
		t.Fatal("fig8 chart missing")
	}
}

func TestGroupCount(t *testing.T) {
	if testing.Short() {
		t.Skip("group counting in -short mode")
	}
	var sb strings.Builder
	pts, err := GroupCount(context.Background(), &sb, testScale, []float64{0.95, 0.9}, 0.9, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 { // 4 datasets x 2 supports
		t.Fatalf("points = %d, want 8", len(pts))
	}
	// Counts grow (or cap) as support drops, per dataset.
	for i := 0; i+1 < len(pts); i += 2 {
		hi, lo := pts[i], pts[i+1]
		if !lo.Capped && !hi.Capped && lo.Groups < hi.Groups {
			t.Errorf("%s: groups fell from %d to %d as support dropped", hi.Dataset, hi.Groups, lo.Groups)
		}
	}
}

func TestTopGenes(t *testing.T) {
	if testing.Short() {
		t.Skip("top-gene evaluation in -short mode")
	}
	var sb strings.Builder
	pts, err := TopGenes(&sb, testScale, []int{5, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets x 2 classifiers x (2 tops + all).
	if len(pts) != 24 {
		t.Fatalf("points = %d, want 24", len(pts))
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("accuracy %v out of range", p.Accuracy)
		}
	}
	if !strings.Contains(sb.String(), "top5") {
		t.Fatalf("missing column header:\n%s", sb.String())
	}
}

func TestDefaultFig6Config(t *testing.T) {
	cfg := DefaultFig6Config()
	if cfg.Scale != 1 || len(cfg.Minsups) == 0 || cfg.BaselineBudget == 0 || !cfg.IncludeColumnMiners {
		t.Fatalf("DefaultFig6Config = %+v", cfg)
	}
	// Minsups descend from 0.95 to 0.60, paper-style.
	if cfg.Minsups[0] != 0.95 || cfg.Minsups[len(cfg.Minsups)-1] != 0.6 {
		t.Fatalf("Minsups = %v", cfg.Minsups)
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{"ALL": "ALL", "ALL/30": "ALL", "PC/4": "PC", "": ""}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrepareInvalidProfile(t *testing.T) {
	p := synth.ALL()
	p.Informative = p.NumGenes + 1
	if _, err := prepare(p); err == nil {
		t.Fatal("invalid profile must error")
	}
}

// TestPaperClaimsAtTestScale pins the paper's robust qualitative claims
// at the test scale: RCBT never scores below CBA and never uses the
// default class more often than CBA, on every dataset.
func TestPaperClaimsAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("classification run in -short mode")
	}
	opts := eval.Options{MinsupFrac: 0.85, K: 3, NL: 5, BagRounds: 3, BoostRounds: 3}
	results, err := DefaultClassStats(io.Discard, testScale, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		rcbtAcc, cbaAcc := r.Accuracy[eval.NameRCBT], r.Accuracy[eval.NameCBA]
		if rcbtAcc < cbaAcc {
			t.Errorf("%s: RCBT %.3f below CBA %.3f", r.Dataset, rcbtAcc, cbaAcc)
		}
		if r.DefaultsUsed[eval.NameRCBT] > r.DefaultsUsed[eval.NameCBA] {
			t.Errorf("%s: RCBT used default %d times, CBA %d — RCBT should rely on defaults less",
				r.Dataset, r.DefaultsUsed[eval.NameRCBT], r.DefaultsUsed[eval.NameCBA])
		}
	}
}
