package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// SpeedupCurvePoint is one (dataset size, workers) cell of the speedup
// experiment: topk wall time across worker counts on synth datasets of
// increasing size, with the node-overexploration ratio recorded so the
// perf trajectory pins both wall-clock scaling and search efficiency.
type SpeedupCurvePoint struct {
	Dataset            string  `json:"dataset"`
	Rows               int     `json:"rows"`
	Items              int     `json:"items"`
	Workers            int     `json:"workers"`
	Minsup             float64 `json:"minsup"`
	K                  int     `json:"k"`
	NsPerOp            int64   `json:"ns_per_op"`
	Speedup            float64 `json:"speedup"`
	Nodes              int     `json:"nodes"`
	SeqNodes           int     `json:"seq_nodes"`
	NodesOverheadRatio float64 `json:"nodes_overhead_ratio"`
	Groups             int     `json:"groups"`
}

// SpeedupCurveConfig tunes the speedup experiment. Zero fields take the
// defaults below.
type SpeedupCurveConfig struct {
	// Scale is the divisor of the LARGEST dataset; the curve also runs
	// the same profile at 2x and 4x that divisor (smaller datasets), so
	// scaling behavior is visible across problem sizes.
	Scale   Scale
	Dataset string  // profile base name; default "PC"
	Minsup  float64 // relative support; default 0.8
	K       int     // default 10
	Workers []int   // default {1, 2, 4, 8}
	Repeats int     // timed repetitions per cell, best-of; default 3
}

// SpeedupCurve times the topk miner across worker counts on a series
// of synth dataset sizes and reports wall-clock speedup relative to
// the sequential run of the same dataset. The parallel engine is
// deterministic — every worker count produces identical output — so
// the group count is reported to make the invariant visible; the node
// ratio tracks how much extra tree the workers explore before the
// shared floors catch up.
func SpeedupCurve(ctx context.Context, w io.Writer, cfg SpeedupCurveConfig) ([]SpeedupCurvePoint, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "PC"
	}
	if cfg.Minsup == 0 {
		cfg.Minsup = 0.8
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}

	// Smallest to largest: divisor 4s, 2s, s.
	scales := []Scale{cfg.Scale * 4, cfg.Scale * 2, cfg.Scale}
	var out []SpeedupCurvePoint
	for _, sc := range scales {
		var pr *prepared
		for _, p := range profiles(sc) {
			if baseName(p.Name) == cfg.Dataset {
				var err error
				if pr, err = prepare(p); err != nil {
					return nil, err
				}
				break
			}
		}
		if pr == nil {
			return nil, fmt.Errorf("bench: no profile named %q", cfg.Dataset)
		}
		ms := minsupAbs(pr.dTrain, cfg.Minsup)
		header(w, fmt.Sprintf("Speedup curve on %s (rows=%d items=%d minsup=%.2f k=%d, best of %d)",
			pr.profile.Name, pr.dTrain.NumRows(), pr.dTrain.NumItems(), cfg.Minsup, cfg.K, cfg.Repeats))
		fmt.Fprintf(w, "%-8s %12s %9s %10s %11s %8s\n",
			"workers", "time", "speedup", "nodes", "nodes-ratio", "groups")

		var base time.Duration
		seqNodes := 0
		for _, workers := range cfg.Workers {
			workers := workersOr1(workers)
			opts := engine.Options{K: cfg.K, Minsup: ms, Workers: workers}
			var best time.Duration
			var nodes, groups int
			for rep := 0; rep < cfg.Repeats; rep++ {
				var res *engine.Result
				var stats engine.Stats
				var err error
				elapsed := timeIt(func() {
					res, stats, err = mineVia(ctx, "topk", pr.dTrain, opts)
				})
				if err != nil {
					return nil, fmt.Errorf("bench: speedup %s/w%d: %w", pr.profile.Name, workers, err)
				}
				if best == 0 || elapsed < best {
					best = elapsed
					nodes = stats.Nodes
					groups = len(res.Groups)
				}
			}
			if workers == 1 {
				base = best
				seqNodes = nodes
			}
			pt := SpeedupCurvePoint{
				Dataset: pr.profile.Name,
				Rows:    pr.dTrain.NumRows(),
				Items:   pr.dTrain.NumItems(),
				Workers: workers,
				Minsup:  cfg.Minsup,
				K:       cfg.K,
				NsPerOp: best.Nanoseconds(),
				Nodes:   nodes,
				Groups:  groups,
			}
			if base > 0 {
				pt.Speedup = base.Seconds() / best.Seconds()
			}
			if seqNodes > 0 {
				pt.SeqNodes = seqNodes
				pt.NodesOverheadRatio = float64(nodes) / float64(seqNodes)
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%-8d %12s %8.2fx %10d %10.3fx %8d\n",
				pt.Workers, fmtDur(best, false), pt.Speedup, pt.Nodes, pt.NodesOverheadRatio, pt.Groups)
		}
	}
	return out, nil
}

// LargestAt returns the point for the given worker count on the
// biggest dataset of the curve (the CI gate's subject), or nil.
func LargestAt(pts []SpeedupCurvePoint, workers int) *SpeedupCurvePoint {
	var best *SpeedupCurvePoint
	for i := range pts {
		pt := &pts[i]
		if pt.Workers != workers {
			continue
		}
		if best == nil || pt.Rows*pt.Items > best.Rows*best.Items {
			best = pt
		}
	}
	return best
}
