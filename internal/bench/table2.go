package bench

import (
	"fmt"
	"io"

	"repro/internal/eval"
)

// Table2 regenerates Table 2: test accuracy of RCBT, CBA, IRG, the C4.5
// family, and SVM on the four datasets, plus the average row.
func Table2(w io.Writer, scale Scale, opts eval.Options) ([]*eval.Result, error) {
	header(w, "Table 2: Classification Results")
	var results []*eval.Result
	for _, p := range profiles(scale) {
		res, err := eval.EvaluateProfile(p, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	fmt.Fprint(w, eval.FormatTable(results))
	return results, nil
}

// DefaultClassStats regenerates the Section 6.2 analysis of default
// class usage (CBA vs RCBT) and standby classifier activity.
func DefaultClassStats(w io.Writer, scale Scale, opts eval.Options) ([]*eval.Result, error) {
	header(w, "Section 6.2: default-class and standby-classifier usage")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %14s %14s\n",
		"Dataset", "CBA defaults", "CBA def errs", "RCBT defaults", "RCBT def errs", "standby rows")
	var results []*eval.Result
	for _, p := range profiles(scale) {
		res, err := eval.EvaluateProfile(p, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		standby := 0
		for _, n := range res.StandbyUsed {
			standby += n
		}
		fmt.Fprintf(w, "%-10s %14d %14d %14d %14d %14d\n",
			res.Dataset,
			res.DefaultsUsed[eval.NameCBA], res.DefaultErrors[eval.NameCBA],
			res.DefaultsUsed[eval.NameRCBT], res.DefaultErrors[eval.NameRCBT],
			standby)
	}
	return results, nil
}

// MinsupSweep regenerates the Section 6.2 sensitivity check: CBA and
// RCBT accuracy while varying the relative minimum support from 0.6 to
// 0.8.
func MinsupSweep(w io.Writer, scale Scale, fracs []float64) error {
	if len(fracs) == 0 {
		fracs = []float64{0.6, 0.65, 0.7, 0.75, 0.8}
	}
	header(w, "Section 6.2: accuracy vs minimum support (CBA / RCBT)")
	fmt.Fprintf(w, "%-10s", "Dataset")
	for _, f := range fracs {
		fmt.Fprintf(w, "   ms=%.2f (CBA/RCBT)", f)
	}
	fmt.Fprintln(w)
	for _, p := range profiles(scale) {
		fmt.Fprintf(w, "%-10s", p.Name)
		for _, f := range fracs {
			res, err := eval.EvaluateProfile(p, eval.Options{
				MinsupFrac: f,
				Skip: map[string]bool{
					eval.NameIRG: true, eval.NameC45: true,
					eval.NameBagging: true, eval.NameBoosting: true, eval.NameSVM: true,
				},
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "      %.3f/%.3f", res.Accuracy[eval.NameCBA], res.Accuracy[eval.NameRCBT])
		}
		fmt.Fprintln(w)
	}
	return nil
}
