package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/core"
	"repro/internal/farmer"
)

// Fig6Point is one (algorithm, minsup) runtime measurement.
type Fig6Point struct {
	Dataset   string
	Algorithm string
	Minsup    float64 // relative
	Elapsed   time.Duration
	Aborted   bool
	Groups    int
}

// Fig6Config tunes the runtime sweep.
type Fig6Config struct {
	Scale Scale
	// Minsups are relative thresholds (paper: 0.95 down to 0.60).
	Minsups []float64
	// BaselineBudget caps baseline enumeration nodes so the sweep
	// terminates; exceeded runs report DNF (the paper's "cannot finish").
	BaselineBudget int
	// TopkBudget optionally caps MineTopkRGS nodes as well (0 =
	// unbounded). The paper's Figure 6 runs TopkRGS to completion; a
	// budget keeps exhaustive sweeps on the hardest profiles bounded and
	// reports DNF honestly when hit.
	TopkBudget int
	// IncludeColumnMiners also times CHARM and CLOSET+ (often DNF).
	IncludeColumnMiners bool
	// Datasets filters by profile name; nil = all four.
	Datasets []string
}

// DefaultFig6Config mirrors the paper's sweep.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Scale:               1,
		Minsups:             []float64{0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6},
		BaselineBudget:      3_000_000,
		IncludeColumnMiners: true,
	}
}

// Fig6 regenerates Figure 6(a-d): mining runtime versus minimum support
// for MineTopkRGS (k=1 and k=100) against FARMER (naive engine),
// FARMER+prefix, and optionally CHARM / CLOSET+.
func Fig6(w io.Writer, cfg Fig6Config) ([]Fig6Point, error) {
	if len(cfg.Minsups) == 0 {
		cfg.Minsups = DefaultFig6Config().Minsups
	}
	if cfg.BaselineBudget == 0 {
		cfg.BaselineBudget = DefaultFig6Config().BaselineBudget
	}
	var out []Fig6Point
	for _, p := range profiles(cfg.Scale) {
		if !wantDataset(cfg.Datasets, p.Name) {
			continue
		}
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		header(w, fmt.Sprintf("Figure 6: runtime vs minsup on %s (rows=%d items=%d)",
			p.Name, pr.dTrain.NumRows(), pr.dTrain.NumItems()))
		fmt.Fprintf(w, "%-8s %-22s %10s %10s\n", "minsup", "algorithm", "time", "groups")
		for _, frac := range cfg.Minsups {
			ms := minsupAbs(pr.dTrain, frac)
			pts, err := fig6AtMinsup(pr, frac, ms, cfg)
			if err != nil {
				return nil, err
			}
			for _, pt := range pts {
				fmt.Fprintf(w, "%-8.2f %-22s %10s %10d\n",
					pt.Minsup, pt.Algorithm, fmtDur(pt.Elapsed, pt.Aborted), pt.Groups)
			}
			out = append(out, pts...)
		}
	}
	return out, nil
}

func wantDataset(filter []string, name string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

// fig6AtMinsup times every algorithm at one support level.
func fig6AtMinsup(pr *prepared, frac float64, ms int, cfg Fig6Config) ([]Fig6Point, error) {
	var pts []Fig6Point
	add := func(alg string, elapsed time.Duration, aborted bool, groups int) {
		pts = append(pts, Fig6Point{
			Dataset: pr.profile.Name, Algorithm: alg, Minsup: frac,
			Elapsed: elapsed, Aborted: aborted, Groups: groups,
		})
	}

	for _, k := range []int{1, 100} {
		var groups int
		aborted := false
		var err error
		elapsed := timeIt(func() {
			cc := core.DefaultConfig(ms, k)
			cc.MaxNodes = cfg.TopkBudget
			var res *core.Result
			res, err = core.Mine(pr.dTrain, 0, cc)
			if res != nil {
				groups = len(res.Groups)
				aborted = res.Stats.Aborted
			}
		})
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("TopkRGS(k=%d)", k), elapsed, aborted, groups)
	}

	for _, fc := range []struct {
		name    string
		engine  farmer.Engine
		minconf float64
	}{
		{"FARMER+prefix(c=0.9)", farmer.EnginePrefix, 0.9},
		{"FARMER+prefix(c=0)", farmer.EnginePrefix, 0},
		{"FARMER(c=0.9)", farmer.EngineNaive, 0.9},
		{"FARMER(c=0)", farmer.EngineNaive, 0},
	} {
		var res *farmer.Result
		var err error
		elapsed := timeIt(func() {
			res, err = farmer.Mine(pr.dTrain, 0, farmer.Config{
				Minsup: ms, Minconf: fc.minconf, Engine: fc.engine,
				MaxNodes: cfg.BaselineBudget,
			})
		})
		if err != nil {
			return nil, err
		}
		add(fc.name, elapsed, res.Aborted, len(res.Groups))
	}

	if cfg.IncludeColumnMiners {
		// Column miners count support over all rows; give them the same
		// absolute threshold the rule miners use on the consequent class,
		// the most favorable comparable setting.
		colMS := ms
		{
			var res *charm.Result
			var err error
			elapsed := timeIt(func() {
				res, err = charm.Mine(pr.dTrain, charm.Config{Minsup: colMS, MaxNodes: cfg.BaselineBudget})
			})
			if err != nil {
				return nil, err
			}
			add("CHARM(diffsets)", elapsed, res.Aborted, len(res.Closed))
		}
		{
			var res *closet.Result
			var err error
			elapsed := timeIt(func() {
				res, err = closet.Mine(pr.dTrain, closet.Config{Minsup: colMS, MaxNodes: cfg.BaselineBudget})
			})
			if err != nil {
				return nil, err
			}
			add("CLOSET+", elapsed, res.Aborted, len(res.Closed))
		}
	}
	return pts, nil
}

// Fig6e regenerates Figure 6(e): MineTopkRGS runtime versus k on the
// ALL and PC datasets at a fixed relative support.
func Fig6e(w io.Writer, scale Scale, minsupFrac float64, ks []int) ([]Fig6Point, error) {
	if len(ks) == 0 {
		ks = []int{1, 20, 40, 60, 80, 100}
	}
	if minsupFrac == 0 {
		minsupFrac = 0.8
	}
	var out []Fig6Point
	for _, p := range profiles(scale) {
		if bn := baseName(p.Name); bn != "ALL" && bn != "PC" {
			continue
		}
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		header(w, fmt.Sprintf("Figure 6(e): runtime vs k on %s (minsup=%.2f)", p.Name, minsupFrac))
		fmt.Fprintf(w, "%-6s %10s %10s\n", "k", "time", "groups")
		for _, k := range ks {
			var groups int
			var err error
			elapsed := timeIt(func() {
				var res *core.Result
				res, err = core.Mine(pr.dTrain, 0, core.DefaultConfig(ms, k))
				if res != nil {
					groups = len(res.Groups)
				}
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "%-6d %10s %10d\n", k, fmtDur(elapsed, false), groups)
			out = append(out, Fig6Point{
				Dataset: p.Name, Algorithm: fmt.Sprintf("TopkRGS(k=%d)", k),
				Minsup: minsupFrac, Elapsed: elapsed, Groups: groups,
			})
		}
	}
	return out, nil
}

// baseName strips the "/scale" suffix from a scaled profile name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}
