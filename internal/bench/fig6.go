package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// Fig6Point is one (algorithm, minsup) runtime measurement.
type Fig6Point struct {
	Dataset   string
	Algorithm string
	Minsup    float64 // relative
	Elapsed   time.Duration
	Aborted   bool
	Groups    int
}

// Fig6Config tunes the runtime sweep.
type Fig6Config struct {
	Scale Scale
	// Minsups are relative thresholds (paper: 0.95 down to 0.60).
	Minsups []float64
	// BaselineBudget caps baseline enumeration nodes so the sweep
	// terminates; exceeded runs report DNF (the paper's "cannot finish").
	BaselineBudget int
	// TopkBudget optionally caps MineTopkRGS nodes as well (0 =
	// unbounded). The paper's Figure 6 runs TopkRGS to completion; a
	// budget keeps exhaustive sweeps on the hardest profiles bounded and
	// reports DNF honestly when hit.
	TopkBudget int
	// IncludeColumnMiners also times CHARM and CLOSET+ (often DNF).
	IncludeColumnMiners bool
	// Datasets filters by profile name; nil = all four.
	Datasets []string
	// Workers is the TopkRGS worker count (0 or 1 = sequential, the
	// paper's setting; the baselines always run sequentially).
	Workers int
}

// DefaultFig6Config mirrors the paper's sweep.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Scale:               1,
		Minsups:             []float64{0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6},
		BaselineBudget:      3_000_000,
		IncludeColumnMiners: true,
	}
}

// workersOr1 pins an unset worker count to sequential; engine adapters
// treat 0 as "all cores", which a benchmark must never do implicitly.
func workersOr1(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

// Fig6 regenerates Figure 6(a-d): mining runtime versus minimum support
// for MineTopkRGS (k=1 and k=100) against FARMER (naive engine),
// FARMER+prefix, and optionally CHARM / CLOSET+.
func Fig6(ctx context.Context, w io.Writer, cfg Fig6Config) ([]Fig6Point, error) {
	if len(cfg.Minsups) == 0 {
		cfg.Minsups = DefaultFig6Config().Minsups
	}
	if cfg.BaselineBudget == 0 {
		cfg.BaselineBudget = DefaultFig6Config().BaselineBudget
	}
	var out []Fig6Point
	for _, p := range profiles(cfg.Scale) {
		if !wantDataset(cfg.Datasets, p.Name) {
			continue
		}
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		header(w, fmt.Sprintf("Figure 6: runtime vs minsup on %s (rows=%d items=%d)",
			p.Name, pr.dTrain.NumRows(), pr.dTrain.NumItems()))
		fmt.Fprintf(w, "%-8s %-22s %10s %10s\n", "minsup", "algorithm", "time", "groups")
		for _, frac := range cfg.Minsups {
			ms := minsupAbs(pr.dTrain, frac)
			pts, err := fig6AtMinsup(ctx, pr, frac, ms, cfg)
			if err != nil {
				return nil, err
			}
			for _, pt := range pts {
				fmt.Fprintf(w, "%-8.2f %-22s %10s %10d\n",
					pt.Minsup, pt.Algorithm, fmtDur(pt.Elapsed, pt.Aborted), pt.Groups)
			}
			out = append(out, pts...)
		}
	}
	return out, nil
}

func wantDataset(filter []string, name string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

// fig6AtMinsup times every algorithm at one support level, dispatching
// each through the engine registry.
func fig6AtMinsup(ctx context.Context, pr *prepared, frac float64, ms int, cfg Fig6Config) ([]Fig6Point, error) {
	var pts []Fig6Point
	add := func(alg string, elapsed time.Duration, aborted bool, groups int) {
		pts = append(pts, Fig6Point{
			Dataset: pr.profile.Name, Algorithm: alg, Minsup: frac,
			Elapsed: elapsed, Aborted: aborted, Groups: groups,
		})
	}
	run := func(alg, miner string, opts engine.Options, count func(*engine.Result) int) error {
		var res *engine.Result
		var stats engine.Stats
		var err error
		elapsed := timeIt(func() {
			res, stats, err = mineVia(ctx, miner, pr.dTrain, opts)
		})
		if err != nil {
			return err
		}
		add(alg, elapsed, stats.Aborted, count(res))
		return nil
	}
	groups := func(r *engine.Result) int { return len(r.Groups) }
	closed := func(r *engine.Result) int { return len(r.Closed) }

	for _, k := range []int{1, 100} {
		err := run(fmt.Sprintf("TopkRGS(k=%d)", k), "topk", engine.Options{
			K: k, Minsup: ms, MaxNodes: cfg.TopkBudget, Workers: workersOr1(cfg.Workers),
		}, groups)
		if err != nil {
			return nil, err
		}
	}

	for _, fc := range []struct {
		name    string
		variant string
		minconf float64
	}{
		{"FARMER+prefix(c=0.9)", "prefix", 0.9},
		{"FARMER+prefix(c=0)", "prefix", 0},
		{"FARMER(c=0.9)", "naive", 0.9},
		{"FARMER(c=0)", "naive", 0},
	} {
		err := run(fc.name, "farmer", engine.Options{
			Minsup: ms, Minconf: fc.minconf, Variant: fc.variant,
			MaxNodes: cfg.BaselineBudget, Workers: 1,
		}, groups)
		if err != nil {
			return nil, err
		}
	}

	if cfg.IncludeColumnMiners {
		// Column miners count support over all rows; give them the same
		// absolute threshold the rule miners use on the consequent class,
		// the most favorable comparable setting.
		colMS := ms
		err := run("CHARM(diffsets)", "charm", engine.Options{
			Minsup: colMS, MaxNodes: cfg.BaselineBudget,
		}, closed)
		if err != nil {
			return nil, err
		}
		err = run("CLOSET+", "closet", engine.Options{
			Minsup: colMS, MaxNodes: cfg.BaselineBudget,
		}, closed)
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// Fig6e regenerates Figure 6(e): MineTopkRGS runtime versus k on the
// ALL and PC datasets at a fixed relative support.
func Fig6e(ctx context.Context, w io.Writer, scale Scale, minsupFrac float64, ks []int, workers int) ([]Fig6Point, error) {
	if len(ks) == 0 {
		ks = []int{1, 20, 40, 60, 80, 100}
	}
	if minsupFrac == 0 {
		minsupFrac = 0.8
	}
	var out []Fig6Point
	for _, p := range profiles(scale) {
		if bn := baseName(p.Name); bn != "ALL" && bn != "PC" {
			continue
		}
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		header(w, fmt.Sprintf("Figure 6(e): runtime vs k on %s (minsup=%.2f)", p.Name, minsupFrac))
		fmt.Fprintf(w, "%-6s %10s %10s\n", "k", "time", "groups")
		for _, k := range ks {
			var res *engine.Result
			var err error
			elapsed := timeIt(func() {
				res, _, err = mineVia(ctx, "topk", pr.dTrain, engine.Options{
					K: k, Minsup: ms, Workers: workersOr1(workers),
				})
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "%-6d %10s %10d\n", k, fmtDur(elapsed, false), len(res.Groups))
			out = append(out, Fig6Point{
				Dataset: p.Name, Algorithm: fmt.Sprintf("TopkRGS(k=%d)", k),
				Minsup: minsupFrac, Elapsed: elapsed, Groups: len(res.Groups),
			})
		}
	}
	return out, nil
}

// baseName strips the "/scale" suffix from a scaled profile name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}
