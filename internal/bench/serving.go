package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rcbt"
	"repro/internal/serve"
	"repro/internal/synth"
)

// ServingPoint is one cell of the serving load sweep: latency
// percentiles and throughput of the batch classification endpoint at
// one (mode, batch size) combination. The archived points
// (BENCH_serving.json) are the read path's perf trajectory across PRs;
// the p99 column is the regression-gated number.
type ServingPoint struct {
	Mode        string  `json:"mode"`  // "closed" or "open"
	Batch       int     `json:"batch"` // rows per request
	Concurrency int     `json:"concurrency,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Requests    int     `json:"requests"`
	Rows        int     `json:"rows"`
	Errors      int     `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// ServingConfig tunes the load sweep. Zero fields take the defaults
// noted inline.
type ServingConfig struct {
	// BaseURL is the server under load, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// Model is the model name sent in request bodies ("" works on a
	// single-model server).
	Model string
	// Rows is the item-id row pool requests draw from, round-robin, so
	// consecutive requests carry distinct rows (a realistic mix of
	// prediction-cache hits and rule-sweep misses).
	Rows [][]int
	// Batches are the request sizes to sweep (default 1, 16, 64, 256).
	Batches []int
	// Requests per point (default 200).
	Requests int
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int
	// TargetQPS, when > 0, adds an open-loop pass per batch size:
	// requests fire at this arrival rate regardless of completions, the
	// way real traffic does, so queueing delay shows up in the tail.
	TargetQPS float64
	// Bodies is the number of distinct pre-encoded request bodies per
	// batch size (default 32). Pre-encoding keeps client-side JSON
	// marshalling out of the measured latencies.
	Bodies int
}

func (cfg *ServingConfig) applyDefaults() {
	if len(cfg.Batches) == 0 {
		cfg.Batches = []int{1, 16, 64, 256}
	}
	if cfg.Requests == 0 {
		cfg.Requests = 200
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 4
	}
	if cfg.Bodies == 0 {
		cfg.Bodies = 32
	}
}

// ServingLoad drives the batch classification endpoint through the
// configured sweep — closed-loop always, open-loop when TargetQPS is
// set — writes a paper-style table to w, and returns the points for
// JSON archiving.
func ServingLoad(ctx context.Context, w io.Writer, cfg ServingConfig) ([]ServingPoint, error) {
	cfg.applyDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("bench: serving load needs a BaseURL")
	}
	if len(cfg.Rows) == 0 {
		return nil, fmt.Errorf("bench: serving load needs a row pool")
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}
	defer client.CloseIdleConnections()

	header(w, fmt.Sprintf("Serving load: %s (pool=%d rows, %d req/point)",
		cfg.BaseURL, len(cfg.Rows), cfg.Requests))
	fmt.Fprintf(w, "%-8s %7s %6s %10s %9s %9s %9s %9s %7s\n",
		"mode", "batch", "conc", "rows/s", "p50 ms", "p95 ms", "p99 ms", "max ms", "errors")

	var out []ServingPoint
	next := 0 // row-pool cursor, advanced across points for variety
	for _, batch := range cfg.Batches {
		bodies := make([][]byte, cfg.Bodies)
		for i := range bodies {
			req := serve.BatchRequest{Model: cfg.Model}
			for r := 0; r < batch; r++ {
				req.Rows = append(req.Rows, serve.BatchRow{Items: cfg.Rows[next%len(cfg.Rows)]})
				next++
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}

		pt, err := runClosed(ctx, client, cfg, batch, bodies)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
		printServingPoint(w, pt)

		if cfg.TargetQPS > 0 {
			pt, err := runOpen(ctx, client, cfg, batch, bodies)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
			printServingPoint(w, pt)
		}
	}
	return out, nil
}

func printServingPoint(w io.Writer, pt ServingPoint) {
	fmt.Fprintf(w, "%-8s %7d %6d %10.0f %9.3f %9.3f %9.3f %9.3f %7d\n",
		pt.Mode, pt.Batch, pt.Concurrency, pt.RowsPerSec,
		pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.MaxMs, pt.Errors)
}

// doRequest posts one pre-encoded batch and returns its latency.
func doRequest(ctx context.Context, client *http.Client, url string, body []byte) (time.Duration, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	return time.Since(start), nil
}

// runClosed measures a closed loop: Concurrency workers issue requests
// back to back, so the offered load adapts to the server's pace and
// the percentiles measure pure service time plus connection reuse.
func runClosed(ctx context.Context, client *http.Client, cfg ServingConfig, batch int, bodies [][]byte) (ServingPoint, error) {
	url := cfg.BaseURL + "/v1/classify/batch"
	// Untimed warm-up: grow server arenas, open connections.
	for i := 0; i < cfg.Concurrency; i++ {
		if _, err := doRequest(ctx, client, url, bodies[i%len(bodies)]); err != nil {
			return ServingPoint{}, fmt.Errorf("bench: warm-up request: %w", err)
		}
	}

	lats := make([]time.Duration, cfg.Requests)
	var errs atomic.Int64
	var nextReq atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextReq.Add(1) - 1)
				if i >= cfg.Requests || ctx.Err() != nil {
					return
				}
				lat, err := doRequest(ctx, client, url, bodies[i%len(bodies)])
				if err != nil {
					errs.Add(1)
					continue
				}
				lats[i] = lat
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return ServingPoint{}, err
	}
	pt := summarize(lats, int(errs.Load()), batch, cfg.Requests, elapsed)
	pt.Mode = "closed"
	pt.Concurrency = cfg.Concurrency
	return pt, nil
}

// runOpen measures an open loop: requests fire on a fixed schedule at
// TargetQPS whether or not earlier ones finished, so a server falling
// behind accumulates queueing delay in the measured tail instead of
// silently throttling the generator.
func runOpen(ctx context.Context, client *http.Client, cfg ServingConfig, batch int, bodies [][]byte) (ServingPoint, error) {
	url := cfg.BaseURL + "/v1/classify/batch"
	interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	lats := make([]time.Duration, cfg.Requests)
	var errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
fire:
	for i := 0; i < cfg.Requests; i++ {
		select {
		case <-ctx.Done():
			break fire
		case <-ticker.C:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lat, err := doRequest(ctx, client, url, bodies[i%len(bodies)])
				if err != nil {
					errs.Add(1)
					return
				}
				lats[i] = lat
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return ServingPoint{}, err
	}
	pt := summarize(lats, int(errs.Load()), batch, cfg.Requests, elapsed)
	pt.Mode = "open"
	pt.TargetQPS = cfg.TargetQPS
	return pt, nil
}

func summarize(lats []time.Duration, errors, batch, requests int, elapsed time.Duration) ServingPoint {
	ok := make([]time.Duration, 0, len(lats))
	for _, l := range lats {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(q float64) float64 {
		if len(ok) == 0 {
			return 0
		}
		return float64(ok[int(q*float64(len(ok)-1))].Nanoseconds()) / 1e6
	}
	pt := ServingPoint{
		Batch:      batch,
		Requests:   requests,
		Rows:       len(ok) * batch,
		Errors:     errors,
		ElapsedSec: elapsed.Seconds(),
		RowsPerSec: float64(len(ok)*batch) / elapsed.Seconds(),
		P50Ms:      pct(0.50),
		P95Ms:      pct(0.95),
		P99Ms:      pct(0.99),
	}
	if n := len(ok); n > 0 {
		pt.MaxMs = float64(ok[n-1].Nanoseconds()) / 1e6
	}
	return pt
}

// ServingFixture trains a serving-shaped RCBT model — the PC profile
// with a 4x clinical cohort, the shape the rule-major kernel benchmark
// uses — and returns a ready in-process Server plus an item-id row
// pool drawn from its test split.
func ServingFixture(scale int) (*serve.Server, [][]int, error) {
	p := synth.Scaled(synth.PC(), scale)
	p.Train1 *= 4
	p.Train0 *= 4
	p.Test1 = 600
	p.Test0 = 600
	pr, err := prepare(p)
	if err != nil {
		return nil, nil, err
	}
	clf, err := rcbt.Train(pr.dTrain, rcbt.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	m := &rcbt.Model{
		Classifier:  clf,
		Discretizer: pr.dz,
		ClassNames:  pr.dTrain.ClassNames,
		NumItems:    pr.dTrain.NumItems(),
		Meta:        rcbt.Meta{Dataset: p.Name, TrainRows: pr.dTrain.NumRows()},
	}
	s, err := serve.New(serve.Config{Models: map[string]*rcbt.Model{"bench": m}})
	if err != nil {
		return nil, nil, err
	}
	rows := make([][]int, pr.dTest.NumRows())
	for r := range rows {
		rows[r] = pr.dTest.Rows[r]
	}
	return s, rows, nil
}

// ServingGate compares current points against a baseline by
// (mode, batch) and fails when any cell's p99 exceeds maxRatio times
// its baseline p99. Cells present on only one side are reported and
// skipped — a new batch size must not fail the gate retroactively.
func ServingGate(w io.Writer, baseline, current []ServingPoint, maxRatio float64) error {
	base := make(map[string]ServingPoint, len(baseline))
	for _, pt := range baseline {
		base[fmt.Sprintf("%s/%d", pt.Mode, pt.Batch)] = pt
	}
	var failures []string
	for _, pt := range current {
		key := fmt.Sprintf("%s/%d", pt.Mode, pt.Batch)
		b, ok := base[key]
		if !ok {
			fmt.Fprintf(w, "serving gate: %s has no baseline, skipping\n", key)
			continue
		}
		if b.P99Ms <= 0 {
			continue
		}
		ratio := pt.P99Ms / b.P99Ms
		status := "ok"
		if ratio > maxRatio {
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: p99 %.3fms vs baseline %.3fms (%.2fx > %.2fx)",
					key, pt.P99Ms, b.P99Ms, ratio, maxRatio))
		}
		fmt.Fprintf(w, "serving gate: %-12s p99 %8.3fms baseline %8.3fms ratio %.2fx %s\n",
			key, pt.P99Ms, b.P99Ms, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("serving p99 regression:\n  %s", joinLines(failures))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
