package bench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
)

// TestParallelDeterminismPaperProfile re-runs the determinism oracle on
// a realistic mining profile: the synthetic PC dataset at scale 15 with
// k=60 and 70% minsup, which builds a tree deep and wide enough that
// every parallel mechanism (steal-half, streaming merge, frontier
// publication, task baselines, per-task minsup scoping) is exercised on
// full top-k lists. The random corpus in internal/core uses tiny k and
// misses tie-displacement bugs that only appear when lists saturate;
// this profile caught two such bugs that the corpus passed.
func TestParallelDeterminismPaperProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var pr *prepared
	for _, p := range profiles(15) {
		if baseName(p.Name) == "PC" {
			var err error
			if pr, err = prepare(p); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if pr == nil {
		t.Fatal("no PC profile at scale 15")
	}
	ms := minsupAbs(pr.dTrain, 0.7)
	ctx := context.Background()
	key := func(res *engine.Result) []string {
		out := make([]string, 0, len(res.Groups))
		for _, g := range res.Groups {
			out = append(out, fmt.Sprintf("%v|%.6f|%d", g.Antecedent, g.Confidence, g.Support))
		}
		return out
	}
	seq, _, err := mineVia(ctx, "topk", pr.dTrain, engine.Options{K: 60, Minsup: ms, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sk := key(seq)
	if len(sk) == 0 {
		t.Fatal("sequential run found no groups; profile no longer exercises the tree")
	}
	// Several trials per worker count: scheduling nondeterminism means a
	// single run can get a schedule where every steal happens to splice
	// in order, masking an unsound suppression channel.
	for trial := 0; trial < 5; trial++ {
		for _, workers := range []int{2, 4, 8} {
			res, _, err := mineVia(ctx, "topk", pr.dTrain, engine.Options{K: 60, Minsup: ms, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			pk := key(res)
			if len(pk) != len(sk) {
				t.Fatalf("trial %d workers %d: %d groups vs %d sequential", trial, workers, len(pk), len(sk))
			}
			for i := range sk {
				if pk[i] != sk[i] {
					t.Fatalf("trial %d workers %d group %d: parallel %s vs sequential %s", trial, workers, i, pk[i], sk[i])
				}
			}
		}
	}
}
