package bench

import (
	"fmt"
	"io"

	"repro/internal/rcbt"
)

// Fig7Point is one (dataset, nl) accuracy measurement.
type Fig7Point struct {
	Dataset  string
	NL       int
	Accuracy float64
}

// Fig7 regenerates Figure 7: RCBT accuracy versus nl (the number of
// lower-bound rules per rule group) on the ALL and LC datasets. The
// paper's observation: curves flatten for nl > 15.
func Fig7(w io.Writer, scale Scale, nls []int) ([]Fig7Point, error) {
	if len(nls) == 0 {
		nls = []int{1, 5, 10, 15, 20, 25, 30}
	}
	var out []Fig7Point
	for _, p := range profiles(scale) {
		if bn := baseName(p.Name); bn != "ALL" && bn != "LC" {
			continue
		}
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		header(w, fmt.Sprintf("Figure 7: RCBT accuracy vs nl on %s", p.Name))
		fmt.Fprintf(w, "%-6s %10s\n", "nl", "accuracy")
		for _, nl := range nls {
			c, err := rcbt.Train(pr.dTrain, rcbt.Config{
				K: 10, NL: nl, MinsupFrac: 0.7,
				LBMaxLen: 5, LBMaxCandidates: 1 << 18,
			})
			if err != nil {
				return nil, err
			}
			preds, _ := c.PredictDataset(pr.dTest)
			correct := 0
			for r, lab := range preds {
				if lab == pr.dTest.Labels[r] {
					correct++
				}
			}
			acc := float64(correct) / float64(pr.dTest.NumRows())
			fmt.Fprintf(w, "%-6d %9.2f%%\n", nl, acc*100)
			out = append(out, Fig7Point{Dataset: p.Name, NL: nl, Accuracy: acc})
		}
	}
	return out, nil
}
