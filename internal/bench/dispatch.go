package bench

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"

	// Every miner registers itself with the engine in its init; the
	// blank imports make the full registry available so experiments
	// dispatch by name instead of binding to per-miner entry points.
	_ "repro/internal/carpenter"
	_ "repro/internal/charm"
	_ "repro/internal/closet"
	_ "repro/internal/core"
	_ "repro/internal/farmer"
	_ "repro/internal/hybrid"
)

// mineVia runs one registered miner by name. All bench experiments go
// through this single seam, so swapping or adding algorithms never
// touches experiment code.
func mineVia(ctx context.Context, name string, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	m, ok := engine.Lookup(name)
	if !ok {
		return nil, engine.Stats{}, fmt.Errorf("bench: no miner registered under %q", name)
	}
	return m.Mine(ctx, d, opts)
}
