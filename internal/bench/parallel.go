package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// SpeedupPoint is one worker-count measurement of the parallel
// row-enumeration engine.
type SpeedupPoint struct {
	Dataset string
	Workers int
	Minsup  float64 // relative
	K       int
	Elapsed time.Duration
	Speedup float64 // wall-time ratio versus the Workers=1 run
	Groups  int
}

// ParallelSpeedup times MineTopkRGS on the PC profile (the paper's
// hardest dataset) across worker counts. The parallel engine is
// deterministic — every worker count produces byte-identical output —
// so the only thing that varies is wall time; the group count is
// reported to make the invariant visible in the table.
func ParallelSpeedup(ctx context.Context, w io.Writer, scale Scale, minsupFrac float64, k int, workerCounts []int) ([]SpeedupPoint, error) {
	if minsupFrac == 0 {
		minsupFrac = 0.7
	}
	if k == 0 {
		k = 10
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	pcProfile := profiles(scale)[3] // PC is the fourth Table 1 dataset
	pr, err := prepare(pcProfile)
	if err != nil {
		return nil, err
	}
	ms := minsupAbs(pr.dTrain, minsupFrac)
	header(w, fmt.Sprintf("Parallel speedup on %s (minsup=%.2f k=%d)", pcProfile.Name, minsupFrac, k))
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "workers", "time", "speedup", "groups")
	var out []SpeedupPoint
	var base time.Duration
	for _, workers := range workerCounts {
		var res *engine.Result
		var err error
		elapsed := timeIt(func() {
			res, _, err = mineVia(ctx, "topk", pr.dTrain, engine.Options{
				K: k, Minsup: ms, Workers: workersOr1(workers),
			})
		})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = elapsed
		}
		pt := SpeedupPoint{
			Dataset: pcProfile.Name, Workers: workersOr1(workers),
			Minsup: minsupFrac, K: k, Elapsed: elapsed,
			Speedup: base.Seconds() / elapsed.Seconds(), Groups: len(res.Groups),
		}
		out = append(out, pt)
		fmt.Fprintf(w, "%-8d %10s %9.2fx %10d\n", pt.Workers, fmtDur(pt.Elapsed, false), pt.Speedup, pt.Groups)
	}
	return out, nil
}
