package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/discretize"
	"repro/internal/rcbt"
	"repro/internal/synth"
)

// RefreshPoint is one append in the streaming-ingestion sweep: the
// wall time of the datastore's incremental snapshot build against a
// from-scratch rebuild of the same version, plus the retrain cost both
// paths share. The archived points (BENCH_refresh.json) track the
// ingestion path's perf trajectory across PRs.
type RefreshPoint struct {
	Dataset       string  `json:"dataset"`
	Version       int     `json:"version"`
	Rows          int     `json:"rows"` // rows after the append
	Genes         int     `json:"genes"`
	AppendedRows  int     `json:"appended_rows"`
	FastPath      bool    `json:"fast_path"`
	ChangedGenes  int     `json:"changed_genes"`
	ReusedGenes   int     `json:"reused_genes"`
	IncrementalMs float64 `json:"incremental_ms"` // the refresh build alone (fit + rebuild)
	AppendMs      float64 `json:"append_ms"`      // full Store.Append wall incl. snapshot persist
	FullMs        float64 `json:"full_ms"`        // from-scratch fit + transform + index
	TrainMs       float64 `json:"train_ms"`       // rcbt retrain both paths pay
	Speedup       float64 `json:"speedup"`        // FullMs / IncrementalMs
}

// RefreshBench replays a streaming ingestion: the PC profile's cohort
// is split into an initial load plus `chunks` appended batches, and
// each append times the datastore's incremental refresh against a
// from-scratch discretize+transform+index of the same matrix. The
// incremental column is the refresh build alone (RefreshStats
// BuildNanos); the append column adds snapshot persistence, the cost a
// from-scratch rebuild would pay identically.
func RefreshBench(ctx context.Context, w io.Writer, scale, chunks int) ([]RefreshPoint, error) {
	if chunks <= 0 {
		chunks = 8
	}
	p := synth.Scaled(synth.PC(), scale)
	train, _, err := synth.Generate(p)
	if err != nil {
		return nil, err
	}
	rows := train.NumRows()
	// Hold out ~25% of the cohort for the appends; every chunk must be
	// non-empty.
	held := rows / 4
	if held < chunks {
		held = chunks
	}
	if held >= rows {
		return nil, fmt.Errorf("bench: refresh: %d rows cannot seed %d append chunks", rows, chunks)
	}
	initial := rows - held

	dir, err := os.MkdirTemp("", "refreshbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) // vetsuite:allow uncheckederr -- best-effort temp dir cleanup
	store, err := datastore.Open(datastore.Config{Dir: dir, KeepVersions: 2})
	if err != nil {
		return nil, err
	}
	// Scaled profile names carry a "/" ("PC/4"); datastore names are
	// path-safe, so slashes become dashes.
	name := strings.ReplaceAll(p.Name, "/", "-")
	if _, err := store.Create(name, train.ClassNames, train.GeneNames,
		train.Values[:initial], train.Labels[:initial]); err != nil {
		return nil, err
	}
	// Force the transposed index so the fast path exercises incremental
	// index growth, the serving-shaped configuration.
	if snap, err := store.Get(name); err == nil && snap.Dataset.NumItems() > 0 {
		snap.Dataset.ItemRows(0)
	}

	header(w, fmt.Sprintf("Streaming refresh: %s (%d rows initial, %d appends of ~%d rows)",
		p.Name, initial, chunks, held/chunks))
	fmt.Fprintf(w, "%-4s %7s %7s %5s %8s %8s %10s %10s %10s %9s %8s\n",
		"ver", "rows", "append", "fast", "changed", "reused", "incr ms", "wall ms", "full ms", "train ms", "speedup")

	var out []RefreshPoint
	at := initial
	for c := 0; c < chunks; c++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		end := initial + (c+1)*held/chunks
		if end <= at {
			continue
		}
		start := time.Now()
		snap, err := store.Append(name, train.Values[at:end], train.Labels[at:end])
		if err != nil {
			return out, err
		}
		incr := time.Since(start)

		m := &dataset.Matrix{
			GeneNames:  train.GeneNames,
			Values:     train.Values[:end],
			Labels:     train.Labels[:end],
			ClassNames: train.ClassNames,
		}
		start = time.Now()
		dz, err := discretize.FitMatrix(m)
		if err != nil {
			return out, err
		}
		full, err := dz.Transform(m)
		if err != nil {
			return out, err
		}
		if full.NumItems() > 0 {
			full.ItemRows(0)
		}
		fullDur := time.Since(start)

		start = time.Now()
		if _, err := rcbt.TrainContext(ctx, snap.Dataset, rcbt.DefaultConfig()); err != nil {
			return out, err
		}
		trainDur := time.Since(start)

		pt := RefreshPoint{
			Dataset:       p.Name,
			Version:       snap.Version,
			Rows:          end,
			Genes:         train.NumGenes(),
			AppendedRows:  end - at,
			FastPath:      snap.Refresh.FastPath,
			ChangedGenes:  snap.Refresh.ChangedGenes,
			ReusedGenes:   snap.Refresh.ReusedGenes,
			IncrementalMs: float64(snap.Refresh.BuildNanos) / 1e6,
			AppendMs:      float64(incr.Nanoseconds()) / 1e6,
			FullMs:        float64(fullDur.Nanoseconds()) / 1e6,
			TrainMs:       float64(trainDur.Nanoseconds()) / 1e6,
		}
		if pt.IncrementalMs > 0 {
			pt.Speedup = pt.FullMs / pt.IncrementalMs
		}
		out = append(out, pt)
		fmt.Fprintf(w, "%-4d %7d %7d %5v %8d %8d %10.2f %10.2f %10.2f %9.2f %7.2fx\n",
			pt.Version, pt.Rows, pt.AppendedRows, pt.FastPath,
			pt.ChangedGenes, pt.ReusedGenes,
			pt.IncrementalMs, pt.AppendMs, pt.FullMs, pt.TrainMs, pt.Speedup)
		at = end
	}
	return out, nil
}
