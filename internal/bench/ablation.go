package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/farmer"
)

// AblationPoint is one configuration's cost measurement.
type AblationPoint struct {
	Dataset string
	Variant string
	Elapsed time.Duration
	Nodes   int
	Aborted bool
}

// AblationEngines compares the three FARMER table engines (naive
// materialized tables, prefix tree, bitsets) at identical pruning — the
// paper's "FARMER vs FARMER+prefix" isolation of the representation.
func AblationEngines(w io.Writer, scale Scale, minsupFrac, minconf float64, budget int) ([]AblationPoint, error) {
	if minsupFrac == 0 {
		minsupFrac = 0.85
	}
	if budget == 0 {
		budget = 3_000_000
	}
	var out []AblationPoint
	header(w, fmt.Sprintf("Ablation: projected-table engine (minsup=%.2f minconf=%.2f)", minsupFrac, minconf))
	fmt.Fprintf(w, "%-10s %-10s %10s %12s\n", "dataset", "engine", "time", "nodes")
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		for _, eng := range []farmer.Engine{farmer.EngineNaive, farmer.EnginePrefix, farmer.EngineBitset} {
			var res *farmer.Result
			var err error
			elapsed := timeIt(func() {
				res, err = farmer.Mine(pr.dTrain, 0, farmer.Config{
					Minsup: ms, Minconf: minconf, Engine: eng, MaxNodes: budget,
				})
			})
			if err != nil {
				return nil, err
			}
			pt := AblationPoint{
				Dataset: p.Name, Variant: eng.String(),
				Elapsed: elapsed, Nodes: res.Stats.Nodes, Aborted: res.Aborted,
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%-10s %-10s %10s %12d\n", pt.Dataset, pt.Variant, fmtDur(pt.Elapsed, pt.Aborted), pt.Nodes)
		}
	}
	return out, nil
}

// AblationPruning measures MineTopkRGS with each optimization disabled
// in turn: top-k pruning, backward pruning, single-item seeding, the
// class-internal row ordering, and dynamic minsup raising. budget caps
// enumeration nodes per run (0 = 3M); exceeded runs report DNF.
func AblationPruning(w io.Writer, scale Scale, minsupFrac float64, k, budget int) ([]AblationPoint, error) {
	if minsupFrac == 0 {
		minsupFrac = 0.8
	}
	if k == 0 {
		k = 10
	}
	if budget == 0 {
		budget = 3_000_000
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"full", func(c *core.Config) {}},
		{"-topk", func(c *core.Config) { c.TopKPruning = false }},
		{"-backward", func(c *core.Config) { c.BackwardPruning = false }},
		{"-seedinit", func(c *core.Config) { c.SeedInit = false }},
		{"-roworder", func(c *core.Config) { c.SortRowsByItemCount = false }},
		{"-dynminsup", func(c *core.Config) { c.DynamicMinsup = false }},
	}
	var out []AblationPoint
	header(w, fmt.Sprintf("Ablation: MineTopkRGS optimizations (minsup=%.2f k=%d)", minsupFrac, k))
	fmt.Fprintf(w, "%-10s %-12s %10s %12s\n", "dataset", "variant", "time", "nodes")
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		for _, v := range variants {
			cfg := core.DefaultConfig(ms, k)
			cfg.MaxNodes = budget
			v.mod(&cfg)
			var nodes int
			aborted := false
			var err error
			elapsed := timeIt(func() {
				var res *core.Result
				res, err = core.Mine(pr.dTrain, 0, cfg)
				if res != nil {
					nodes = res.Stats.Nodes
					aborted = res.Stats.Aborted
				}
			})
			if err != nil {
				return nil, err
			}
			pt := AblationPoint{Dataset: p.Name, Variant: v.name, Elapsed: elapsed, Nodes: nodes, Aborted: aborted}
			out = append(out, pt)
			fmt.Fprintf(w, "%-10s %-12s %10s %12d\n", pt.Dataset, pt.Variant, fmtDur(pt.Elapsed, pt.Aborted), pt.Nodes)
		}
	}
	return out, nil
}
