package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// AblationPoint is one configuration's cost measurement.
type AblationPoint struct {
	Dataset string
	Variant string
	Elapsed time.Duration
	Nodes   int
	Aborted bool
}

// AblationEngines compares the three FARMER table engines (naive
// materialized tables, prefix tree, bitsets) at identical pruning — the
// paper's "FARMER vs FARMER+prefix" isolation of the representation.
func AblationEngines(ctx context.Context, w io.Writer, scale Scale, minsupFrac, minconf float64, budget int) ([]AblationPoint, error) {
	if minsupFrac == 0 {
		minsupFrac = 0.85
	}
	if budget == 0 {
		budget = 3_000_000
	}
	var out []AblationPoint
	header(w, fmt.Sprintf("Ablation: projected-table engine (minsup=%.2f minconf=%.2f)", minsupFrac, minconf))
	fmt.Fprintf(w, "%-10s %-10s %10s %12s\n", "dataset", "engine", "time", "nodes")
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		for _, variant := range []string{"naive", "prefix", "bitset"} {
			var stats engine.Stats
			var err error
			elapsed := timeIt(func() {
				_, stats, err = mineVia(ctx, "farmer", pr.dTrain, engine.Options{
					Minsup: ms, Minconf: minconf, Variant: variant,
					MaxNodes: budget, Workers: 1,
				})
			})
			if err != nil {
				return nil, err
			}
			pt := AblationPoint{
				Dataset: p.Name, Variant: variant,
				Elapsed: elapsed, Nodes: stats.Nodes, Aborted: stats.Aborted,
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%-10s %-10s %10s %12d\n", pt.Dataset, pt.Variant, fmtDur(pt.Elapsed, pt.Aborted), pt.Nodes)
		}
	}
	return out, nil
}

// AblationPruning measures MineTopkRGS with each optimization disabled
// in turn: top-k pruning, backward pruning, single-item seeding, the
// class-internal row ordering, and dynamic minsup raising. budget caps
// enumeration nodes per run (0 = 3M); exceeded runs report DNF.
func AblationPruning(ctx context.Context, w io.Writer, scale Scale, minsupFrac float64, k, budget int) ([]AblationPoint, error) {
	if minsupFrac == 0 {
		minsupFrac = 0.8
	}
	if k == 0 {
		k = 10
	}
	if budget == 0 {
		budget = 3_000_000
	}
	variants := []struct {
		name string
		mod  func(*engine.Options)
	}{
		{"full", func(o *engine.Options) {}},
		{"-topk", func(o *engine.Options) { o.DisableTopKPruning = true }},
		{"-backward", func(o *engine.Options) { o.DisableBackwardPruning = true }},
		{"-seedinit", func(o *engine.Options) { o.DisableSeedInit = true }},
		{"-roworder", func(o *engine.Options) { o.DisableRowSort = true }},
		{"-dynminsup", func(o *engine.Options) { o.DisableDynamicMinsup = true }},
	}
	var out []AblationPoint
	header(w, fmt.Sprintf("Ablation: MineTopkRGS optimizations (minsup=%.2f k=%d)", minsupFrac, k))
	fmt.Fprintf(w, "%-10s %-12s %10s %12s\n", "dataset", "variant", "time", "nodes")
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		ms := minsupAbs(pr.dTrain, minsupFrac)
		for _, v := range variants {
			opts := engine.Options{K: k, Minsup: ms, MaxNodes: budget, Workers: 1}
			v.mod(&opts)
			var stats engine.Stats
			var err error
			elapsed := timeIt(func() {
				_, stats, err = mineVia(ctx, "topk", pr.dTrain, opts)
			})
			if err != nil {
				return nil, err
			}
			pt := AblationPoint{Dataset: p.Name, Variant: v.name, Elapsed: elapsed, Nodes: stats.Nodes, Aborted: stats.Aborted}
			out = append(out, pt)
			fmt.Fprintf(w, "%-10s %-12s %10s %12d\n", pt.Dataset, pt.Variant, fmtDur(pt.Elapsed, pt.Aborted), pt.Nodes)
		}
	}
	return out, nil
}
