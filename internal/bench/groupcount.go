package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
)

// GroupCountPoint records how many rule groups exist at one support
// level — the paper's motivating observation that even rule groups
// (let alone rules) number in the tens of thousands on gene expression
// data, which is why per-row top-k lists are needed.
type GroupCountPoint struct {
	Dataset string
	Minsup  float64
	Minconf float64
	Groups  int
	Capped  bool // search budget hit: the true count is larger
}

// GroupCount regenerates the Section 1 motivation: the total number of
// rule groups (upper bounds) at the paper's confidence settings as
// support drops, per dataset.
func GroupCount(ctx context.Context, w io.Writer, scale Scale, minsups []float64, minconf float64, budget int) ([]GroupCountPoint, error) {
	if len(minsups) == 0 {
		minsups = []float64{0.95, 0.9, 0.85, 0.8}
	}
	if budget == 0 {
		budget = 2_000_000
	}
	header(w, fmt.Sprintf("Section 1 motivation: rule group counts (minconf=%.2f)", minconf))
	fmt.Fprintf(w, "%-10s %-8s %12s %8s\n", "dataset", "minsup", "groups", "capped")
	var out []GroupCountPoint
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		for _, frac := range minsups {
			ms := minsupAbs(pr.dTrain, frac)
			res, stats, err := mineVia(ctx, "farmer", pr.dTrain, engine.Options{
				Minsup: ms, Minconf: minconf, Variant: "bitset",
				MaxNodes: budget, Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			pt := GroupCountPoint{
				Dataset: p.Name, Minsup: frac, Minconf: minconf,
				Groups: len(res.Groups), Capped: stats.Aborted,
			}
			out = append(out, pt)
			capped := ""
			if pt.Capped {
				capped = ">= (capped)"
			}
			fmt.Fprintf(w, "%-10s %-8.2f %12d %8s\n", pt.Dataset, pt.Minsup, pt.Groups, capped)
		}
	}
	return out, nil
}
