package bench

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/engine"
)

// PerfPoint is one (miner, workers) cell of the perf trajectory: a
// testing.Benchmark measurement of repeated full mining runs on one
// dataset profile. The derived nodes/sec rate is the number the
// zero-allocation kernel work is tracked against across PRs; allocs/op
// catches steady-state allocation regressions at the whole-miner level.
type PerfPoint struct {
	Dataset     string  `json:"dataset"`
	Miner       string  `json:"miner"`
	Workers     int     `json:"workers"`
	Minsup      float64 `json:"minsup"`
	K           int     `json:"k,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Nodes       int     `json:"nodes"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	Groups      int     `json:"groups"`
	// SeqNodes is the node count of the same miner's Workers=1 cell;
	// NodesOverheadRatio = Nodes/SeqNodes measures parallel
	// overexploration (floor-propagation lag makes workers visit nodes
	// a sequential run prunes). Only set on Workers>1 cells.
	SeqNodes           int     `json:"seq_nodes,omitempty"`
	NodesOverheadRatio float64 `json:"nodes_overhead_ratio,omitempty"`
}

// PerfConfig tunes the trajectory run. Zero fields take the defaults
// below: the fig6 PC profile mined by the three row-enumeration miners,
// sequentially and with four workers.
type PerfConfig struct {
	Scale   Scale
	Dataset string  // profile base name; default "PC"
	Minsup  float64 // relative support; default 0.9
	K       int     // top-k list size for the topk miner; default 10
	Budget  int     // node cap per run (0 = DefaultFig6Config's baseline budget)
	Miners  []string
	Workers []int
}

// PerfTrajectory benchmarks every configured miner×workers cell with
// the testing package's benchmark driver (so ns/op and allocs/op come
// from the same machinery as `go test -bench`), writes a paper-style
// table to w, and returns the points for JSON archiving.
func PerfTrajectory(ctx context.Context, w io.Writer, cfg PerfConfig) ([]PerfPoint, error) {
	if cfg.Dataset == "" {
		cfg.Dataset = "PC"
	}
	if cfg.Minsup == 0 {
		cfg.Minsup = 0.9
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultFig6Config().BaselineBudget
	}
	if len(cfg.Miners) == 0 {
		cfg.Miners = []string{"topk", "farmer", "carpenter"}
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4}
	}

	var pr *prepared
	for _, p := range profiles(cfg.Scale) {
		if baseName(p.Name) == cfg.Dataset {
			var err error
			if pr, err = prepare(p); err != nil {
				return nil, err
			}
			break
		}
	}
	if pr == nil {
		return nil, fmt.Errorf("bench: no profile named %q", cfg.Dataset)
	}
	ms := minsupAbs(pr.dTrain, cfg.Minsup)

	header(w, fmt.Sprintf("Perf trajectory on %s (rows=%d items=%d minsup=%.2f)",
		pr.profile.Name, pr.dTrain.NumRows(), pr.dTrain.NumItems(), cfg.Minsup))
	fmt.Fprintf(w, "%-12s %8s %14s %12s %12s %14s\n",
		"miner", "workers", "ns/op", "B/op", "allocs/op", "nodes/s")

	var out []PerfPoint
	for _, miner := range cfg.Miners {
		seqNodes := 0
		for _, workers := range cfg.Workers {
			opts := engine.Options{Minsup: ms, MaxNodes: cfg.Budget, Workers: workers}
			if miner == "topk" {
				opts.K = cfg.K
			}
			// One reference run supplies node and group counts (identical
			// on every repetition: the enumeration is deterministic).
			res, stats, err := mineVia(ctx, miner, pr.dTrain, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: perf %s/w%d: %w", miner, workers, err)
			}
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := mineVia(ctx, miner, pr.dTrain, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			groups := len(res.Groups)
			if groups == 0 {
				groups = len(res.Closed)
			}
			pt := PerfPoint{
				Dataset:     pr.profile.Name,
				Miner:       miner,
				Workers:     workers,
				Minsup:      cfg.Minsup,
				NsPerOp:     br.NsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
				Nodes:       stats.Nodes,
				NodesPerSec: float64(stats.Nodes) * 1e9 / float64(br.NsPerOp()),
				Groups:      groups,
			}
			if miner == "topk" {
				pt.K = cfg.K
			}
			if workers == 1 {
				seqNodes = stats.Nodes
			} else if seqNodes > 0 {
				pt.SeqNodes = seqNodes
				pt.NodesOverheadRatio = float64(stats.Nodes) / float64(seqNodes)
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%-12s %8d %14d %12d %12d %14.0f\n",
				miner, workers, pt.NsPerOp, pt.BytesPerOp, pt.AllocsPerOp, pt.NodesPerSec)
		}
	}
	return out, nil
}
