// Package bench regenerates every table and figure of the paper's
// evaluation section (Section 6) on the synthetic dataset profiles:
//
//	Table 1  — dataset characteristics after discretization
//	Figure 6 — mining runtime vs minimum support and vs k
//	Table 2  — classification accuracy of all seven methods
//	Figure 7 — RCBT accuracy vs nl
//	Figure 8 — chi-square gene ranks vs rule participation
//	§6.2     — default-class and standby-classifier statistics,
//	           minsup sensitivity sweep
//
// Each experiment writes paper-style rows to an io.Writer and returns
// structured results so tests and the benchrunner CLI share one
// implementation. Absolute times are hardware-specific; the reproduced
// claims are the relative orderings.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/synth"
)

// Scale divides profile gene counts for quick runs (1 = paper scale).
type Scale int

// profiles returns the four dataset profiles at the given scale.
func profiles(scale Scale) []synth.Profile {
	ps := synth.Profiles()
	if scale <= 1 {
		return ps
	}
	for i := range ps {
		ps[i] = synth.Scaled(ps[i], int(scale))
	}
	return ps
}

// prepared bundles one profile's generated and discretized data.
type prepared struct {
	profile synth.Profile
	train   *dataset.Matrix
	test    *dataset.Matrix
	dz      *discretize.Discretizer
	dTrain  *dataset.Dataset
	dTest   *dataset.Dataset
}

// prepare generates and discretizes a profile.
func prepare(p synth.Profile) (*prepared, error) {
	train, test, err := synth.Generate(p)
	if err != nil {
		return nil, err
	}
	dz, err := discretize.FitMatrix(train)
	if err != nil {
		return nil, err
	}
	dTrain, err := dz.Transform(train)
	if err != nil {
		return nil, err
	}
	dTest, err := dz.Transform(test)
	if err != nil {
		return nil, err
	}
	return &prepared{profile: p, train: train, test: test, dz: dz, dTrain: dTrain, dTest: dTest}, nil
}

// minsupAbs converts a relative support to an absolute count over the
// consequent class (label 0), at least 1.
func minsupAbs(d *dataset.Dataset, frac float64) int {
	n := d.ClassCount(0)
	v := int(frac * float64(n))
	if float64(v) < frac*float64(n) {
		v++
	}
	if v < 1 {
		v = 1
	}
	return v
}

// timeIt measures fn, returning the elapsed wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// fmtDur renders a duration in seconds for table rows; "DNF" for
// aborted runs.
func fmtDur(d time.Duration, aborted bool) string {
	if aborted {
		return "DNF"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
