package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/c45"
	"repro/internal/stats"
	"repro/internal/svm"
)

// TopGenesPoint is one (dataset, classifier, #genes) accuracy cell.
type TopGenesPoint struct {
	Dataset    string
	Classifier string
	NumGenes   int // 0 = all discretization-selected genes
	Accuracy   float64
}

// TopGenes regenerates the Section 6.2 side experiment: SVM and C4.5
// trained on only the top-N entropy-ranked genes versus on all genes
// selected by discretization. The paper's observation — and the setup
// for Figure 8's argument — is that truncating to top-ranked genes
// often hurts, because low-ranked genes carry necessary signal.
func TopGenes(w io.Writer, scale Scale, tops []int, seed int64) ([]TopGenesPoint, error) {
	if len(tops) == 0 {
		tops = []int{10, 20, 30, 40}
	}
	header(w, "Section 6.2: SVM and C4.5 with top-N entropy-ranked genes")
	fmt.Fprintf(w, "%-10s %-6s", "dataset", "model")
	for _, n := range tops {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("top%d", n))
	}
	fmt.Fprintf(w, "%8s\n", "all")
	var out []TopGenesPoint
	for _, p := range profiles(scale) {
		pr, err := prepare(p)
		if err != nil {
			return nil, err
		}
		selected := pr.dz.SelectedGenes()
		if len(selected) == 0 {
			continue
		}
		// Entropy-rank the selected genes on the training data.
		labels := make([]int, pr.train.NumRows())
		for r, l := range pr.train.Labels {
			labels[r] = int(l)
		}
		type scored struct {
			gene  int
			score float64
		}
		ranked := make([]scored, len(selected))
		for i, g := range selected {
			ranked[i] = scored{g, stats.EntropyScore(pr.train.Column(g), labels, 2)}
		}
		sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].score > ranked[b].score })

		evalSet := func(genes []int) (svmAcc, treeAcc float64, err error) {
			mTrain := pr.train.SelectGenes(genes)
			mTest := pr.test.SelectGenes(genes)
			cfg := svm.DefaultConfig()
			cfg.Seed = seed
			model, err := svm.Train(mTrain, cfg)
			if err != nil {
				return 0, 0, err
			}
			tree, err := c45.TrainTree(mTrain, c45.DefaultConfig())
			if err != nil {
				return 0, 0, err
			}
			okS, okT := 0, 0
			for r, row := range mTest.Values {
				if model.Predict(row) == mTest.Labels[r] {
					okS++
				}
				if tree.Predict(row) == mTest.Labels[r] {
					okT++
				}
			}
			n := float64(mTest.NumRows())
			return float64(okS) / n, float64(okT) / n, nil
		}

		sets := make([][]int, 0, len(tops)+1)
		labelsOf := make([]int, 0, len(tops)+1)
		for _, n := range tops {
			if n > len(ranked) {
				n = len(ranked)
			}
			genes := make([]int, n)
			for i := 0; i < n; i++ {
				genes[i] = ranked[i].gene
			}
			sets = append(sets, genes)
			labelsOf = append(labelsOf, n)
		}
		sets = append(sets, selected)
		labelsOf = append(labelsOf, 0)

		svmRow := fmt.Sprintf("%-10s %-6s", p.Name, "SVM")
		treeRow := fmt.Sprintf("%-10s %-6s", p.Name, "C4.5")
		for i, genes := range sets {
			sa, ta, err := evalSet(genes)
			if err != nil {
				return nil, err
			}
			out = append(out,
				TopGenesPoint{p.Name, "SVM", labelsOf[i], sa},
				TopGenesPoint{p.Name, "C4.5", labelsOf[i], ta},
			)
			svmRow += fmt.Sprintf("%7.1f%%", sa*100)
			treeRow += fmt.Sprintf("%7.1f%%", ta*100)
		}
		fmt.Fprintln(w, svmRow)
		fmt.Fprintln(w, treeRow)
	}
	return out, nil
}
