package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
}

func TestNewZeroUniverse(t *testing.T) {
	s := New(0)
	if !s.IsEmpty() {
		t.Fatal("zero-universe set should be empty")
	}
	if s.Contains(0) {
		t.Fatal("zero-universe set should contain nothing")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("after Add(%d), Contains(%d) = false", i, i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("after Remove(64), Contains(64) = true")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	s := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(10) should panic for universe size 10")
		}
	}()
	s.Add(10)
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("out-of-range Contains should be false, not panic")
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, 1, 3, 5)
	if got := s.Indices(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Indices() = %v, want [1 3 5]", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(200, 1, 5, 100, 150)
	b := FromIndices(200, 5, 100, 199)

	if got := a.Intersect(b).Indices(); !reflect.DeepEqual(got, []int{5, 100}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b).Indices(); !reflect.DeepEqual(got, []int{1, 5, 100, 150, 199}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Difference(b).Indices(); !reflect.DeepEqual(got, []int{1, 150}) {
		t.Fatalf("Difference = %v", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched universes should panic")
		}
	}()
	a.IntersectWith(b)
}

func TestContainsAll(t *testing.T) {
	a := FromIndices(100, 1, 2, 3, 64, 65)
	b := FromIndices(100, 2, 64)
	if !a.ContainsAll(b) {
		t.Fatal("a should contain b")
	}
	if b.ContainsAll(a) {
		t.Fatal("b should not contain a")
	}
	if !a.ContainsAll(New(100)) {
		t.Fatal("every set contains the empty set")
	}
}

func TestIntersects(t *testing.T) {
	a := FromIndices(100, 1, 99)
	b := FromIndices(100, 99)
	c := FromIndices(100, 50)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
}

func TestEqualCloneCopyFrom(t *testing.T) {
	a := FromIndices(100, 7, 70)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should equal original")
	}
	b.Add(8)
	if a.Equal(b) {
		t.Fatal("mutating clone must not affect original")
	}
	if a.Contains(8) {
		t.Fatal("original must be unaffected by clone mutation")
	}
	c := New(100)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom should produce an equal set")
	}
	if a.Equal(New(50)) {
		t.Fatal("sets over different universes are not equal")
	}
}

func TestFillClearTrim(t *testing.T) {
	s := New(70) // not a multiple of 64: exercises trim
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Fatalf("after Fill, Count() = %d, want 70", got)
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("after Clear, set should be empty")
	}
}

func TestMinMax(t *testing.T) {
	s := New(200)
	if _, ok := s.Min(); ok {
		t.Fatal("Min of empty set should report !ok")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max of empty set should report !ok")
	}
	s.Add(67)
	s.Add(130)
	s.Add(5)
	if got, _ := s.Min(); got != 5 {
		t.Fatalf("Min = %d, want 5", got)
	}
	if got, _ := s.Max(); got != 130 {
		t.Fatalf("Max = %d, want 130", got)
	}
}

func TestCountBelow(t *testing.T) {
	s := FromIndices(200, 0, 63, 64, 100, 199)
	cases := []struct{ limit, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 2}, {65, 3}, {101, 4}, {200, 5}, {500, 5},
	}
	for _, c := range cases {
		if got := s.CountBelow(c.limit); got != c.want {
			t.Errorf("CountBelow(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
}

func TestAnyBelow(t *testing.T) {
	s := FromIndices(200, 10, 70, 150)
	excl := FromIndices(200, 10, 70)
	if s.AnyBelow(100, excl) {
		t.Fatal("elements below 100 are all excluded")
	}
	if !s.AnyBelow(151, excl) {
		t.Fatal("150 is below 151 and not excluded")
	}
	if s.AnyBelow(0, New(200)) {
		t.Fatal("AnyBelow(0) must be false")
	}
	if !s.AnyBelow(1000, New(200)) {
		t.Fatal("limit beyond the universe should clamp, not panic")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, 1, 2, 3, 4)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Fatalf("early stop saw %v, want [1 2]", seen)
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 1, 3).String(); got != "{1, 3}" {
		t.Fatalf("String() = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestKeyEquality(t *testing.T) {
	a := FromIndices(100, 3, 77)
	b := FromIndices(100, 3, 77)
	c := FromIndices(100, 3, 78)
	if a.Key() != b.Key() {
		t.Fatal("equal sets must share a key")
	}
	if a.Key() == c.Key() {
		t.Fatal("different sets must have different keys")
	}
}

// randomSet builds a set plus mirror map from random data for property tests.
func randomSet(r *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	m := make(map[int]bool)
	for i := 0; i < n/3; i++ {
		v := r.Intn(n)
		s.Add(v)
		m[v] = true
	}
	return s, m
}

func TestQuickMirrorsMapSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s, m := randomSet(r, n)
		if s.Count() != len(m) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| == |A| + |B| - |A ∩ B|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		return a.Union(b).Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferencePartition(t *testing.T) {
	// A = (A \ B) ⊎ (A ∩ B), disjoint union
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		diff := a.Difference(b)
		inter := a.Intersect(b)
		if diff.Intersects(inter) {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainsAllIffDifferenceEmpty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		return a.ContainsAll(b) == b.Difference(a).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountBelowConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s, m := randomSet(r, n)
		limit := r.Intn(n + 10)
		want := 0
		for v := range m {
			if v < limit {
				want++
			}
		}
		return s.CountBelow(limit) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, _ := randomSet(r, 256)
	y, _ := randomSet(r, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.IntersectionCount(y)
	}
}
