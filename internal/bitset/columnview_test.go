package bitset

import (
	"math/rand"
	"testing"
)

// buildView constructs a ColumnView over numItems materializing exactly
// the items in `used`, builds it from rows, and returns it.
func buildView(numItems int, used []int, rows []*Set) *ColumnView {
	v := NewColumnView(numItems, FromIndices(numItems, used...))
	v.Build(rows)
	return v
}

// readColumn reconstructs an item's column from the strided view words,
// the way MatchRows consumes them.
func readColumn(v *ColumnView, item int) *Set {
	col := New(v.Rows())
	base := int(v.ColumnBase(item))
	for r := 0; r < v.Rows(); r++ {
		w := v.words[base+(r/wordBits)*wordBits]
		if w&(1<<uint(r%wordBits)) != 0 {
			col.Add(r)
		}
	}
	return col
}

// TestColumnViewBuild: every materialized column must equal the naive
// per-item transpose, across universe/batch shapes straddling word and
// block boundaries — including partial final blocks whose padding rows
// must read as absent.
func TestColumnViewBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ numItems, numRows int }{
		{1, 1}, {64, 64}, {65, 63}, {190, 1}, {70, 130}, {128, 0},
		{300, 257}, {64, 200},
	} {
		rows := make([]*Set, tc.numRows)
		for r := range rows {
			rows[r] = New(tc.numItems)
			for k := 0; k < rng.Intn(tc.numItems+1); k++ {
				rows[r].Add(rng.Intn(tc.numItems))
			}
		}
		used := make([]int, 0, tc.numItems)
		for i := 0; i < tc.numItems; i += 1 + i%3 {
			used = append(used, i)
		}
		v := buildView(tc.numItems, used, rows)
		if v.Rows() != tc.numRows {
			t.Fatalf("items=%d rows=%d: Rows() = %d", tc.numItems, tc.numRows, v.Rows())
		}
		want := naiveTranspose(tc.numItems, rows)
		for _, i := range used {
			if got := readColumn(v, i); !got.Equal(want[i]) {
				t.Fatalf("items=%d rows=%d: col %d = %v, want %v",
					tc.numItems, tc.numRows, i, got, want[i])
			}
		}
	}
}

// TestColumnViewReuse: rebuilding one view with batches of shrinking and
// growing sizes must not leak rows between builds; bases must be
// re-derived after a Grow.
func TestColumnViewReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	numItems := 100
	used := []int{0, 17, 63, 64, 99}
	v := NewColumnView(numItems, FromIndices(numItems, used...))
	for _, n := range []int{70, 3, 0, 129, 64, 1} {
		rows := make([]*Set, n)
		for r := range rows {
			rows[r] = New(numItems)
			for k := 0; k < rng.Intn(6); k++ {
				rows[r].Add(rng.Intn(numItems))
			}
		}
		v.Build(rows)
		want := naiveTranspose(numItems, rows)
		for _, i := range used {
			if got := readColumn(v, i); !got.Equal(want[i]) {
				t.Fatalf("n=%d: col %d = %v, want %v", n, i, got, want[i])
			}
		}
	}
}

// TestColumnViewMatchRows pins the fused sweep against the naive
// composition — mask ∩ columns, union into acc, scatter-add — across
// antecedent sizes 0..4 (covering the specialized 1- and 2-base sweeps
// and the general loop).
func TestColumnViewMatchRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	numItems, numRows := 90, 150
	rows := make([]*Set, numRows)
	for r := range rows {
		rows[r] = New(numItems)
		for k := 0; k < rng.Intn(20); k++ {
			rows[r].Add(rng.Intn(numItems))
		}
	}
	used := make([]int, numItems)
	for i := range used {
		used[i] = i
	}
	v := buildView(numItems, used, rows)
	cols := naiveTranspose(numItems, rows)

	for trial := 0; trial < 60; trial++ {
		nAnt := trial % 5
		items := make([]int, 0, nAnt)
		bases := make([]int32, 0, nAnt)
		for len(items) < nAnt {
			it := rng.Intn(numItems)
			items = append(items, it)
			bases = append(bases, v.ColumnBase(it))
		}
		mask := New(numRows)
		for k := 0; k < rng.Intn(numRows); k++ {
			mask.Add(rng.Intn(numRows))
		}
		delta := float64(1+rng.Intn(8)) / 4

		wantMatch := mask.Clone()
		for _, it := range items {
			wantMatch.IntersectWith(cols[it])
		}
		acc := New(numRows)
		accWant := New(numRows)
		for k := 0; k < rng.Intn(10); k++ { // pre-seeded acc must be unioned into
			r := rng.Intn(numRows)
			acc.Add(r)
			accWant.Add(r)
		}
		accWant.UnionWith(wantMatch)

		vals := make([]float64, numRows)
		wantVals := make([]float64, numRows)
		for r := range vals {
			vals[r] = float64(rng.Intn(5))
			wantVals[r] = vals[r]
		}
		for _, r := range wantMatch.Indices() {
			wantVals[r] += delta
		}

		v.MatchRows(mask, bases, acc, vals, delta)
		if !acc.Equal(accWant) {
			t.Fatalf("trial %d (%d ants): acc = %v, want %v", trial, nAnt, acc, accWant)
		}
		for r := range vals {
			if vals[r] != wantVals[r] {
				t.Fatalf("trial %d (%d ants): vals[%d] = %v, want %v",
					trial, nAnt, r, vals[r], wantVals[r])
			}
		}
	}
}

// TestColumnViewAllocFree pins the steady state: once grown, Build and
// MatchRows perform zero heap allocations.
func TestColumnViewAllocFree(t *testing.T) {
	numItems := 130
	rows := make([]*Set, 100)
	for r := range rows {
		rows[r] = FromIndices(numItems, r%numItems, (r*11)%numItems)
	}
	v := NewColumnView(numItems, FromIndices(numItems, 3, 70, 129))
	v.Build(rows) // warm-up growth
	bases := []int32{v.ColumnBase(3), v.ColumnBase(70)}
	mask := New(100)
	mask.FillBelow(100)
	acc := New(100)
	vals := make([]float64, 100)
	if allocs := testing.AllocsPerRun(100, func() {
		v.Build(rows)
		v.MatchRows(mask, bases, acc, vals, 0.5)
	}); allocs != 0 {
		t.Errorf("Build+MatchRows steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestColumnViewPanics: contract violations must fail loudly, not
// corrupt the sweep.
func TestColumnViewPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := NewColumnView(100, FromIndices(100, 5))
	mustPanic("universe mismatch", func() { NewColumnView(100, FromIndices(90, 5)) })
	mustPanic("item out of range", func() { v.ColumnBase(100) })
	mustPanic("unmaterialized group", func() { v.ColumnBase(70) })
	mustPanic("row universe too small", func() { v.Build([]*Set{New(90)}) })
	v.Build([]*Set{FromIndices(100, 5)})
	mustPanic("short mask", func() {
		v.MatchRows(New(0), nil, New(64), make([]float64, 1), 1)
	})
}

// TestAddDeltaBelow pins the scatter-add against the naive index walk,
// across limits straddling word boundaries and the universe size.
func TestAddDeltaBelow(t *testing.T) {
	s := FromIndices(190, 0, 5, 63, 64, 100, 189)
	for _, limit := range []int{-1, 0, 1, 6, 63, 64, 65, 101, 190, 400} {
		dst := make([]float64, 190)
		want := make([]float64, 190)
		for i := range dst {
			dst[i] = float64(i) / 3
			want[i] = dst[i]
		}
		for _, i := range s.Indices() {
			if i < limit {
				want[i] += 2.5
			}
		}
		s.AddDeltaBelow(dst, 2.5, limit)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("limit %d: dst[%d] = %v, want %v", limit, i, dst[i], want[i])
			}
		}
	}

	dst := make([]float64, 190)
	if allocs := testing.AllocsPerRun(100, func() {
		s.AddDeltaBelow(dst, 1, 190)
	}); allocs != 0 {
		t.Errorf("AddDeltaBelow: %.1f allocs/op, want 0", allocs)
	}
}
