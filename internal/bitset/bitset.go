// Package bitset implements dense bit sets backed by uint64 words.
//
// Sets are the fundamental representation for row supports and item
// supports throughout the miner: gene expression datasets have at most a
// few hundred rows, so a row set is a handful of machine words and all
// set algebra (intersection, union, containment) reduces to a short loop
// of bitwise operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bit set. The zero value is an empty set over an
// empty universe; use New to create a set able to hold n elements.
// Elements are non-negative ints in [0, n).
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over {0,...,n-1} containing the given elements.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// Add inserts element i into the set.
//
//vet:allocfree
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes element i from the set.
//
//vet:allocfree
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
//
//vet:allocfree
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
//
//vet:allocfree
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
//
//vet:allocfree
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of other. The two sets must
// share a universe size.
//
//vet:allocfree
func (s *Set) CopyFrom(other *Set) {
	s.mustMatch(other)
	copy(s.words, other.words)
}

func (s *Set) mustMatch(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, other.n))
	}
}

// IntersectWith replaces s with s ∩ other.
//
//vet:allocfree
func (s *Set) IntersectWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// UnionWith replaces s with s ∪ other.
//
//vet:allocfree
func (s *Set) UnionWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// DifferenceWith replaces s with s \ other.
//
//vet:allocfree
func (s *Set) DifferenceWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// IntersectInto overwrites s with a ∩ b in a single word sweep. All
// three sets must share a universe; s may alias a or b (in-place use).
//
//vet:allocfree
func (s *Set) IntersectInto(a, b *Set) {
	s.mustMatch(a)
	s.mustMatch(b)
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// IntersectCountBelow overwrites s with a ∩ b and returns the number of
// elements strictly below limit and in total, all in one word sweep —
// the fused form of IntersectInto + CountBelow + Count the enumeration
// kernel runs per node. s may alias a or b.
//
//vet:allocfree
func (s *Set) IntersectCountBelow(a, b *Set, limit int) (below, total int) {
	s.mustMatch(a)
	s.mustMatch(b)
	if limit < 0 {
		limit = 0
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	rem := limit % wordBits
	for i := range s.words {
		w := a.words[i] & b.words[i]
		s.words[i] = w
		c := bits.OnesCount64(w)
		total += c
		switch {
		case i < full:
			below += c
		case i == full && rem != 0:
			below += bits.OnesCount64(w & (1<<uint(rem) - 1))
		}
	}
	return below, total
}

// Intersect returns a new set s ∩ other.
func (s *Set) Intersect(other *Set) *Set {
	c := s.Clone()
	c.IntersectWith(other)
	return c
}

// Union returns a new set s ∪ other.
func (s *Set) Union(other *Set) *Set {
	c := s.Clone()
	c.UnionWith(other)
	return c
}

// Difference returns a new set s \ other.
func (s *Set) Difference(other *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(other)
	return c
}

// IntersectionCount returns |s ∩ other| without allocating.
//
//vet:allocfree
func (s *Set) IntersectionCount(other *Set) int {
	s.mustMatch(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// ContainsAll reports whether other ⊆ s.
//
//vet:allocfree
func (s *Set) ContainsAll(other *Set) bool {
	s.mustMatch(other)
	for i, w := range other.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ other is non-empty.
//
//vet:allocfree
func (s *Set) Intersects(other *Set) bool {
	s.mustMatch(other)
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and other contain exactly the same elements.
//
//vet:allocfree
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clear removes all elements.
//
//vet:allocfree
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits beyond the universe size in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// AppendIndicesBelow appends the elements strictly below limit to buf
// in ascending order and returns the extended slice. When buf has
// sufficient capacity no allocation occurs — this is the no-alloc form
// of Indices the enumeration kernel feeds from its scratch arenas.
//
//vet:allocfree
func (s *Set) AppendIndicesBelow(buf []int, limit int) []int {
	if limit > s.n {
		limit = s.n
	}
	if limit <= 0 {
		return buf
	}
	full := limit / wordBits
	for wi := 0; wi < full; wi++ {
		for w := s.words[wi]; w != 0; w &= w - 1 {
			buf = append(buf, wi*wordBits+bits.TrailingZeros64(w))
		}
	}
	if rem := limit % wordBits; rem != 0 {
		for w := s.words[full] & (1<<uint(rem) - 1); w != 0; w &= w - 1 {
			buf = append(buf, full*wordBits+bits.TrailingZeros64(w))
		}
	}
	return buf
}

// ForEach calls fn for each element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest element and true, or (0, false) if empty.
func (s *Set) Min() (int, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Max returns the largest element and true, or (0, false) if empty.
func (s *Set) Max() (int, bool) {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + 63 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// CountBelow returns the number of elements strictly less than limit.
//
//vet:allocfree
func (s *Set) CountBelow(limit int) int {
	if limit <= 0 {
		return 0
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	c := 0
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	if rem := limit % wordBits; rem != 0 {
		c += bits.OnesCount64(s.words[full] & ((1 << uint(rem)) - 1))
	}
	return c
}

// AnyBelow reports whether the set contains an element strictly less
// than limit that is not present in excl.
//
//vet:allocfree
func (s *Set) AnyBelow(limit int, excl *Set) bool {
	s.mustMatch(excl)
	if limit <= 0 {
		return false
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	for i := 0; i < full; i++ {
		if s.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	if rem := limit % wordBits; rem != 0 {
		if s.words[full]&^excl.words[full]&((1<<uint(rem))-1) != 0 {
			return true
		}
	}
	return false
}

// AnyBelowAndNot reports whether (s ∩ b) \ excl contains an element
// strictly below limit, returning at the first word that proves it.
// It fuses the final intersection step of a closure with the backward
// closedness check, so a pruned node never pays for the full product.
//
//vet:allocfree
func (s *Set) AnyBelowAndNot(limit int, b, excl *Set) bool {
	s.mustMatch(b)
	s.mustMatch(excl)
	if limit <= 0 {
		return false
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	for i := 0; i < full; i++ {
		if s.words[i]&b.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	if rem := limit % wordBits; rem != 0 {
		if s.words[full]&b.words[full]&^excl.words[full]&(1<<uint(rem)-1) != 0 {
			return true
		}
	}
	return false
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Key returns a compact string usable as a map key identifying the set's
// contents. Sets over the same universe have equal keys iff they are
// equal.
func (s *Set) Key() string {
	b := make([]byte, len(s.words)*8)
	for i, w := range s.words {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(b)
}

// Hash64 returns a 64-bit FNV-1a hash of the set's contents, folding
// whole words. Equal sets over one universe hash identically; distinct
// sets may collide, so deduplication must confirm with Equal. Unlike
// Key it materializes nothing on the heap.
//
//vet:allocfree
func (s *Set) Hash64() uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, w := range s.words {
		h = (h ^ w) * prime64
	}
	return h
}
