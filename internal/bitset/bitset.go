// Package bitset implements dense bit sets backed by uint64 words.
//
// Sets are the fundamental representation for row supports and item
// supports throughout the miner: gene expression datasets have at most a
// few hundred rows, so a row set is a handful of machine words and all
// set algebra (intersection, union, containment) reduces to a short loop
// of bitwise operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bit set. The zero value is an empty set over an
// empty universe; use New to create a set able to hold n elements.
// Elements are non-negative ints in [0, n).
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over {0,...,n-1} containing the given elements.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// Add inserts element i into the set.
//
//vet:allocfree
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes element i from the set.
//
//vet:allocfree
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
//
//vet:allocfree
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
//
//vet:allocfree
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
//
//vet:allocfree
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of other. The two sets must
// share a universe size.
//
//vet:allocfree
func (s *Set) CopyFrom(other *Set) {
	s.mustMatch(other)
	copy(s.words, other.words)
}

func (s *Set) mustMatch(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, other.n))
	}
}

// IntersectWith replaces s with s ∩ other.
//
//vet:allocfree
func (s *Set) IntersectWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// UnionWith replaces s with s ∪ other.
//
//vet:allocfree
func (s *Set) UnionWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// DifferenceWith replaces s with s \ other.
//
//vet:allocfree
func (s *Set) DifferenceWith(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// IntersectInto overwrites s with a ∩ b in a single word sweep. All
// three sets must share a universe; s may alias a or b (in-place use).
//
//vet:allocfree
func (s *Set) IntersectInto(a, b *Set) {
	s.mustMatch(a)
	s.mustMatch(b)
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// IntersectCountBelow overwrites s with a ∩ b and returns the number of
// elements strictly below limit and in total, all in one word sweep —
// the fused form of IntersectInto + CountBelow + Count the enumeration
// kernel runs per node. s may alias a or b.
//
//vet:allocfree
func (s *Set) IntersectCountBelow(a, b *Set, limit int) (below, total int) {
	s.mustMatch(a)
	s.mustMatch(b)
	if limit < 0 {
		limit = 0
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	rem := limit % wordBits
	for i := range s.words {
		w := a.words[i] & b.words[i]
		s.words[i] = w
		c := bits.OnesCount64(w)
		total += c
		switch {
		case i < full:
			below += c
		case i == full && rem != 0:
			below += bits.OnesCount64(w & (1<<uint(rem) - 1))
		}
	}
	return below, total
}

// MatchRowsInto overwrites dst with the intersection of every set in
// srcs in a single word sweep: dst = srcs[0] ∩ srcs[1] ∩ … — the batch
// classification kernel that ANDs a rule's item-presence columns across
// all rows of a batch at once. All sets must share dst's universe; dst
// may alias any element of srcs. With empty srcs, dst becomes the full
// universe (the intersection of nothing matches every row).
//
//vet:allocfree
func MatchRowsInto(dst *Set, srcs []*Set) {
	for _, src := range srcs {
		dst.mustMatch(src)
	}
	if len(srcs) == 0 {
		dst.Fill()
		return
	}
	for i := range dst.words {
		w := srcs[0].words[i]
		for _, src := range srcs[1:] {
			w &= src.words[i]
		}
		dst.words[i] = w
	}
}

// transpose64 transposes a 64×64 bit matrix in place (Hacker's Delight
// §7-3, recursive block swap). The six passes are unrolled with
// constant masks and shift widths, and pair indexing uses k|j (the
// iteration keeps bit j of k clear, so k|j == k+j) — both indices are
// then provably in range and the compiler drops every bounds check
// from the hot loop.
func transpose64(a *[64]uint64) {
	const (
		m32 = uint64(0x00000000FFFFFFFF)
		m16 = uint64(0x0000FFFF0000FFFF)
		m8  = uint64(0x00FF00FF00FF00FF)
		m4  = uint64(0x0F0F0F0F0F0F0F0F)
		m2  = uint64(0x3333333333333333)
		m1  = uint64(0x5555555555555555)
	)
	// Each pass's butterflies are independent; runs of consecutive k are
	// unrolled ×2 to amortize loop overhead (the butterflies already
	// saturate the ALUs, so wider unrolling buys nothing).
	for k := 0; k < 32; k += 2 {
		t := (a[k] ^ (a[k|32] >> 32)) & m32
		a[k] ^= t
		a[k|32] ^= t << 32
		t = (a[k+1] ^ (a[(k+1)|32] >> 32)) & m32
		a[k+1] ^= t
		a[(k+1)|32] ^= t << 32
	}
	for base := 0; base < 64; base += 32 {
		for k := base; k < base+16; k += 2 {
			t := (a[k&63] ^ (a[(k|16)&63] >> 16)) & m16
			a[k&63] ^= t
			a[(k|16)&63] ^= t << 16
			t = (a[(k+1)&63] ^ (a[((k+1)|16)&63] >> 16)) & m16
			a[(k+1)&63] ^= t
			a[((k+1)|16)&63] ^= t << 16
		}
	}
	for base := 0; base < 64; base += 16 {
		for k := base; k < base+8; k += 2 {
			t := (a[k&63] ^ (a[(k|8)&63] >> 8)) & m8
			a[k&63] ^= t
			a[(k|8)&63] ^= t << 8
			t = (a[(k+1)&63] ^ (a[((k+1)|8)&63] >> 8)) & m8
			a[(k+1)&63] ^= t
			a[((k+1)|8)&63] ^= t << 8
		}
	}
	for base := 0; base < 64; base += 8 {
		for k := base; k < base+4; k += 2 {
			t := (a[k&63] ^ (a[(k|4)&63] >> 4)) & m4
			a[k&63] ^= t
			a[(k|4)&63] ^= t << 4
			t = (a[(k+1)&63] ^ (a[((k+1)|4)&63] >> 4)) & m4
			a[(k+1)&63] ^= t
			a[((k+1)|4)&63] ^= t << 4
		}
	}
	for base := 0; base < 64; base += 4 {
		t := (a[base&63] ^ (a[(base|2)&63] >> 2)) & m2
		a[base&63] ^= t
		a[(base|2)&63] ^= t << 2
		t = (a[(base+1)&63] ^ (a[((base+1)|2)&63] >> 2)) & m2
		a[(base+1)&63] ^= t
		a[((base+1)|2)&63] ^= t << 2
	}
	for k := 0; k < 64; k += 4 {
		t := (a[k&63] ^ (a[(k|1)&63] >> 1)) & m1
		a[k&63] ^= t
		a[(k|1)&63] ^= t << 1
		t = (a[(k+2)&63] ^ (a[((k+2)|1)&63] >> 1)) & m1
		a[(k+2)&63] ^= t
		a[((k+2)|1)&63] ^= t << 1
	}
}

// TransposeInto builds the item-major transpose of a batch of rows:
// after the call, cols[i] contains exactly the row indices r (over
// [0,len(rows))) whose set rows[r] contains element i. A nil entry in
// cols skips that item, and a 64-item word group whose columns are all
// nil is skipped entirely — callers materialize columns only for the
// items they will sweep. Every row's universe must hold len(cols)
// elements; every non-nil column's universe must hold len(rows).
// Column words covering rows beyond len(rows) are zeroed, so stale
// contents from a larger previous batch cannot leak.
//
// The kernel processes 64 rows × 64 items per block with transpose64,
// so the whole view costs a handful of word operations per row — this
// is what makes rule-major batch classification cheaper than scoring
// row by row.
//
// maxFusedGroups bounds the item word groups the fused transpose path
// gathers per row-block (16 groups = 1024 items); wider universes take
// the group-at-a-time path, which chases each row pointer once per
// group instead of once per block.
const maxFusedGroups = 16

//vet:allocfree
func TransposeInto(cols []*Set, rows []*Set) {
	n := len(rows)
	for _, row := range rows {
		if row.n < len(cols) {
			panic(fmt.Sprintf("bitset: transpose row universe %d smaller than %d columns", row.n, len(cols)))
		}
	}
	for i, col := range cols {
		if col != nil && col.n < n {
			panic(fmt.Sprintf("bitset: transpose column %d universe %d smaller than %d rows", i, col.n, n))
		}
	}
	itemWords := (len(cols) + wordBits - 1) / wordBits
	blocks := (n + wordBits - 1) / wordBits

	// A 64-item word group with no live (non-nil) column needs no
	// transpose; compact the live group ids so the hot loops only touch
	// them.
	var liveBuf [maxFusedGroups]int32
	live := liveBuf[:0]
	if itemWords > maxFusedGroups {
		live = make([]int32, 0, itemWords) //vet:ignore allocfree wide-universe fallback allocates its group list; the fused path stays on the stack buffer
	}
	for wi := 0; wi < itemWords; wi++ {
		base := wi * wordBits
		width := len(cols) - base
		if width > wordBits {
			width = wordBits
		}
		for b := 0; b < width; b++ {
			if cols[base+b] != nil {
				live = append(live, int32(wi))
				break
			}
		}
	}

	if itemWords <= maxFusedGroups {
		// Fused path: chase each row pointer once per 64-row block,
		// gathering every live group's word, then transpose and scatter
		// group by group.
		var bufs [maxFusedGroups][wordBits]uint64
		for block := 0; block < blocks; block++ {
			lo := block * wordBits
			cnt := n - lo
			if cnt > wordBits {
				cnt = wordBits
			}
			// transpose64 is a true transpose in MSB-first convention;
			// reversing both the load and the store order converts it to
			// the set's LSB-first bit indexing.
			for j := 0; j < cnt; j++ {
				w := rows[lo+j].words
				ri := wordBits - 1 - j
				for _, g := range live {
					bufs[g][ri] = w[g]
				}
			}
			for j := cnt; j < wordBits; j++ {
				ri := wordBits - 1 - j
				for _, g := range live {
					bufs[g][ri] = 0
				}
			}
			for _, g := range live {
				transpose64(&bufs[g])
				base := int(g) * wordBits
				width := len(cols) - base
				if width > wordBits {
					width = wordBits
				}
				for b := 0; b < width; b++ {
					if col := cols[base+b]; col != nil {
						col.words[block] = bufs[g][wordBits-1-b]
					}
				}
			}
		}
	} else {
		var buf [wordBits]uint64
		for _, g := range live {
			wi := int(g)
			base := wi * wordBits
			width := len(cols) - base
			if width > wordBits {
				width = wordBits
			}
			for block := 0; block < blocks; block++ {
				lo := block * wordBits
				cnt := n - lo
				if cnt > wordBits {
					cnt = wordBits
				}
				for j := 0; j < cnt; j++ {
					buf[wordBits-1-j] = rows[lo+j].words[wi]
				}
				for j := cnt; j < wordBits; j++ {
					buf[wordBits-1-j] = 0
				}
				transpose64(&buf)
				for b := 0; b < width; b++ {
					if col := cols[base+b]; col != nil {
						col.words[block] = buf[wordBits-1-b]
					}
				}
			}
		}
	}

	// Zero the column words beyond the live blocks so a smaller batch
	// fully overwrites a larger one's view.
	for _, col := range cols {
		if col == nil {
			continue
		}
		for w := blocks; w < len(col.words); w++ {
			col.words[w] = 0
		}
	}
}

// FillBelow replaces the set's contents with exactly the elements
// strictly below limit: a one-sweep "first n rows of the batch are
// live" initializer for scratch sets whose universe is a capacity
// rather than the live size.
//
//vet:allocfree
func (s *Set) FillBelow(limit int) {
	if limit < 0 {
		limit = 0
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	for i := 0; i < full; i++ {
		s.words[i] = ^uint64(0)
	}
	if rem := limit % wordBits; rem != 0 {
		s.words[full] = (1 << uint(rem)) - 1
		full++
	}
	for i := full; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// AddDeltaBelow adds delta to dst[i] for every element i of s below
// limit. It is the batch classifier's fused score-accumulation kernel:
// one trailing-zeros sweep over the match words replaces materializing
// the element list and re-walking it. dst must hold the largest
// element below limit.
//
//vet:allocfree
func (s *Set) AddDeltaBelow(dst []float64, delta float64, limit int) {
	if limit > s.n {
		limit = s.n
	}
	if limit <= 0 {
		return
	}
	full := limit / wordBits
	for wi := 0; wi < full; wi++ {
		w := s.words[wi]
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			dst[base+b] += delta
		}
	}
	if rem := limit % wordBits; rem != 0 {
		w := s.words[full] & (1<<uint(rem) - 1)
		base := full * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			dst[base+b] += delta
		}
	}
}

// Intersect returns a new set s ∩ other.
func (s *Set) Intersect(other *Set) *Set {
	c := s.Clone()
	c.IntersectWith(other)
	return c
}

// Union returns a new set s ∪ other.
func (s *Set) Union(other *Set) *Set {
	c := s.Clone()
	c.UnionWith(other)
	return c
}

// Difference returns a new set s \ other.
func (s *Set) Difference(other *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(other)
	return c
}

// IntersectionCount returns |s ∩ other| without allocating.
//
//vet:allocfree
func (s *Set) IntersectionCount(other *Set) int {
	s.mustMatch(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// ContainsAll reports whether other ⊆ s.
//
//vet:allocfree
func (s *Set) ContainsAll(other *Set) bool {
	s.mustMatch(other)
	for i, w := range other.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ other is non-empty.
//
//vet:allocfree
func (s *Set) Intersects(other *Set) bool {
	s.mustMatch(other)
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and other contain exactly the same elements.
//
//vet:allocfree
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clear removes all elements.
//
//vet:allocfree
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits beyond the universe size in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// AppendIndicesBelow appends the elements strictly below limit to buf
// in ascending order and returns the extended slice. When buf has
// sufficient capacity no allocation occurs — this is the no-alloc form
// of Indices the enumeration kernel feeds from its scratch arenas.
//
//vet:allocfree
func (s *Set) AppendIndicesBelow(buf []int, limit int) []int {
	if limit > s.n {
		limit = s.n
	}
	if limit <= 0 {
		return buf
	}
	full := limit / wordBits
	for wi := 0; wi < full; wi++ {
		for w := s.words[wi]; w != 0; w &= w - 1 {
			buf = append(buf, wi*wordBits+bits.TrailingZeros64(w))
		}
	}
	if rem := limit % wordBits; rem != 0 {
		for w := s.words[full] & (1<<uint(rem) - 1); w != 0; w &= w - 1 {
			buf = append(buf, full*wordBits+bits.TrailingZeros64(w))
		}
	}
	return buf
}

// ForEach calls fn for each element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest element and true, or (0, false) if empty.
func (s *Set) Min() (int, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Max returns the largest element and true, or (0, false) if empty.
func (s *Set) Max() (int, bool) {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + 63 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// CountBelow returns the number of elements strictly less than limit.
//
//vet:allocfree
func (s *Set) CountBelow(limit int) int {
	if limit <= 0 {
		return 0
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	c := 0
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	if rem := limit % wordBits; rem != 0 {
		c += bits.OnesCount64(s.words[full] & ((1 << uint(rem)) - 1))
	}
	return c
}

// AnyBelow reports whether the set contains an element strictly less
// than limit that is not present in excl.
//
//vet:allocfree
func (s *Set) AnyBelow(limit int, excl *Set) bool {
	s.mustMatch(excl)
	if limit <= 0 {
		return false
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	for i := 0; i < full; i++ {
		if s.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	if rem := limit % wordBits; rem != 0 {
		if s.words[full]&^excl.words[full]&((1<<uint(rem))-1) != 0 {
			return true
		}
	}
	return false
}

// AnyBelowAndNot reports whether (s ∩ b) \ excl contains an element
// strictly below limit, returning at the first word that proves it.
// It fuses the final intersection step of a closure with the backward
// closedness check, so a pruned node never pays for the full product.
//
//vet:allocfree
func (s *Set) AnyBelowAndNot(limit int, b, excl *Set) bool {
	s.mustMatch(b)
	s.mustMatch(excl)
	if limit <= 0 {
		return false
	}
	if limit > s.n {
		limit = s.n
	}
	full := limit / wordBits
	for i := 0; i < full; i++ {
		if s.words[i]&b.words[i]&^excl.words[i] != 0 {
			return true
		}
	}
	if rem := limit % wordBits; rem != 0 {
		if s.words[full]&b.words[full]&^excl.words[full]&(1<<uint(rem)-1) != 0 {
			return true
		}
	}
	return false
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Key returns a compact string usable as a map key identifying the set's
// contents. Sets over the same universe have equal keys iff they are
// equal.
func (s *Set) Key() string {
	b := make([]byte, len(s.words)*8)
	for i, w := range s.words {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(b)
}

// Hash64 returns a 64-bit FNV-1a hash of the set's contents, folding
// whole words. Equal sets over one universe hash identically; distinct
// sets may collide, so deduplication must confirm with Equal. Unlike
// Key it materializes nothing on the heap.
//
//vet:allocfree
func (s *Set) Hash64() uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, w := range s.words {
		h = (h ^ w) * prime64
	}
	return h
}
