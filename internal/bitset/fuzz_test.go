package bitset

import (
	"sort"
	"testing"
)

// FuzzSetOps drives a Set through a fuzz-chosen sequence of mutating
// operations alongside a map-based reference model and asserts the two
// stay in lockstep. The word-level bit twiddling (masking of the final
// partial word in particular) is exactly the kind of code where an
// off-by-one survives example-based tests; the model is too slow for
// mining but trivially correct.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{5, 0, 1, 10, 2, 24, 3})
	f.Add([]byte{130, 0, 129, 2, 129, 3, 0, 7, 0, 9, 0})
	f.Add([]byte{64, 7, 0, 5, 0, 8, 0, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Universe sizes 1..190 cross the one-, two- and three-word
		// boundaries, including exact multiples of 64.
		n := int(data[0])%190 + 1
		s, o := New(n), New(n)
		ms, mo := map[int]bool{}, map[int]bool{}
		for ops := data[1:]; len(ops) >= 2; ops = ops[2:] {
			arg := int(ops[1]) % n
			switch ops[0] % 10 {
			case 0:
				s.Add(arg)
				ms[arg] = true
			case 1:
				s.Remove(arg)
				delete(ms, arg)
			case 2:
				o.Add(arg)
				mo[arg] = true
			case 3:
				s.IntersectWith(o)
				for k := range ms {
					if !mo[k] {
						delete(ms, k)
					}
				}
			case 4:
				s.UnionWith(o)
				for k := range mo {
					ms[k] = true
				}
			case 5:
				s.DifferenceWith(o)
				for k := range mo {
					delete(ms, k)
				}
			case 6:
				s.Clear()
				ms = map[int]bool{}
			case 7:
				s.Fill()
				for i := 0; i < n; i++ {
					ms[i] = true
				}
			case 8:
				s.CopyFrom(o)
				ms = map[int]bool{}
				for k := range mo {
					ms[k] = true
				}
			case 9:
				s, o = o, s.Clone()
				ms, mo = mo, cloneModel(ms)
			}
			checkModel(t, s, ms)
		}
		checkModel(t, o, mo)

		// Fresh-result algebra and the pairwise predicates, against the
		// final models.
		checkModel(t, s.Intersect(o), modelBinary(ms, mo, func(a, b bool) bool { return a && b }))
		checkModel(t, s.Union(o), modelBinary(ms, mo, func(a, b bool) bool { return a || b }))
		checkModel(t, s.Difference(o), modelBinary(ms, mo, func(a, b bool) bool { return a && !b }))
		inter := modelBinary(ms, mo, func(a, b bool) bool { return a && b })
		if got, want := s.IntersectionCount(o), len(inter); got != want {
			t.Errorf("IntersectionCount = %d, model %d", got, want)
		}
		if got, want := s.Intersects(o), len(inter) > 0; got != want {
			t.Errorf("Intersects = %v, model %v", got, want)
		}
		if got, want := s.ContainsAll(o), len(modelBinary(mo, ms, func(a, b bool) bool { return a && !b })) == 0; got != want {
			t.Errorf("ContainsAll = %v, model %v", got, want)
		}
		sameModel := len(ms) == len(mo) && len(inter) == len(ms)
		if got := s.Equal(o); got != sameModel {
			t.Errorf("Equal = %v, model %v", got, sameModel)
		}
		if got := s.Key() == o.Key(); got != sameModel {
			t.Errorf("Key equality = %v, model %v", got, sameModel)
		}
	})
}

// checkModel asserts full observable agreement between a set and its
// reference model.
func checkModel(t *testing.T, s *Set, m map[int]bool) {
	t.Helper()
	want := modelIndices(m)
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, model %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, model %v", got, want)
		}
	}
	if s.Count() != len(want) {
		t.Fatalf("Count = %d, model %d", s.Count(), len(want))
	}
	if s.IsEmpty() != (len(want) == 0) {
		t.Fatalf("IsEmpty = %v with %d elements", s.IsEmpty(), len(want))
	}
	for i := 0; i < s.Len(); i++ {
		if s.Contains(i) != m[i] {
			t.Fatalf("Contains(%d) = %v, model %v", i, s.Contains(i), m[i])
		}
	}
	if mn, ok := s.Min(); ok != (len(want) > 0) || (ok && mn != want[0]) {
		t.Fatalf("Min = %d,%v, model %v", mn, ok, want)
	}
	if mx, ok := s.Max(); ok != (len(want) > 0) || (ok && mx != want[len(want)-1]) {
		t.Fatalf("Max = %d,%v, model %v", mx, ok, want)
	}
	for _, limit := range []int{0, 1, s.Len() / 2, s.Len(), s.Len() + 7} {
		c := 0
		for _, i := range want {
			if i < limit {
				c++
			}
		}
		if got := s.CountBelow(limit); got != c {
			t.Fatalf("CountBelow(%d) = %d, model %d", limit, got, c)
		}
	}
}

func cloneModel(m map[int]bool) map[int]bool {
	c := make(map[int]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func modelIndices(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func modelBinary(a, b map[int]bool, keep func(a, b bool) bool) map[int]bool {
	out := map[int]bool{}
	for k := range a {
		if keep(a[k], b[k]) {
			out[k] = true
		}
	}
	for k := range b {
		if keep(a[k], b[k]) {
			out[k] = true
		}
	}
	return out
}
