package bitset

import (
	"fmt"
	"math/bits"
)

// ColumnView is the rule-major transposed view of a batch of rows,
// stored block-major: for each 64-item word group and each 64-row
// block, the 64 column words produced by transpose64 stay exactly
// where the transpose wrote them. Compared to scattering the transpose
// into per-item Sets (TransposeInto), this drops the scatter pass and
// the stale-word zeroing entirely — a column is addressed as a strided
// walk over the block sections instead.
//
// Only word groups containing referenced items (the set passed to
// NewColumnView) are materialized; a model whose rules touch 100 of
// 2000 items pays for the groups those 100 items occupy, not for the
// whole universe.
//
// The companion kernel MatchRows fuses the whole per-rule sweep of the
// batch classifier — mask ∧ antecedent columns, union into the matched
// accumulator, and score scatter-add — into one pass over the row
// words. MatchRowsInto/AddDeltaBelow are the composable equivalents;
// ColumnView exists so the serving hot loop touches each word once.
//
// A ColumnView is not safe for concurrent use.
type ColumnView struct {
	numItems  int
	gIdx      []int32 // per group: compacted live index, or -1
	live      []int32 // live group ids in ascending order
	capBlocks int
	rows      int      // rows of the last Build
	words     []uint64 // len(live) × capBlocks × 64, block-major
}

// NewColumnView prepares a view over an item universe of numItems in
// which only the groups covering `items` (the referenced items, a set
// over the same universe) are materialized. Row capacity starts at
// zero and grows on first Build; call Grow to pre-size.
func NewColumnView(numItems int, items *Set) *ColumnView {
	if items.n != numItems {
		panic(fmt.Sprintf("bitset: referenced-item universe %d != %d", items.n, numItems))
	}
	v := &ColumnView{numItems: numItems}
	groups := (numItems + wordBits - 1) / wordBits
	v.gIdx = make([]int32, groups)
	for g := 0; g < groups; g++ {
		if g < len(items.words) && items.words[g] != 0 {
			v.gIdx[g] = int32(len(v.live))
			v.live = append(v.live, int32(g))
		} else {
			v.gIdx[g] = -1
		}
	}
	return v
}

// Rows returns the batch size of the last Build.
func (v *ColumnView) Rows() int { return v.rows }

// Grow ensures the view holds batches of up to n rows. Growing
// invalidates every previously issued ColumnBase.
func (v *ColumnView) Grow(n int) {
	blocks := (n + wordBits - 1) / wordBits
	if blocks <= v.capBlocks {
		return
	}
	v.capBlocks = blocks
	v.words = make([]uint64, len(v.live)*blocks*wordBits)
}

// ColumnBase returns the sweep base of the given item's column for use
// with MatchRows: word i of the column lives at base + 64·i. Bases
// depend on the current capacity — re-derive them after any Grow. The
// item must lie in a materialized group.
func (v *ColumnView) ColumnBase(item int) int32 {
	if item < 0 || item >= v.numItems {
		panic(fmt.Sprintf("bitset: item %d out of range [0,%d)", item, v.numItems))
	}
	gi := v.gIdx[item/wordBits]
	if gi < 0 {
		panic(fmt.Sprintf("bitset: item %d is in an unmaterialized group", item))
	}
	// Build loads rows reversed for transpose64's MSB-first convention,
	// so column c of a group sits at slot 63-c of each block section.
	return int32(int(gi)*v.capBlocks*wordBits + (wordBits - 1 - item%wordBits))
}

// Build replaces the view's contents with the transpose of rows: after
// the call, the column of item i holds exactly the row indices r whose
// set rows[r] contains i, for every item in a materialized group.
// Every row's universe must hold the view's numItems elements.
//
//vet:allocfree
func (v *ColumnView) Build(rows []*Set) {
	n := len(rows)
	for _, row := range rows {
		if row.n < v.numItems {
			panic(fmt.Sprintf("bitset: row universe %d smaller than %d items", row.n, v.numItems))
		}
	}
	v.Grow(n) //vet:ignore allocfree one-time capacity growth; steady-state batches take the fast path
	v.rows = n
	blocks := (n + wordBits - 1) / wordBits
	for b := 0; b < blocks; b++ {
		lo := b * wordBits
		cnt := n - lo
		if cnt > wordBits {
			cnt = wordBits
		}
		// Gather each row's words for every live group in one pass, so
		// a row's header is chased once per block. Sections of
		// consecutive live groups sit a fixed stride apart, so the
		// destination index is a running offset — no multiply per
		// store. transpose64 is a true transpose in MSB-first
		// convention; reversing both the load and the read-out order
		// converts it to LSB-first.
		stride := v.capBlocks * wordBits
		for j := 0; j < cnt; j++ {
			w := rows[lo+j].words
			off := b*wordBits + wordBits - 1 - j
			for _, g := range v.live {
				v.words[off] = w[g]
				off += stride
			}
		}
		for j := cnt; j < wordBits; j++ {
			off := b*wordBits + wordBits - 1 - j
			for range v.live {
				v.words[off] = 0
				off += stride
			}
		}
		for gi := range v.live {
			off := (gi*v.capBlocks + b) * wordBits
			transpose64((*[wordBits]uint64)(v.words[off : off+wordBits]))
		}
	}
}

// MatchRows evaluates one rule against the whole batch in a single
// fused pass: for each 64-row word, it ANDs the mask word with the
// rule's antecedent columns (bases from ColumnBase), ORs the surviving
// rows into acc, and adds delta to vals[r] for each surviving row r.
// The mask must contain no rows ≥ Rows() (the batch classifier's
// undecided set satisfies this by construction), and acc and vals must
// cover Rows() rows. An empty bases list means an empty antecedent:
// every mask row survives.
//
// Word-level early exit makes sparse masks nearly free: once most rows
// are decided, a sub-classifier's rules skip every all-zero mask word.
//
//vet:allocfree
func (v *ColumnView) MatchRows(mask *Set, bases []int32, acc *Set, vals []float64, delta float64) {
	nb := (v.rows + wordBits - 1) / wordBits
	if len(mask.words) < nb || len(acc.words) < nb {
		panic(fmt.Sprintf("bitset: mask/acc smaller than %d row words", nb))
	}
	mw := mask.words
	aw := acc.words
	// Specialize the 1- and 2-antecedent sweeps (the bulk of mined rules
	// — item-merging keeps antecedents short) so the per-word AND chain
	// carries no range-loop state.
	switch len(bases) {
	case 1:
		b0 := int(bases[0])
		for i := 0; i < nb; i++ {
			w := mw[i]
			if w == 0 {
				continue
			}
			w &= v.words[b0+i*wordBits]
			if w == 0 {
				continue
			}
			aw[i] |= w
			scatterDelta(vals, i*wordBits, w, delta)
		}
	case 2:
		b0, b1 := int(bases[0]), int(bases[1])
		for i := 0; i < nb; i++ {
			w := mw[i]
			if w == 0 {
				continue
			}
			off := i * wordBits
			w &= v.words[b0+off]
			w &= v.words[b1+off]
			if w == 0 {
				continue
			}
			aw[i] |= w
			scatterDelta(vals, off, w, delta)
		}
	default:
		for i := 0; i < nb; i++ {
			w := mw[i]
			if w == 0 {
				continue
			}
			off := i * wordBits
			for _, cb := range bases {
				w &= v.words[int(cb)+off]
			}
			if w == 0 {
				continue
			}
			aw[i] |= w
			scatterDelta(vals, off, w, delta)
		}
	}
}

// scatterDelta adds delta to vals[base+r] for every set bit r of w.
func scatterDelta(vals []float64, base int, w uint64, delta float64) {
	for w != 0 {
		r := bits.TrailingZeros64(w)
		w &= w - 1
		vals[base+r] += delta
	}
}
