package bitset

import "testing"

// The fused kernels (IntersectInto, IntersectCountBelow,
// AppendIndicesBelow, AnyBelowAndNot, Hash64) exist so the enumeration
// hot loop does one word sweep where the composable API does three.
// Each test below pins the fused form against the naive composition it
// replaces; FuzzFusedOps does the same over fuzz-chosen sets and
// limits.

func TestIntersectInto(t *testing.T) {
	a := FromIndices(190, 0, 5, 63, 64, 100, 189)
	b := FromIndices(190, 5, 63, 65, 100, 150)
	want := a.Intersect(b)

	dst := New(190)
	dst.Fill() // stale contents must be fully overwritten
	dst.IntersectInto(a, b)
	if !dst.Equal(want) {
		t.Errorf("IntersectInto = %v, want %v", dst, want)
	}

	// Aliasing: s may be a or b.
	sa := a.Clone()
	sa.IntersectInto(sa, b)
	if !sa.Equal(want) {
		t.Errorf("aliased IntersectInto(s, s, b) = %v, want %v", sa, want)
	}
	sb := b.Clone()
	sb.IntersectInto(a, sb)
	if !sb.Equal(want) {
		t.Errorf("aliased IntersectInto(s, a, s) = %v, want %v", sb, want)
	}
}

func TestIntersectCountBelow(t *testing.T) {
	a := FromIndices(190, 0, 5, 63, 64, 100, 189)
	b := FromIndices(190, 0, 5, 63, 64, 150, 189)
	want := a.Intersect(b)
	for _, limit := range []int{-3, 0, 1, 5, 6, 63, 64, 65, 100, 190, 500} {
		dst := New(190)
		below, total := dst.IntersectCountBelow(a, b, limit)
		if !dst.Equal(want) {
			t.Fatalf("limit %d: result %v, want %v", limit, dst, want)
		}
		if below != want.CountBelow(limit) || total != want.Count() {
			t.Errorf("limit %d: (below,total) = (%d,%d), want (%d,%d)",
				limit, below, total, want.CountBelow(limit), want.Count())
		}
	}
}

func TestAppendIndicesBelow(t *testing.T) {
	s := FromIndices(190, 0, 5, 63, 64, 100, 189)
	for _, limit := range []int{-1, 0, 1, 64, 65, 101, 190, 400} {
		got := s.AppendIndicesBelow(nil, limit)
		var want []int
		for _, i := range s.Indices() {
			if i < limit {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("limit %d: %v, want %v", limit, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("limit %d: %v, want %v", limit, got, want)
			}
		}
	}

	// With sufficient capacity the append must not allocate.
	buf := make([]int, 0, 190)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendIndicesBelow(buf[:0], 190)
	}); allocs != 0 {
		t.Errorf("AppendIndicesBelow with capacity: %.1f allocs/op, want 0", allocs)
	}
}

func TestAnyBelowAndNot(t *testing.T) {
	s := FromIndices(190, 2, 63, 64, 100)
	b := FromIndices(190, 2, 63, 64, 150)
	naive := func(limit int, excl *Set) bool {
		inter := s.Intersect(b)
		inter.DifferenceWith(excl)
		for _, i := range inter.Indices() {
			if i < limit {
				return true
			}
		}
		return false
	}
	for _, limit := range []int{-1, 0, 2, 3, 63, 64, 65, 190, 400} {
		for _, excl := range []*Set{New(190), FromIndices(190, 2), FromIndices(190, 2, 63, 64)} {
			if got, want := s.AnyBelowAndNot(limit, b, excl), naive(limit, excl); got != want {
				t.Errorf("AnyBelowAndNot(%d, b, %v) = %v, want %v", limit, excl, got, want)
			}
		}
	}
}

func TestHash64(t *testing.T) {
	a := FromIndices(190, 0, 63, 64, 189)
	if a.Hash64() != a.Clone().Hash64() {
		t.Error("equal sets hash differently")
	}
	b := a.Clone()
	b.Remove(63)
	if a.Hash64() == b.Hash64() {
		t.Error("single-bit difference not reflected in hash (FNV-1a should separate these)")
	}
	if New(0).Hash64() != New(0).Hash64() {
		t.Error("empty sets hash differently")
	}
}

func TestMatchRowsInto(t *testing.T) {
	a := FromIndices(190, 0, 5, 63, 64, 100, 189)
	b := FromIndices(190, 0, 5, 63, 65, 100, 150, 189)
	c := FromIndices(190, 0, 63, 100, 189)

	want := a.Intersect(b)
	want.IntersectWith(c)
	dst := New(190)
	dst.Fill() // stale contents must be fully overwritten
	MatchRowsInto(dst, []*Set{a, b, c})
	if !dst.Equal(want) {
		t.Errorf("MatchRowsInto(a,b,c) = %v, want %v", dst, want)
	}

	// One source degenerates to a copy.
	MatchRowsInto(dst, []*Set{b})
	if !dst.Equal(b) {
		t.Errorf("MatchRowsInto(b) = %v, want %v", dst, b)
	}

	// No sources: the empty intersection is the full universe.
	MatchRowsInto(dst, nil)
	full := New(190)
	full.Fill()
	if !dst.Equal(full) {
		t.Errorf("MatchRowsInto() = %v, want full universe", dst)
	}

	// Aliasing: dst may be one of the sources.
	sa := a.Clone()
	MatchRowsInto(sa, []*Set{sa, b, c})
	if !sa.Equal(want) {
		t.Errorf("aliased MatchRowsInto = %v, want %v", sa, want)
	}

	// Reusing a scratch srcs slice must not allocate.
	srcs := make([]*Set, 0, 4)
	if allocs := testing.AllocsPerRun(100, func() {
		srcs = append(srcs[:0], a, b, c)
		MatchRowsInto(dst, srcs)
	}); allocs != 0 {
		t.Errorf("MatchRowsInto: %.1f allocs/op, want 0", allocs)
	}
}

func TestFillBelow(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 190} {
		for _, limit := range []int{-4, 0, 1, 63, 64, 65, 100, n, n + 7} {
			s := New(n)
			s.Fill() // pre-dirty: FillBelow must also clear bits >= limit
			s.FillBelow(limit)
			want := New(n)
			for i := 0; i < n && i < limit; i++ {
				want.Add(i)
			}
			if !s.Equal(want) {
				t.Errorf("n=%d FillBelow(%d) = %v, want %v", n, limit, s, want)
			}
		}
	}
}

// naiveTranspose computes the item-major view column by column.
func naiveTranspose(numItems int, rows []*Set) []*Set {
	cols := make([]*Set, numItems)
	for i := range cols {
		cols[i] = New(len(rows))
		for r, row := range rows {
			if row.Contains(i) {
				cols[i].Add(r)
			}
		}
	}
	return cols
}

func TestTransposeInto(t *testing.T) {
	for _, tc := range []struct{ numItems, numRows, seedStride int }{
		{1, 1, 1}, {64, 64, 3}, {65, 63, 5}, {128, 200, 7},
		{190, 1, 2}, {70, 130, 11}, {128, 0, 1},
	} {
		rows := make([]*Set, tc.numRows)
		for r := range rows {
			rows[r] = New(tc.numItems)
			for i := (r * tc.seedStride) % tc.numItems; i < tc.numItems; i += tc.seedStride + r%3 + 1 {
				rows[r].Add(i)
			}
		}
		want := naiveTranspose(tc.numItems, rows)
		cols := make([]*Set, tc.numItems)
		for i := range cols {
			// Columns sized past the batch with stale high bits: the
			// kernel must zero everything beyond the live rows.
			cols[i] = New(tc.numRows + 70)
			cols[i].Fill()
		}
		TransposeInto(cols, rows)
		for i := range cols {
			for r := 0; r < tc.numRows+70; r++ {
				if cols[i].Contains(r) != (r < tc.numRows && want[i].Contains(r)) {
					t.Fatalf("items=%d rows=%d: col %d row %d = %v, want %v",
						tc.numItems, tc.numRows, i, r, cols[i].Contains(r), !cols[i].Contains(r))
				}
			}
		}

		// Nil columns are skipped; live ones still come out right.
		sparse := make([]*Set, tc.numItems)
		for i := range sparse {
			if i%3 == 0 {
				sparse[i] = New(tc.numRows)
			}
		}
		TransposeInto(sparse, rows)
		for i := range sparse {
			if i%3 != 0 {
				continue
			}
			if !sparse[i].Equal(want[i]) {
				t.Fatalf("items=%d rows=%d: sparse col %d = %v, want %v",
					tc.numItems, tc.numRows, i, sparse[i], want[i])
			}
		}
	}

	// Steady-state reuse must not allocate.
	rows := make([]*Set, 100)
	for r := range rows {
		rows[r] = FromIndices(128, r%128, (r*7)%128)
	}
	cols := make([]*Set, 128)
	for i := range cols {
		cols[i] = New(100)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		TransposeInto(cols, rows)
	}); allocs != 0 {
		t.Errorf("TransposeInto: %.1f allocs/op, want 0", allocs)
	}
}

// FuzzBatchKernel pins the batch-classification kernel (MatchRowsInto,
// FillBelow, TransposeInto) against the naive composition of the
// pairwise ops, over fuzz-chosen universes, source counts and contents.
func FuzzBatchKernel(f *testing.F) {
	f.Add([]byte{64, 2, 0, 1, 1, 2, 0, 63})
	f.Add([]byte{130, 3, 0, 100, 1, 64, 2, 65, 0, 129})
	f.Add([]byte{190, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0])%190 + 1
		nsrc := int(data[1]) % 5
		srcs := make([]*Set, nsrc)
		for i := range srcs {
			srcs[i] = New(n)
		}
		for ops := data[2:]; len(ops) >= 2 && nsrc > 0; ops = ops[2:] {
			srcs[int(ops[0])%nsrc].Add(int(ops[1]) % n)
		}

		want := New(n)
		want.Fill()
		for _, src := range srcs {
			want.IntersectWith(src)
		}
		dst := New(n)
		dst.Fill()
		MatchRowsInto(dst, srcs)
		if !dst.Equal(want) {
			t.Errorf("MatchRowsInto(%d srcs) = %v, want %v", nsrc, dst, want)
		}

		limit := int(data[1]) % (n + 10)
		got := New(n)
		got.Fill()
		got.FillBelow(limit)
		naive := New(n)
		for i := 0; i < n && i < limit; i++ {
			naive.Add(i)
		}
		if !got.Equal(naive) {
			t.Errorf("FillBelow(%d) = %v, want %v", limit, got, naive)
		}

		// Transpose the srcs as batch rows over the n-item universe.
		wantCols := naiveTranspose(n, srcs)
		cols := make([]*Set, n)
		for i := range cols {
			cols[i] = New(nsrc)
			cols[i].Fill()
		}
		TransposeInto(cols, srcs)
		for i := range cols {
			if !cols[i].Equal(wantCols[i]) {
				t.Errorf("TransposeInto col %d = %v, want %v", i, cols[i], wantCols[i])
			}
		}
	})
}

// FuzzFusedOps pins every fused kernel against the naive composition it
// replaced, over fuzz-chosen universes, contents and limits.
func FuzzFusedOps(f *testing.F) {
	f.Add([]byte{64, 63, 0, 1, 2, 3, 63, 63, 63})
	f.Add([]byte{130, 100, 7, 0, 9, 2, 64, 1, 65, 0, 129, 2})
	f.Add([]byte{190, 0, 5, 0, 5, 1, 5, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0])%190 + 1
		limit := int(data[1]) % (n + 10)
		s, b, excl := New(n), New(n), New(n)
		for ops := data[2:]; len(ops) >= 2; ops = ops[2:] {
			arg := int(ops[1]) % n
			switch ops[0] % 3 {
			case 0:
				s.Add(arg)
			case 1:
				b.Add(arg)
			case 2:
				excl.Add(arg)
			}
		}
		inter := s.Intersect(b)

		dst := New(n)
		dst.Fill()
		below, total := dst.IntersectCountBelow(s, b, limit)
		if !dst.Equal(inter) {
			t.Errorf("IntersectCountBelow result %v, want %v", dst, inter)
		}
		if below != inter.CountBelow(limit) || total != inter.Count() {
			t.Errorf("IntersectCountBelow = (%d,%d), want (%d,%d)",
				below, total, inter.CountBelow(limit), inter.Count())
		}

		dst2 := New(n)
		dst2.IntersectInto(s, b)
		if !dst2.Equal(inter) {
			t.Errorf("IntersectInto result %v, want %v", dst2, inter)
		}

		got := s.AppendIndicesBelow(nil, limit)
		var want []int
		for _, i := range s.Indices() {
			if i < limit {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("AppendIndicesBelow = %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendIndicesBelow = %v, want %v", got, want)
			}
		}

		diff := inter.Difference(excl)
		wantAny := false
		for _, i := range diff.Indices() {
			if i < limit {
				wantAny = true
				break
			}
		}
		if gotAny := s.AnyBelowAndNot(limit, b, excl); gotAny != wantAny {
			t.Errorf("AnyBelowAndNot(%d) = %v, want %v", limit, gotAny, wantAny)
		}

		// Hash64 must agree with Equal on these three sets pairwise.
		sets := []*Set{s, b, excl, inter}
		for i, x := range sets {
			for _, y := range sets[i:] {
				if x.Equal(y) && x.Hash64() != y.Hash64() {
					t.Errorf("equal sets %v hash differently", x)
				}
			}
		}
	})
}
