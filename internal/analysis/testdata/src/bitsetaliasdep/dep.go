// Package bitsetaliasdep is a fixture dependency: a foreign package
// exposing bitset accessors, one sharing its internal set and one
// documented fresh.
package bitsetaliasdep

import "repro/internal/bitset"

// Index models a package-private inverted index whose accessor returns
// the shared internal set.
type Index struct {
	Rows *bitset.Set
}

// ItemRows returns the index's internal row set. Callers borrow it.
func (ix *Index) ItemRows() *bitset.Set { return ix.Rows }

// FreshRows returns an independent copy of the row set.
//
// vetsuite:fresh
func (ix *Index) FreshRows() *bitset.Set { return ix.Rows.Clone() }
