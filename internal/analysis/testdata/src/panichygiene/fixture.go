// Package panichygiene exercises the panic inventory analyzer.
package panichygiene

import "fmt"

func badPanic(x int) {
	if x < 0 {
		panic("negative") // want `panic on a library path`
	}
}

func badPanicf(x int) {
	panic(fmt.Sprintf("x=%d", x)) // want `panic on a library path`
}

func annotated(x int) {
	// vetsuite:allow panic -- fixture: annotated precondition
	panic("annotated")
}

type abort struct{}

func okReRaise() {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(abort); ok {
				return
			}
			panic(rec) // ok: re-raise inside a recover handler
		}
	}()
	// vetsuite:allow panic -- fixture: flow-control abort, recovered above
	panic(abort{})
}
