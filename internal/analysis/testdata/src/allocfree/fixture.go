// Package allocfree exercises the zero-allocation contract analyzer
// against the compiler's real escape analysis (go build -gcflags=-m).
package allocfree

import "fmt"

// sink keeps escape analysis honest: storing through it forces the
// buffer to the heap.
var sink []byte

// leaks allocates and publishes the buffer; the contract is violated.
//
//vet:allocfree
func leaks(n int) {
	buf := make([]byte, n) // want `leaks is annotated vet:allocfree but the compiler reports`
	sink = buf
}

// clean mutates its argument in place; nothing escapes.
//
//vet:allocfree
func clean(xs []int) {
	for i := range xs {
		xs[i]++
	}
}

// guarded allocates only while building a panic value; panic
// preconditions are exempt from the contract.
//
//vet:allocfree
func guarded(i, n int) int {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
	return i * 2
}

// unannotated allocates freely; without the marker nothing is checked.
func unannotated(n int) []byte {
	return make([]byte, n)
}
