// Package bitsetalias exercises the clone-before-mutate analyzer.
package bitsetalias

import (
	"repro/internal/analysis/testdata/src/bitsetaliasdep"
	"repro/internal/bitset"
)

func mutateBorrowedVar(ix *bitsetaliasdep.Index) {
	s := ix.ItemRows()
	s.Add(1) // want `in-place Add on a bitset borrowed from another package`
}

func mutateBorrowedCallResult(ix *bitsetaliasdep.Index, other *bitset.Set) {
	ix.ItemRows().IntersectWith(other) // want `in-place IntersectWith on a bitset borrowed`
}

func mutateForeignField(ix *bitsetaliasdep.Index) {
	ix.Rows.Clear() // want `in-place Clear on a bitset borrowed`
}

func cloneFirst(ix *bitsetaliasdep.Index) *bitset.Set {
	s := ix.ItemRows().Clone()
	s.Add(1) // ok: cloned before mutating
	t := ix.ItemRows()
	t = t.Clone()
	t.Remove(0) // ok: reassigned from Clone
	return s
}

func freshProducer(ix *bitsetaliasdep.Index) {
	f := ix.FreshRows()
	f.Remove(2) // ok: producer is marked vetsuite:fresh
}

func locallyOwned(n int) *bitset.Set {
	s := bitset.New(n)
	s.Fill() // ok: locally allocated
	return s
}

type holder struct {
	rows *bitset.Set
}

// own mutates the receiver's own field: ownership, not aliasing.
func (h *holder) own() { h.rows.Add(1) } // ok

// poke mutates somebody else's field.
func poke(h *holder) {
	h.rows.Add(1) // want `in-place Add on a bitset borrowed`
}

func annotated(ix *bitsetaliasdep.Index) {
	ix.ItemRows().Clear() // vetsuite:allow bitsetalias -- fixture: suppression must work
}
