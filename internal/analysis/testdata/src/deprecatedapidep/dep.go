// Package deprecatedapidep is a fixture dependency: a facade that went
// through an options redesign and keeps deprecated shims around.
package deprecatedapidep

// Options configures Search.
type Options struct {
	Limit int
}

// Search is the current entry point.
func Search(q string, opts Options) []string {
	_ = q
	return nil
}

// SearchLegacy is the positional form kept for one release.
//
// Deprecated: use Search with Options instead.
func SearchLegacy(q string, limit int) []string {
	return Search(q, Options{Limit: limit}) // ok: defining package delegates
}

// LegacyOptions is the pre-redesign option struct.
//
// Deprecated: use Options.
type LegacyOptions struct {
	Limit int
}

// Deprecated: use the Search result length.
var LegacyCount int
