// Package sentinelwrap exercises the error-wrapping analyzer: %w on
// error operands, errors.Is for sentinel matches.
package sentinelwrap

import (
	"errors"
	"fmt"
)

// ErrBudget and ErrClosed are this package's sentinel errors.
var (
	ErrBudget = errors.New("budget exhausted")
	ErrClosed = errors.New("closed")
)

func flattens(err error) error {
	return fmt.Errorf("mining: %v", err) // want `error err is formatted with %v`
}

func flattensString(err error) error {
	return fmt.Errorf("mining: %s", err) // want `error err is formatted with %s`
}

func flattensIndexed(err error) error {
	return fmt.Errorf("row %d: %[2]v", 7, err) // want `error err is formatted with %v`
}

func wraps(err error) error {
	return fmt.Errorf("mining: %w", err) // ok
}

func wrapsAfterWidth(n int, err error) error {
	return fmt.Errorf("row %*d: %w", 4, n, err) // ok: '*' consumes an operand
}

func nonErrorOperands(n int, name string) error {
	return fmt.Errorf("row %d of %s out of range", n, name) // ok
}

func identityCompare(err error) bool {
	return err == ErrBudget // want `ErrBudget is compared with ==`
}

func identityNotEqual(err error) bool {
	return err != ErrClosed // want `ErrClosed is compared with !=`
}

func nilCompare(err error) bool {
	return err == nil // ok: nil checks need no unwrapping
}

func isCompare(err error) bool {
	return errors.Is(err, ErrBudget) // ok: the sanctioned match
}

func switches(err error) string {
	switch err {
	case ErrBudget: // want `switch case compares the error against ErrBudget by identity`
		return "budget"
	default:
		return "other"
	}
}

func allowed(err error) bool {
	return err == ErrBudget //vet:ignore sentinelwrap fixture: suppression must work
}
