// Package deprecatedapi exercises the deprecated-use analyzer.
package deprecatedapi

import dep "repro/internal/analysis/testdata/src/deprecatedapidep"

func callsLegacy() []string {
	return dep.SearchLegacy("q", 3) // want `use of deprecated deprecatedapidep.SearchLegacy`
}

func usesLegacyType() int {
	var o dep.LegacyOptions // want `use of deprecated deprecatedapidep.LegacyOptions`
	return o.Limit
}

func readsLegacyVar() int {
	return dep.LegacyCount // want `use of deprecated deprecatedapidep.LegacyCount`
}

func callsCurrent() []string {
	return dep.Search("q", dep.Options{Limit: 3}) // ok: current API
}

func allowed() []string {
	return dep.SearchLegacy("q", 1) // vetsuite:allow deprecatedapi -- pinned compatibility path
}
