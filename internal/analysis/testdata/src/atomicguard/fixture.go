// Package atomicguard exercises the mixed atomic/plain access
// analyzer: once a field is touched through sync/atomic anywhere,
// every access must be atomic.
package atomicguard

import "sync/atomic"

// counters is shared across goroutines; nodes and the package-level
// hits are accessed with sync/atomic below, done never is.
type counters struct {
	nodes int64
	done  int64
}

var hits int64

func bump(c *counters) {
	atomic.AddInt64(&c.nodes, 1) // ok: the atomic access itself
	atomic.AddInt64(&hits, 1)    // ok
}

func plainFieldRead(c *counters) int64 {
	return c.nodes // want `nodes is accessed via sync/atomic elsewhere`
}

func plainFieldWrite(c *counters) {
	c.nodes = 0 // want `nodes is accessed via sync/atomic elsewhere`
}

func plainGlobalRead() int64 {
	return hits // want `hits is accessed via sync/atomic elsewhere`
}

func atomicRead(c *counters) int64 {
	return atomic.LoadInt64(&c.nodes) // ok
}

func construct() *counters {
	return &counters{nodes: 0, done: 1} // ok: composite-literal keys are construction-time
}

func neverAtomic(c *counters) int64 {
	return c.done // ok: done is never accessed atomically
}

func allowedPlain(c *counters) int64 {
	return c.nodes //vet:ignore atomicguard fixture: suppression must work
}
