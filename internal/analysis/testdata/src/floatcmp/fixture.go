// Package floatcmp exercises the confidence-comparison analyzer.
package floatcmp

func badEq(conf, other float64) bool {
	return conf == other // want `== on confidence/score floats`
}

func badNeq(score float64, xs []float64) bool {
	return xs[0] != score // want `!= on confidence/score floats`
}

func badField(g struct{ Confidence float64 }, c float64) bool {
	return g.Confidence == c // want `== on confidence/score floats`
}

func okZeroDefault(minconf float64) bool {
	return minconf == 0 // ok: the "option not set" idiom
}

func okNotConfLike(a, b float64) bool {
	return a == b // ok: no confidence-like name involved
}

func okInts(conf, other int) bool {
	return conf == other // ok: integers compare exactly
}

func okOrdering(conf, other float64) bool {
	return conf > other // ok: ordering is fine, only equality is policed
}

// CompareConf is the blessed implementation site.
func CompareConf(conf, other float64) int {
	if conf == other { // ok: inside CompareConf itself
		return 0
	}
	if conf > other {
		return 1
	}
	return -1
}

func annotated(conf, other float64) bool {
	return conf == other // vetsuite:allow floatcmp -- fixture: suppression must work
}
