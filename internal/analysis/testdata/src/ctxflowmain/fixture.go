// Command ctxflowmain proves the Background/TODO ban stops at package
// main: the program entry point is the one place a root context is
// legitimate, so this fixture must produce zero findings.
package main

import "context"

func main() {
	ctx := context.Background() // ok: package main owns the root
	run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}
