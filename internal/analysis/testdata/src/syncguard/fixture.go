// Package syncguard exercises the concurrency-preparation analyzer.
package syncguard

import (
	"sync"

	"repro/internal/bitset"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() { // ok: pointer receiver
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g guarded) peek() int { // want `receiver passes a value containing sync.Mutex`
	return g.n
}

func byValueParam(g guarded) int { // want `parameter passes a value containing sync.Mutex`
	return g.n
}

func copyAssign(g *guarded) {
	h := *g // want `assignment copies a value containing sync.Mutex`
	_ = h
}

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want `range value copies a value containing sync.Mutex`
		_ = g.n
	}
}

func okPointers(gs []*guarded) {
	for _, g := range gs { // ok: pointers copy fine
		g.bump()
	}
}

func badCapture(s *bitset.Set, done chan struct{}) {
	go func() {
		s.Add(1) // want `goroutine captures mutable bitset s`
		close(done)
	}()
}

func okClonePassed(s *bitset.Set, done chan struct{}) {
	go func(c *bitset.Set) {
		c.Add(1) // ok: the goroutine owns its clone
		close(done)
	}(s.Clone())
}

func okAnnotatedCapture(s *bitset.Set, done chan struct{}) {
	go func() {
		_ = s.Count() // vetsuite:allow syncguard -- fixture: deliberate read-only sharing
		close(done)
	}()
}

// job mirrors the parallel engine's worker pool: per-task state holding
// bitsets is cloned on the dispatching goroutine before any worker
// starts, and workers reach it only by indexing the task slice.
type job struct {
	x *bitset.Set
}

func consume(j job) { j.x.Add(1) }

func okPrebuiltTasks(src *bitset.Set, done chan struct{}) {
	jobs := make([]job, 2)
	for i := range jobs {
		jobs[i] = job{x: src.Clone()}
	}
	go func() {
		for i := range jobs {
			consume(jobs[i]) // ok: each prebuilt clone is exclusively owned
		}
		close(done)
	}()
}

func badFieldCapture(j job, done chan struct{}) {
	go func() {
		j.x.Add(1) // want `goroutine captures mutable bitset x`
		close(done)
	}()
}
