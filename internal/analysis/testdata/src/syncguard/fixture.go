// Package syncguard exercises the concurrency-preparation analyzer.
package syncguard

import (
	"sync"

	"repro/internal/bitset"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() { // ok: pointer receiver
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g guarded) peek() int { // want `receiver passes a value containing sync.Mutex`
	return g.n
}

func byValueParam(g guarded) int { // want `parameter passes a value containing sync.Mutex`
	return g.n
}

func copyAssign(g *guarded) {
	h := *g // want `assignment copies a value containing sync.Mutex`
	_ = h
}

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want `range value copies a value containing sync.Mutex`
		_ = g.n
	}
}

func okPointers(gs []*guarded) {
	for _, g := range gs { // ok: pointers copy fine
		g.bump()
	}
}

func badCapture(s *bitset.Set, done chan struct{}) {
	go func() {
		s.Add(1) // want `goroutine captures mutable bitset s`
		close(done)
	}()
}

func okClonePassed(s *bitset.Set, done chan struct{}) {
	go func(c *bitset.Set) {
		c.Add(1) // ok: the goroutine owns its clone
		close(done)
	}(s.Clone())
}

func okAnnotatedCapture(s *bitset.Set, done chan struct{}) {
	go func() {
		_ = s.Count() // vetsuite:allow syncguard -- fixture: deliberate read-only sharing
		close(done)
	}()
}

// job mirrors the parallel engine's worker pool: per-task state holding
// bitsets is cloned on the dispatching goroutine before any worker
// starts, and workers reach it only by indexing the task slice.
type job struct {
	x *bitset.Set
}

func consume(j job) { j.x.Add(1) }

func okPrebuiltTasks(src *bitset.Set, done chan struct{}) {
	jobs := make([]job, 2)
	for i := range jobs {
		jobs[i] = job{x: src.Clone()}
	}
	go func() {
		for i := range jobs {
			consume(jobs[i]) // ok: each prebuilt clone is exclusively owned
		}
		close(done)
	}()
}

func badFieldCapture(j job, done chan struct{}) {
	go func() {
		j.x.Add(1) // want `goroutine captures mutable bitset x`
		close(done)
	}()
}

// deque mirrors the work-stealing engine: a mutex-guarded per-worker
// task queue. Tasks enter it carrying bitsets copied out of the
// spawner's arena at offload time, so whichever goroutine later pops
// or steals a task owns its state exclusively — the positive shape of
// the steal-time-clone pattern.
type deque struct {
	mu    sync.Mutex
	tasks []job
}

func (d *deque) push(j job) {
	d.mu.Lock()
	d.tasks = append(d.tasks, j)
	d.mu.Unlock()
}

func (d *deque) stealHalf() []job {
	d.mu.Lock()
	n := (len(d.tasks) + 1) / 2
	batch := make([]job, n)
	copy(batch, d.tasks[:n])
	d.tasks = append(d.tasks[:0], d.tasks[n:]...)
	d.mu.Unlock()
	return batch
}

func okOffloadThenSteal(src *bitset.Set, done chan struct{}) {
	d := &deque{}
	// Offload: the spawner clones arena state into the task before it
	// becomes visible to thieves.
	d.push(job{x: src.Clone()})
	d.push(job{x: src.Clone()})
	go func() {
		// Thief: every stolen task owns its cloned state outright.
		for _, j := range d.stealHalf() {
			consume(j) // ok: ownership moved at offload time, under the lock
		}
		close(done)
	}()
	src.Add(1) // the spawner keeps mutating its own arena freely
}

func badOffloadWithoutClone(src *bitset.Set, done chan struct{}) {
	d := &deque{}
	d.push(job{x: src}) // the alias escapes into the deque...
	go func() {
		for _, j := range d.stealHalf() {
			_ = j
		}
		close(done)
	}()
	go func() {
		src.Add(1) // want `goroutine captures mutable bitset src`
	}()
}
