// Package visitoralias exercises the arena-aliasing analyzer: visitor
// hooks must not retain parameter-derived bitsets or slices without an
// intervening Clone()/copy.
package visitoralias

import "repro/internal/bitset"

// group mimics a mined rule group that outlives the visitor event.
type group struct {
	rows *bitset.Set
	pos  []int
}

type keeper struct {
	last   *bitset.Set
	groups []group
	ch     chan []int
}

var lastRows *bitset.Set

// OnGroup is a visitor hook: rows and xPos alias the enumeration arena.
func (k *keeper) OnGroup(rows *bitset.Set, xPos []int) {
	k.last = rows   // want `stores arena-aliased rows into k.last`
	lastRows = rows // want `stores arena-aliased rows into package variable lastRows`
	k.groups = append(k.groups, group{
		rows: rows,                        // want `composite literal captures arena-aliased rows`
		pos:  append([]int(nil), xPos...), // ok: spread-append copies the ints out
	})
	k.ch <- xPos  // want `sends arena-aliased xPos on a channel`
	go scan(xPos) // want `passes arena-aliased xPos to a goroutine`

	k.keep(rows) // the report lands inside keep, on the retaining store

	clean := rows.Clone()
	k.last = clean // ok: cloned at the event boundary
}

// keep retains its argument; reached interprocedurally from OnGroup.
func (k *keeper) keep(s *bitset.Set) {
	k.last = s // want `stores arena-aliased s into k.last`
}

// UpdateThresholds is the second hook: taint flows through locals.
func (k *keeper) UpdateThresholds(minsups []int) {
	local := minsups
	k.ch <- local // want `sends arena-aliased local on a channel`
	copied := append([]int(nil), minsups...)
	k.ch <- copied // ok: copied
}

// scan only reads; calling it with tainted arguments is fine.
func scan(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

type allower struct {
	last *bitset.Set
}

func (a *allower) OnGroup(rows *bitset.Set, xPos []int) {
	a.last = rows //vet:ignore visitoralias fixture: suppression must work
	_ = xPos
}

// event mirrors the streaming-merge engine's buffered visitor events:
// a fork records what it saw so the parent can replay it later, long
// after the arena slot has been rewritten.
type event struct {
	rows *bitset.Set
	xPos []int
}

type streamer struct {
	events []event
	out    chan []event
}

// OnGroup is the positive shape of the steal-time-clone pattern: every
// arena-aliased argument is copied at the event boundary, so the
// buffered event — and the sealed batch a Flush later ships across
// goroutines — owns its state outright.
func (s *streamer) OnGroup(rows *bitset.Set, xPos []int) {
	s.events = append(s.events, event{
		rows: rows.Clone(),                // ok: cloned at the event boundary
		xPos: append([]int(nil), xPos...), // ok: ints copied out
	})
}

// Flush seals the buffered events into a batch; sending it onward is
// fine because nothing in it aliases the arena.
func (s *streamer) Flush() {
	batch := s.events
	s.events = nil
	s.out <- batch // ok: batch holds only event-boundary copies
}
