// Package visitoralias exercises the arena-aliasing analyzer: visitor
// hooks must not retain parameter-derived bitsets or slices without an
// intervening Clone()/copy.
package visitoralias

import "repro/internal/bitset"

// group mimics a mined rule group that outlives the visitor event.
type group struct {
	rows *bitset.Set
	pos  []int
}

type keeper struct {
	last   *bitset.Set
	groups []group
	ch     chan []int
}

var lastRows *bitset.Set

// OnGroup is a visitor hook: rows and xPos alias the enumeration arena.
func (k *keeper) OnGroup(rows *bitset.Set, xPos []int) {
	k.last = rows   // want `stores arena-aliased rows into k.last`
	lastRows = rows // want `stores arena-aliased rows into package variable lastRows`
	k.groups = append(k.groups, group{
		rows: rows,                        // want `composite literal captures arena-aliased rows`
		pos:  append([]int(nil), xPos...), // ok: spread-append copies the ints out
	})
	k.ch <- xPos  // want `sends arena-aliased xPos on a channel`
	go scan(xPos) // want `passes arena-aliased xPos to a goroutine`

	k.keep(rows) // the report lands inside keep, on the retaining store

	clean := rows.Clone()
	k.last = clean // ok: cloned at the event boundary
}

// keep retains its argument; reached interprocedurally from OnGroup.
func (k *keeper) keep(s *bitset.Set) {
	k.last = s // want `stores arena-aliased s into k.last`
}

// UpdateThresholds is the second hook: taint flows through locals.
func (k *keeper) UpdateThresholds(minsups []int) {
	local := minsups
	k.ch <- local // want `sends arena-aliased local on a channel`
	copied := append([]int(nil), minsups...)
	k.ch <- copied // ok: copied
}

// scan only reads; calling it with tainted arguments is fine.
func scan(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

type allower struct {
	last *bitset.Set
}

func (a *allower) OnGroup(rows *bitset.Set, xPos []int) {
	a.last = rows //vet:ignore visitoralias fixture: suppression must work
	_ = xPos
}
