// Package vetignore exercises the suppression-with-reason contract:
// a vet:ignore without a reason suppresses nothing and is itself a
// finding.
package vetignore

import "context"

func justified() context.Context {
	return context.Background() //vet:ignore ctxflow fixture: reason present, suppressed
}

func reasonless() context.Context {
	return context.Background() //vet:ignore ctxflow
}

func nameless() context.Context {
	return context.Background() //vet:ignore
}
