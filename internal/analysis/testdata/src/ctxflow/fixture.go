// Package ctxflow exercises the context-flow analyzer: roots stay in
// main, ctx comes first, and a declared ctx must be forwarded.
package ctxflow

import (
	"context"
	"time"
)

func mintBackground() error {
	ctx := context.Background() // want `context.Background.. mints a root context in a non-main package`
	return work(ctx, 1)
}

func mintTODO() error {
	return work(context.TODO(), 2) // want `context.TODO.. mints a root context in a non-main package`
}

func ctxSecond(n int, ctx context.Context) error { // want `context.Context is parameter 2 of ctxSecond`
	return work(ctx, n)
}

func ctxUnused(ctx context.Context, n int) int { // want `ctx parameter of ctxUnused is never used`
	return n + 1
}

// work is the well-behaved shape: ctx first, actually consumed.
func work(ctx context.Context, n int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Duration(n)):
		return nil
	}
}

// ctxBlank discards cancellation explicitly, which the contract allows.
func ctxBlank(_ context.Context, n int) int { return n }

func deliberateRoot() error {
	return work(context.Background(), 3) //vet:ignore ctxflow fixture: documented context-free convenience wrapper
}
