// Package uncheckederr exercises the dropped-error analyzer. The
// fixture is loaded under a synthetic repro/cmd/... import path so it
// falls inside the analyzer's scope.
package uncheckederr

import (
	"fmt"
	"io"
	"os"
	"strings"
)

func badDrop(f *os.File) {
	f.Close() // want `call to \*File.Close drops its error result`
}

func badFileWrite(f *os.File) {
	fmt.Fprintf(f, "data\n") // want `call to fmt.Fprintf drops its error result`
}

func badDefer(f *os.File) {
	defer f.Close() // want `deferred call to \*File.Close drops its error result`
}

func okHandled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func okExplicitDiscard(f *os.File) {
	_ = f.Close() // ok: visibly discarded
}

func okBestEffortPrinting(w io.Writer) {
	fmt.Println("to stdout")            // ok: terminal output
	fmt.Fprintf(os.Stderr, "to stderr") // ok: terminal output
	fmt.Fprintf(w, "caller-owned sink") // ok: interface writer
	var b strings.Builder
	b.WriteString("never fails")   // ok: in-memory builder
	fmt.Fprintf(&b, "never fails") // ok: in-memory builder
}

func okAnnotated(f *os.File) {
	defer f.Close() // vetsuite:allow uncheckederr -- fixture: suppression must work
}
