package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AllocFreeAnalyzer turns the kernel's zero-allocation contract from a
// runtime property (testing.AllocsPerRun) into a compile-time one. A
// function annotated with "vet:allocfree" in its doc comment must
// produce no heap-escape diagnostics from the compiler's own escape
// analysis (go build -gcflags=-m), as collected by ComputeEscapes.
//
// Panic preconditions are exempt: an allocation that happens only while
// constructing a panic value (panic(fmt.Sprintf(...)) directly, or via
// an inlined guard-and-panic helper like bitset.mustMatch) never runs
// on the steady-state path, so it cannot violate the contract the
// AllocsPerRun tests measure.
var AllocFreeAnalyzer = &Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //vet:allocfree must compile with zero heap escapes",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) {
	var annotated []*ast.FuncDecl
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := pass.Pkg.Info.Defs[d.Name]; obj != nil && pass.Facts.AllocFree[obj] {
				annotated = append(annotated, d)
			}
		}
	}
	if len(annotated) == 0 {
		return
	}
	if pass.Facts.Escapes == nil {
		// Refuse to pass vacuously: a mis-wired driver must fail loudly,
		// not certify the kernel allocation-free without evidence.
		pass.Reportf(annotated[0].Name.Pos(),
			"vet:allocfree annotations present but escape diagnostics were not computed; run through cmd/vetsuite or call ComputeEscapes first")
		return
	}
	for _, d := range annotated {
		tf := pass.Fset.File(d.Pos())
		if tf == nil {
			continue
		}
		file, err := filepath.Abs(tf.Name())
		if err != nil {
			file = tf.Name()
		}
		start := pass.Fset.Position(d.Pos()).Line
		end := pass.Fset.Position(d.End()).Line
		for _, diag := range pass.Facts.Escapes.ForFile(file) {
			if diag.Line < start || diag.Line > end {
				continue
			}
			pos := posOnLine(tf, diag.Line, diag.Col)
			if onPanicPath(pass, d, pos) {
				continue
			}
			pass.Reportf(pos, "%s is annotated vet:allocfree but the compiler reports: %s", d.Name.Name, diag.Msg)
		}
	}
}

// posOnLine maps a 1-based line/column pair back to a token.Pos inside
// tf, clamping out-of-range input to the line (or file) start.
func posOnLine(tf *token.File, line, col int) token.Pos {
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	if !pos.IsValid() || int(pos) > tf.Base()+tf.Size() {
		return tf.LineStart(line)
	}
	return pos
}

// onPanicPath reports whether the escape diagnostic at pos is
// attributable to a panic precondition: the innermost enclosing nodes
// include a call to the panic builtin, or a call to a module function
// whose body is nothing but guard-and-panic checks (the compiler
// re-attributes an inlined callee's escapes to the call expression).
func onPanicPath(pass *Pass, decl *ast.FuncDecl, pos token.Pos) bool {
	for _, n := range enclosingChain(decl, pos) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if fn := calleeFunc(pass.Pkg.Info, call); fn != nil {
			if site, ok := pass.Facts.FuncSite(fn); ok && guardPanicOnly(site.Decl) {
				return true
			}
		}
	}
	return false
}

// enclosingChain returns the nodes of root that contain pos, outermost
// first.
func enclosingChain(root ast.Node, pos token.Pos) []ast.Node {
	var chain []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			chain = append(chain, n)
			return true
		}
		return false
	})
	return chain
}

// guardPanicOnly reports whether a function body consists solely of
// guard-and-panic precondition checks (like bitset.mustMatch), meaning
// every allocation it performs lies on a panic path.
func guardPanicOnly(d *ast.FuncDecl) bool {
	if d == nil || d.Body == nil || len(d.Body.List) == 0 {
		return false
	}
	for _, stmt := range d.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil {
			return false
		}
		if len(ifs.Body.List) != 1 {
			return false
		}
		es, ok := ifs.Body.List[0].(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "panic" {
			return false
		}
	}
	return true
}
