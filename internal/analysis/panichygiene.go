package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PanicHygieneAnalyzer inventories panic calls. If the miner is to grow
// into a serving system, library packages must not panic on
// data-dependent paths: panics are reserved for programmer-error
// precondition checks in internal/bitset, for re-raising a recovered
// value inside a recover handler, and for sites explicitly annotated
// // vetsuite:allow panic with a reason. (The enumeration engines
// abort via engine.ErrNodeBudget sentinel errors, not panics, so no
// miner needs the recover exemption anymore.)
var PanicHygieneAnalyzer = &Analyzer{
	Name:  "panichygiene",
	Alias: "panic",
	Doc:   "flags panic calls outside internal/bitset precondition checks, recover-based re-raises, and annotated sites",
	Run:   runPanicHygiene,
}

func runPanicHygiene(pass *Pass) {
	if isBitsetPkgPath(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// All function nodes in the file, for innermost-enclosing lookup.
		var funcs []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "panic") {
				return true
			}
			// Re-raise exemption: the innermost enclosing function also
			// calls recover() directly — a recover handler propagating
			// foreign panics.
			if body := funcBody(innermostEnclosing(funcs, call.Pos())); body != nil && callsRecover(info, body) {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic on a library path; return an error instead, or annotate // vetsuite:allow panic -- <reason>")
			return true
		})
	}
}

// funcBody returns the body of a FuncDecl or FuncLit, or nil.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// innermostEnclosing returns the function node with the smallest span
// containing pos, or nil.
func innermostEnclosing(funcs []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, n := range funcs {
		if n.Pos() <= pos && pos <= n.End() {
			if best == nil || n.End()-n.Pos() < best.End()-best.Pos() {
				best = n
			}
		}
	}
	return best
}

// callsRecover reports whether body contains a direct recover() call
// (not nested in a further function literal).
func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "recover") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBuiltin reports whether call invokes the named predeclared builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
