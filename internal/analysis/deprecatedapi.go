package analysis

import (
	"go/ast"
	"strings"
)

// DeprecatedAPIAnalyzer flags uses of declarations carrying a
// "Deprecated:" doc paragraph from outside their defining package.
// An API redesign keeps one release of compatibility shims (the
// topkrgs facade carried MineLegacy and friends until their removal);
// this check stops the repo itself from leaning on such shims, so they
// can be deleted on schedule without a migration scramble.
//
// The defining package is exempt — shims delegate to their
// replacements and may mention each other freely. Tests are not
// scanned (the loader only parses non-test files), so pinned
// compatibility tests keep working.
var DeprecatedAPIAnalyzer = &Analyzer{
	Name:  "deprecatedapi",
	Alias: "deprecated",
	Doc:   "flags cross-package uses of Deprecated: declarations",
	Run:   runDeprecatedAPI,
}

func runDeprecatedAPI(pass *Pass) {
	if len(pass.Facts.Deprecated) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[id]
			if !ok || !pass.Facts.Deprecated[obj] {
				return true
			}
			if obj.Pkg() == nil || obj.Pkg() == pass.Pkg.Types {
				return true // defining package may reference its own shims
			}
			pass.Reportf(id.Pos(),
				"use of deprecated %s.%s; %s",
				obj.Pkg().Name(), obj.Name(), migrationHint(obj.Name()))
			return true
		})
	}
}

// migrationHint phrases the replacement advice: the doc comment of the
// deprecated symbol names the successor, so point there.
func migrationHint(name string) string {
	if strings.HasPrefix(name, "Mine") || strings.HasPrefix(name, "Train") {
		return "migrate to the context-first replacement named in its doc comment"
	}
	return "migrate to the replacement named in its doc comment"
}
