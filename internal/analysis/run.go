package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the vetsuite driver: it loads every package of the module
// enclosing dir (or the working directory), runs the selected
// analyzers, and prints findings. It returns the process exit code:
// 0 clean, 1 findings, 2 load or usage errors.
func Main(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("vetsuite", flag.ContinueOnError)
	fs.SetOutput(ew)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	dir := fs.String("C", ".", "directory whose module to analyze")
	fs.Usage = func() {
		fmt.Fprintln(ew, "usage: vetsuite [-json] [-list] [-enable a,b] [-disable a,b] [-C dir] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, pat := range fs.Args() {
		if pat != "./..." && pat != "all" {
			fmt.Fprintf(ew, "vetsuite: unsupported pattern %q (only ./... — the whole module is always analyzed)\n", pat)
			return 2
		}
	}
	if suite = selectAnalyzers(suite, *enable, *disable, ew); suite == nil {
		return 2
	}

	root, err := FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	facts := ComputeFacts(pkgs)
	diags := suite.Run(pkgs, facts)
	for i := range diags {
		diags[i].File = relPath(root, diags[i].File)
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		out := struct {
			Count    int          `json:"count"`
			Findings []Diagnostic `json:"findings"`
		}{Count: len(diags), Findings: diags}
		if out.Findings == nil {
			out.Findings = []Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(ew, "vetsuite: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(w, "vetsuite: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable, reporting unknown names.
func selectAnalyzers(suite *Suite, enable, disable string, ew io.Writer) *Suite {
	names := func(csv string) ([]string, bool) {
		if csv == "" {
			return nil, true
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if suite.Lookup(n) == nil {
				fmt.Fprintf(ew, "vetsuite: unknown analyzer %q\n", n)
				return nil, false
			}
			out = append(out, n)
		}
		return out, true
	}
	en, ok := names(enable)
	if !ok {
		return nil
	}
	dis, ok := names(disable)
	if !ok {
		return nil
	}
	selected := &Suite{}
	for _, a := range suite.Analyzers {
		if len(en) > 0 && !contains(en, a.Name) {
			continue
		}
		if contains(dis, a.Name) {
			continue
		}
		selected.Analyzers = append(selected.Analyzers, a)
	}
	return selected
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// relPath strips the module root prefix so both text and JSON output
// report stable, root-relative file paths.
func relPath(root, file string) string {
	if strings.HasPrefix(file, root+string(os.PathSeparator)) {
		return file[len(root)+1:]
	}
	return file
}
