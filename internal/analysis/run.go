package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// findingsSchema versions the -json output layout so CI baseline diffs
// fail loudly when the format changes rather than silently matching.
const findingsSchema = "vetsuite-findings/2"

// Report is the machine-readable -json output: a SARIF-flavored
// envelope (tool block, rule table, flat findings list) kept free of
// timestamps and absolute paths so identical findings byte-compare
// equal across runs and machines — the property the CI baseline diff
// relies on.
type Report struct {
	Schema string     `json:"schema"`
	Tool   ReportTool `json:"tool"`
	Count  int        `json:"count"`
	// Findings are sorted by file, line, column, analyzer; file paths
	// are module-root-relative.
	Findings []Diagnostic `json:"findings"`
}

// ReportTool identifies the producer and its rule set.
type ReportTool struct {
	Name  string       `json:"name"`
	Rules []ReportRule `json:"rules"`
}

// ReportRule documents one analyzer that ran.
type ReportRule struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// Main is the vetsuite driver: it loads every package of the module
// enclosing dir (or the working directory), runs the selected analyzers
// and prints findings for the packages matching the given patterns
// (default ./...). The whole module is always loaded — cross-package
// facts like atomic-field usage need it — but findings are reported
// only for selected packages. It returns the process exit code:
// 0 clean, 1 findings, 2 load or usage errors (so CI can tell "the
// code has findings" from "the suite could not run").
func Main(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("vetsuite", flag.ContinueOnError)
	fs.SetOutput(ew)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (schema "+findingsSchema+")")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	dir := fs.String("C", ".", "directory whose module to analyze")
	pkgFlag := fs.String("pkg", "", "package pattern(s) to report on, comma-separated (same syntax as positional patterns)")
	fs.Usage = func() {
		fmt.Fprintln(ew, "usage: vetsuite [-json] [-list] [-enable a,b] [-disable a,b] [-pkg patterns] [-C dir] [patterns]")
		fmt.Fprintln(ew, "patterns: ./... (default), ./dir/... (subtree), ./dir or import path (exact)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if *pkgFlag != "" {
		for _, p := range strings.Split(*pkgFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
	}
	if suite = selectAnalyzers(suite, *enable, *disable, ew); suite == nil {
		return 2
	}

	root, err := FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	selected, err := matchPackages(pkgs, loader, patterns)
	if err != nil {
		fmt.Fprintf(ew, "vetsuite: %v\n", err)
		return 2
	}
	facts := ComputeFacts(pkgs)
	if suite.Lookup("allocfree") != nil {
		esc, err := ComputeEscapes(root)
		if err != nil {
			fmt.Fprintf(ew, "vetsuite: %v\n", err)
			return 2
		}
		facts.Escapes = esc
	}
	diags := suite.Run(selected, facts)
	for i := range diags {
		diags[i].File = relPath(root, diags[i].File)
	}

	if *jsonOut {
		report := Report{
			Schema:   findingsSchema,
			Tool:     ReportTool{Name: "vetsuite"},
			Count:    len(diags),
			Findings: diags,
		}
		for _, a := range suite.Analyzers {
			report.Tool.Rules = append(report.Tool.Rules, ReportRule{Name: a.Name, Doc: a.Doc})
		}
		if report.Findings == nil {
			report.Findings = []Diagnostic{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(ew, "vetsuite: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(w, "vetsuite: %d finding(s) in %d package(s)\n", len(diags), len(selected))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// matchPackages filters the loaded packages down to those matching the
// go-style patterns: "./..." or "all" select everything, "./x/..."
// selects a subtree, "./x" or a full import path selects one package.
// An empty pattern list means everything; a pattern matching nothing is
// an error (a typo must not silently analyze zero packages).
func matchPackages(pkgs []*Package, loader *Loader, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if matchPattern(pkg, loader, pat) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// matchPattern reports whether one package matches one pattern.
func matchPattern(pkg *Package, loader *Loader, pat string) bool {
	if pat == "all" || pat == "./..." || pat == "..." {
		return true
	}
	// Normalize "./x" and "./x/..." to import-path form.
	rec := strings.HasSuffix(pat, "/...")
	base := strings.TrimSuffix(pat, "/...")
	base = strings.TrimPrefix(base, "./")
	base = strings.TrimSuffix(filepath.ToSlash(base), "/")
	if base == "." || base == "" {
		return rec // "./..." handled above; bare "./" only with /...
	}
	var path string
	switch {
	case base == loader.ModulePath || strings.HasPrefix(base, loader.ModulePath+"/"):
		path = base
	default:
		path = loader.ModulePath + "/" + base
	}
	if rec {
		return pkg.Path == path || strings.HasPrefix(pkg.Path, path+"/")
	}
	return pkg.Path == path
}

// selectAnalyzers applies -enable/-disable, reporting unknown names.
func selectAnalyzers(suite *Suite, enable, disable string, ew io.Writer) *Suite {
	names := func(csv string) ([]string, bool) {
		if csv == "" {
			return nil, true
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if suite.Lookup(n) == nil {
				fmt.Fprintf(ew, "vetsuite: unknown analyzer %q\n", n)
				return nil, false
			}
			out = append(out, n)
		}
		return out, true
	}
	en, ok := names(enable)
	if !ok {
		return nil
	}
	dis, ok := names(disable)
	if !ok {
		return nil
	}
	selected := &Suite{}
	for _, a := range suite.Analyzers {
		if len(en) > 0 && !contains(en, a.Name) {
			continue
		}
		if contains(dis, a.Name) {
			continue
		}
		selected.Analyzers = append(selected.Analyzers, a)
	}
	return selected
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// relPath strips the module root prefix so both text and JSON output
// report stable, root-relative file paths.
func relPath(root, file string) string {
	if strings.HasPrefix(file, root+string(os.PathSeparator)) {
		return filepath.ToSlash(file[len(root)+1:])
	}
	return file
}
