package analysis

import "testing"

// Each fixture contains positive hits (// want) plus allowlisted and
// clean negatives; runFixture enforces exact agreement.

func TestBitsetAliasFixture(t *testing.T) {
	runFixture(t, BitsetAliasAnalyzer, "bitsetalias",
		"repro/internal/analysis/testdata/src/bitsetalias")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, FloatCmpAnalyzer, "floatcmp",
		"repro/internal/analysis/testdata/src/floatcmp")
}

func TestPanicHygieneFixture(t *testing.T) {
	runFixture(t, PanicHygieneAnalyzer, "panichygiene",
		"repro/internal/analysis/testdata/src/panichygiene")
}

func TestUncheckedErrFixture(t *testing.T) {
	// Loaded under a synthetic cmd/ path so the fixture is in scope.
	runFixture(t, UncheckedErrAnalyzer, "uncheckederr",
		"repro/cmd/vetsuite-fixture-uncheckederr")
}

func TestSyncGuardFixture(t *testing.T) {
	runFixture(t, SyncGuardAnalyzer, "syncguard",
		"repro/internal/analysis/testdata/src/syncguard")
}

func TestDeprecatedAPIFixture(t *testing.T) {
	runFixture(t, DeprecatedAPIAnalyzer, "deprecatedapi",
		"repro/internal/analysis/testdata/src/deprecatedapi")
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer, "ctxflow",
		"repro/internal/analysis/testdata/src/ctxflow")
}

// TestCtxFlowMainExemption: the same Background() call that is a
// finding in a library package is clean in package main.
func TestCtxFlowMainExemption(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer, "ctxflowmain",
		"repro/internal/analysis/testdata/src/ctxflowmain")
}

func TestSentinelWrapFixture(t *testing.T) {
	runFixture(t, SentinelWrapAnalyzer, "sentinelwrap",
		"repro/internal/analysis/testdata/src/sentinelwrap")
}

func TestAtomicGuardFixture(t *testing.T) {
	runFixture(t, AtomicGuardAnalyzer, "atomicguard",
		"repro/internal/analysis/testdata/src/atomicguard")
}

func TestVisitorAliasFixture(t *testing.T) {
	runFixture(t, VisitorAliasAnalyzer, "visitoralias",
		"repro/internal/analysis/testdata/src/visitoralias")
}

// TestAllocFreeFixture drives the analyzer with the compiler's real
// escape diagnostics for the fixture package.
func TestAllocFreeFixture(t *testing.T) {
	runFixtureWith(t, AllocFreeAnalyzer, "allocfree",
		"repro/internal/analysis/testdata/src/allocfree",
		func(t *testing.T, f *Facts) {
			root, err := FindModuleRoot(".")
			if err != nil {
				t.Fatal(err)
			}
			esc, err := ComputeEscapes(root, "./internal/analysis/testdata/src/allocfree")
			if err != nil {
				t.Fatalf("ComputeEscapes: %v", err)
			}
			f.Escapes = esc
		})
}

func TestUncheckedErrScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/cmd/topkrgs":        true,
		"repro/cmd/vetsuite":       true,
		"repro/internal/bench":     true,
		"repro/internal/report":    true,
		"repro/internal/serve":     true,
		"repro/internal/core":      false,
		"repro/internal/benchmark": false,
		"repro/internal/served":    false,
	} {
		if got := uncheckedErrScope(path); got != want {
			t.Errorf("uncheckedErrScope(%q) = %v, want %v", path, got, want)
		}
	}
}
