package analysis

import "testing"

// Each fixture contains positive hits (// want) plus allowlisted and
// clean negatives; runFixture enforces exact agreement.

func TestBitsetAliasFixture(t *testing.T) {
	runFixture(t, BitsetAliasAnalyzer, "bitsetalias",
		"repro/internal/analysis/testdata/src/bitsetalias")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, FloatCmpAnalyzer, "floatcmp",
		"repro/internal/analysis/testdata/src/floatcmp")
}

func TestPanicHygieneFixture(t *testing.T) {
	runFixture(t, PanicHygieneAnalyzer, "panichygiene",
		"repro/internal/analysis/testdata/src/panichygiene")
}

func TestUncheckedErrFixture(t *testing.T) {
	// Loaded under a synthetic cmd/ path so the fixture is in scope.
	runFixture(t, UncheckedErrAnalyzer, "uncheckederr",
		"repro/cmd/vetsuite-fixture-uncheckederr")
}

func TestSyncGuardFixture(t *testing.T) {
	runFixture(t, SyncGuardAnalyzer, "syncguard",
		"repro/internal/analysis/testdata/src/syncguard")
}

func TestDeprecatedAPIFixture(t *testing.T) {
	runFixture(t, DeprecatedAPIAnalyzer, "deprecatedapi",
		"repro/internal/analysis/testdata/src/deprecatedapi")
}

func TestUncheckedErrScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/cmd/topkrgs":        true,
		"repro/cmd/vetsuite":       true,
		"repro/internal/bench":     true,
		"repro/internal/report":    true,
		"repro/internal/serve":     true,
		"repro/internal/core":      false,
		"repro/internal/benchmark": false,
		"repro/internal/served":    false,
	} {
		if got := uncheckedErrScope(path); got != want {
			t.Errorf("uncheckedErrScope(%q) = %v, want %v", path, got, want)
		}
	}
}
