package analysis

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The loader is shared across all tests in the package: the standard
// library source importer re-type-checks its imports from GOROOT
// source, which is the dominant cost and worth paying once.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		sharedLdr, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return sharedLdr
}

// runFixture loads testdata/src/<fixture> under the given import path,
// runs the analyzer, and checks its diagnostics against the fixture's
// `// want "regexp"` comments: every want must be matched by a
// diagnostic on its line, and every diagnostic must be wanted.
func runFixture(t *testing.T, az *Analyzer, fixture, asPath string) {
	t.Helper()
	runFixtureWith(t, az, fixture, asPath, nil)
}

// runFixtureWith is runFixture with a hook to enrich the computed facts
// before the analyzer runs (the allocfree fixture injects real compiler
// escape diagnostics this way).
func runFixtureWith(t *testing.T, az *Analyzer, fixture, asPath string, prep func(*testing.T, *Facts)) {
	t.Helper()
	ldr := sharedLoader(t)
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := ldr.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	facts := ComputeFacts(ldr.Packages())
	if prep != nil {
		prep(t, facts)
	}
	suite := &Suite{Analyzers: []*Analyzer{az}}
	diags := suite.Run([]*Package{pkg}, facts)

	wants := collectWants(t, pkg)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.File != w.file || d.Line != w.line {
				continue
			}
			if !w.re.MatchString(d.Message) {
				t.Errorf("%s:%d: diagnostic %q does not match want %q", w.file, w.line, d.Message, w.re)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic for want %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, pkg *Package) []wantExpect {
	t.Helper()
	var wants []wantExpect
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, wantExpect{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// mustLoadModule loads every package of the module once per test run.
func mustLoadModule(t *testing.T) []*Package {
	t.Helper()
	ldr := sharedLoader(t)
	pkgs, err := ldr.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	return pkgs
}
