package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer protects the cancellation paths threaded through
// engine, rcbt, jobs and serve. Three rules:
//
//  1. context.Context must be the first parameter of any function that
//     takes one (after the receiver), matching the stdlib convention
//     every caller in the repo assumes.
//  2. context.Background() and context.TODO() are banned outside
//     package main (and tests, which the loader never parses): a
//     library that mints its own root context detaches itself from the
//     caller's cancellation, which is exactly how a shutdown deadline
//     stops propagating into a long mining run. Deliberate roots (the
//     context-free convenience wrappers) carry a //vet:ignore with the
//     justification.
//  3. A declared ctx parameter must actually be used — an ignored ctx
//     is a forwarding break: the caller believes cancellation reaches
//     the callee's work, but it stops right there.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must be the first parameter, forwarded rather than re-minted; Background/TODO stay in main",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	inMain := pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "main"
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inMain {
					return true
				}
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(n.Pos(),
						"context.%s() mints a root context in a non-main package, detaching this path from the caller's cancellation; accept and forward a ctx parameter instead",
						fn.Name())
				}
			case *ast.FuncDecl:
				checkCtxParams(pass, n.Type, n.Body, n.Name.Name)
			}
			return true
		})
	}
}

// checkCtxParams enforces ctx-first ordering and ctx-actually-used on
// one function declaration.
func checkCtxParams(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, name string) {
	if ft.Params == nil {
		return
	}
	info := pass.Pkg.Info
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			pos += n
			continue
		}
		if pos != 0 {
			pass.Reportf(field.Pos(),
				"context.Context is parameter %d of %s; it must come first so call sites read uniformly and forwarding mistakes stand out",
				pos+1, name)
		}
		if body != nil {
			for _, pname := range field.Names {
				if pname.Name == "_" {
					continue
				}
				obj := info.Defs[pname]
				if obj == nil {
					continue
				}
				if !identUsed(info, body, obj) {
					pass.Reportf(pname.Pos(),
						"ctx parameter of %s is never used: cancellation stops propagating here; forward it to the blocking work or name it _",
						name)
				}
			}
		}
		pos += n
	}
}

// identUsed reports whether obj is referenced anywhere inside body.
func identUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
