package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Facts is module-wide knowledge shared by all analyzers: which
// functions are documented to return freshly allocated bitsets.
//
// A producer is "fresh" when its doc comment contains the marker
// "vetsuite:fresh", or when it is one of the bitset package's own
// constructors/pure-algebra methods (New, FromIndices, Clone,
// Intersect, Union, Difference), which always allocate.
type Facts struct {
	Fresh map[types.Object]bool
}

// bitsetFresh lists *bitset.Set-returning functions of the bitset
// package itself that are fresh by construction.
var bitsetFresh = map[string]bool{
	"New":         true,
	"FromIndices": true,
	"Clone":       true,
	"Intersect":   true,
	"Union":       true,
	"Difference":  true,
}

// ComputeFacts scans the given packages' declarations for
// vetsuite:fresh markers and the bitset built-ins.
func ComputeFacts(pkgs []*Package) *Facts {
	facts := &Facts{Fresh: map[types.Object]bool{}}
	for _, pkg := range pkgs {
		inBitset := isBitsetPkgPath(pkg.Path)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "vetsuite:fresh") {
					facts.Fresh[obj] = true
				}
				if inBitset && bitsetFresh[fd.Name.Name] {
					facts.Fresh[obj] = true
				}
			}
		}
	}
	return facts
}

// isBitsetPkgPath reports whether an import path is the bitset package.
func isBitsetPkgPath(path string) bool {
	return path == "bitset" || strings.HasSuffix(path, "/bitset")
}

// isBitsetPtr reports whether t is *bitset.Set.
func isBitsetPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isBitsetNamed(ptr.Elem())
}

// isBitsetNamed reports whether t is the named type bitset.Set.
func isBitsetNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Set" && obj.Pkg() != nil && isBitsetPkgPath(obj.Pkg().Path())
}

// holdsBitsetPtr reports whether t is *bitset.Set or a slice, array or
// map holding *bitset.Set directly.
func holdsBitsetPtr(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return isBitsetNamed(u.Elem())
	case *types.Slice:
		return isBitsetPtr(u.Elem())
	case *types.Array:
		return isBitsetPtr(u.Elem())
	case *types.Map:
		return isBitsetPtr(u.Elem())
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
