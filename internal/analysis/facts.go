package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Facts is module-wide knowledge shared by all analyzers: which
// functions are documented to return freshly allocated bitsets, and
// which declarations are deprecated.
//
// A producer is "fresh" when its doc comment contains the marker
// "vetsuite:fresh", or when it is one of the bitset package's own
// constructors/pure-algebra methods (New, FromIndices, Clone,
// Intersect, Union, Difference), which always allocate.
//
// A declaration is deprecated when its doc comment has a paragraph
// starting with "Deprecated:", the standard Go convention.
type Facts struct {
	Fresh      map[types.Object]bool
	Deprecated map[types.Object]bool
}

// bitsetFresh lists *bitset.Set-returning functions of the bitset
// package itself that are fresh by construction.
var bitsetFresh = map[string]bool{
	"New":         true,
	"FromIndices": true,
	"Clone":       true,
	"Intersect":   true,
	"Union":       true,
	"Difference":  true,
}

// ComputeFacts scans the given packages' declarations for
// vetsuite:fresh markers, Deprecated: doc paragraphs and the bitset
// built-ins.
func ComputeFacts(pkgs []*Package) *Facts {
	facts := &Facts{
		Fresh:      map[types.Object]bool{},
		Deprecated: map[types.Object]bool{},
	}
	for _, pkg := range pkgs {
		inBitset := isBitsetPkgPath(pkg.Path)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj := pkg.Info.Defs[d.Name]
					if obj == nil {
						continue
					}
					if d.Doc != nil && strings.Contains(d.Doc.Text(), "vetsuite:fresh") {
						facts.Fresh[obj] = true
					}
					if inBitset && bitsetFresh[d.Name.Name] {
						facts.Fresh[obj] = true
					}
					if isDeprecatedDoc(d.Doc) {
						facts.Deprecated[obj] = true
					}
				case *ast.GenDecl:
					// Types, vars and consts: the GenDecl doc applies to
					// every spec, a per-spec doc only to its own.
					for _, spec := range d.Specs {
						var names []*ast.Ident
						var doc *ast.CommentGroup
						switch s := spec.(type) {
						case *ast.TypeSpec:
							names, doc = []*ast.Ident{s.Name}, s.Doc
						case *ast.ValueSpec:
							names, doc = s.Names, s.Doc
						default:
							continue
						}
						if !isDeprecatedDoc(doc) && !isDeprecatedDoc(d.Doc) {
							continue
						}
						for _, name := range names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								facts.Deprecated[obj] = true
							}
						}
					}
				}
			}
		}
	}
	return facts
}

// isDeprecatedDoc reports whether a doc comment has a paragraph
// starting with the conventional "Deprecated:" marker.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, para := range strings.Split(doc.Text(), "\n\n") {
		if strings.HasPrefix(strings.TrimSpace(para), "Deprecated:") {
			return true
		}
	}
	return false
}

// isBitsetPkgPath reports whether an import path is the bitset package.
func isBitsetPkgPath(path string) bool {
	return path == "bitset" || strings.HasSuffix(path, "/bitset")
}

// isBitsetPtr reports whether t is *bitset.Set.
func isBitsetPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isBitsetNamed(ptr.Elem())
}

// isBitsetNamed reports whether t is the named type bitset.Set.
func isBitsetNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Set" && obj.Pkg() != nil && isBitsetPkgPath(obj.Pkg().Path())
}

// holdsBitsetPtr reports whether t is *bitset.Set or a slice, array or
// map holding *bitset.Set directly.
func holdsBitsetPtr(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return isBitsetNamed(u.Elem())
	case *types.Slice:
		return isBitsetPtr(u.Elem())
	case *types.Array:
		return isBitsetPtr(u.Elem())
	case *types.Map:
		return isBitsetPtr(u.Elem())
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
