package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts is module-wide knowledge shared by all analyzers: which
// functions are documented to return freshly allocated bitsets, and
// which declarations are deprecated.
//
// A producer is "fresh" when its doc comment contains the marker
// "vetsuite:fresh", or when it is one of the bitset package's own
// constructors/pure-algebra methods (New, FromIndices, Clone,
// Intersect, Union, Difference), which always allocate.
//
// A declaration is deprecated when its doc comment has a paragraph
// starting with "Deprecated:", the standard Go convention.
//
// The contract-verification analyzers add three more tables plus the
// compiler's escape diagnostics:
//
//   - AllocFree holds functions whose doc comment carries the
//     "vet:allocfree" marker; the allocfree analyzer proves they
//     compile without heap escapes.
//   - AtomicFields holds every field or package-level variable whose
//     address is passed to a sync/atomic function anywhere in the
//     module; the atomicguard analyzer then bans plain access to them.
//   - Sentinels holds package-level error variables (errors.New-style
//     sentinels); sentinelwrap bans ==/!= comparisons against them.
//   - Escapes is the parsed -gcflags=-m output; nil until the driver
//     (or a test) calls ComputeEscapes, in which case allocfree reports
//     a configuration finding rather than silently passing.
type Facts struct {
	Fresh      map[types.Object]bool
	Deprecated map[types.Object]bool

	AllocFree    map[types.Object]bool
	AtomicFields map[types.Object]bool
	Sentinels    map[types.Object]bool
	Escapes      *EscapeSet

	funcSites map[types.Object]FuncSite
}

// FuncSite locates a function declaration together with the package it
// was type-checked in, so interprocedural analyzers (visitoralias, the
// allocfree panic-path exemption) can inspect callee bodies across
// package boundaries.
type FuncSite struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// FuncSite returns the declaration site of a module function object.
func (f *Facts) FuncSite(obj types.Object) (FuncSite, bool) {
	site, ok := f.funcSites[obj]
	return site, ok
}

// bitsetFresh lists *bitset.Set-returning functions of the bitset
// package itself that are fresh by construction.
var bitsetFresh = map[string]bool{
	"New":         true,
	"FromIndices": true,
	"Clone":       true,
	"Intersect":   true,
	"Union":       true,
	"Difference":  true,
}

// ComputeFacts scans the given packages' declarations for
// vetsuite:fresh markers, Deprecated: doc paragraphs and the bitset
// built-ins.
func ComputeFacts(pkgs []*Package) *Facts {
	facts := &Facts{
		Fresh:        map[types.Object]bool{},
		Deprecated:   map[types.Object]bool{},
		AllocFree:    map[types.Object]bool{},
		AtomicFields: map[types.Object]bool{},
		Sentinels:    map[types.Object]bool{},
		funcSites:    map[types.Object]FuncSite{},
	}
	for _, pkg := range pkgs {
		inBitset := isBitsetPkgPath(pkg.Path)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj := pkg.Info.Defs[d.Name]
					if obj == nil {
						continue
					}
					facts.funcSites[obj] = FuncSite{Decl: d, Pkg: pkg}
					if d.Doc != nil && strings.Contains(d.Doc.Text(), "vetsuite:fresh") {
						facts.Fresh[obj] = true
					}
					if hasDirective(d.Doc, "//vet:allocfree") {
						facts.AllocFree[obj] = true
					}
					if inBitset && bitsetFresh[d.Name.Name] {
						facts.Fresh[obj] = true
					}
					if isDeprecatedDoc(d.Doc) {
						facts.Deprecated[obj] = true
					}
				case *ast.GenDecl:
					// Types, vars and consts: the GenDecl doc applies to
					// every spec, a per-spec doc only to its own.
					for _, spec := range d.Specs {
						var names []*ast.Ident
						var doc *ast.CommentGroup
						switch s := spec.(type) {
						case *ast.TypeSpec:
							names, doc = []*ast.Ident{s.Name}, s.Doc
						case *ast.ValueSpec:
							names, doc = s.Names, s.Doc
							if d.Tok == token.VAR {
								for _, name := range s.Names {
									obj := pkg.Info.Defs[name]
									if obj != nil && implementsError(obj.Type()) {
										facts.Sentinels[obj] = true
									}
								}
							}
						default:
							continue
						}
						if !isDeprecatedDoc(doc) && !isDeprecatedDoc(d.Doc) {
							continue
						}
						for _, name := range names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								facts.Deprecated[obj] = true
							}
						}
					}
				}
			}
		}
		collectAtomicFields(pkg, facts.AtomicFields)
	}
	return facts
}

// hasDirective reports whether a doc comment group contains a comment
// line starting with the given directive. Directive comments (the
// "//tool:rule" form) are stripped by CommentGroup.Text, so markers
// like //vet:allocfree must be searched in the raw comment list.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// collectAtomicFields records every variable whose address is taken as
// the pointer argument of a sync/atomic function (atomic.AddInt64,
// atomic.LoadUint32, ...). Typed atomics (atomic.Int64 and friends)
// need no facts: their representation is private, so non-atomic access
// cannot compile in the first place.
func collectAtomicFields(pkg *Package, out map[types.Object]bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedVar(pkg.Info, un.X); obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
}

// addressedVar resolves the variable (field, package-level var or
// local) an address-of expression targets, or nil.
func addressedVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Package-qualified variable: pkg.Var.
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		// &slice[i] / &arr[i]: attribute the access to the container
		// variable so mixed atomic/plain element access is still caught.
		return addressedVar(info, e.X)
	}
	return nil
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isDeprecatedDoc reports whether a doc comment has a paragraph
// starting with the conventional "Deprecated:" marker.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, para := range strings.Split(doc.Text(), "\n\n") {
		if strings.HasPrefix(strings.TrimSpace(para), "Deprecated:") {
			return true
		}
	}
	return false
}

// isBitsetPkgPath reports whether an import path is the bitset package.
func isBitsetPkgPath(path string) bool {
	return path == "bitset" || strings.HasSuffix(path, "/bitset")
}

// isBitsetPtr reports whether t is *bitset.Set.
func isBitsetPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isBitsetNamed(ptr.Elem())
}

// isBitsetNamed reports whether t is the named type bitset.Set.
func isBitsetNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Set" && obj.Pkg() != nil && isBitsetPkgPath(obj.Pkg().Path())
}

// holdsBitsetPtr reports whether t is *bitset.Set or a slice, array or
// map holding *bitset.Set directly.
func holdsBitsetPtr(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return isBitsetNamed(u.Elem())
	case *types.Slice:
		return isBitsetPtr(u.Elem())
	case *types.Array:
		return isBitsetPtr(u.Elem())
	case *types.Map:
		return isBitsetPtr(u.Elem())
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
