// Package analysis implements vetsuite, the repo-specific static
// analysis suite for the TopkRGS miner. It is built on the standard
// library alone (go/ast, go/parser, go/types, go/importer): a small
// loader type-checks every package in the module and a set of analyzers
// enforce the code conventions the compiler cannot see:
//
//   - bitsetalias: in-place bitset mutation is only allowed on sets the
//     mutating code owns; sets obtained from another package's accessor
//     or from a foreign struct field must be Clone()d first.
//   - floatcmp: confidence/score float64s are never compared with == or
//     != directly; all equality and tie-breaking goes through
//     rules.CompareConf.
//   - panichygiene: panics are reserved for precondition checks in
//     internal/bitset; everywhere else they must be annotated.
//   - deprecatedapi: declarations carrying a "Deprecated:" doc
//     paragraph must not be used from outside their defining package,
//     so compatibility shims can be deleted on schedule.
//   - uncheckederr: cmd/, internal/bench, internal/report and
//     internal/serve must not drop error returns on the floor.
//   - syncguard: preparation for the parallel miner — no by-value
//     copies of lock-carrying types, no goroutine capture of shared
//     mutable bitsets.
//
// A second generation of analyzers verifies the contracts the engine,
// jobs and serve layers state in prose (DESIGN.md §7):
//
//   - allocfree: functions annotated "vet:allocfree" must compile with
//     zero heap escapes, proven by the compiler's own -gcflags=-m
//     diagnostics (panic preconditions are exempt — they never run on
//     the steady-state path).
//   - visitoralias: engine.Visitor implementations must not retain a
//     parameter-derived *bitset.Set or slice past the callback — every
//     store, send or capture needs an intervening Clone()/copy.
//   - ctxflow: context.Context is the first parameter, is forwarded
//     rather than re-minted, and context.Background()/TODO() stay out
//     of non-main packages.
//   - sentinelwrap: fmt.Errorf must wrap error operands with %w (never
//     %v/%s) and sentinel errors are matched with errors.Is, never ==,
//     keeping jobs.Record.Cause() matchable across a journal round-trip.
//   - atomicguard: a field or variable accessed through sync/atomic
//     anywhere may never be read or written non-atomically elsewhere.
//
// Findings can be suppressed line-by-line with a trailing or preceding
// comment in either of two forms:
//
//	// vetsuite:allow <analyzer> [-- reason]
//	//vet:ignore <analyzer> <reason>
//
// The vet:ignore form requires the reason; a reasonless marker
// suppresses nothing and is itself reported as a finding. Producer
// functions that always return a freshly allocated *bitset.Set can be
// documented with a "vetsuite:fresh" marker in their doc comment, which
// the bitsetalias analyzer honors across packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package. Alias,
// when set, is an additional short name accepted in vetsuite:allow
// annotations (e.g. "panic" for panichygiene).
type Analyzer struct {
	Name  string
	Alias string
	Doc   string
	Run   func(*Pass)
}

// Pass carries everything an analyzer needs to inspect one package and
// report findings. Reports on lines carrying (or immediately following)
// a matching vetsuite:allow comment are dropped centrally, so every
// analyzer gets the same suppression semantics for free.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Facts    *Facts

	allow   allowIndex
	collect func(Diagnostic)
}

// Reportf records a finding at pos unless that line is suppressed for
// this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position, p.Analyzer.Name) || (p.Analyzer.Alias != "" && p.allow.allows(position, p.Analyzer.Alias)) {
		return
	}
	p.collect(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowIndex maps "file:line" to the set of analyzer names allowed
// there. A comment suppresses findings both on its own line and on the
// following line, so annotations can sit above long statements.
type allowIndex map[string]map[string]bool

func (a allowIndex) allows(pos token.Position, analyzer string) bool {
	set := a[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return set[analyzer] || set["all"]
}

// buildAllowIndex scans every comment in the package for suppression
// markers. Two syntaxes are honored:
//
//	// vetsuite:allow <analyzer> [-- reason]
//	//vet:ignore <analyzer> <reason>
//
// Both suppress findings on their own line and on the following line.
// The vet:ignore form makes the reason mandatory: a marker missing the
// analyzer name or the reason suppresses nothing and is returned as a
// malformed-suppression diagnostic, so a suppression can never shed its
// justification silently.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var malformed []Diagnostic
	add := func(file string, line int, name string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if idx[key] == nil {
			idx[key] = map[string]bool{}
		}
		idx[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if i := strings.Index(text, "vet:ignore"); i >= 0 && !strings.Contains(text, "vetsuite:allow") {
					rest := strings.TrimSpace(text[i+len("vet:ignore"):])
					name, reason := rest, ""
					if j := strings.IndexAny(rest, " \t"); j >= 0 {
						name, reason = rest[:j], strings.TrimSpace(rest[j+1:])
					}
					pos := fset.Position(c.Pos())
					if name == "" || reason == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "vetignore",
							Pos:      pos,
							File:     pos.Filename,
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  "vet:ignore requires an analyzer name and a reason: //vet:ignore <analyzer> <reason>",
						})
						continue
					}
					add(pos.Filename, pos.Line, name)
					add(pos.Filename, pos.Line+1, name)
					continue
				}
				i := strings.Index(text, "vetsuite:allow")
				if i < 0 {
					continue
				}
				rest := strings.TrimSpace(text[i+len("vetsuite:allow"):])
				name := rest
				if j := strings.IndexAny(rest, " \t"); j >= 0 {
					name = rest[:j]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, name)
				add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return idx, malformed
}

// Suite is an ordered collection of analyzers.
type Suite struct {
	Analyzers []*Analyzer
}

// DefaultSuite returns all vetsuite analyzers in reporting order.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		BitsetAliasAnalyzer,
		DeprecatedAPIAnalyzer,
		FloatCmpAnalyzer,
		PanicHygieneAnalyzer,
		UncheckedErrAnalyzer,
		SyncGuardAnalyzer,
		AllocFreeAnalyzer,
		VisitorAliasAnalyzer,
		CtxFlowAnalyzer,
		SentinelWrapAnalyzer,
		AtomicGuardAnalyzer,
	}}
}

// Lookup returns the analyzer with the given name, or nil.
func (s *Suite) Lookup(name string) *Analyzer {
	for _, a := range s.Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the findings
// sorted by file position then analyzer name.
func (s *Suite) Run(pkgs []*Package, facts *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow, malformed := buildAllowIndex(pkg.Fset, pkg.Files)
		diags = append(diags, malformed...)
		for _, az := range s.Analyzers {
			pass := &Pass{
				Analyzer: az,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Facts:    facts,
				allow:    allow,
				collect:  func(d Diagnostic) { diags = append(diags, d) },
			}
			az.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
