package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module (or a
// test fixture loaded under a synthetic import path).
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module without any
// dependency beyond the standard library. Imports within the module are
// resolved by mapping the import path onto the module directory tree
// and loading recursively; standard-library imports are delegated to
// the go/importer source importer (the module is dependency-free, so
// nothing else can occur).
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path
}

// NewLoader creates a loader for the module rooted at moduleRoot
// (a directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", root, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        std,
		pkgs:       map[string]*Package{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source through the loader itself, anything else goes to the
// standard-library source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// load returns the cached package for a module-internal import path,
// parsing and type-checking it on first use.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.LoadDir(l.dirFor(path), path)
}

// LoadDir parses and type-checks the non-test Go files of one directory
// under the given import path. Fixture tests use this to load testdata
// packages under synthetic paths (e.g. a path below repro/cmd/ to put a
// fixture in an analyzer's scope).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	cfg := &types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadModule loads every package of the module (every directory with at
// least one non-test Go file, skipping testdata, hidden and underscore
// directories) and returns them in import-path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Packages returns every module-internal package loaded so far, in
// import-path order.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
