package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErrAnalyzer flags dropped error returns in the packages that
// talk to the outside world: cmd/ binaries, the internal/bench and
// internal/report writers, the internal/serve HTTP layer, the
// internal/jobs journal, and the internal/datastore snapshot
// persistence. A call whose error result is discarded by an
// expression statement (or a deferred call) silently loses ENOSPC on
// result files, truncated model saves, and torn job journals.
//
// Deliberate best-effort calls remain expressible: assign to _
// explicitly, or annotate // vetsuite:allow uncheckederr -- <reason>.
// Formatted printing is exempt when it cannot meaningfully fail or when
// the destination is the process's own terminal: fmt.Print* (stdout),
// fmt.Fprint* to os.Stdout/os.Stderr, to an io.Writer interface value
// (the caller owns the sink), or to strings.Builder/bytes.Buffer
// (documented never to fail) — but fmt.Fprint* straight to a concrete
// *os.File is flagged.
var UncheckedErrAnalyzer = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flags dropped error returns in cmd/, internal/bench, internal/report, internal/serve, internal/jobs and internal/datastore",
	Run:  runUncheckedErr,
}

// uncheckedErrScope reports whether a package path is in the analyzer's
// scope.
func uncheckedErrScope(path string) bool {
	return strings.Contains(path, "/cmd/") ||
		strings.HasSuffix(path, "/internal/bench") ||
		strings.HasSuffix(path, "/internal/report") ||
		strings.HasSuffix(path, "/internal/serve") ||
		strings.HasSuffix(path, "/internal/jobs") ||
		strings.HasSuffix(path, "/internal/datastore")
}

func runUncheckedErr(pass *Pass) {
	if !uncheckedErrScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	check := func(call *ast.CallExpr, deferred bool) {
		if !resultHasError(info, call) || exemptBestEffort(info, call) {
			return
		}
		what := "call"
		if deferred {
			what = "deferred call"
		}
		pass.Reportf(call.Pos(),
			"%s to %s drops its error result; handle it, assign to _ explicitly, or annotate // vetsuite:allow uncheckederr -- <reason>",
			what, calleeName(info, call))
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.DeferStmt:
				check(n.Call, true)
			case *ast.GoStmt:
				return true
			}
			return true
		})
	}
}

// resultHasError reports whether the call's result type is or contains
// error.
func resultHasError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "error" && obj.Pkg() == nil
}

// exemptBestEffort implements the fmt/builder exemptions.
func exemptBestEffort(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	// Methods on never-failing in-memory writers.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rt := sig.Recv().Type(); isNamedIn(rt, "strings", "Builder") || isNamedIn(rt, "bytes", "Buffer") {
			return true
		}
	}
	if pkg.Path() != "fmt" {
		return false
	}
	if strings.HasPrefix(name, "Print") {
		return true // implicit stdout
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		dst := ast.Unparen(call.Args[0])
		// os.Stdout / os.Stderr.
		if sel, ok := dst.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if po, ok := info.Uses[id].(*types.PkgName); ok && po.Imported().Path() == "os" &&
					(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
					return true
				}
			}
		}
		if tv, ok := info.Types[dst]; ok && tv.Type != nil {
			t := tv.Type
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				return true // caller-owned io.Writer sink
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if isNamedIn(ptr.Elem(), "strings", "Builder") || isNamedIn(ptr.Elem(), "bytes", "Buffer") {
					return true
				}
			}
		}
	}
	return false
}

// isNamedIn reports whether t (possibly behind a pointer) is the named
// type pkg.Name.
func isNamedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeName renders a readable callee for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "function value"
}
