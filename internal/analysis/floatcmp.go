package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// FloatCmpAnalyzer flags == and != between confidence/score float64s.
// MineTopkRGS tie-breaking (Definition 2.2), CBA precedence and top-k
// threshold checks must all share one documented comparison semantics,
// which lives in rules.CompareConf; ad-hoc float equality drifts into
// silent wrong-answer bugs when a call site is later "fixed" with an
// epsilon the others don't use.
//
// A comparison is flagged when both operands are floating point and
// either side mentions a confidence-like identifier (conf*, score*).
// Comparisons against the constant 0 are allowed — that is the
// "option not set" idiom for config fields, not a significance test —
// as is the body of CompareConf itself.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on confidence/score float64s outside rules.CompareConf",
	Run:  runFloatCmp,
}

var confLikeName = regexp.MustCompile(`(?i)(conf|score)`)

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "CompareConf" {
				continue // the one blessed implementation site
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatExpr(info, be.X) || !isFloatExpr(info, be.Y) {
					return true
				}
				if isZeroConst(info, be.X) || isZeroConst(info, be.Y) {
					return true
				}
				if !mentionsConfLike(be.X) && !mentionsConfLike(be.Y) {
					return true
				}
				pass.Reportf(be.OpPos,
					"%s on confidence/score floats; use rules.CompareConf for the documented comparison semantics", be.Op)
				return true
			})
		}
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

func mentionsConfLike(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && confLikeName.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}
