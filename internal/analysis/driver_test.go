package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSuiteCleanOnModule is the enforcement test: the whole module must
// load, type-check and pass every analyzer. A regression that violates
// the clone-before-mutate rule, compares confidences ad hoc, panics on
// a library path, or drops an error in a writer package fails here (and
// in make analyze / CI).
func TestSuiteCleanOnModule(t *testing.T) {
	pkgs := mustLoadModule(t)
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	facts := ComputeFacts(pkgs)
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	esc, err := ComputeEscapes(root)
	if err != nil {
		t.Fatalf("ComputeEscapes: %v", err)
	}
	facts.Escapes = esc
	diags := DefaultSuite().Run(pkgs, facts)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestModuleLoadCoversKnownPackages(t *testing.T) {
	pkgs := mustLoadModule(t)
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, path := range []string{
		"repro/internal/bitset",
		"repro/internal/core",
		"repro/internal/engine",
		"repro/internal/rules",
		"repro/cmd/vetsuite",
		"repro/topkrgs",
	} {
		if !byPath[path] {
			t.Errorf("module load missed %s", path)
		}
	}
}

func TestFactsMarkBitsetProducersFresh(t *testing.T) {
	pkgs := mustLoadModule(t)
	facts := ComputeFacts(pkgs)
	fresh := map[string]bool{}
	for obj := range facts.Fresh {
		fresh[obj.Name()] = true
	}
	for _, name := range []string{"New", "FromIndices", "Clone", "Intersect", "Union", "Difference"} {
		if !fresh[name] {
			t.Errorf("bitset.%s not registered as fresh", name)
		}
	}
}

// TestFacadeShimsRetired pins the end of the redesign's deprecation
// schedule: the topkrgs compatibility shims (MineLegacy, the
// positional MineContext, TrainRCBTLegacy, the old Options) were
// deleted after their one release of grace, so no deprecated symbol
// may remain in the facade.
func TestFacadeShimsRetired(t *testing.T) {
	pkgs := mustLoadModule(t)
	facts := ComputeFacts(pkgs)
	for obj := range facts.Deprecated {
		if obj.Pkg() != nil && obj.Pkg().Path() == "repro/topkrgs" {
			t.Errorf("topkrgs.%s is still deprecated; the shim layer was retired", obj.Name())
		}
	}
}

func TestMainJSONAndFlags(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, []string{"-C", root, "-json", "./..."}); code != 0 {
		t.Fatalf("Main exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	var res struct {
		Schema string `json:"schema"`
		Tool   struct {
			Name  string `json:"name"`
			Rules []struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			} `json:"rules"`
		} `json:"tool"`
		Count    int `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, out.String())
	}
	if res.Schema != findingsSchema {
		t.Errorf("schema = %q, want %q", res.Schema, findingsSchema)
	}
	if res.Tool.Name != "vetsuite" {
		t.Errorf("tool.name = %q, want vetsuite", res.Tool.Name)
	}
	if want := len(DefaultSuite().Analyzers); len(res.Tool.Rules) != want {
		t.Errorf("tool.rules has %d entries, want %d", len(res.Tool.Rules), want)
	}
	if res.Count != 0 || len(res.Findings) != 0 {
		t.Errorf("expected clean module, got %d findings", res.Count)
	}

	out.Reset()
	if code := Main(&out, &errOut, []string{"-list"}); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{
		"bitsetalias", "deprecatedapi", "floatcmp", "panichygiene",
		"uncheckederr", "syncguard", "allocfree", "visitoralias",
		"ctxflow", "sentinelwrap", "atomicguard",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-enable", "nosuch"}); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}

	// Disabling every analyzer but one still runs clean and fast.
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-C", root, "-enable", "panichygiene"}); code != 0 {
		t.Errorf("-enable panichygiene exit %d, stderr: %s", code, errOut.String())
	}
}

// TestMainPatternSelection pins the -pkg / positional package selection
// semantics: subtree and exact patterns filter findings, a pattern that
// matches nothing is a usage error (exit 2), not a silent clean pass.
func TestMainPatternSelection(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, []string{"-C", root, "-enable", "floatcmp", "./internal/rules"}); code != 0 {
		t.Errorf("exact pattern exit %d, stderr: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-C", root, "-enable", "floatcmp", "-pkg", "./internal/jobs/..."}); code != 0 {
		t.Errorf("-pkg subtree exit %d, stderr: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-C", root, "-enable", "floatcmp", "./internal/nosuchpkg"}); code != 2 {
		t.Errorf("unmatched pattern exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "matched no packages") {
		t.Errorf("unmatched pattern error missing, got: %s", errOut.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	var ew bytes.Buffer
	s := selectAnalyzers(DefaultSuite(), "floatcmp,syncguard", "", &ew)
	if s == nil || len(s.Analyzers) != 2 {
		t.Fatalf("enable filter failed: %v", s)
	}
	all := len(DefaultSuite().Analyzers)
	s = selectAnalyzers(DefaultSuite(), "", "floatcmp", &ew)
	if s == nil || len(s.Analyzers) != all-1 || s.Lookup("floatcmp") != nil {
		t.Fatalf("disable filter failed")
	}
}

// TestVetIgnoreRequiresReason pins the suppression contract: a
// vet:ignore with a reason suppresses, a reasonless or nameless marker
// suppresses nothing and is itself reported as a "vetignore" finding.
func TestVetIgnoreRequiresReason(t *testing.T) {
	ldr := sharedLoader(t)
	pkg, err := ldr.LoadDir("testdata/src/vetignore",
		"repro/internal/analysis/testdata/src/vetignore")
	if err != nil {
		t.Fatal(err)
	}
	facts := ComputeFacts(ldr.Packages())
	diags := (&Suite{Analyzers: []*Analyzer{CtxFlowAnalyzer}}).Run([]*Package{pkg}, facts)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if strings.Contains(d.Message, "reason present") {
			t.Errorf("justified suppression did not suppress: %s", d)
		}
	}
	// Two malformed markers (reasonless, nameless), each leaving its
	// ctxflow finding unsuppressed.
	if byAnalyzer["vetignore"] != 2 {
		t.Errorf("got %d vetignore findings, want 2: %v", byAnalyzer["vetignore"], diags)
	}
	if byAnalyzer["ctxflow"] != 2 {
		t.Errorf("got %d ctxflow findings, want 2: %v", byAnalyzer["ctxflow"], diags)
	}
}

// TestAllocFreeRefusesVacuousPass: with annotations present but no
// escape data the analyzer must fail loudly, not certify silently.
func TestAllocFreeRefusesVacuousPass(t *testing.T) {
	ldr := sharedLoader(t)
	pkg, err := ldr.LoadDir("testdata/src/allocfree",
		"repro/internal/analysis/testdata/src/allocfree")
	if err != nil {
		t.Fatal(err)
	}
	facts := ComputeFacts(ldr.Packages()) // Escapes deliberately left nil
	diags := (&Suite{Analyzers: []*Analyzer{AllocFreeAnalyzer}}).Run([]*Package{pkg}, facts)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "escape diagnostics were not computed") {
		t.Errorf("want exactly one config finding, got: %v", diags)
	}
}

// TestFactsContractLayer pins the cross-package facts the new analyzers
// consume: allocfree annotations, error sentinels, atomic fields.
func TestFactsContractLayer(t *testing.T) {
	pkgs := mustLoadModule(t)
	facts := ComputeFacts(pkgs)

	allocFree := map[string]bool{}
	for obj := range facts.AllocFree {
		allocFree[obj.Name()] = true
	}
	for _, name := range []string{"Add", "Contains", "IntersectWith", "IntersectCountBelow"} {
		if !allocFree[name] {
			t.Errorf("bitset.%s not registered vet:allocfree", name)
		}
	}

	sentinels := map[string]bool{}
	for obj := range facts.Sentinels {
		if obj.Pkg() != nil {
			sentinels[obj.Pkg().Name()+"."+obj.Name()] = true
		}
	}
	for _, name := range []string{"engine.ErrNodeBudget", "jobs.ErrInterrupted", "jobs.ErrBadSpec"} {
		if !sentinels[name] {
			t.Errorf("%s not registered as a sentinel error", name)
		}
	}
}
