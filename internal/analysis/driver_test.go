package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSuiteCleanOnModule is the enforcement test: the whole module must
// load, type-check and pass every analyzer. A regression that violates
// the clone-before-mutate rule, compares confidences ad hoc, panics on
// a library path, or drops an error in a writer package fails here (and
// in make analyze / CI).
func TestSuiteCleanOnModule(t *testing.T) {
	pkgs := mustLoadModule(t)
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := DefaultSuite().Run(pkgs, ComputeFacts(pkgs))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestModuleLoadCoversKnownPackages(t *testing.T) {
	pkgs := mustLoadModule(t)
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, path := range []string{
		"repro/internal/bitset",
		"repro/internal/core",
		"repro/internal/engine",
		"repro/internal/rules",
		"repro/cmd/vetsuite",
		"repro/topkrgs",
	} {
		if !byPath[path] {
			t.Errorf("module load missed %s", path)
		}
	}
}

func TestFactsMarkBitsetProducersFresh(t *testing.T) {
	pkgs := mustLoadModule(t)
	facts := ComputeFacts(pkgs)
	fresh := map[string]bool{}
	for obj := range facts.Fresh {
		fresh[obj.Name()] = true
	}
	for _, name := range []string{"New", "FromIndices", "Clone", "Intersect", "Union", "Difference"} {
		if !fresh[name] {
			t.Errorf("bitset.%s not registered as fresh", name)
		}
	}
}

// TestFactsMarkFacadeShimsDeprecated pins the redesign contract: the
// topkrgs compatibility shims must carry Deprecated: docs so the
// deprecatedapi analyzer keeps the rest of the repo off them.
func TestFactsMarkFacadeShimsDeprecated(t *testing.T) {
	pkgs := mustLoadModule(t)
	facts := ComputeFacts(pkgs)
	deprecated := map[string]bool{}
	for obj := range facts.Deprecated {
		if obj.Pkg() != nil && obj.Pkg().Path() == "repro/topkrgs" {
			deprecated[obj.Name()] = true
		}
	}
	for _, name := range []string{"MineLegacy", "MineContext", "TrainRCBTLegacy", "Options"} {
		if !deprecated[name] {
			t.Errorf("topkrgs.%s not registered as deprecated", name)
		}
	}
}

func TestMainJSONAndFlags(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, []string{"-C", root, "-json", "./..."}); code != 0 {
		t.Fatalf("Main exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	var res struct {
		Count    int `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, out.String())
	}
	if res.Count != 0 || len(res.Findings) != 0 {
		t.Errorf("expected clean module, got %d findings", res.Count)
	}

	out.Reset()
	if code := Main(&out, &errOut, []string{"-list"}); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{"bitsetalias", "deprecatedapi", "floatcmp", "panichygiene", "uncheckederr", "syncguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-enable", "nosuch"}); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}

	// Disabling every analyzer but one still runs clean and fast.
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, []string{"-C", root, "-enable", "panichygiene"}); code != 0 {
		t.Errorf("-enable panichygiene exit %d, stderr: %s", code, errOut.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	var ew bytes.Buffer
	s := selectAnalyzers(DefaultSuite(), "floatcmp,syncguard", "", &ew)
	if s == nil || len(s.Analyzers) != 2 {
		t.Fatalf("enable filter failed: %v", s)
	}
	s = selectAnalyzers(DefaultSuite(), "", "floatcmp", &ew)
	if s == nil || len(s.Analyzers) != 5 || s.Lookup("floatcmp") != nil {
		t.Fatalf("disable filter failed")
	}
}
