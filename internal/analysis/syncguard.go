package analysis

import (
	"go/ast"
	"go/types"
)

// SyncGuardAnalyzer prepares the codebase for the planned parallel
// miner: it flags (a) by-value copies of types that carry sync
// primitives — copied locks guard nothing — whether as parameters,
// receivers, results, plain assignments or range values; and (b)
// goroutines that capture a mutable *bitset.Set (or a slice/array/map
// of them) from the enclosing scope, where concurrent in-place set
// algebra would be a data race. Pass clones into goroutines, or
// annotate // vetsuite:allow syncguard where the sharing is
// deliberately read-only.
var SyncGuardAnalyzer = &Analyzer{
	Name: "syncguard",
	Doc:  "flags by-value copies of lock-carrying types and goroutine capture of mutable bitsets",
	Run:  runSyncGuard,
}

func runSyncGuard(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockFields(pass, info, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkLockFields(pass, info, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkLockFields(pass, info, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkLockFields(pass, info, n.Type.Params, "parameter")
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarding to blank copies nothing observable
					}
					if !isAddressableValue(rhs) {
						continue
					}
					if tv, ok := info.Types[rhs]; ok && tv.Type != nil {
						if lock := lockInType(tv.Type); lock != "" {
							pass.Reportf(n.Lhs[i].Pos(),
								"assignment copies a value containing %s; use a pointer", lock)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := typeOf(info, n.Value); t != nil {
					if lock := lockInType(t); lock != "" {
						pass.Reportf(n.Value.Pos(),
							"range value copies a value containing %s; range over indices or pointers", lock)
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineCapture(pass, info, lit)
				}
			}
			return true
		})
	}
}

// checkLockFields flags by-value fields of a field list whose type
// carries a sync primitive.
func checkLockFields(pass *Pass, info *types.Info, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := lockInType(tv.Type); lock != "" {
			pass.Reportf(field.Type.Pos(), "%s passes a value containing %s by value; use a pointer", kind, lock)
		}
	}
}

// checkGoroutineCapture flags free *bitset.Set variables referenced by
// a go-statement function literal.
func checkGoroutineCapture(pass *Pass, info *types.Info, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Free variable: declared outside the literal's span.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if holdsBitsetPtr(obj.Type()) {
			seen[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine captures mutable bitset %s from the enclosing scope; pass a Clone() or annotate // vetsuite:allow syncguard -- <reason>",
				obj.Name())
		}
		return true
	})
}

// typeOf resolves an expression's type, falling back to the defined or
// used object for bare identifiers (range clause variables are
// definitions and may be absent from the Types map).
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isAddressableValue reports whether an expression denotes an existing
// value (whose assignment is a copy), as opposed to a literal or call.
func isAddressableValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

// lockInType returns a description of the first sync primitive found in
// t (recursively through named structs, arrays), or "".
func lockInType(t types.Type) string {
	return lockIn(t, map[types.Type]bool{})
}

var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Map":       true,
	"Pool":      true,
}

func lockIn(t types.Type, visited map[types.Type]bool) string {
	if visited[t] {
		return ""
	}
	visited[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncLockTypes[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := lockIn(u.Field(i).Type(), visited); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), visited)
	}
	return ""
}
