package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// VisitorAliasAnalyzer enforces the engine.Visitor aliasing contract
// (rowenum.go): every slice and bitset a visitor hook receives aliases
// the engine's per-worker scratch arena and is valid only for the
// duration of the call. A hook that retains a parameter-derived
// *bitset.Set or slice — by storing it into a field, appending it to a
// retained slice, capturing it in a composite literal, sending it on a
// channel, or handing it to a goroutine — without an intervening
// Clone()/copy corrupts groups mined later, silently.
//
// The pass taints the arena-backed parameters of OnGroup and
// UpdateThresholds implementations and follows the taint through local
// assignments, same-package calls (including closures bound to local
// variables), and append chains. Copies launder taint: Clone(),
// copy(dst, src), and append of a spread []int (contents are copied by
// value). Calls into other packages are assumed to scan, not retain —
// the contract's enforcement boundary is the visitor implementation
// itself.
var VisitorAliasAnalyzer = &Analyzer{
	Name: "visitoralias",
	Doc:  "visitor hooks must not retain arena-aliased parameters without Clone()/copy",
	Run:  runVisitorAlias,
}

// visitorHookNames are the engine.Visitor methods whose slice/bitset
// parameters alias the enumeration arena.
var visitorHookNames = map[string]bool{
	"OnGroup":          true,
	"UpdateThresholds": true,
}

func runVisitorAlias(pass *Pass) {
	va := &visitorAliasRun{
		pass:     pass,
		memo:     map[visitorAliasKey]bool{},
		active:   map[visitorAliasKey]bool{},
		reported: map[token.Pos]bool{},
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Recv == nil || d.Body == nil || !visitorHookNames[d.Name.Name] {
				continue
			}
			tainted := map[types.Object]bool{}
			for _, field := range d.Type.Params.List {
				tv, ok := pass.Pkg.Info.Types[field.Type]
				if !ok || !arenaParamType(tv.Type) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						tainted[obj] = true
					}
				}
			}
			if len(tainted) > 0 {
				va.analyzeBody(d.Type, d.Body, tainted)
			}
		}
	}
}

// arenaParamType reports whether a hook parameter of this type aliases
// arena memory: *bitset.Set, []int (row/item index slices), or any
// container of *bitset.Set.
func arenaParamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isBitsetPtr(t) || holdsBitsetPtr(t) {
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return true
		}
	}
	return false
}

// refLike reports whether a value of type t can itself carry an alias
// of arena memory when moved around (pointers, slices, maps, chans,
// interfaces). Plain ints and structs move by value.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

type visitorAliasKey struct {
	fn   types.Object
	mask string // comma-joined tainted parameter indexes
}

type visitorAliasRun struct {
	pass     *Pass
	memo     map[visitorAliasKey]bool // fn+mask -> returns tainted
	active   map[visitorAliasKey]bool // recursion guard
	reported map[token.Pos]bool       // dedupe across call paths
}

func (va *visitorAliasRun) reportf(pos token.Pos, format string, args ...any) {
	if va.reported[pos] {
		return
	}
	va.reported[pos] = true
	va.pass.Reportf(pos, format, args...)
}

// analyzeBody walks one function body with the given taint seeds and
// returns whether the function's results carry taint. Nested function
// literals are walked as part of the body (their captures resolve to
// the same objects), but their return statements do not count toward
// the outer function's result taint.
func (va *visitorAliasRun) analyzeBody(fnType *ast.FuncType, body *ast.BlockStmt, tainted map[types.Object]bool) bool {
	st := &visitorAliasState{
		run:      va,
		info:     va.pass.Pkg.Info,
		tainted:  tainted,
		funcLits: map[types.Object]*ast.FuncLit{},
		litRets:  map[*ast.ReturnStmt]bool{},
	}
	// Pre-pass: bind local closure variables to their literals and mark
	// return statements belonging to nested literals.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					if obj := st.lhsObj(id); obj != nil {
						st.funcLits[obj] = lit
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit && m != n {
					return false // inner literal handles its own returns
				}
				if ret, isRet := m.(*ast.ReturnStmt); isRet {
					st.litRets[ret] = true
				}
				return true
			})
		}
		return true
	})
	st.walk(body)
	return st.returnsTainted
}

type visitorAliasState struct {
	run      *visitorAliasRun
	info     *types.Info
	tainted  map[types.Object]bool
	funcLits map[types.Object]*ast.FuncLit
	litRets  map[*ast.ReturnStmt]bool

	returnsTainted bool
}

func (st *visitorAliasState) lhsObj(id *ast.Ident) types.Object {
	if obj := st.info.Defs[id]; obj != nil {
		return obj
	}
	return st.info.Uses[id]
}

func (st *visitorAliasState) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.SendStmt:
			if st.taint(n.Value) {
				st.run.reportf(n.Value.Pos(),
					"sends arena-aliased %s on a channel; the Visitor contract requires a copy at the event boundary (Clone() / append([]int(nil), ...))",
					types.ExprString(n.Value))
			}
		case *ast.ReturnStmt:
			if st.litRets[n] {
				return true
			}
			for _, res := range n.Results {
				if st.taint(res) {
					st.returnsTainted = true
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if st.taint(arg) {
					st.run.reportf(arg.Pos(),
						"passes arena-aliased %s to a goroutine, which outlives the visitor event; copy it first (Clone() / append([]int(nil), ...))",
						types.ExprString(arg))
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if st.taint(val) {
					st.run.reportf(val.Pos(),
						"composite literal captures arena-aliased %s without a copy; the Visitor contract requires Clone() / append([]int(nil), ...) at the event boundary",
						types.ExprString(val))
				}
			}
		case *ast.CallExpr:
			st.call(n)
		case *ast.RangeStmt:
			// Ranging over a tainted container taints reference-like
			// element variables (the int elements of xPos are values).
			if st.taint(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if tv, ok := st.info.Types[id]; ok && refLike(tv.Type) {
						if obj := st.lhsObj(id); obj != nil {
							st.tainted[obj] = true
						}
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						if obj := st.info.Defs[name]; obj != nil && st.taint(vs.Values[i]) {
							st.tainted[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

// assign propagates taint through local variables and reports stores
// into anything that outlives the call (fields, indexed containers,
// dereferences, globals).
func (st *visitorAliasState) assign(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		switch {
		case len(n.Lhs) == len(n.Rhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0] // tuple assignment: taint of the call covers all
		default:
			continue
		}
		rhsTainted := st.taint(rhs)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if obj := st.lhsObj(l); obj != nil {
				if pkgLevel(obj) && rhsTainted {
					st.run.reportf(rhs.Pos(),
						"stores arena-aliased %s into package variable %s; copy it at the event boundary (Clone() / append([]int(nil), ...))",
						types.ExprString(rhs), l.Name)
					continue
				}
				st.tainted[obj] = rhsTainted
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if rhsTainted {
				st.run.reportf(rhs.Pos(),
					"stores arena-aliased %s into %s, retaining it past the visitor event; copy it first (Clone() / append([]int(nil), ...))",
					types.ExprString(rhs), types.ExprString(lhs))
			}
		}
	}
}

// pkgLevel reports whether obj is a package-level variable.
func pkgLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == v.Pkg().Scope()
}

// call recurses into same-package callees that receive tainted
// arguments so retention inside shared helpers (e.g. topkVisitor.apply
// called from OnGroup) is found too.
func (st *visitorAliasState) call(n *ast.CallExpr) {
	argTaint := st.argTaints(n)
	any := false
	for _, t := range argTaint {
		any = any || t
	}
	if !any {
		return
	}
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if obj := st.info.Uses[id]; obj != nil {
			if lit, ok := st.funcLits[obj]; ok {
				st.run.analyzeFuncLit(st, lit, n)
				return
			}
		}
	}
	st.run.analyzeCall(st, n, argTaint)
}

// taint reports whether evaluating e yields an arena-aliased value.
func (st *visitorAliasState) taint(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.info.Uses[e]
		return obj != nil && st.tainted[obj]
	case *ast.UnaryExpr:
		return st.taint(e.X)
	case *ast.StarExpr:
		return st.taint(e.X)
	case *ast.SliceExpr:
		return st.taint(e.X)
	case *ast.IndexExpr:
		// xs[i] aliases arena memory only when the element itself is a
		// reference (e.g. []*bitset.Set); an int element is a value copy.
		if tv, ok := st.info.Types[e]; ok && !refLike(tv.Type) {
			return false
		}
		return st.taint(e.X)
	case *ast.CallExpr:
		return st.callResultTaint(e)
	}
	return false
}

// callResultTaint decides whether a call's result aliases the arena.
func (st *visitorAliasState) callResultTaint(call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				return st.appendTaint(call)
			default:
				return false // copy, len, cap, ... yield values or copies
			}
		}
		// Local closure variable: analyze the bound literal with the
		// call's taint pattern.
		if obj := st.info.Uses[id]; obj != nil {
			if lit, ok := st.funcLits[obj]; ok {
				return st.run.analyzeFuncLit(st, lit, call)
			}
		}
	}
	fn := calleeFunc(st.info, call)
	if fn == nil {
		return false // function values, conversions
	}
	if fn.Name() == "Clone" {
		return false // the sanctioned copy
	}
	return st.run.analyzeCall(st, call, st.argTaints(call))
}

func (st *visitorAliasState) argTaints(call *ast.CallExpr) []bool {
	out := make([]bool, len(call.Args))
	for i, arg := range call.Args {
		out[i] = st.taint(arg)
	}
	return out
}

// appendTaint: append(dst, elems...) aliases the arena when dst does
// (same backing array), when a tainted reference-like element is
// appended, or when a tainted slice of references is spread. Spreading
// a tainted []int copies the ints — that is the sanctioned laundering
// idiom append([]int(nil), xPos...).
func (st *visitorAliasState) appendTaint(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if st.taint(call.Args[0]) {
		return true
	}
	spread := call.Ellipsis.IsValid()
	for i, arg := range call.Args[1:] {
		if !st.taint(arg) {
			continue
		}
		tv, ok := st.info.Types[arg]
		if !ok {
			return true // unknown: stay conservative
		}
		if spread && i == len(call.Args)-2 {
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !refLike(sl.Elem()) {
				continue // value elements are copied out
			}
			return true
		}
		if refLike(tv.Type) {
			return true
		}
	}
	return false
}

// analyzeCall analyzes a same-package callee with the given argument
// taint pattern, memoized per (callee, pattern). Cross-package callees
// are assumed to scan, not retain. Returns whether the call's results
// are tainted.
func (va *visitorAliasRun) analyzeCall(st *visitorAliasState, call *ast.CallExpr, argTaint []bool) bool {
	anyTaint := false
	for _, t := range argTaint {
		anyTaint = anyTaint || t
	}
	if !anyTaint {
		return false
	}
	fn := calleeFunc(st.info, call)
	if fn == nil {
		return false
	}
	site, ok := va.pass.Facts.FuncSite(fn)
	if !ok || site.Pkg != va.pass.Pkg || site.Decl.Body == nil {
		return false
	}
	params := flattenParams(site.Pkg.Info, site.Decl.Type)
	tainted := map[types.Object]bool{}
	mask := ""
	for i, t := range argTaint {
		if !t {
			continue
		}
		if i < len(params) && params[i] != nil {
			tainted[params[i]] = true
			mask += fmt.Sprintf("%d,", i)
		}
	}
	if len(tainted) == 0 {
		return false
	}
	key := visitorAliasKey{fn: fn, mask: mask}
	if res, ok := va.memo[key]; ok {
		return res
	}
	if va.active[key] {
		return false // recursion: assume clean, keep termination
	}
	va.active[key] = true
	res := va.analyzeBody(site.Decl.Type, site.Decl.Body, tainted)
	delete(va.active, key)
	va.memo[key] = res
	return res
}

// analyzeFuncLit analyzes a local closure invoked with tainted
// arguments; captured variables keep the caller's taint.
func (va *visitorAliasRun) analyzeFuncLit(st *visitorAliasState, lit *ast.FuncLit, call *ast.CallExpr) bool {
	params := flattenParams(st.info, lit.Type)
	tainted := map[types.Object]bool{}
	for obj, t := range st.tainted {
		if t {
			tainted[obj] = true
		}
	}
	for i, arg := range call.Args {
		if st.taint(arg) && i < len(params) && params[i] != nil {
			tainted[params[i]] = true
		}
	}
	return va.analyzeBody(lit.Type, lit.Body, tainted)
}

// flattenParams expands a parameter list into one object per position
// (grouped parameters like "a, b []int" yield one entry each); unnamed
// parameters yield nil.
func flattenParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}
