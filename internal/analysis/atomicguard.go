package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuardAnalyzer bans mixed atomic/plain access: a field or
// package-level variable whose address is passed to a sync/atomic
// function anywhere in the module (recorded module-wide in
// Facts.AtomicFields) may never be read or written non-atomically
// elsewhere — a single plain load next to atomic stores is a data race
// the race detector only catches if a test happens to interleave it.
//
// Composite-literal keys are exempt: initializing the field before the
// value is shared is the standard construction idiom. Typed atomics
// (atomic.Int64 and friends, which the serve metrics and the progress
// sampler use) need no analysis at all — their representation is
// unexported, so a plain access cannot compile.
var AtomicGuardAnalyzer = &Analyzer{
	Name: "atomicguard",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicGuard,
}

func runAtomicGuard(pass *Pass) {
	if len(pass.Facts.AtomicFields) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Sanctioned spans: the &x operands of sync/atomic calls, plus
		// composite-literal keys (construction-time initialization).
		type span struct{ from, to token.Pos }
		var sanctioned []span
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				for _, arg := range n.Args {
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						sanctioned = append(sanctioned, span{un.X.Pos(), un.X.End()})
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						sanctioned = append(sanctioned, span{kv.Key.Pos(), kv.Key.End()})
					}
				}
			}
			return true
		})
		allowed := func(pos token.Pos) bool {
			for _, s := range sanctioned {
				if s.from <= pos && pos < s.to {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !pass.Facts.AtomicFields[obj] || allowed(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed via sync/atomic elsewhere; this plain access races with those — use atomic.Load/Store here or switch the field to a typed atomic",
				id.Name)
			return true
		})
	}
}
