package analysis

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// EscapeDiag is one heap-allocation diagnostic emitted by the Go
// compiler's escape analysis (-gcflags=-m): a value at File:Line:Col
// either "escapes to heap" or was "moved to heap".
type EscapeDiag struct {
	File string // absolute, cleaned path
	Line int
	Col  int
	Msg  string
}

// EscapeSet indexes escape diagnostics by file, so the allocfree
// analyzer can ask "which heap allocations does the compiler prove
// inside this function's span?". Populate with ComputeEscapes.
type EscapeSet struct {
	byFile map[string][]EscapeDiag
}

// ForFile returns the diagnostics recorded for an absolute file path,
// in line order.
func (s *EscapeSet) ForFile(abs string) []EscapeDiag {
	if s == nil {
		return nil
	}
	return s.byFile[filepath.Clean(abs)]
}

// Files returns every file with at least one diagnostic, sorted.
func (s *EscapeSet) Files() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.byFile))
	for f := range s.byFile {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// escapeLineRE matches one compiler diagnostic line. The go command
// replays compiler output from the build cache, so repeated runs are
// deterministic even when nothing recompiles.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ComputeEscapes runs `go build -gcflags=-m=1` over the given package
// patterns (resolved relative to moduleRoot) and collects the heap
// escape diagnostics. Inlining and "does not escape" chatter is
// dropped; diagnostics are deduplicated because cross-package inlining
// can attribute the same source position from several compilations.
func ComputeEscapes(moduleRoot string, patterns ...string) (*EscapeSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m: %w\n%s", err, out)
	}
	set := &EscapeSet{byFile: map[string][]EscapeDiag{}}
	seen := map[EscapeDiag]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleRoot, file)
		}
		file = filepath.Clean(file)
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		d := EscapeDiag{File: file, Line: ln, Col: col, Msg: msg}
		if seen[d] {
			continue
		}
		seen[d] = true
		set.byFile[file] = append(set.byFile[file], d)
	}
	for f := range set.byFile {
		ds := set.byFile[f]
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Line != ds[j].Line {
				return ds[i].Line < ds[j].Line
			}
			return ds[i].Col < ds[j].Col
		})
	}
	return set, nil
}
