package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SentinelWrapAnalyzer keeps the error taxonomy matchable end to end.
// jobs.Record.Cause() and the serve error-to-status mapping only work
// if the chain from the failure site to the classifier is unbroken:
//
//  1. fmt.Errorf must format error operands with %w, never %v/%s/%q —
//     a single %v on the path from engine.ErrNodeBudget (or
//     context.Canceled, jobs.ErrBadSpec, ...) to the journaled cause
//     flattens the chain and errors.Is stops matching after the very
//     first journal round-trip.
//  2. Sentinel errors (package-level error variables) are compared
//     with errors.Is, never == or != or a switch over the error value:
//     identity comparison breaks as soon as any intermediate layer
//     wraps, which rule 1 makes routine.
var SentinelWrapAnalyzer = &Analyzer{
	Name: "sentinelwrap",
	Doc:  "fmt.Errorf wraps error operands with %w; sentinel comparisons use errors.Is",
	Run:  runSentinelWrap,
}

func runSentinelWrap(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					other := n.Y
					if side == n.Y {
						other = n.X
					}
					if obj := sentinelObj(pass, side); obj != nil && !isNilIdent(info, other) {
						pass.Reportf(n.OpPos,
							"%s is compared with %s; use errors.Is so the match survives %%w wrapping",
							obj.Name(), n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := info.Types[n.Tag]
				if !ok || !implementsError(tv.Type) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if obj := sentinelObj(pass, expr); obj != nil {
							pass.Reportf(expr.Pos(),
								"switch case compares the error against %s by identity; use if/else with errors.Is so the match survives %%w wrapping",
								obj.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	for _, v := range parseVerbs(format) {
		argIdx := v.arg + 1 // offset past the format string
		if v.verb == 'w' || argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		atv, ok := info.Types[arg]
		if !ok || !implementsError(atv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error %s is formatted with %%%c, which flattens the chain and breaks errors.Is downstream (jobs.Record.Cause, serve error taxonomy); use %%w",
			types.ExprString(arg), v.verb)
	}
}

// fmtVerb is one conversion in a format string and the operand index it
// consumes (0-based over the variadic arguments).
type fmtVerb struct {
	verb rune
	arg  int
}

// parseVerbs walks a fmt format string and maps each verb to its
// operand, accounting for '*' width/precision operands and explicit
// argument indexes like %[1]v.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags.
		for i < len(runes) {
			switch runes[i] {
			case '+', '-', '#', ' ', '0':
				i++
				continue
			}
			break
		}
		// Explicit argument index: %[n]v.
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			idx := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				idx = idx*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && idx > 0 {
				arg = idx - 1
				i = j + 1
			}
		}
		// Width and precision, each possibly '*' (consumes an operand).
		consumeNum := func() {
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
				return
			}
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		consumeNum()
		if i < len(runes) && runes[i] == '.' {
			i++
			consumeNum()
		}
		if i >= len(runes) {
			break
		}
		out = append(out, fmtVerb{verb: runes[i], arg: arg})
		arg++
	}
	return out
}

// sentinelObj resolves expr to a package-level error sentinel variable,
// or nil.
func sentinelObj(pass *Pass, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj != nil && pass.Facts.Sentinels[obj] {
		return obj
	}
	return nil
}

// isNilIdent reports whether expr is the predeclared nil.
func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
