package analysis

import (
	"go/ast"
	"go/types"
)

// BitsetAliasAnalyzer enforces the clone-before-mutate convention for
// *bitset.Set values: row/item support sets are shared and borrowed
// across the row-enumeration tree (CARPENTER-style projections), so
// in-place mutators may only run on sets the mutating code owns — sets
// it allocated itself, cloned, or holds in its own receiver's fields.
//
// A mutator call is flagged when its receiver is "borrowed":
//
//   - the direct result of a call into another package that is not a
//     documented fresh producer (vetsuite:fresh or a bitset
//     constructor), e.g. ds.ItemRows(i).IntersectWith(...) — the
//     dataset's inverted index would be corrupted in place;
//   - a field of a struct other than the enclosing method's receiver
//     (mutating your own fields is ownership, mutating someone else's
//     is aliasing);
//   - a local variable whose most recent assignment came from either of
//     the above without an intervening Clone().
var BitsetAliasAnalyzer = &Analyzer{
	Name: "bitsetalias",
	Doc:  "flags in-place mutation of *bitset.Set values borrowed from other packages or foreign structs without an intervening Clone()",
	Run:  runBitsetAlias,
}

// bitsetMutators are the in-place *bitset.Set methods.
var bitsetMutators = map[string]bool{
	"Add":                 true,
	"Remove":              true,
	"Clear":               true,
	"Fill":                true,
	"IntersectWith":       true,
	"UnionWith":           true,
	"DifferenceWith":      true,
	"CopyFrom":            true,
	"IntersectInto":       true,
	"IntersectCountBelow": true,
}

// ownership classification for a *bitset.Set expression.
type setOrigin int

const (
	originUnknown  setOrigin = iota // parameters, same-package helpers: trusted
	originFresh                     // locally allocated or cloned
	originBorrowed                  // foreign accessor result or foreign field
)

func runBitsetAlias(pass *Pass) {
	if isBitsetPkgPath(pass.Pkg.Path) {
		return // the bitset package mutates its own representation freely
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBitsetAlias(pass, fd)
		}
	}
}

// checkFuncBitsetAlias walks one function body in source order,
// tracking the origin of *bitset.Set locals, and reports mutator calls
// on borrowed receivers.
func checkFuncBitsetAlias(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// The receiver object, if any: mutating fields reached through it is
	// the owner updating its own state.
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}

	origins := map[types.Object]setOrigin{}

	var classify func(expr ast.Expr) setOrigin
	classify = func(expr ast.Expr) setOrigin {
		switch e := ast.Unparen(expr).(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, e)
			if fn == nil {
				return originUnknown
			}
			if !returnsBitsetPtr(fn) {
				return originUnknown
			}
			if pass.Facts.Fresh[fn] {
				return originFresh
			}
			if fn.Pkg() != nil && fn.Pkg() != pass.Pkg.Types {
				return originBorrowed
			}
			return originUnknown
		case *ast.SelectorExpr:
			sel, ok := info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return originUnknown
			}
			if base, ok := ast.Unparen(e.X).(*ast.Ident); ok && recvObj != nil && info.Uses[base] == recvObj {
				return originUnknown // the method's own receiver
			}
			return originBorrowed
		case *ast.IndexExpr:
			return classify(e.X)
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return origins[obj]
			}
			return originUnknown
		case *ast.CompositeLit, *ast.UnaryExpr:
			return originFresh
		}
		return originUnknown
	}

	assign := func(lhs ast.Expr, origin setOrigin) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || !isBitsetPtr(v.Type()) {
			return
		}
		origins[obj] = origin
	}

	describe := func(origin setOrigin) string {
		if origin == originBorrowed {
			return "a bitset borrowed from another package or struct"
		}
		return "a shared bitset"
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					assign(lhs, classify(n.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					assign(name, classify(n.Values[i]))
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !bitsetMutators[sel.Sel.Name] {
				return true
			}
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || !isBitsetPkgPath(fn.Pkg().Path()) {
				return true
			}
			if origin := classify(sel.X); origin == originBorrowed {
				pass.Reportf(n.Pos(),
					"in-place %s on %s; Clone() before mutating, or mark the producer // vetsuite:fresh",
					sel.Sel.Name, describe(origin))
			}
		}
		return true
	})
}

// returnsBitsetPtr reports whether fn has a *bitset.Set among its
// results.
func returnsBitsetPtr(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isBitsetPtr(res.At(i).Type()) {
			return true
		}
	}
	return false
}
