package rules

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

func g(conf float64, sup int, ant ...int) *Group {
	return &Group{Antecedent: ant, Support: sup, Confidence: conf}
}

func TestMoreSignificant(t *testing.T) {
	cases := []struct {
		a, b *Group
		want bool
	}{
		{g(0.9, 2, 1), g(0.8, 5, 2), true},  // higher conf wins
		{g(0.8, 5, 1), g(0.9, 2, 2), false}, // lower conf loses
		{g(0.8, 5, 1), g(0.8, 3, 2), true},  // conf tie: higher sup
		{g(0.8, 3, 1), g(0.8, 5, 2), false}, // conf tie: lower sup
		{g(0.8, 3, 1), g(0.8, 3, 2), false}, // full tie: not more significant
	}
	for i, c := range cases {
		if got := c.a.MoreSignificant(c.b); got != c.want {
			t.Errorf("case %d: MoreSignificant = %v, want %v", i, got, c.want)
		}
	}
	if !g(0.8, 3, 1).SameSignificance(g(0.8, 3, 9)) {
		t.Fatal("equal (conf,sup) should be SameSignificance")
	}
}

func TestRuleMatchesAndCovers(t *testing.T) {
	row := bitset.FromIndices(10, 1, 3, 5)
	r := &Rule{Antecedent: []int{1, 5}}
	if !r.Matches(row) {
		t.Fatal("rule {1,5} should match row {1,3,5}")
	}
	r2 := &Rule{Antecedent: []int{1, 2}}
	if r2.Matches(row) {
		t.Fatal("rule {1,2} should not match row {1,3,5}")
	}
	grp := &Group{Antecedent: []int{3}}
	if !grp.Covers(row) {
		t.Fatal("group {3} should cover row")
	}
	empty := &Rule{}
	if !empty.Matches(row) {
		t.Fatal("empty antecedent matches everything")
	}
}

func TestCBALess(t *testing.T) {
	hiConf := &Rule{Antecedent: []int{9}, Confidence: 0.9, Support: 1}
	hiSup := &Rule{Antecedent: []int{1}, Confidence: 0.8, Support: 9}
	short := &Rule{Antecedent: []int{5}, Confidence: 0.8, Support: 9}
	long := &Rule{Antecedent: []int{2, 3}, Confidence: 0.8, Support: 9}
	if !CBALess(hiConf, hiSup) {
		t.Fatal("higher confidence precedes")
	}
	if !CBALess(hiSup, long) {
		t.Fatal("equal conf, equal sup, 1 item precedes 2 items")
	}
	if !CBALess(short, long) {
		t.Fatal("shorter precedes longer on full tie")
	}
	if !CBALess(&Rule{Antecedent: []int{1}, Confidence: 0.8, Support: 9}, short) {
		t.Fatal("lexicographic tiebreak")
	}
	rs := []*Rule{long, short, hiSup, hiConf}
	SortCBA(rs)
	if rs[0] != hiConf {
		t.Fatal("SortCBA should put highest confidence first")
	}
}

func TestGroupLessTotalOrder(t *testing.T) {
	// GroupLess must be a strict weak ordering; spot-check antisymmetry
	// and transitivity on random groups.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Group {
			n := 1 + r.Intn(3)
			ant := make([]int, n)
			for i := range ant {
				ant[i] = r.Intn(4)
			}
			sort.Ints(ant)
			return &Group{Antecedent: ant, Confidence: float64(r.Intn(3)) / 2, Support: r.Intn(3)}
		}
		a, b, c := mk(), mk(), mk()
		if GroupLess(a, b) && GroupLess(b, a) {
			return false
		}
		if GroupLess(a, b) && GroupLess(b, c) && !GroupLess(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKListBasics(t *testing.T) {
	l := NewTopKList(2)
	if c, s := l.Threshold(); c != 0 || s != 0 {
		t.Fatal("empty list threshold should be (0,0)")
	}
	if !l.Qualifies(0.1, 1) {
		t.Fatal("anything qualifies while not full")
	}
	l.Consider(g(0.5, 2, 1))
	l.Consider(g(0.9, 3, 2))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Groups()[0].Confidence != 0.9 {
		t.Fatal("most significant first")
	}
	if c, _ := l.Threshold(); c != 0.5 {
		t.Fatalf("threshold conf = %v, want 0.5", c)
	}
	// A better group evicts the tail.
	if !l.Consider(g(0.7, 1, 3)) {
		t.Fatal("0.7 should enter over 0.5")
	}
	if c, _ := l.Threshold(); c != 0.7 {
		t.Fatalf("threshold conf = %v, want 0.7", c)
	}
	// A group matching the tail exactly does not qualify.
	if l.Consider(g(0.7, 1, 4)) {
		t.Fatal("equal (conf,sup) must not displace the k-th group")
	}
	// Higher support at equal confidence qualifies.
	if !l.Consider(g(0.7, 5, 5)) {
		t.Fatal("higher support at equal confidence should enter")
	}
}

func TestTopKListKOnePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewTopKList(0)
}

func TestTopKListSortedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(5)
		l := NewTopKList(k)
		for i := 0; i < 30; i++ {
			l.Consider(g(float64(r.Intn(10))/10, r.Intn(10), i))
		}
		gs := l.Groups()
		if len(gs) > k {
			return false
		}
		for i := 1; i < len(gs); i++ {
			if GroupLess(gs[i], gs[i-1]) {
				return false // out of order
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKListMatchesBruteForce(t *testing.T) {
	// The list must retain exactly the k most significant groups (up to
	// full (conf,sup) ties, where which tied group is kept is
	// unspecified but the (conf,sup) multiset must match).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(4)
		l := NewTopKList(k)
		var all []*Group
		for i := 0; i < 25; i++ {
			grp := g(float64(r.Intn(5))/4, r.Intn(5), i)
			all = append(all, grp)
			l.Consider(grp)
		}
		sorted := append([]*Group(nil), all...)
		SortGroups(sorted)
		want := sorted
		if len(want) > k {
			want = want[:k]
		}
		got := l.Groups()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Confidence != want[i].Confidence || got[i].Support != want[i].Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplace(t *testing.T) {
	l := NewTopKList(2)
	l.Consider(g(0.5, 2, 1))
	l.Replace(0, g(0.5, 2, 9))
	if l.Groups()[0].Antecedent[0] != 9 {
		t.Fatal("Replace should substitute in place")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Replace should panic")
		}
	}()
	l.Replace(5, g(0.5, 2, 1))
}

func TestRenderAndKey(t *testing.T) {
	d, idx := dataset.RunningExample()
	r := &Rule{Antecedent: []int{idx["a"], idx["b"]}, Class: 0, Support: 2, Confidence: 1}
	s := r.Render(d)
	if s == "" {
		t.Fatal("Render should produce output")
	}
	grp := &Group{Antecedent: []int{1, 2}, Class: 0, Support: 2, Confidence: 1}
	grp2 := &Group{Antecedent: []int{1, 2}, Class: 1, Support: 2, Confidence: 1}
	if grp.Key() == grp2.Key() {
		t.Fatal("different classes must have different keys")
	}
	if grp.Key() != (&Group{Antecedent: []int{1, 2}, Class: 0}).Key() {
		t.Fatal("key depends only on antecedent and class")
	}
	if r.Render(nil) == "" {
		t.Fatal("Render without dataset should still work")
	}
}
