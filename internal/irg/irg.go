// Package irg implements the IRG classifier of [6]: the same rule-list
// construction as CBA but built directly from upper-bound rules of
// interesting rule groups (no lower-bound search), with a minimum
// confidence threshold.
package irg

import (
	"fmt"

	"repro/internal/cba"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// Config controls IRG training.
type Config struct {
	// MinsupFrac is the per-class relative minimum support (paper: 0.7).
	MinsupFrac float64
	// Minconf filters rule groups (paper: 0.8).
	Minconf float64
	// K is the number of covering groups mined per row; 1 matches the
	// paper's comparison setup.
	K int
}

// DefaultConfig mirrors the paper's IRG setup.
func DefaultConfig() Config { return Config{MinsupFrac: 0.7, Minconf: 0.8, K: 1} }

// Classifier is an IRG rule list (upper-bound rules) with a default
// class. It embeds the CBA prediction behaviour.
type Classifier struct {
	cba.Classifier
}

// Train builds an IRG classifier from a discretized training dataset.
func Train(d *dataset.Dataset, cfg Config) (*Classifier, error) {
	if cfg.MinsupFrac <= 0 || cfg.MinsupFrac > 1 {
		return nil, fmt.Errorf("irg: MinsupFrac %v outside (0,1]", cfg.MinsupFrac)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("irg: K must be >= 1, got %d", cfg.K)
	}
	var pool []*rules.Rule
	for cls := 0; cls < d.NumClasses(); cls++ {
		label := dataset.Label(cls)
		n := d.ClassCount(label)
		if n == 0 {
			continue
		}
		minsup := int(cfg.MinsupFrac * float64(n))
		if float64(minsup) < cfg.MinsupFrac*float64(n) {
			minsup++
		}
		if minsup < 1 {
			minsup = 1
		}
		res, err := core.Mine(d, label, core.DefaultConfig(minsup, cfg.K))
		if err != nil {
			return nil, fmt.Errorf("irg: mining class %s: %w", d.ClassNames[cls], err)
		}
		for _, g := range res.Groups {
			if g.Confidence >= cfg.Minconf {
				pool = append(pool, g.Upper())
			}
		}
	}
	rules.SortCBA(pool)
	selected, def := cba.SelectRules(d, pool)
	return &Classifier{cba.Classifier{Rules: selected, Default: def, NumItems: d.NumItems()}}, nil
}
