package irg

import (
	"testing"

	"repro/internal/dataset"
)

func TestTrainOnRunningExample(t *testing.T) {
	d, _ := dataset.RunningExample()
	cfg := DefaultConfig()
	cfg.MinsupFrac = 0.5
	cfg.Minconf = 0.5
	c, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) == 0 {
		t.Fatal("classifier should have rules")
	}
	// IRG uses upper bounds: rules should be long (closed antecedents),
	// e.g. abc for the C class.
	long := false
	for _, r := range c.Rules {
		if len(r.Antecedent) >= 2 {
			long = true
		}
	}
	if !long {
		t.Fatal("expected at least one multi-item upper-bound rule")
	}
	preds, _ := c.PredictDataset(d)
	correct := 0
	for r, p := range preds {
		if p == d.Labels[r] {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("training accuracy %d/5 too low", correct)
	}
}

func TestMinconfFilters(t *testing.T) {
	d, _ := dataset.RunningExample()
	c, err := Train(d, Config{MinsupFrac: 0.5, Minconf: 1.0, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Rules {
		if r.Confidence < 1.0 {
			t.Fatalf("rule with confidence %v passed a 1.0 threshold", r.Confidence)
		}
	}
}

func TestValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Train(d, Config{MinsupFrac: 0, K: 1}); err == nil {
		t.Fatal("MinsupFrac=0 must error")
	}
	if _, err := Train(d, Config{MinsupFrac: 0.5, K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
}

func TestDefaultHeavyOnUnseenRows(t *testing.T) {
	// IRG's upper-bound rules are long closed itemsets; rows lacking any
	// single antecedent item fall to the default class. Verify the
	// counting plumbing on a crafted case.
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "a"}, {GeneName: "b"}, {GeneName: "c"}},
		Rows:       [][]int{{0, 1}, {0, 1}, {2}, {2}},
		Labels:     []dataset.Label{0, 0, 1, 1},
		ClassNames: []string{"C", "notC"},
	}
	c, err := Train(d, Config{MinsupFrac: 0.5, Minconf: 0.8, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Test rows missing item 1 don't match the ab upper bound.
	test := &dataset.Dataset{
		Items:      d.Items,
		Rows:       [][]int{{0}, {2}},
		Labels:     []dataset.Label{0, 1},
		ClassNames: d.ClassNames,
	}
	_, defaults := c.PredictDataset(test)
	if defaults < 1 {
		t.Fatalf("expected at least one default decision, got %d", defaults)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MinsupFrac != 0.7 || cfg.Minconf != 0.8 || cfg.K != 1 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}
