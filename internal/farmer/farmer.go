// Package farmer implements the FARMER baseline [6]: row-enumeration
// mining of ALL interesting rule groups satisfying static minimum
// support and minimum confidence thresholds — the algorithm MineTopkRGS
// is evaluated against in Figure 6.
//
// Three interchangeable engines reproduce the paper's three runtime
// series:
//
//   - EngineNaive: materialized projected transposed tables scanned
//     tuple by tuple — the original FARMER's pointer-based tables;
//   - EnginePrefix: the prefix-tree representation of Section 4.2 —
//     the paper's "FARMER+prefix";
//   - EngineBitset: the word-parallel set-algebra engine shared with
//     MineTopkRGS — FARMER's pruning on this codebase's fastest
//     substrate, isolating the effect of top-k pruning in ablations.
//
// All engines produce identical rule groups; they differ only in work
// per node.
package farmer

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/prefixtree"
	"repro/internal/rules"
	"repro/internal/transpose"
)

// Engine selects the projected-table implementation.
type Engine int

const (
	// EngineBitset uses word-parallel row sets (fastest).
	EngineBitset Engine = iota
	// EnginePrefix uses the Figure 4 prefix tree.
	EnginePrefix
	// EngineNaive materializes projected transposed tables.
	EngineNaive
)

// String names the engine for reports.
func (e Engine) String() string {
	switch e {
	case EngineBitset:
		return "bitset"
	case EnginePrefix:
		return "prefix"
	case EngineNaive:
		return "naive"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Config parameterizes a FARMER run.
type Config struct {
	Minsup  int     // absolute minimum support (consequent-class rows)
	Minconf float64 // minimum confidence; 0 disables confidence pruning
	// MinChi is FARMER's third interestingness measure: the minimum
	// chi-square statistic of the rule's 2x2 contingency table (rows
	// covered vs not, class vs not). 0 disables it.
	MinChi float64
	Engine Engine
	// MaxNodes, when positive, aborts the search after that many
	// enumeration nodes; Result.Aborted reports the cutoff. Used to
	// bound baseline runs that would not otherwise terminate.
	MaxNodes int
	// Workers > 1 mines first-level subtrees on that many goroutines
	// (bitset engine only; the table engines are sequential). Output is
	// identical to sequential output.
	Workers int
	// Progress, when non-nil, receives engine.ProgressSnapshots from the
	// bitset engine every ProgressEvery nodes (the table engines do not
	// report progress).
	Progress      engine.ProgressFunc
	ProgressEvery int
}

// Result holds the discovered rule groups.
type Result struct {
	// Groups are the upper bounds of all rule groups with support >=
	// Minsup and confidence >= Minconf, sorted by significance. Row sets
	// use original row ids.
	Groups  []*rules.Group
	Stats   engine.Stats
	Aborted bool // true when MaxNodes stopped the search early
}

// Mine discovers all interesting rule groups of class cls in d. It is
// MineContext without cancellation.
func Mine(d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cls, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the search at the next node and returns ctx.Err() with a
// nil Result. A Config.MaxNodes abort is not an error — the partial
// Result is returned with Aborted set.
func MineContext(ctx context.Context, d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("farmer: minsup must be >= 1, got %d", cfg.Minsup)
	}
	if cfg.Minconf < 0 || cfg.Minconf > 1 {
		return nil, fmt.Errorf("farmer: minconf %v outside [0,1]", cfg.Minconf)
	}
	if cfg.MinChi < 0 {
		return nil, fmt.Errorf("farmer: minchi %v negative", cfg.MinChi)
	}
	if int(cls) < 0 || int(cls) >= d.NumClasses() {
		return nil, fmt.Errorf("farmer: class %d outside [0,%d)", cls, d.NumClasses())
	}
	pos := d.RowSet(cls)
	numPos := pos.Count()
	if numPos == 0 {
		return nil, fmt.Errorf("farmer: no rows of class %s", d.ClassNames[cls])
	}

	// Frequent items and class dominant order, as in MineTopkRGS.
	var freqItems []int
	for i := 0; i < d.NumItems(); i++ {
		if d.ItemRows(i).IntersectionCount(pos) >= cfg.Minsup {
			freqItems = append(freqItems, i)
		}
	}
	if len(freqItems) == 0 {
		return &Result{}, nil
	}
	order := classDominantOrder(d, cls, freqItems)

	switch cfg.Engine {
	case EngineBitset:
		return mineBitset(ctx, d, cls, cfg, freqItems, order, numPos)
	case EnginePrefix, EngineNaive:
		return mineTable(ctx, d, cls, cfg, freqItems, order, numPos)
	default:
		return nil, fmt.Errorf("farmer: unknown engine %d", cfg.Engine)
	}
}

// classDominantOrder returns reordered-index -> original-row with
// positives first, each class sorted ascending by frequent-item count.
func classDominantOrder(d *dataset.Dataset, cls dataset.Label, freqItems []int) []int {
	isFreq := make([]bool, d.NumItems())
	for _, it := range freqItems {
		isFreq[it] = true
	}
	count := make([]int, d.NumRows())
	for r, row := range d.Rows {
		for _, it := range row {
			if isFreq[it] {
				count[r]++
			}
		}
	}
	var pos, neg []int
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] == cls {
			pos = append(pos, r)
		} else {
			neg = append(neg, r)
		}
	}
	insertionSortByCount := func(rows []int) {
		for i := 1; i < len(rows); i++ {
			for j := i; j > 0 && count[rows[j]] < count[rows[j-1]]; j-- {
				rows[j], rows[j-1] = rows[j-1], rows[j]
			}
		}
	}
	insertionSortByCount(pos)
	insertionSortByCount(neg)
	return append(pos, neg...)
}

// staticVisitor plugs FARMER's fixed thresholds into the shared engine.
type staticVisitor struct {
	minsup   int
	minconf  float64
	minchi   float64
	totalPos int // training rows of the consequent class
	totalNeg int
	cls      dataset.Label
	groups   []*rules.Group
}

// chi2 computes the chi-square statistic of the rule's 2x2 table:
// (covered pos, covered neg) vs (uncovered pos, uncovered neg).
func (v *staticVisitor) chi2(xp, xn int) float64 {
	a, b := float64(xp), float64(xn)
	c, d := float64(v.totalPos-xp), float64(v.totalNeg-xn)
	n := a + b + c + d
	den := (a + b) * (c + d) * (a + c) * (b + d)
	if den == 0 {
		return 0
	}
	diff := a*d - b*c
	return n * diff * diff / den
}

// chiUpperBound bounds the chi-square of every rule group in the
// subtree. Descendant groups have xp' in [xpNow, xpMax] (positives only
// join via the remaining positive candidates) and xn' in [xnNow, xnMax]
// (negatives already absorbed never leave; at most the remaining
// negative candidates join). For fixed margins the statistic has its
// minimum on the independence line and increases monotonically away
// from it along each axis, so its maximum over the feasible box is
// attained at one of the four corners.
func (v *staticVisitor) chiUpperBound(xpNow, xnNow, xpMax, xnMax int) float64 {
	best := 0.0
	for _, xp := range [2]int{xpNow, xpMax} {
		for _, xn := range [2]int{xnNow, xnMax} {
			if c := v.chi2(xp, xn); c > best {
				best = c
			}
		}
	}
	return best
}

func (v *staticVisitor) UpdateThresholds(xPos, candPos []int) engine.Threshold {
	return engine.Threshold{}
}

// Fork returns a private visitor for one worker: the thresholds are
// static, so workers share nothing but read-only configuration.
func (v *staticVisitor) Fork() engine.Visitor {
	return &staticVisitor{
		minsup: v.minsup, minconf: v.minconf, minchi: v.minchi,
		totalPos: v.totalPos, totalNeg: v.totalNeg, cls: v.cls,
	}
}

// Flush seals the groups collected since the last hand-off boundary;
// each group already owns its antecedent and rows (OnGroup copies), so
// the slice transfers to the merge side without aliasing the worker.
func (v *staticVisitor) Flush() any {
	if len(v.groups) == 0 {
		return nil
	}
	gs := v.groups
	v.groups = nil
	return gs
}

// Merge appends one streamed batch; the engine delivers batches in
// sequential discovery order, which is exactly the order a sequential
// run appends groups in.
func (v *staticVisitor) Merge(batch any) {
	v.groups = append(v.groups, batch.([]*rules.Group)...)
}

func (v *staticVisitor) PruneBeforeScan(_ engine.Threshold, xp, xn, rp, rn int) bool {
	ubSup := xp + rp
	if ubSup < v.minsup {
		return true
	}
	if v.minconf > 0 {
		if ubConf := float64(ubSup) / float64(ubSup+xn); ubConf < v.minconf {
			return true
		}
	}
	if v.minchi > 0 && v.chiUpperBound(xp, xn, ubSup, xn+rn) < v.minchi {
		return true
	}
	return false
}

func (v *staticVisitor) PruneAfterScan(_ engine.Threshold, xp, xn, mp, rn int) bool {
	ubSup := xp + mp
	if ubSup < v.minsup {
		return true
	}
	if v.minconf > 0 {
		if ubConf := float64(ubSup) / float64(ubSup+xn); ubConf < v.minconf {
			return true
		}
	}
	if v.minchi > 0 && v.chiUpperBound(xp, xn, ubSup, xn+rn) < v.minchi {
		return true
	}
	return false
}

func (v *staticVisitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	if xp < v.minsup {
		return
	}
	conf := float64(xp) / float64(xp+xn)
	if conf < v.minconf {
		return
	}
	if v.minchi > 0 && v.chi2(xp, xn) < v.minchi {
		return
	}
	// items and rows alias the engine's arena: the retained group copies
	// both at the event boundary.
	v.groups = append(v.groups, &rules.Group{
		Antecedent: append([]int(nil), items...),
		Class:      v.cls,
		Support:    xp,
		Confidence: conf,
		Rows:       rows.Clone(),
	})
}

func mineBitset(ctx context.Context, d *dataset.Dataset, cls dataset.Label, cfg Config, freqItems, order []int, numPos int) (*Result, error) {
	newID := make([]int, d.NumRows())
	for newR, origR := range order {
		newID[origR] = newR
	}
	itemRows := make([]*bitset.Set, d.NumItems())
	for _, it := range freqItems {
		s := bitset.New(d.NumRows())
		d.ItemRows(it).ForEach(func(origR int) bool {
			s.Add(newID[origR])
			return true
		})
		itemRows[it] = s
	}
	v := &staticVisitor{
		minsup: cfg.Minsup, minconf: cfg.Minconf, minchi: cfg.MinChi,
		totalPos: numPos, totalNeg: d.NumRows() - numPos, cls: cls,
	}
	eng := &engine.Enumerator{
		NumRows:       d.NumRows(),
		NumPos:        numPos,
		ItemRows:      itemRows,
		Visitor:       v,
		MaxNodes:      cfg.MaxNodes,
		Workers:       cfg.Workers,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
	}
	stats, err := eng.Run(ctx, freqItems)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: stats, Aborted: stats.Aborted}
	for _, g := range v.groups {
		remapped := bitset.New(d.NumRows())
		g.Rows.ForEach(func(newR int) bool {
			remapped.Add(order[newR])
			return true
		})
		g.Rows = remapped
		res.Groups = append(res.Groups, g)
	}
	rules.SortGroups(res.Groups)
	return res, nil
}

// tableMiner is the shared recursion for the naive and prefix engines.
// It works on the reordered dataset (positives first).
type tableMiner struct {
	cfg     Config
	cls     dataset.Label
	numRows int
	numPos  int
	// rowItems[r] = frequent items of reordered row r, as a bitset over
	// items; used for the backward closedness check.
	rowItems []*bitset.Set
	numItems int

	groups []*rules.Group
	stats  engine.Stats
	budget *engine.Budget
}

// node abstracts the two table representations.
type node interface {
	// analyze returns I(X) (unsorted item ids), freq(r) per reordered
	// row, and the tuple count, in one pass over the representation.
	analyze() (items []int, freq []int, tuples int)
	// projectAll returns child nodes for the given candidate rows
	// (parallel to cands). The naive engine materializes one projected
	// table per candidate; the prefix engine builds every view in a
	// single shared-prefix traversal.
	projectAll(cands []int) []node
}

type flatNode struct{ t *transpose.Table }

func (n flatNode) analyze() ([]int, []int, int) {
	items := make([]int, len(n.t.Tuples))
	f := make([]int, n.t.NumRows)
	for i, tu := range n.t.Tuples {
		items[i] = tu.Item
		for _, r := range tu.Rows {
			f[r]++
		}
	}
	return items, f, len(n.t.Tuples)
}
func (n flatNode) projectAll(cands []int) []node {
	out := make([]node, len(cands))
	for i, r := range cands {
		out[i] = flatNode{n.t.Project(r)}
	}
	return out
}

type prefixNode struct{ t *prefixtree.Tree }

func (n prefixNode) analyze() ([]int, []int, int) {
	items, freq := n.t.Analyze()
	return items, freq, n.t.TupleCount()
}
func (n prefixNode) projectAll(cands []int) []node {
	views := n.t.ProjectAll()
	out := make([]node, len(cands))
	for i, r := range cands {
		v := views[r]
		if v == nil {
			v = &prefixtree.Tree{NumRows: n.t.NumRows}
		}
		out[i] = prefixNode{v}
	}
	return out
}

func mineTable(ctx context.Context, d *dataset.Dataset, cls dataset.Label, cfg Config, freqItems, order []int, numPos int) (*Result, error) {
	reordered := d.Reorder(order)
	isFreq := make([]bool, d.NumItems())
	for _, it := range freqItems {
		isFreq[it] = true
	}
	// Restrict rows to frequent items for the transposed table.
	trimmed := &dataset.Dataset{
		Items:      reordered.Items,
		Rows:       make([][]int, reordered.NumRows()),
		Labels:     reordered.Labels,
		ClassNames: reordered.ClassNames,
	}
	for r, row := range reordered.Rows {
		var keep []int
		for _, it := range row {
			if isFreq[it] {
				keep = append(keep, it)
			}
		}
		trimmed.Rows[r] = keep
	}

	m := &tableMiner{
		cfg:      cfg,
		cls:      cls,
		numRows:  d.NumRows(),
		numPos:   numPos,
		numItems: d.NumItems(),
	}
	m.rowItems = make([]*bitset.Set, trimmed.NumRows())
	for r := 0; r < trimmed.NumRows(); r++ {
		m.rowItems[r] = trimmed.RowItemSet(r)
	}

	tt := transpose.FromDataset(trimmed)
	var root node
	if cfg.Engine == EnginePrefix {
		root = prefixNode{prefixtree.Build(tt)}
	} else {
		root = flatNode{tt}
	}

	res := &Result{}
	m.budget = engine.NewBudget(ctx, cfg.MaxNodes)
	switch err := m.enumerate(root, bitset.New(m.numRows), 0); {
	case errors.Is(err, engine.ErrNodeBudget):
		res.Aborted = true
		m.stats.Aborted = true
	case err != nil:
		return nil, err
	}

	res.Stats = m.stats
	for _, g := range m.groups {
		remapped := bitset.New(m.numRows)
		g.Rows.ForEach(func(newR int) bool {
			remapped.Add(order[newR])
			return true
		})
		g.Rows = remapped
		res.Groups = append(res.Groups, g)
	}
	rules.SortGroups(res.Groups)
	return res, nil
}

// enumerate visits node n representing TT|x with candidates >= minNext.
func (m *tableMiner) enumerate(n node, x *bitset.Set, minNext int) error {
	m.stats.Nodes++
	if err := m.budget.Charge(1); err != nil {
		return err
	}
	items, freq, tuples := n.analyze()
	if len(items) == 0 {
		return nil
	}

	// Backward closedness check against rows ordered before minNext:
	// I(X) contained in an earlier row not in X means a duplicate.
	itemSet := bitset.New(m.numItems)
	for _, it := range items {
		itemSet.Add(it)
	}
	for r := 0; r < minNext; r++ {
		if !x.Contains(r) && m.rowItems[r].ContainsAll(itemSet) {
			m.stats.BackwardPruned++
			return nil
		}
	}

	// Forward closure and candidate split.
	closed := x.Clone()
	xp := x.CountBelow(m.numPos)
	xn := x.Count() - xp
	var cands []int
	mp := 0
	for r := minNext; r < m.numRows; r++ {
		if x.Contains(r) || freq[r] == 0 {
			continue
		}
		if freq[r] == tuples {
			closed.Add(r)
			if r < m.numPos {
				xp++
			} else {
				xn++
			}
			continue
		}
		cands = append(cands, r)
		if r < m.numPos {
			mp++
		}
	}

	// Static threshold pruning (tight bounds).
	ubSup := xp + mp
	if ubSup < m.cfg.Minsup {
		m.stats.PrunedAfterScan++
		return nil
	}
	if m.cfg.Minconf > 0 {
		if ubConf := float64(ubSup) / float64(ubSup+xn); ubConf < m.cfg.Minconf {
			m.stats.PrunedAfterScan++
			return nil
		}
	}

	// Report the group at this node.
	if xp >= m.cfg.Minsup {
		conf := float64(xp) / float64(xp+xn)
		chiOK := true
		if m.cfg.MinChi > 0 {
			sv := staticVisitor{totalPos: m.numPos, totalNeg: m.numRows - m.numPos}
			chiOK = sv.chi2(xp, xn) >= m.cfg.MinChi
		}
		if conf >= m.cfg.Minconf && chiOK {
			m.stats.Groups++
			ant := append([]int(nil), items...)
			sort.Ints(ant)
			m.groups = append(m.groups, &rules.Group{
				Antecedent: ant,
				Class:      m.cls,
				Support:    xp,
				Confidence: conf,
				Rows:       closed.Clone(),
			})
		}
	}

	children := n.projectAll(cands)
	for i, r := range cands {
		childX := closed.Clone()
		childX.Add(r)
		if err := m.enumerate(children[i], childX, r+1); err != nil {
			return err
		}
	}
	return nil
}
