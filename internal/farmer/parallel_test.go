package farmer

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// randomDense builds a dataset with enough closed structure that the
// parallel workers genuinely overlap.
func randomDense(r *rand.Rand, rows, items int) *dataset.Dataset {
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < rows; row++ {
		var its []int
		for i := 0; i < items; i++ {
			if r.Intn(3) != 0 {
				its = append(its, i)
			}
		}
		d.Rows = append(d.Rows, its)
		d.Labels = append(d.Labels, dataset.Label(row%2))
	}
	return d
}

func sameGroups(t *testing.T, label string, a, b []*rules.Group) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d groups vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if rules.CompareConf(x.Confidence, y.Confidence) != 0 || x.Support != y.Support ||
			len(x.Antecedent) != len(y.Antecedent) || !x.Rows.Equal(y.Rows) {
			t.Fatalf("%s: group %d differs", label, i)
		}
		for j := range x.Antecedent {
			if x.Antecedent[j] != y.Antecedent[j] {
				t.Fatalf("%s: group %d antecedents differ: %v vs %v", label, i, x.Antecedent, y.Antecedent)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	d := randomDense(r, 20, 24)
	for _, minconf := range []float64{0, 0.6} {
		cfg := Config{Minsup: 2, Minconf: minconf, Engine: EngineBitset}
		seq, err := Mine(d, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			par, err := Mine(d, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameGroups(t, fmt.Sprintf("minconf=%v workers=%d", minconf, workers), seq.Groups, par.Groups)
		}
	}
}

func TestMineContextCancelledAllEngines(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineBitset, EnginePrefix, EngineNaive} {
		cfg := Config{Minsup: 1, Engine: eng}
		res, err := MineContext(ctx, d, 0, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %s: err = %v, want context.Canceled", eng, err)
		}
		if res != nil {
			t.Fatalf("engine %s: cancelled mine must not return a result", eng)
		}
	}
}

func TestMaxNodesAbortsAllEngines(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	d := randomDense(r, 16, 20)
	for _, eng := range []Engine{EngineBitset, EnginePrefix, EngineNaive} {
		cfg := Config{Minsup: 1, Engine: eng, MaxNodes: 5}
		res, err := Mine(d, 0, cfg)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if !res.Aborted || !res.Stats.Aborted {
			t.Fatalf("engine %s: tiny budget must abort (Aborted=%v Stats.Aborted=%v)", eng, res.Aborted, res.Stats.Aborted)
		}
	}
}
