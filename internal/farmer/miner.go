package farmer

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts FARMER to the engine.Miner interface under the name
// "farmer". Options.Variant selects the projected-table engine:
// "" or "bitset", "prefix", "naive".
type miner struct{}

func (miner) Name() string { return "farmer" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	cfg := Config{
		Minsup:        opts.Minsup,
		Minconf:       opts.Minconf,
		MinChi:        opts.MinChi,
		MaxNodes:      opts.MaxNodes,
		Workers:       opts.EffectiveWorkers(),
		Progress:      opts.Progress,
		ProgressEvery: opts.ProgressEvery,
	}
	switch opts.Variant {
	case "", "bitset":
		cfg.Engine = EngineBitset
	case "prefix":
		cfg.Engine = EnginePrefix
	case "naive":
		cfg.Engine = EngineNaive
	default:
		return nil, engine.Stats{}, fmt.Errorf("farmer: unknown variant %q", opts.Variant)
	}
	res, err := MineContext(ctx, d, opts.Class, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats := res.Stats
	stats.Aborted = stats.Aborted || res.Aborted
	return &engine.Result{Groups: res.Groups}, stats, nil
}

func init() { engine.Register(miner{}) }
