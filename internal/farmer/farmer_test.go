package farmer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// bruteForce enumerates all rule groups of class cls with support >=
// minsup and confidence >= minconf by closing every row subset.
func bruteForce(d *dataset.Dataset, cls dataset.Label, minsup int, minconf float64) []*rules.Group {
	n := d.NumRows()
	seen := map[string]*rules.Group{}
	for mask := 1; mask < 1<<n; mask++ {
		rows := bitset.New(n)
		for r := 0; r < n; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		items := d.CommonItems(rows)
		if len(items) == 0 {
			continue
		}
		sup := d.SupportSet(items)
		key := sup.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		xp := 0
		sup.ForEach(func(r int) bool {
			if d.Labels[r] == cls {
				xp++
			}
			return true
		})
		conf := float64(xp) / float64(sup.Count())
		if xp < minsup || conf < minconf {
			continue
		}
		seen[key] = &rules.Group{
			Antecedent: items, Class: cls, Support: xp, Confidence: conf, Rows: sup,
		}
	}
	var out []*rules.Group
	for _, g := range seen {
		out = append(out, g)
	}
	rules.SortGroups(out)
	return out
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(7)
	nItems := 2 + r.Intn(9)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	d.Labels[0] = 0
	return d
}

// signature canonicalizes a group list for set comparison.
func signature(gs []*rules.Group) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Key()
	}
	sort.Strings(out)
	return out
}

func equalSignatures(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure1AllGroupsMinconfZero(t *testing.T) {
	// With minsup=1, minconf=0, class C, FARMER must find every closed
	// group with positive support.
	d, _ := dataset.RunningExample()
	want := bruteForce(d, 0, 1, 0)
	for _, eng := range []Engine{EngineBitset, EnginePrefix, EngineNaive} {
		res, err := Mine(d, 0, Config{Minsup: 1, Minconf: 0, Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !equalSignatures(signature(res.Groups), signature(want)) {
			t.Fatalf("%v: groups mismatch:\ngot %d %v\nwant %d %v",
				eng, len(res.Groups), signature(res.Groups), len(want), signature(want))
		}
	}
}

func TestFigure1ConfidenceThreshold(t *testing.T) {
	// minconf=1.0, minsup=2, class C: only abc -> C (conf 1.0, sup 2)
	// and ab -> C? ab has R={r1,r2} same group as abc. Only that group.
	d, idx := dataset.RunningExample()
	res, err := Mine(d, 0, Config{Minsup: 2, Minconf: 1.0, Engine: EngineBitset})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	g := res.Groups[0]
	want := []int{idx["a"], idx["b"], idx["c"]}
	sort.Ints(want)
	if len(g.Antecedent) != 3 {
		t.Fatalf("antecedent = %v, want abc", g.Antecedent)
	}
	for i, it := range want {
		if g.Antecedent[i] != it {
			t.Fatalf("antecedent = %v, want %v", g.Antecedent, want)
		}
	}
}

func TestEnginesAgreeRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		minconf := float64(r.Intn(3)) / 4 // 0, 0.25, 0.5
		var sigs [][]string
		for _, eng := range []Engine{EngineBitset, EnginePrefix, EngineNaive} {
			res, err := Mine(d, 0, Config{Minsup: minsup, Minconf: minconf, Engine: eng})
			if err != nil {
				return false
			}
			sigs = append(sigs, signature(res.Groups))
		}
		return equalSignatures(sigs[0], sigs[1]) && equalSignatures(sigs[1], sigs[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstOracleRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		minconf := float64(r.Intn(3)) / 4
		for cls := dataset.Label(0); cls <= 1; cls++ {
			if d.ClassCount(cls) == 0 {
				continue
			}
			res, err := Mine(d, cls, Config{Minsup: minsup, Minconf: minconf, Engine: EngineBitset})
			if err != nil {
				return false
			}
			want := bruteForce(d, cls, minsup, minconf)
			if !equalSignatures(signature(res.Groups), signature(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportAndConfidenceValues(t *testing.T) {
	// Every reported group's support/confidence must recompute from the
	// dataset exactly.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(r)
		res, err := Mine(d, 0, Config{Minsup: 1, Minconf: 0, Engine: EnginePrefix})
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range res.Groups {
			sup := d.SupportSet(g.Antecedent)
			if !sup.Equal(g.Rows) {
				t.Fatalf("trial %d: Rows mismatch for %v", trial, g.Antecedent)
			}
			xp := 0
			sup.ForEach(func(row int) bool {
				if d.Labels[row] == 0 {
					xp++
				}
				return true
			})
			if g.Support != xp {
				t.Fatalf("trial %d: support %d, want %d", trial, g.Support, xp)
			}
			if g.Confidence != float64(xp)/float64(sup.Count()) {
				t.Fatalf("trial %d: confidence mismatch", trial)
			}
		}
	}
}

func TestConfidencePruningReducesNodes(t *testing.T) {
	d, _ := dataset.RunningExample()
	loose, err := Mine(d, 0, Config{Minsup: 1, Minconf: 0, Engine: EngineBitset})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Mine(d, 0, Config{Minsup: 1, Minconf: 1.0, Engine: EngineBitset})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.Nodes > loose.Stats.Nodes {
		t.Fatalf("minconf=1 visited more nodes (%d) than minconf=0 (%d)",
			tight.Stats.Nodes, loose.Stats.Nodes)
	}
}

func TestMaxNodesAborts(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 0, Config{Minsup: 1, Minconf: 0, Engine: EngineNaive, MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("tiny budget should abort")
	}
}

func TestInputValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, 0, Config{Minsup: 0}); err == nil {
		t.Fatal("minsup=0 must error")
	}
	if _, err := Mine(d, 0, Config{Minsup: 1, Minconf: 2}); err == nil {
		t.Fatal("minconf>1 must error")
	}
	if _, err := Mine(d, 5, Config{Minsup: 1}); err == nil {
		t.Fatal("bad class must error")
	}
	if _, err := Mine(d, 0, Config{Minsup: 1, Engine: Engine(9)}); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestEngineString(t *testing.T) {
	if EngineBitset.String() != "bitset" || EnginePrefix.String() != "prefix" || EngineNaive.String() != "naive" {
		t.Fatal("engine names")
	}
	if Engine(9).String() == "" {
		t.Fatal("unknown engine should still render")
	}
}

func TestHighMinsupEmptyResult(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 0, Config{Minsup: 50, Engine: EngineBitset})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatal("excessive minsup must yield nothing")
	}
}

// bruteForceChi filters the oracle by the chi-square statistic.
func bruteForceChi(d *dataset.Dataset, cls dataset.Label, minsup int, minconf, minchi float64) []*rules.Group {
	all := bruteForce(d, cls, minsup, minconf)
	totalPos := d.ClassCount(cls)
	totalNeg := d.NumRows() - totalPos
	var out []*rules.Group
	for _, g := range all {
		xp := g.Support
		xn := g.Rows.Count() - xp
		a, b := float64(xp), float64(xn)
		c, dd := float64(totalPos-xp), float64(totalNeg-xn)
		n := a + b + c + dd
		den := (a + b) * (c + dd) * (a + c) * (b + dd)
		chi := 0.0
		if den > 0 {
			diff := a*dd - b*c
			chi = n * diff * diff / den
		}
		if chi >= minchi {
			out = append(out, g)
		}
	}
	return out
}

func TestMinChiAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		minchi := float64(r.Intn(4)) // 0..3
		for _, eng := range []Engine{EngineBitset, EnginePrefix, EngineNaive} {
			res, err := Mine(d, 0, Config{Minsup: minsup, MinChi: minchi, Engine: eng})
			if err != nil {
				return false
			}
			want := bruteForceChi(d, 0, minsup, 0, minchi)
			if !equalSignatures(signature(res.Groups), signature(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinChiValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, 0, Config{Minsup: 1, MinChi: -1}); err == nil {
		t.Fatal("negative minchi must error")
	}
}
