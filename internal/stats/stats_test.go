package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEntropy(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{nil, 0},
		{[]int{0, 0}, 0},
		{[]int{5, 0}, 0},
		{[]int{1, 1}, 1},
		{[]int{2, 2, 2, 2}, 2},
		{[]int{3, 1}, -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))},
	}
	for _, c := range cases {
		if got := Entropy(c.counts); !almostEqual(got, c.want) {
			t.Errorf("Entropy(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	// 0 <= H <= log2(k) for any count vector with k classes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		counts := make([]int, k)
		for i := range counts {
			counts[i] = r.Intn(50)
		}
		h := Entropy(counts)
		return h >= -1e-12 && h <= math.Log2(float64(k))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedEntropy(t *testing.T) {
	// Pure blocks → 0.
	if got := WeightedEntropy([][]int{{4, 0}, {0, 6}}); !almostEqual(got, 0) {
		t.Fatalf("pure partition entropy = %v", got)
	}
	// Single block equals plain entropy.
	if got := WeightedEntropy([][]int{{3, 1}}); !almostEqual(got, Entropy([]int{3, 1})) {
		t.Fatalf("single block = %v", got)
	}
	// Empty input.
	if got := WeightedEntropy(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestBestBinarySplitSeparable(t *testing.T) {
	vs := []LabeledValue{
		{1, 0}, {2, 0}, {3, 0}, {10, 1}, {11, 1},
	}
	cut, gain, ok := BestBinarySplit(vs, 2)
	if !ok {
		t.Fatal("expected a split")
	}
	if !almostEqual(cut, 6.5) {
		t.Fatalf("cut = %v, want 6.5", cut)
	}
	wantGain := Entropy([]int{3, 2})
	if !almostEqual(gain, wantGain) {
		t.Fatalf("gain = %v, want %v (perfect split)", gain, wantGain)
	}
}

func TestBestBinarySplitNoCut(t *testing.T) {
	if _, _, ok := BestBinarySplit([]LabeledValue{{5, 0}, {5, 1}, {5, 0}}, 2); ok {
		t.Fatal("identical values admit no cut")
	}
	if _, _, ok := BestBinarySplit([]LabeledValue{{1, 0}}, 2); ok {
		t.Fatal("single sample admits no cut")
	}
	if _, _, ok := BestBinarySplit(nil, 2); ok {
		t.Fatal("empty input admits no cut")
	}
}

func TestBestBinarySplitCutBetweenValues(t *testing.T) {
	// Property: the returned cut must lie strictly between two observed
	// distinct values, and gain must be within [0, H(labels)].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		vs := make([]LabeledValue, n)
		for i := range vs {
			vs[i] = LabeledValue{Value: float64(r.Intn(10)), Label: r.Intn(2)}
		}
		SortLabeledValues(vs)
		cut, gain, ok := BestBinarySplit(vs, 2)
		if !ok {
			return true
		}
		counts := []int{0, 0}
		for _, v := range vs {
			counts[v.Label]++
		}
		if gain < -1e-9 || gain > Entropy(counts)+1e-9 {
			return false
		}
		below, above := false, false
		for _, v := range vs {
			if v.Value < cut {
				below = true
			}
			if v.Value > cut {
				above = true
			}
			if v.Value == cut {
				return false // cuts are midpoints, never observed values
			}
		}
		return below && above
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyScore(t *testing.T) {
	// Perfectly separable gene has score = H(class); useless gene ~0.
	values := []float64{1, 2, 3, 10, 11, 12}
	labels := []int{0, 0, 0, 1, 1, 1}
	if got := EntropyScore(values, labels, 2); !almostEqual(got, 1) {
		t.Fatalf("separable score = %v, want 1", got)
	}
	flat := []float64{5, 5, 5, 5, 5, 5}
	if got := EntropyScore(flat, labels, 2); got != 0 {
		t.Fatalf("flat gene score = %v, want 0", got)
	}
}

func TestChiSquare(t *testing.T) {
	// Independent table → 0.
	if got := ChiSquare([][]int{{10, 10}, {20, 20}}); !almostEqual(got, 0) {
		t.Fatalf("independent chi2 = %v", got)
	}
	// Known value: 2x2 table {{10,20},{30,40}}.
	// chi2 = n(ad-bc)^2 / ((a+b)(c+d)(a+c)(b+d)) = 100*(400-600)^2/(30*70*40*60)
	want := 100.0 * 200 * 200 / (30 * 70 * 40 * 60)
	if got := ChiSquareBinary(10, 20, 30, 40); !almostEqual(got, want) {
		t.Fatalf("chi2 = %v, want %v", got, want)
	}
	if got := ChiSquare(nil); got != 0 {
		t.Fatalf("empty chi2 = %v", got)
	}
	if got := ChiSquare([][]int{{0, 0}, {0, 0}}); got != 0 {
		t.Fatalf("zero chi2 = %v", got)
	}
}

func TestChiSquareNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := [][]int{
			{r.Intn(30), r.Intn(30)},
			{r.Intn(30), r.Intn(30)},
		}
		return ChiSquare(tab) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	scores := []float64{0.5, 2.0, 1.0, 2.0, 0.1}
	got := Rank(scores)
	// Descending: 2.0 (tie, rank 1), 1.0 rank 3, 0.5 rank 4, 0.1 rank 5.
	want := []int{4, 1, 3, 1, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank = %v, want %v", got, want)
	}
	if got := Rank(nil); len(got) != 0 {
		t.Fatalf("Rank(nil) = %v", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5) {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2) {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestSortLabeledValuesDeterministic(t *testing.T) {
	vs := []LabeledValue{{1, 1}, {1, 0}, {0, 1}}
	SortLabeledValues(vs)
	want := []LabeledValue{{0, 1}, {1, 0}, {1, 1}}
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("sorted = %v, want %v", vs, want)
	}
}
