// Package stats provides the information-theoretic and statistical
// scores the paper relies on: class entropy, information gain of binary
// splits (used by entropy discretization, C4.5, and FindLB's item
// ranking), and chi-square association (used by the Figure 8 gene-rank
// analysis).
package stats

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (base 2) of a label count vector.
// Zero counts contribute nothing; an empty or all-zero vector has
// entropy 0.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// WeightedEntropy returns the class-count-weighted average entropy of a
// partition, where parts[i] is the label count vector of block i.
func WeightedEntropy(parts [][]int) float64 {
	total := 0
	for _, p := range parts {
		for _, c := range p {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range parts {
		n := 0
		for _, c := range p {
			n += c
		}
		if n == 0 {
			continue
		}
		h += float64(n) / float64(total) * Entropy(p)
	}
	return h
}

// LabeledValue pairs one sample's value for a single gene with its class.
type LabeledValue struct {
	Value float64
	Label int
}

// SortLabeledValues sorts in ascending Value order (stable on ties by
// label so results are deterministic).
func SortLabeledValues(vs []LabeledValue) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Value != vs[j].Value {
			return vs[i].Value < vs[j].Value
		}
		return vs[i].Label < vs[j].Label
	})
}

// BestBinarySplit finds the cut point of a sorted labeled sequence that
// minimizes the weighted entropy of the induced two-block partition.
// Candidate cuts are boundary midpoints between adjacent distinct values.
// It returns the cut value, the information gain of the split, and ok =
// false when no valid cut exists (all values identical or fewer than two
// samples). vs must be sorted ascending by value.
func BestBinarySplit(vs []LabeledValue, numClasses int) (cut float64, gain float64, ok bool) {
	n := len(vs)
	if n < 2 {
		return 0, 0, false
	}
	totalCounts := make([]int, numClasses)
	for _, v := range vs {
		totalCounts[v.Label]++
	}
	baseH := Entropy(totalCounts)

	leftCounts := make([]int, numClasses)
	bestGain := math.Inf(-1)
	bestCut := 0.0
	found := false
	for i := 0; i < n-1; i++ {
		leftCounts[vs[i].Label]++
		if vs[i].Value == vs[i+1].Value {
			continue // not a boundary between distinct values
		}
		rightCounts := make([]int, numClasses)
		for c := range rightCounts {
			rightCounts[c] = totalCounts[c] - leftCounts[c]
		}
		w := float64(i+1)/float64(n)*Entropy(leftCounts) +
			float64(n-i-1)/float64(n)*Entropy(rightCounts)
		g := baseH - w
		if g > bestGain {
			bestGain = g
			bestCut = (vs[i].Value + vs[i+1].Value) / 2
			found = true
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestCut, bestGain, true
}

// EntropyScore is the discriminant ability of a gene measured as the
// information gain of its best binary split against the class labels —
// the score [3] that FindLB uses to rank items. Higher is more
// discriminant. A gene whose values cannot be split scores 0.
func EntropyScore(values []float64, labels []int, numClasses int) float64 {
	vs := make([]LabeledValue, len(values))
	for i := range values {
		vs[i] = LabeledValue{Value: values[i], Label: labels[i]}
	}
	SortLabeledValues(vs)
	_, gain, ok := BestBinarySplit(vs, numClasses)
	if !ok {
		return 0
	}
	return gain
}

// ChiSquare returns the chi-square statistic of a contingency table
// table[i][j] = count of (attribute value i, class j). Cells with zero
// expected count contribute nothing.
func ChiSquare(table [][]int) float64 {
	if len(table) == 0 {
		return 0
	}
	rows := len(table)
	cols := len(table[0])
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	total := 0.0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := float64(table[i][j])
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	chi := 0.0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			exp := rowSum[i] * colSum[j] / total
			if exp == 0 {
				continue
			}
			d := float64(table[i][j]) - exp
			chi += d * d / exp
		}
	}
	return chi
}

// ChiSquareBinary returns the chi-square statistic of a presence/absence
// attribute against a binary class, given the four cell counts:
// a = present & positive, b = present & negative,
// c = absent & positive, d = absent & negative.
func ChiSquareBinary(a, b, c, d int) float64 {
	return ChiSquare([][]int{{a, b}, {c, d}})
}

// Rank assigns dense ranks (1 = best) to scores sorted descending. Ties
// share the smallest rank of the tied block. The returned slice is
// parallel to scores.
func Rank(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	ranks := make([]int, len(scores))
	for pos, i := range idx {
		// vetsuite:allow floatcmp -- dense ranking ties on bit-identical scores; stats stays free of the rules package
		if pos > 0 && scores[i] == scores[idx[pos-1]] {
			ranks[i] = ranks[idx[pos-1]]
		} else {
			ranks[i] = pos + 1
		}
	}
	return ranks
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
