package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/rules"
)

// TestFloorsSyncConcurrentMonotone hammers the board from N goroutines
// (run it under -race): every worker proposes random floors and checks
// after each exchange that its view of the board only ever tightened —
// per row, the (CompareConf, support) order is non-decreasing across
// its own Sync calls no matter how the exchanges interleave.
func TestFloorsSyncConcurrentMonotone(t *testing.T) {
	const (
		rows    = 16
		workers = 8
		iters   = 300
	)
	f := NewFloors(rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			conf := make([]float64, rows)
			sup := make([]int, rows)
			prevConf := make([]float64, rows)
			prevSup := make([]int, rows)
			for i := 0; i < iters; i++ {
				// Propose: keep the current view, sometimes raise a row.
				for r := range conf {
					if rng.Intn(4) == 0 {
						conf[r] = float64(rng.Intn(100)) / 100
						sup[r] = rng.Intn(50)
					}
				}
				f.Sync(conf, sup)
				for r := range conf {
					cmp := rules.CompareConf(conf[r], prevConf[r])
					if cmp < 0 || (cmp == 0 && sup[r] < prevSup[r]) {
						t.Errorf("row %d weakened: (%v,%d) -> (%v,%d)",
							r, prevConf[r], prevSup[r], conf[r], sup[r])
						return
					}
				}
				copy(prevConf, conf)
				copy(prevSup, sup)
				if mc := f.MinConf(); mc < 0 || mc > 1 {
					t.Errorf("MinConf out of range: %v", mc)
					return
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
}

// cancelMidVisitor drives the cancellation-mid-steal test: forks share
// one atomic node counter and cancel the run's context at a fixed
// count, while a per-node delay keeps workers busy long enough that
// offloaded tasks are sitting in deques when the cancel lands. Those
// queued tasks must drain (each fails the budget check at node entry)
// or the scheduler's merge walker would wait on their runs forever.
type cancelMidVisitor struct {
	cancel context.CancelFunc
	after  int64
	calls  *atomic.Int64
	delay  time.Duration
}

func (v *cancelMidVisitor) UpdateThresholds(xPos, candPos []int) Threshold {
	if v.calls.Add(1) == v.after {
		v.cancel()
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	return Threshold{}
}
func (v *cancelMidVisitor) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool { return false }
func (v *cancelMidVisitor) PruneAfterScan(_ Threshold, xp, xn, mp, rn int) bool  { return false }
func (v *cancelMidVisitor) OnGroup([]int, *bitset.Set, int, int, []int)          {}
func (v *cancelMidVisitor) Fork() Visitor {
	return &cancelMidVisitor{cancel: v.cancel, after: v.after, calls: v.calls, delay: v.delay}
}
func (v *cancelMidVisitor) Merge(batch any) {}

func TestParallelCancelMidStealAbortsPromptly(t *testing.T) {
	// Sequential baseline: how big the full tree is.
	seqV := &minsupVisitor{minsup: 2}
	seqEng, items := synthEnumerator(seqV, 60, 30, 30, 0)
	seqStats := mustRun(t, seqEng, items)
	if seqStats.Nodes < 500 {
		t.Fatalf("synthetic tree too small for a mid-run cancel: %d nodes", seqStats.Nodes)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	v := &cancelMidVisitor{cancel: cancel, after: 40, calls: &calls, delay: 50 * time.Microsecond}
	eng, items2 := synthEnumerator(v, 60, 30, 30, 4)
	stats, err := eng.Run(ctx, items2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Aborted {
		t.Fatal("cancellation must not masquerade as a budget abort")
	}
	// Promptness: after the cancel, every task — running or still queued
	// in a victim's deque — fails the budget check at its next node
	// entry, so the node count stays far below the full tree.
	if stats.Nodes >= seqStats.Nodes/2 {
		t.Fatalf("cancel was not prompt: visited %d of %d nodes", stats.Nodes, seqStats.Nodes)
	}
	// No goroutine leaks: Run's WaitGroup drains the workers before
	// returning; give the runtime a bounded moment to retire them.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after cancelled parallel run: %d > %d", g, before)
	}
}

// TestParallelReuseAcrossRuns exercises the scheduler's pooled state:
// repeated Runs on one Enumerator (the serving layer's steady state)
// must produce identical output every time, including right after a
// budget-aborted Run on the same scheduler.
func TestParallelReuseAcrossRuns(t *testing.T) {
	seq := &parCollector{}
	engSeq, items := enumeratorFor(t, seq, false)
	mustRun(t, engSeq, items)

	par := &parCollector{}
	engPar, items2 := enumeratorFor(t, par, false)
	engPar.Workers = 4
	for run := 0; run < 3; run++ {
		par.groups = par.groups[:0]
		stats := mustRun(t, engPar, items2)
		if len(par.groups) != len(seq.groups) {
			t.Fatalf("run %d: %d groups, want %d", run, len(par.groups), len(seq.groups))
		}
		if stats.Nodes != engSeq.stats.Nodes {
			t.Fatalf("run %d: nodes %d, want %d", run, stats.Nodes, engSeq.stats.Nodes)
		}
		if run == 1 {
			// Interleave a budget-aborted Run; the next full Run must be
			// unaffected by the aborted tasks' recycled state.
			engPar.MaxNodes = 3
			par.groups = par.groups[:0]
			if stats := mustRun(t, engPar, items2); !stats.Aborted {
				t.Fatal("tiny budget should abort")
			}
			engPar.MaxNodes = 0
		}
	}
}

func TestOptionsValidateWorkers(t *testing.T) {
	if err := (Options{Workers: -1}).Validate(); !errors.Is(err, ErrBadWorkers) {
		t.Fatalf("Workers=-1: err = %v, want ErrBadWorkers", err)
	}
	if err := (Options{Workers: -1}).Validate(); err != nil && err.Error() == ErrBadWorkers.Error() {
		t.Fatal("Validate must wrap ErrBadWorkers with the offending value, not return it bare")
	}
	for _, ok := range []int{0, 1, 8} {
		if err := (Options{Workers: ok}).Validate(); err != nil {
			t.Fatalf("Workers=%d: unexpected err %v", ok, err)
		}
	}
}
