package engine

import (
	"context"
	"errors"

	"repro/internal/bitset"
)

// Visitor receives enumeration events and owns all threshold logic.
// Hooks are called in the Step order of Algorithm MineTopkRGS (Figure
// 3), with the structural backward check folded into the engine.
type Visitor interface {
	// UpdateThresholds is Step 8: xPos are the positive rows already in
	// X, candPos the positive candidate rows still enumerable below the
	// node (a superset of the reachable R_p). Together they bound the
	// rows that groups found in this subtree can cover (Lemma 3.2). The
	// returned threshold is passed back into the pruning hooks for this
	// node and its child-generation loop.
	UpdateThresholds(xPos, candPos []int) Threshold
	// PruneBeforeScan is Step 9: loose upper bounds computed without
	// scanning the projected table. rp and rn are candidate counts
	// inherited from the parent.
	PruneBeforeScan(th Threshold, xp, xn, rp, rn int) bool
	// PruneAfterScan is Step 11: tight upper bounds. mp is the number of
	// positive candidates that survive the node's projection, rn the
	// surviving negative candidates.
	PruneAfterScan(th Threshold, xp, xn, mp, rn int) bool
	// OnGroup is Steps 12-13: a closed rule group was identified. items
	// is I(X) (sorted, aliased — copy to retain), rows is R(I(X)) (fresh,
	// may be retained), xp/xn its class split, xPos the positive row ids.
	OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int)
}

// Enumerator runs the row enumeration. Configure the fields, then call
// Run. A single Enumerator is not safe for concurrent Run calls; the
// parallel mode spawns its own per-worker sub-enumerators internally.
type Enumerator struct {
	NumRows  int           // total rows
	NumPos   int           // rows 0..NumPos-1 are the consequent class
	ItemRows []*bitset.Set // full support set per item id; read-only during Run
	Visitor  Visitor

	// DisableBackward turns off the closedness check (ablation only:
	// the same group is then reported once per generating row subset).
	DisableBackward bool
	// MaxNodes, when positive, aborts the search after that many nodes;
	// Stats.Aborted reports the cutoff. Results seen so far remain valid
	// but possibly incomplete.
	MaxNodes int
	// Workers > 1 enables the parallel mode when the Visitor implements
	// ParallelVisitor: first-level subtrees are dispatched to a worker
	// pool and merged deterministically. <= 1 runs sequentially.
	Workers int

	budget *Budget
	spawn  func(task) error
	stats  Stats
}

// task is one enumeration node: the pending row set x (not yet closed),
// the alive items, the candidate rows (all ids >= minNext, ascending),
// and the depth. First-level tasks are the parallel work units.
type task struct {
	x       *bitset.Set
	items   []int
	cand    []int
	minNext int
	depth   int
}

// Run enumerates starting from the given alive item list (the frequent
// items, ascending) and returns work statistics. The context is checked
// at every node entry: cancellation and deadline expiry return ctx.Err()
// promptly; a MaxNodes abort is reported via Stats.Aborted with a nil
// error (partial results in the visitor remain valid).
func (e *Enumerator) Run(ctx context.Context, items []int) (Stats, error) {
	e.stats = Stats{Workers: 1}
	if len(items) == 0 || e.NumRows == 0 {
		return e.stats, nil
	}
	e.budget = NewBudget(ctx, e.MaxNodes)
	cand := make([]int, e.NumRows)
	for i := range cand {
		cand[i] = i
	}
	root := task{x: bitset.New(e.NumRows), items: items, cand: cand}

	var err error
	if pv, ok := e.Visitor.(ParallelVisitor); ok && e.Workers > 1 {
		err = e.runParallel(pv, root)
	} else {
		e.spawn = e.enumerate
		err = e.enumerate(root)
	}
	if errors.Is(err, ErrNodeBudget) {
		e.stats.Aborted = true
		err = nil
	}
	return e.stats, err
}

// enumerate recurses depth-first: visit the node, then spawn children
// back into enumerate via e.spawn.
func (e *Enumerator) enumerate(t task) error {
	return e.visitNode(t)
}

// posSplit splits an ascending candidate list at NumPos.
func (e *Enumerator) posSplit(cand []int) (pos, neg []int) {
	i := 0
	for i < len(cand) && cand[i] < e.NumPos {
		i++
	}
	return cand[:i], cand[i:]
}

// visitNode processes one enumeration node and hands each surviving
// child to e.spawn (direct recursion when sequential, task collection
// at the parallel root). Child tasks alias a reused item buffer: spawn
// implementations that retain a task beyond the call must copy items.
func (e *Enumerator) visitNode(t task) error {
	e.stats.Nodes++
	if err := e.budget.Charge(1); err != nil {
		return err
	}
	if t.depth > e.stats.MaxDepth {
		e.stats.MaxDepth = t.depth
	}

	xp := t.x.CountBelow(e.NumPos)
	xn := t.x.Count() - xp
	candPos, candNeg := e.posSplit(t.cand)

	// Step 8: dynamic thresholds over the rows this subtree can cover.
	th := e.Visitor.UpdateThresholds(posIndices(t.x, e.NumPos), candPos)

	// Step 9: loose bounds using inherited candidate counts.
	if e.Visitor.PruneBeforeScan(th, xp, xn, len(candPos), len(candNeg)) {
		e.stats.PrunedBeforeScan++
		return nil
	}

	// Closure: R(I(X)) = ∩_{i ∈ I(X)} R(i).
	closed := e.ItemRows[t.items[0]].Clone()
	for _, it := range t.items[1:] {
		closed.IntersectWith(e.ItemRows[it])
	}

	// Step 7: backward pruning — a row ordered before the enumeration
	// point that is in R(I(X)) but not in X means this closed set was
	// already reached under an earlier branch.
	if !e.DisableBackward && closed.AnyBelow(t.minNext, t.x) {
		e.stats.BackwardPruned++
		return nil
	}

	// Step 10: forward closure — candidates inside R(I(X)) join X; the
	// rest survive iff some tuple still contains them.
	xp = closed.CountBelow(e.NumPos)
	xn = closed.Count() - xp
	survivors := t.cand[:0:0] // fresh slice, no aliasing of cand
	mp := 0
	for _, r := range t.cand {
		if closed.Contains(r) {
			continue
		}
		alive := false
		for _, it := range t.items {
			if e.ItemRows[it].Contains(r) {
				alive = true
				break
			}
		}
		if alive {
			survivors = append(survivors, r)
			if r < e.NumPos {
				mp++
			}
		}
	}

	// Step 11: tight bounds using surviving candidate counts, with the
	// thresholds recomputed over the now-exact reachable row set
	// (X_p of the closed set plus the surviving positive candidates —
	// Lemma 3.2's maximal coverage). The post-scan threshold is at least
	// as strong as the pre-scan one because the reachable set shrank.
	xPosClosed := posIndices(closed, e.NumPos)
	survPos := survivors[:0:0]
	for _, r := range survivors {
		if r < e.NumPos {
			survPos = append(survPos, r)
		}
	}
	th = e.Visitor.UpdateThresholds(xPosClosed, survPos)
	if e.Visitor.PruneAfterScan(th, xp, xn, mp, len(survivors)-mp) {
		e.stats.PrunedAfterScan++
		return nil
	}

	// Steps 12-13: report the group at this node.
	if xp > 0 {
		e.stats.Groups++
		e.Visitor.OnGroup(t.items, closed, xp, xn, xPosClosed)
	}

	// Step 14: descend into each surviving candidate in ORD order. Each
	// child is first checked against the loose bounds using the
	// thresholds already computed for this node (a superset of the
	// child's reachable rows, so conservative): children that cannot
	// contribute are skipped without paying a recursive call and a fresh
	// threshold scan.
	childItems := make([]int, 0, len(t.items))
	posLeft := mp
	for i, r := range survivors {
		childXp, childXn := xp, xn
		if r < e.NumPos {
			posLeft--
			childXp++
		} else {
			childXn++
		}
		negLeft := len(survivors) - i - 1 - posLeft
		if e.Visitor.PruneBeforeScan(th, childXp, childXn, posLeft, negLeft) {
			e.stats.PrunedBeforeScan++
			continue
		}
		childItems = childItems[:0]
		for _, it := range t.items {
			if e.ItemRows[it].Contains(r) {
				childItems = append(childItems, it)
			}
		}
		if len(childItems) == 0 {
			continue
		}
		childX := closed.Clone()
		childX.Add(r)
		if err := e.spawn(task{
			x: childX, items: childItems, cand: survivors[i+1:], minNext: r + 1, depth: t.depth + 1,
		}); err != nil {
			return err
		}
	}
	return nil
}

// posIndices returns the elements of s below limit, ascending.
func posIndices(s *bitset.Set, limit int) []int {
	out := make([]int, 0, s.CountBelow(limit))
	s.ForEach(func(i int) bool {
		if i >= limit {
			return false
		}
		out = append(out, i)
		return true
	})
	return out
}
