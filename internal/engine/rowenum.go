package engine

import (
	"context"
	"errors"

	"repro/internal/bitset"
)

// Visitor receives enumeration events and owns all threshold logic.
// Hooks are called in the Step order of Algorithm MineTopkRGS (Figure
// 3), with the structural backward check folded into the engine.
//
// Aliasing contract: every slice and bitset a hook receives aliases the
// engine's per-worker scratch arena and is valid only for the duration
// of the call — the engine overwrites the same buffers at the next node
// (and at the second UpdateThresholds call of the same node). A visitor
// that retains anything must copy it at the event boundary: Clone() for
// bitsets, append([]int(nil), s...) for index slices. Retention without
// a copy is the one way to corrupt an otherwise deterministic search.
type Visitor interface {
	// UpdateThresholds is Step 8: xPos are the positive rows already in
	// X, candPos the positive candidate rows still enumerable below the
	// node (a superset of the reachable R_p). Together they bound the
	// rows that groups found in this subtree can cover (Lemma 3.2). The
	// returned threshold is passed back into the pruning hooks for this
	// node and its child-generation loop. Both slices are arena-backed
	// (see the interface comment): scan them, do not keep them.
	UpdateThresholds(xPos, candPos []int) Threshold
	// PruneBeforeScan is Step 9: loose upper bounds computed without
	// scanning the projected table. rp and rn are candidate counts
	// inherited from the parent.
	PruneBeforeScan(th Threshold, xp, xn, rp, rn int) bool
	// PruneAfterScan is Step 11: tight upper bounds. mp is the number of
	// positive candidates that survive the node's projection, rn the
	// surviving negative candidates.
	PruneAfterScan(th Threshold, xp, xn, mp, rn int) bool
	// OnGroup is Steps 12-13: a closed rule group was identified. items
	// is I(X) (sorted), rows is R(I(X)), xp/xn its class split, xPos the
	// positive row ids of rows. All of items, rows and xPos alias arena
	// memory owned by the engine — a visitor that keeps the group must
	// copy them here, at the event boundary (rows.Clone() and fresh
	// slices); these retained copies are the only sanctioned per-group
	// allocations on the mining path.
	OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int)
}

// Enumerator runs the row enumeration. Configure the fields, then call
// Run. A single Enumerator is not safe for concurrent Run calls; the
// parallel mode spawns its own per-worker sub-enumerators internally.
// Repeated Run calls reuse the enumerator's scratch arena and row→item
// index, so steady-state runs allocate nothing beyond what the visitor
// retains; ItemRows must therefore stay unchanged across Runs.
type Enumerator struct {
	NumRows  int           // total rows
	NumPos   int           // rows 0..NumPos-1 are the consequent class
	ItemRows []*bitset.Set // full support set per item id; read-only during Run

	Visitor Visitor

	// DisableBackward turns off the closedness check (ablation only:
	// the same group is then reported once per generating row subset).
	DisableBackward bool
	// MaxNodes, when positive, aborts the search after that many nodes;
	// Stats.Aborted reports the cutoff. Results seen so far remain valid
	// but possibly incomplete.
	MaxNodes int
	// Workers > 1 enables the parallel mode when the Visitor implements
	// ParallelVisitor: subtrees are mined by a work-stealing worker
	// pool (per-worker deques, steal-half) with adaptive task
	// generation — a subtree is split off only while some worker is
	// idle — and event batches are merged back in sequential
	// enumeration order while mining is in flight. <= 1 runs
	// sequentially.
	Workers int
	// Progress, when non-nil, receives ProgressSnapshots every
	// ProgressEvery nodes (0 = DefaultProgressEvery) plus one final
	// snapshot per Run. The sampling adds one branch, one atomic add and
	// zero heap allocations per node; see progress.go.
	Progress ProgressFunc
	// ProgressEvery is the node stride between snapshots.
	ProgressEvery int

	budget *Budget
	sp     spawner
	stats  Stats
	prog   *progressSampler
	sched  *scheduler // parallel mode: retained across Runs (arenas, pools)

	// scratch is this goroutine's arena; rowItems is the transposed
	// item index (row id -> items whose support contains the row), built
	// once per enumerator and shared read-only with workers.
	scratch  *scratch
	rowItems []*bitset.Set
}

// spawner receives the surviving children of a node. The sequential
// mode is the Enumerator itself (direct recursion); parallel workers
// decide per child between inline recursion and offloading to their
// deque. Tasks handed to spawn alias arena buffers (x, items, cand):
// an implementation that retains a task beyond the call must deep-copy
// those three fields (the deque hand-off does exactly that).
type spawner interface {
	spawn(t task) error
}

// spawn recurses directly into the child node (sequential mode).
func (e *Enumerator) spawn(t task) error { return e.visitNode(t) }

// task is one enumeration node: the pending row set x (not yet closed),
// the alive items, the candidate rows (all ids >= minNext, ascending),
// and the depth. First-level tasks are the parallel work units.
type task struct {
	x       *bitset.Set
	items   []int
	cand    []int
	minNext int
	depth   int
	// first marks a node's first surviving child. The parallel spawner
	// keeps it inline: mining it before offloading its siblings lets the
	// sibling tasks carry the first subtree's accumulated thresholds in
	// their baselines (see Baseliner), the way sequential DFS carries
	// them across siblings.
	first bool
}

// Run enumerates starting from the given alive item list (the frequent
// items, ascending) and returns work statistics. The context is checked
// at every node entry: cancellation and deadline expiry return ctx.Err()
// promptly; a MaxNodes abort is reported via Stats.Aborted with a nil
// error (partial results in the visitor remain valid).
func (e *Enumerator) Run(ctx context.Context, items []int) (Stats, error) {
	e.stats = Stats{Workers: 1}
	if len(items) == 0 || e.NumRows == 0 {
		return e.stats, nil
	}
	if e.budget == nil {
		e.budget = &Budget{}
	}
	e.budget.Reset(ctx, e.MaxNodes)
	if e.Progress != nil {
		if e.prog == nil {
			e.prog = &progressSampler{}
		}
		every := int64(e.ProgressEvery)
		if every <= 0 {
			every = DefaultProgressEvery
		}
		fr, _ := e.Visitor.(FloorReporter)
		e.prog.arm(e.Progress, every, e.budget, fr)
	} else {
		e.prog = nil
	}
	e.ensureScratch()
	rootX := e.scratch.level(0).xSet()
	rootX.Clear()
	root := task{x: rootX, items: items, cand: e.scratch.rootCand}

	var err error
	if pv, ok := e.Visitor.(ParallelVisitor); ok && e.Workers > 1 {
		err = e.runParallel(pv, root)
	} else {
		e.sp = e
		err = e.visitNode(root)
	}
	if errors.Is(err, ErrNodeBudget) {
		e.stats.Aborted = true
		err = nil
	}
	if e.prog != nil && err == nil {
		// Final snapshot: short runs that never crossed a sampling stride
		// still report their totals once.
		e.prog.emit(e.stats.MaxDepth)
	}
	return e.stats, err
}

// ensureScratch builds the arena and the row→item index on the first
// Run; later Runs reuse both (ItemRows is read-only by contract).
func (e *Enumerator) ensureScratch() {
	if e.scratch == nil {
		e.scratch = newScratch(e.NumRows, e.NumPos, len(e.ItemRows))
	}
	if e.rowItems == nil {
		e.rowItems = buildRowItems(e.NumRows, e.ItemRows)
	}
}

// buildRowItems transposes the item supports into per-row item sets:
// rowItems[r] contains item i iff itemRows[i] contains r. The survivor
// scan intersects these with the node's alive mask, replacing the
// per-candidate O(|items|) Contains loop with a handful of fused word
// operations.
func buildRowItems(numRows int, itemRows []*bitset.Set) []*bitset.Set {
	rowItems := make([]*bitset.Set, numRows)
	for r := range rowItems {
		rowItems[r] = bitset.New(len(itemRows))
	}
	for it, rs := range itemRows {
		if rs == nil {
			continue
		}
		item := it
		rs.ForEach(func(r int) bool {
			rowItems[r].Add(item)
			return true
		})
	}
	return rowItems
}

// posSplit splits an ascending candidate list at NumPos.
//
//vet:allocfree
func (e *Enumerator) posSplit(cand []int) (pos, neg []int) {
	i := 0
	for i < len(cand) && cand[i] < e.NumPos {
		i++
	}
	return cand[:i], cand[i:]
}

// visitNode processes one enumeration node and hands each surviving
// child to e.sp (direct recursion when sequential, task collection at
// the parallel root). The node works entirely inside its depth's arena
// level: the steady-state path performs zero heap allocations (see
// DESIGN.md §5b, "memory model of the hot loop").
//
//vet:allocfree
func (e *Enumerator) visitNode(t task) error {
	e.stats.Nodes++
	if err := e.budget.Charge(1); err != nil {
		return err
	}
	if t.depth > e.stats.MaxDepth {
		e.stats.MaxDepth = t.depth
	}
	if e.prog != nil {
		e.prog.tick(e.stats.MaxDepth)
	}
	lv := e.scratch.level(t.depth)

	xp := t.x.CountBelow(e.NumPos)
	xn := t.x.Count() - xp
	candPos, candNeg := e.posSplit(t.cand)

	// Step 8: dynamic thresholds over the rows this subtree can cover.
	posIdx := t.x.AppendIndicesBelow(lv.posIdx[:0], e.NumPos)
	th := e.Visitor.UpdateThresholds(posIdx, candPos)

	// Step 9: loose bounds using inherited candidate counts.
	if e.Visitor.PruneBeforeScan(th, xp, xn, len(candPos), len(candNeg)) {
		e.stats.PrunedBeforeScan++
		return nil
	}

	// Closure: R(I(X)) = ∩_{i ∈ I(X)} R(i), folded into the arena with
	// the last intersection step fused against the backward check and
	// the class-split count. partial holds ∩ of all items but the last
	// (for a single item, partial == last and the product is R(i)∩R(i)).
	rows := e.ItemRows
	n := len(t.items)
	closed := lv.closedSet()
	last := rows[t.items[n-1]]
	partial := last
	if n >= 2 {
		if n == 2 {
			partial = rows[t.items[0]]
		} else {
			closed.IntersectInto(rows[t.items[0]], rows[t.items[1]])
			for _, it := range t.items[2 : n-1] {
				closed.IntersectWith(rows[it])
			}
			partial = closed
		}
	}

	// Step 7: backward pruning — a row ordered before the enumeration
	// point that is in R(I(X)) but not in X means this closed set was
	// already reached under an earlier branch. The fused check exits at
	// the first offending word, before the closure is even materialized.
	if !e.DisableBackward && partial.AnyBelowAndNot(t.minNext, last, t.x) {
		e.stats.BackwardPruned++
		return nil
	}
	var total int
	xp, total = closed.IntersectCountBelow(partial, last, e.NumPos)
	xn = total - xp

	// Step 10: forward closure — candidates inside R(I(X)) join X; the
	// rest survive iff some alive item still contains them, checked as
	// rowItems[r] ∩ alive ≠ ∅ against the node's alive-items mask.
	alive := lv.aliveSet()
	alive.Clear()
	for _, it := range t.items {
		alive.Add(it)
	}
	survivors := lv.survivors[:0]
	mp := 0
	for _, r := range t.cand {
		if closed.Contains(r) {
			continue
		}
		if !e.rowItems[r].Intersects(alive) {
			continue
		}
		survivors = append(survivors, r)
		if r < e.NumPos {
			mp++
		}
	}

	// Step 11: tight bounds using surviving candidate counts, with the
	// thresholds recomputed over the now-exact reachable row set
	// (X_p of the closed set plus the surviving positive candidates —
	// Lemma 3.2's maximal coverage). Candidates are ascending, so the
	// positive survivors are exactly the prefix survivors[:mp]. The
	// post-scan threshold is at least as strong as the pre-scan one
	// because the reachable set shrank.
	posIdx = closed.AppendIndicesBelow(lv.posIdx[:0], e.NumPos)
	th = e.Visitor.UpdateThresholds(posIdx, survivors[:mp])
	if e.Visitor.PruneAfterScan(th, xp, xn, mp, len(survivors)-mp) {
		e.stats.PrunedAfterScan++
		return nil
	}

	// Steps 12-13: report the group at this node. items, closed and
	// posIdx alias the arena; the visitor copies what it keeps.
	if xp > 0 {
		e.stats.Groups++
		if e.prog != nil {
			e.prog.onGroup()
		}
		e.Visitor.OnGroup(t.items, closed, xp, xn, posIdx)
	}

	// Step 14: descend into each surviving candidate in ORD order. Each
	// child is first checked against the loose bounds using the
	// thresholds already computed for this node (a superset of the
	// child's reachable rows, so conservative): children that cannot
	// contribute are skipped without paying a recursive call and a fresh
	// threshold scan. The child's X is written into the next level's
	// arena slot, where it stays stable for the whole child subtree.
	childLv := e.scratch.level(t.depth + 1)
	childX := childLv.xSet()
	childMask := lv.childMaskSet()
	posLeft := mp
	firstChild := true
	for i, r := range survivors {
		childXp, childXn := xp, xn
		if r < e.NumPos {
			posLeft--
			childXp++
		} else {
			childXn++
		}
		negLeft := len(survivors) - i - 1 - posLeft
		if e.Visitor.PruneBeforeScan(th, childXp, childXn, posLeft, negLeft) {
			e.stats.PrunedBeforeScan++
			continue
		}
		childMask.IntersectInto(e.rowItems[r], alive)
		childItems := childMask.AppendIndicesBelow(lv.childItems[:0], e.scratch.numItems)
		if len(childItems) == 0 {
			continue
		}
		childX.CopyFrom(closed)
		childX.Add(r)
		if err := e.sp.spawn(task{
			x: childX, items: childItems, cand: survivors[i+1:], minNext: r + 1, depth: t.depth + 1,
			first: firstChild,
		}); err != nil {
			return err
		}
		firstChild = false
	}
	return nil
}
