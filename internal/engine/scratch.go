package engine

import "repro/internal/bitset"

// scratch is the per-worker arena behind the enumeration kernel:
// depth-indexed stacks of preallocated bitsets and int buffers, grown
// lazily as the search deepens. Every node at depth d works exclusively
// in level d (and writes each child's row set into level d+1 before
// recursing), so the steady-state path of visitNode performs zero heap
// allocations — buffers are sized to their worst case once and reused
// for every node that ever reaches the depth.
//
// Ownership: a scratch belongs to exactly one goroutine. The parallel
// mode clones one scratch per worker before any worker starts, which is
// what keeps the prebuilt-task worker pattern free of shared mutable
// bitsets (see DESIGN.md §5b).
type scratch struct {
	numRows  int
	numItems int
	numPos   int

	// rootCand is the root task's candidate list: every row id,
	// ascending. Built once; the kernel only ever reslices it.
	rootCand []int

	levels []*level
}

// level holds one depth's buffers. All capacities are worst-case exact
// (survivors ≤ numRows, childItems ≤ numItems, posIdx ≤ numPos), so
// appends through them never grow.
type level struct {
	x         *bitset.Set // the task's pending row set X (written by the parent)
	closed    *bitset.Set // R(I(X)) of the node at this depth
	alive     *bitset.Set // item-universe mask of the node's alive items
	childMask *bitset.Set // item-universe scratch for per-child item sets

	survivors  []int
	childItems []int
	posIdx     []int
}

// newScratch returns an empty arena for the given dataset geometry.
// Levels are grown on first use, so memory is proportional to the
// deepest node actually reached, not to the theoretical maximum depth.
func newScratch(numRows, numPos, numItems int) *scratch {
	sc := &scratch{numRows: numRows, numItems: numItems, numPos: numPos}
	sc.rootCand = make([]int, numRows)
	for i := range sc.rootCand {
		sc.rootCand[i] = i
	}
	return sc
}

// level returns the buffers for depth d, allocating any missing levels.
// The returned pointer stays valid across later growth.
func (sc *scratch) level(d int) *level {
	for len(sc.levels) <= d {
		sc.levels = append(sc.levels, &level{
			x:          bitset.New(sc.numRows),
			closed:     bitset.New(sc.numRows),
			alive:      bitset.New(sc.numItems),
			childMask:  bitset.New(sc.numItems),
			survivors:  make([]int, 0, sc.numRows),
			childItems: make([]int, 0, sc.numItems),
			posIdx:     make([]int, 0, sc.numPos),
		})
	}
	return sc.levels[d]
}

// clone returns a fresh arena with the same geometry, pre-grown to the
// same depth. Contents are not copied: every level buffer is fully
// (re)written by the kernel before it is read, which is also why
// reusing one worker's scratch across the tasks it claims cannot leak
// state between subtrees.
func (sc *scratch) clone() *scratch {
	c := newScratch(sc.numRows, sc.numPos, sc.numItems)
	c.level(len(sc.levels) - 1)
	return c
}

// The accessors below are how the kernel borrows arena bitsets for
// in-place work. Routing the borrow through a call (instead of reading
// the fields of a foreign struct) marks the hand-off explicitly: the
// caller owns the returned set until it next asks the same level for
// it, which is the ownership model vetsuite's bitsetalias analyzer
// checks for.

// xSet returns the level's row-set slot for a task's X.
//
//vet:allocfree
func (l *level) xSet() *bitset.Set { return l.x }

// closedSet returns the level's row-set slot for R(I(X)).
//
//vet:allocfree
func (l *level) closedSet() *bitset.Set { return l.closed }

// aliveSet returns the level's item-universe mask slot.
//
//vet:allocfree
func (l *level) aliveSet() *bitset.Set { return l.alive }

// childMaskSet returns the level's per-child item-set slot.
//
//vet:allocfree
func (l *level) childMaskSet() *bitset.Set { return l.childMask }
