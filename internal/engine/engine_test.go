package engine

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// collector is a no-prune visitor that records every group.
type collector struct {
	groups []collected
}

type collected struct {
	items []int
	rows  []int
	xp    int
	xn    int
}

func (c *collector) UpdateThresholds(xPos, candPos []int) Threshold       { return Threshold{} }
func (c *collector) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool { return false }
func (c *collector) PruneAfterScan(_ Threshold, xp, xn, mp, rn int) bool  { return false }
func (c *collector) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	c.groups = append(c.groups, collected{
		items: append([]int(nil), items...),
		rows:  rows.Indices(),
		xp:    xp,
		xn:    xn,
	})
}

// parCollector adds Fork/Flush/Merge so the collector can drive the
// parallel mode: forks record privately, the scheduler seals their
// batches at task hand-off boundaries and streams them back in
// sequential enumeration order, which must reproduce the sequential
// event order exactly.
type parCollector struct {
	collector
}

func (c *parCollector) Fork() Visitor { return &parCollector{} }
func (c *parCollector) Flush() any {
	if len(c.groups) == 0 {
		return nil
	}
	gs := c.groups
	c.groups = nil
	return gs
}
func (c *parCollector) Merge(batch any) {
	c.groups = append(c.groups, batch.([]collected)...)
}

// enumeratorFor builds an enumerator over the running example with
// identity row order (already class dominant: rows 0-2 are class C).
func enumeratorFor(t *testing.T, v Visitor, disableBackward bool) (*Enumerator, []int) {
	t.Helper()
	d, _ := dataset.RunningExample()
	itemRows := make([]*bitset.Set, d.NumItems())
	items := make([]int, d.NumItems())
	for i := 0; i < d.NumItems(); i++ {
		itemRows[i] = d.ItemRows(i)
		items[i] = i
	}
	return &Enumerator{
		NumRows:         d.NumRows(),
		NumPos:          3,
		ItemRows:        itemRows,
		Visitor:         v,
		DisableBackward: disableBackward,
	}, items
}

func mustRun(t *testing.T, e *Enumerator, items []int) Stats {
	t.Helper()
	stats, err := e.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestEnumerationFindsAllClosedSets(t *testing.T) {
	c := &collector{}
	eng, items := enumeratorFor(t, c, false)
	stats := mustRun(t, eng, items)
	if stats.Nodes == 0 {
		t.Fatal("no nodes visited")
	}
	// Collect distinct closed row sets; compare against brute force over
	// the dataset.
	d, _ := dataset.RunningExample()
	want := map[string]bool{}
	for mask := 1; mask < 1<<5; mask++ {
		rows := bitset.New(5)
		for r := 0; r < 5; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		its := d.CommonItems(rows)
		if len(its) == 0 {
			continue
		}
		sup := d.SupportSet(its)
		if sup.CountBelow(3) == 0 { // xp > 0 filter matches engine
			continue
		}
		want[sup.Key()] = true
	}
	got := map[string]bool{}
	for _, g := range c.groups {
		s := bitset.New(5)
		for _, r := range g.rows {
			s.Add(r)
		}
		if got[s.Key()] {
			t.Fatalf("closed set %v reported twice with backward pruning on", g.rows)
		}
		got[s.Key()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("found %d closed sets, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatal("missing closed set")
		}
	}
}

func TestDisableBackwardStillComplete(t *testing.T) {
	on := &collector{}
	engOn, items := enumeratorFor(t, on, false)
	statsOn := mustRun(t, engOn, items)

	off := &collector{}
	engOff, items2 := enumeratorFor(t, off, true)
	statsOff := mustRun(t, engOff, items2)

	if statsOff.Nodes < statsOn.Nodes {
		t.Fatalf("disabling backward pruning should not reduce nodes: %d < %d", statsOff.Nodes, statsOn.Nodes)
	}
	// The distinct closed sets must be identical.
	distinct := func(gs []collected) map[string]bool {
		m := map[string]bool{}
		for _, g := range gs {
			s := bitset.New(5)
			for _, r := range g.rows {
				s.Add(r)
			}
			m[s.Key()] = true
		}
		return m
	}
	a, b := distinct(on.groups), distinct(off.groups)
	if len(a) != len(b) {
		t.Fatalf("distinct closed sets differ: %d vs %d", len(a), len(b))
	}
}

func TestGroupRowConsistency(t *testing.T) {
	// For every reported group: xp+xn == |rows|, items nonempty and
	// sorted, rows = support set of items.
	c := &collector{}
	eng, items := enumeratorFor(t, c, false)
	mustRun(t, eng, items)
	d, _ := dataset.RunningExample()
	for _, g := range c.groups {
		if g.xp+g.xn != len(g.rows) {
			t.Fatalf("xp+xn=%d but |rows|=%d", g.xp+g.xn, len(g.rows))
		}
		if len(g.items) == 0 || !sort.IntsAreSorted(g.items) {
			t.Fatalf("bad items %v", g.items)
		}
		sup := d.SupportSet(g.items).Indices()
		got := append([]int(nil), g.rows...)
		sort.Ints(got)
		if len(sup) != len(got) {
			t.Fatalf("rows %v != support %v of items %v", got, sup, g.items)
		}
		for i := range sup {
			if sup[i] != got[i] {
				t.Fatalf("rows %v != support %v", got, sup)
			}
		}
	}
}

func TestEmptyRun(t *testing.T) {
	c := &collector{}
	eng, _ := enumeratorFor(t, c, false)
	stats := mustRun(t, eng, nil)
	if stats.Nodes != 0 || len(c.groups) != 0 {
		t.Fatal("empty item list must do nothing")
	}
}

// pruneAll prunes everything at the loose stage.
type pruneAll struct{ collector }

func (p *pruneAll) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool { return true }

func TestPruneBeforeScanStopsDescent(t *testing.T) {
	p := &pruneAll{}
	eng, items := enumeratorFor(t, p, false)
	stats := mustRun(t, eng, items)
	if stats.Nodes != 1 || stats.PrunedBeforeScan != 1 {
		t.Fatalf("stats = %+v, want exactly the root pruned", stats)
	}
	if len(p.groups) != 0 {
		t.Fatal("no groups should be reported")
	}
}

func TestMaxNodesAborts(t *testing.T) {
	c := &collector{}
	eng, items := enumeratorFor(t, c, false)
	eng.MaxNodes = 2
	stats := mustRun(t, eng, items)
	if !stats.Aborted {
		t.Fatal("tiny budget should abort")
	}
	if stats.Nodes > 3 {
		t.Fatalf("nodes = %d, want <= 3", stats.Nodes)
	}
	if ErrNodeBudget.Error() == "" {
		t.Fatal("ErrNodeBudget must describe itself")
	}
}

func TestMaxNodesAbortsParallel(t *testing.T) {
	c := &parCollector{}
	eng, items := enumeratorFor(t, c, false)
	eng.MaxNodes = 2
	eng.Workers = 4
	stats := mustRun(t, eng, items)
	if !stats.Aborted {
		t.Fatal("tiny budget should abort in parallel mode too")
	}
}

func TestEmptyUniverse(t *testing.T) {
	c := &collector{}
	eng := &Enumerator{NumRows: 0, NumPos: 0, Visitor: c}
	if stats := mustRun(t, eng, []int{0}); stats.Nodes != 0 {
		t.Fatal("zero-row engine must do nothing")
	}
}

func TestCancelledContextStopsRun(t *testing.T) {
	c := &collector{}
	eng, items := enumeratorFor(t, c, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := eng.Run(ctx, items)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Aborted {
		t.Fatal("cancellation must not masquerade as a budget abort")
	}
}

func TestCancelledContextStopsParallelRun(t *testing.T) {
	c := &parCollector{}
	eng, items := enumeratorFor(t, c, false)
	eng.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, items); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBudgetChargePrefersContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := NewBudget(ctx, 1)
	if err := b.Charge(5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled over ErrNodeBudget", err)
	}
	b = NewBudget(nil, 2)
	if err := b.Charge(2); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := b.Charge(1); !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if b.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", b.Nodes())
	}
}

func TestParallelMatchesSequentialCollector(t *testing.T) {
	seq := &parCollector{}
	engSeq, items := enumeratorFor(t, seq, false)
	mustRun(t, engSeq, items)

	for _, workers := range []int{2, 3, 8} {
		par := &parCollector{}
		engPar, items2 := enumeratorFor(t, par, false)
		engPar.Workers = workers
		stats := mustRun(t, engPar, items2)
		if len(par.groups) != len(seq.groups) {
			t.Fatalf("workers=%d: %d groups, want %d", workers, len(par.groups), len(seq.groups))
		}
		for i := range seq.groups {
			a, b := seq.groups[i], par.groups[i]
			if len(a.items) != len(b.items) || a.xp != b.xp || a.xn != b.xn || len(a.rows) != len(b.rows) {
				t.Fatalf("workers=%d: group %d differs: %+v vs %+v", workers, i, a, b)
			}
			for j := range a.items {
				if a.items[j] != b.items[j] {
					t.Fatalf("workers=%d: group %d items differ", workers, i)
				}
			}
			for j := range a.rows {
				if a.rows[j] != b.rows[j] {
					t.Fatalf("workers=%d: group %d rows differ", workers, i)
				}
			}
		}
		if stats.Nodes != engSeq.stats.Nodes {
			t.Fatalf("workers=%d: nodes %d, want %d (no-prune search must be identical)", workers, stats.Nodes, engSeq.stats.Nodes)
		}
	}
}

func TestFloorsSyncMonotoneExchange(t *testing.T) {
	f := NewFloors(3)
	cA := []float64{0.5, 0.9, 0}
	sA := []int{2, 3, 0}
	f.Sync(cA, sA)

	cB := []float64{0.7, 0.9, 0.1}
	sB := []int{1, 4, 1}
	f.Sync(cB, sB)
	// B should have been max-merged with A's published floors.
	if rules.CompareConf(cB[0], 0.7) != 0 || sB[0] != 1 {
		t.Fatalf("row 0: got (%v,%d)", cB[0], sB[0])
	}
	if rules.CompareConf(cB[1], 0.9) != 0 || sB[1] != 4 {
		t.Fatalf("row 1: tie on conf must take larger sup, got (%v,%d)", cB[1], sB[1])
	}

	// A resyncs and picks up B's improvements.
	f.Sync(cA, sA)
	if rules.CompareConf(cA[0], 0.7) != 0 || sA[0] != 1 ||
		rules.CompareConf(cA[1], 0.9) != 0 || sA[1] != 4 ||
		rules.CompareConf(cA[2], 0.1) != 0 || sA[2] != 1 {
		t.Fatalf("resync: got conf=%v sup=%v", cA, sA)
	}
}

type fakeMiner struct{ name string }

func (m fakeMiner) Name() string { return m.name }
func (m fakeMiner) Mine(ctx context.Context, d *dataset.Dataset, opts Options) (*Result, Stats, error) {
	return &Result{}, Stats{}, nil
}

func TestRegistry(t *testing.T) {
	Register(fakeMiner{name: "zz-test-a"})
	Register(fakeMiner{name: "zz-test-b"})
	defer func() {
		registryMu.Lock()
		delete(registry, "zz-test-a")
		delete(registry, "zz-test-b")
		registryMu.Unlock()
	}()
	if _, ok := Lookup("zz-test-a"); !ok {
		t.Fatal("registered miner not found")
	}
	if _, ok := Lookup("zz-test-missing"); ok {
		t.Fatal("unregistered miner found")
	}
	names := Miners()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Miners() not sorted: %v", names)
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := (Options{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Fatalf("explicit workers: got %d", got)
	}
	if got := (Options{}).EffectiveWorkers(); got < 1 {
		t.Fatalf("default workers: got %d", got)
	}
}
