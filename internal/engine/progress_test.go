package engine

import (
	"context"
	"sync"
	"testing"
)

// TestProgressSnapshots checks the sampling contract on the sequential
// kernel: snapshots arrive, node counts are non-decreasing, and the
// final snapshot reports the run's exact totals.
func TestProgressSnapshots(t *testing.T) {
	var snaps []ProgressSnapshot
	v := &minsupVisitor{minsup: 2}
	eng, items := synthEnumerator(v, 40, 20, 24, 0)
	eng.Progress = func(s ProgressSnapshot) { snaps = append(snaps, s) }
	eng.ProgressEvery = 64

	stats, err := eng.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots over %d nodes with stride 64, want several", len(snaps), stats.Nodes)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Nodes < snaps[i-1].Nodes {
			t.Fatalf("snapshot %d: nodes went backwards (%d -> %d)", i, snaps[i-1].Nodes, snaps[i].Nodes)
		}
		if snaps[i].Groups < snaps[i-1].Groups {
			t.Fatalf("snapshot %d: groups went backwards", i)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Nodes != int64(stats.Nodes) {
		t.Errorf("final snapshot nodes = %d, stats = %d", final.Nodes, stats.Nodes)
	}
	if final.Groups != int64(stats.Groups) {
		t.Errorf("final snapshot groups = %d, stats = %d", final.Groups, stats.Groups)
	}
	if final.MaxDepth != stats.MaxDepth {
		t.Errorf("final snapshot depth = %d, stats = %d", final.MaxDepth, stats.MaxDepth)
	}
	if final.BudgetRemaining != -1 {
		t.Errorf("unbounded run: BudgetRemaining = %d, want -1", final.BudgetRemaining)
	}
}

// TestProgressBudgetRemaining checks the countdown against MaxNodes.
func TestProgressBudgetRemaining(t *testing.T) {
	var snaps []ProgressSnapshot
	v := &minsupVisitor{minsup: 2}
	eng, items := synthEnumerator(v, 40, 20, 24, 0)
	eng.MaxNodes = 500
	eng.Progress = func(s ProgressSnapshot) { snaps = append(snaps, s) }
	eng.ProgressEvery = 64

	stats, err := eng.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Aborted {
		t.Fatalf("budget of 500 did not abort a %d-node tree", stats.Nodes)
	}
	for i, s := range snaps {
		if s.BudgetRemaining < 0 {
			t.Fatalf("snapshot %d: BudgetRemaining = %d on a bounded run", i, s.BudgetRemaining)
		}
		if want := int64(500) - s.Nodes; s.BudgetRemaining != want && s.BudgetRemaining != 0 {
			t.Fatalf("snapshot %d: remaining %d for %d nodes of 500", i, s.BudgetRemaining, s.Nodes)
		}
	}
}

// TestProgressParallel drives the shared sampler from four workers; run
// under -race this is the synchronization check, and in any mode the
// snapshots must stay monotone because ticks and emissions are
// serialized through the sampler.
func TestProgressParallel(t *testing.T) {
	var mu sync.Mutex
	var snaps []ProgressSnapshot
	v := &parMinsupVisitor{minsupVisitor{minsup: 2}}
	eng, items := synthEnumerator(v, 40, 20, 24, 4)
	eng.Progress = func(s ProgressSnapshot) {
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	}
	eng.ProgressEvery = 32

	stats, err := eng.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots from parallel run")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Nodes < snaps[i-1].Nodes {
			t.Fatalf("snapshot %d: nodes went backwards (%d -> %d)", i, snaps[i-1].Nodes, snaps[i].Nodes)
		}
	}
	if final := snaps[len(snaps)-1]; final.Nodes != int64(stats.Nodes) {
		t.Errorf("final snapshot nodes = %d, stats = %d", final.Nodes, stats.Nodes)
	}
}

// TestProgressSteadyStateAllocs extends the zero-allocation pin to runs
// WITH a progress hook: sampling must stay arena-free, and a hook that
// only stores the snapshot adds nothing either.
func TestProgressSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only holds in normal builds")
	}
	var last ProgressSnapshot
	v := &minsupVisitor{minsup: 2}
	eng, items := synthEnumerator(v, 40, 20, 24, 0)
	eng.Progress = func(s ProgressSnapshot) { last = s }
	eng.ProgressEvery = 64
	ctx := context.Background()
	if _, err := eng.Run(ctx, items); err != nil { // warm-up: arena + sampler
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(ctx, items); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Run with progress hook: %.1f allocs, want exactly 0", allocs)
	}
	if last.Nodes == 0 {
		t.Error("hook never ran")
	}
}
