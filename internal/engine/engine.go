// Package engine is the unified mining-engine layer: the depth-first
// row enumeration skeleton shared by MineTopkRGS (internal/core), the
// FARMER baseline (internal/farmer) and CARPENTER (internal/carpenter);
// the budget/deadline/cancellation machinery shared by every miner; and
// the Miner interface all six miners (core, farmer, carpenter, charm,
// closet, hybrid) register behind, so harness and CLI layers dispatch
// by name instead of hard-wiring per-package entry points.
//
// The enumeration works on a row-reordered view of the dataset: rows
// 0..NumPos-1 carry the specified consequent class ("positive"), the
// rest are negative — the class dominant order of Definition 3.1.
// Item supports are bitsets over these reordered row ids, so closure is
// a word-wise intersection and projection is a membership filter.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// ErrBadWorkers reports an Options.Workers value that no worker pool
// can honor (negative). Match with errors.Is; the facade maps its own
// AllCores marker before options ever reach the engine.
var ErrBadWorkers = errors.New("engine: negative worker count")

// Stats counts the work performed by one mining run.
type Stats struct {
	Nodes            int // enumeration nodes entered (all workers)
	BackwardPruned   int // nodes cut by the closedness check (Step 7)
	PrunedBeforeScan int // nodes cut by loose bounds (Step 9)
	PrunedAfterScan  int // nodes cut by tight bounds (Step 11)
	Groups           int // OnGroup invocations
	MaxDepth         int
	Workers          int  // workers that ran (1 = sequential)
	Aborted          bool // true when MaxNodes stopped the search early
}

// merge folds a worker's statistics into the run total.
func (s *Stats) merge(o Stats) {
	s.Nodes += o.Nodes
	s.BackwardPruned += o.BackwardPruned
	s.PrunedBeforeScan += o.PrunedBeforeScan
	s.PrunedAfterScan += o.PrunedAfterScan
	s.Groups += o.Groups
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// Threshold is the dynamic pruning threshold computed at a node (Step
// 8): the weakest (confidence, support) pair a subtree must beat. The
// engine holds it per node, so recursion into children — which compute
// their own, tighter thresholds — cannot leak into sibling checks.
type Threshold struct {
	Conf float64
	Sup  int
}

// ClosedItemset is one closed-itemset miner result: a closed itemset
// and its support over all rows. The closed-set miners (carpenter,
// charm, closet) alias this type so their outputs are interchangeable.
type ClosedItemset struct {
	Items   []int
	Support int
}

// Options is the miner-independent configuration of the Miner
// interface. Each miner reads the fields that apply to it and ignores
// the rest (a closed-set miner ignores K and Class).
type Options struct {
	// Class is the consequent class for rule-group miners.
	Class dataset.Label
	// K is the number of covering rule groups kept per row (top-k
	// miners).
	K int
	// Minsup is the absolute minimum support: consequent-class rows for
	// rule-group miners, all rows for closed-set miners.
	Minsup int
	// Minconf is the static minimum confidence; 0 disables. Farmer
	// filters rules below it; the top-k miner treats it as a floor its
	// caller (e.g. a cluster coordinator) guarantees the final lists
	// stay at or above, and prunes groups strictly below it.
	Minconf float64
	// MinChi is the static minimum chi-square (farmer); 0 disables.
	MinChi float64
	// MaxNodes, when positive, aborts the search after that many work
	// units; Stats.Aborted reports the cutoff and partial results are
	// returned.
	MaxNodes int
	// Workers sets the worker count for miners with a parallel mode;
	// 0 means GOMAXPROCS, 1 forces sequential execution, negative
	// values are rejected by Validate with ErrBadWorkers. Parallel
	// output is deterministically identical to sequential output.
	Workers int
	// Variant selects a miner-specific engine implementation (farmer:
	// "bitset", "prefix", "naive"; empty = the miner's default).
	Variant string
	// Progress, when non-nil, receives periodic ProgressSnapshots from
	// the enumeration (see ProgressFunc). Honored by the miners built on
	// the shared row-enumeration kernel (topk, carpenter, and farmer's
	// bitset engine); other miners ignore it.
	Progress ProgressFunc
	// ProgressEvery is the node stride between snapshots
	// (0 = DefaultProgressEvery).
	ProgressEvery int
	// MaxPartitionRows caps hybrid-miner partitions (0 = no cap).
	MaxPartitionRows int

	// Ablation switches, honored by the topk miner.
	DisableSeedInit        bool
	DisableTopKPruning     bool
	DisableBackwardPruning bool
	DisableRowSort         bool
	DisableDynamicMinsup   bool
}

// Validate rejects option values no miner can honor. Every registered
// miner calls it at the top of Mine, so a bad value fails fast with a
// matchable sentinel instead of silently falling back to a default.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers=%d (use 0 for GOMAXPROCS)", ErrBadWorkers, o.Workers)
	}
	return nil
}

// EffectiveWorkers resolves the Workers default (0 = GOMAXPROCS).
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return maxProcs()
}

// Result is the miner-independent output shape. Rule-group miners fill
// Groups (and PerRow for top-k miners); closed-set miners fill Closed.
type Result struct {
	// PerRow maps each consequent-class row (original row id) to its
	// top-k covering rule groups, most significant first.
	PerRow map[int][]*rules.Group
	// Groups is the deduplicated union of discovered rule groups, sorted
	// by significance.
	Groups []*rules.Group
	// Closed holds closed-itemset miner output.
	Closed []ClosedItemset
	// NumFrequentItems is the item count after the frequency filter.
	NumFrequentItems int
	// Partitions counts hybrid-miner column partitions.
	Partitions int
}

// Miner is the single interface every miner in this repository
// implements. Mine must honor ctx cancellation and deadline (returning
// ctx.Err() promptly, with a nil Result) and Options.MaxNodes (setting
// Stats.Aborted and returning the partial Result with a nil error).
type Miner interface {
	// Name is the registry key ("topk", "farmer", "carpenter", "charm",
	// "closet", "hybrid").
	Name() string
	Mine(ctx context.Context, d *dataset.Dataset, opts Options) (*Result, Stats, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Miner{}
)

// Register adds a miner to the registry under m.Name(). Miners register
// themselves from package init; a later registration under the same
// name wins.
func Register(m Miner) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[m.Name()] = m
}

// Lookup returns the registered miner with the given name.
func Lookup(name string) (Miner, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Miners returns the registered miner names, sorted.
func Miners() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
