package engine

import (
	"context"
	"testing"

	"repro/internal/bitset"
)

// minsupVisitor is the minimal non-retaining visitor: support-only
// pruning, no copies of any hook argument. It is what the allocation
// regression tests and the kernel benchmarks run, so every allocation
// they observe is the engine's own.
type minsupVisitor struct {
	minsup int
	groups int
}

func (v *minsupVisitor) UpdateThresholds(xPos, candPos []int) Threshold { return Threshold{} }
func (v *minsupVisitor) PruneBeforeScan(_ Threshold, xp, xn, rp, rn int) bool {
	return xp+rp < v.minsup
}
func (v *minsupVisitor) PruneAfterScan(_ Threshold, xp, xn, mp, rn int) bool {
	return xp+mp < v.minsup
}
func (v *minsupVisitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	v.groups++
}

// parMinsupVisitor adds Fork/Merge so the same visitor drives the
// parallel mode. The group count is a commutative aggregate, so the
// forks buffer nothing (no Flusher: the scheduler streams only child
// splices) and the counts fold through JoinWorkers after quiescence.
type parMinsupVisitor struct {
	minsupVisitor
}

func (v *parMinsupVisitor) Fork() Visitor {
	return &parMinsupVisitor{minsupVisitor{minsup: v.minsup}}
}
func (v *parMinsupVisitor) Merge(batch any) {}
func (v *parMinsupVisitor) JoinWorkers(forks []Visitor) {
	for _, f := range forks {
		v.groups += f.(*parMinsupVisitor).groups
	}
}

// synthItemRows builds a deterministic dataset-shaped item index: item
// it contains row r iff a fixed multiplicative hash of (r, it) clears a
// density threshold. No RNG state, so every test and benchmark run
// enumerates the identical tree.
func synthItemRows(numRows, numItems, densityPct int) []*bitset.Set {
	itemRows := make([]*bitset.Set, numItems)
	for it := range itemRows {
		s := bitset.New(numRows)
		for r := 0; r < numRows; r++ {
			h := uint32(r*2654435761) ^ uint32(it*40503+0x9e37)
			h ^= h >> 13
			h *= 2654435761
			if int(h%100) < densityPct {
				s.Add(r)
			}
		}
		itemRows[it] = s
	}
	return itemRows
}

func synthEnumerator(v Visitor, numRows, numPos, numItems, workers int) (*Enumerator, []int) {
	items := make([]int, numItems)
	for i := range items {
		items[i] = i
	}
	return &Enumerator{
		NumRows:  numRows,
		NumPos:   numPos,
		ItemRows: synthItemRows(numRows, numItems, 40),
		Visitor:  v,
		Workers:  workers,
	}, items
}

// TestKernelSteadyStateAllocs pins the sequential hot loop at exactly
// zero heap allocations per Run once the arena is warm: the first Run
// builds the scratch levels and the row→item index, every later Run
// reuses them.
func TestKernelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only holds in normal builds")
	}
	v := &minsupVisitor{minsup: 2}
	eng, items := synthEnumerator(v, 40, 20, 24, 0)
	ctx := context.Background()
	if _, err := eng.Run(ctx, items); err != nil { // warm-up: grows the arena
		t.Fatal(err)
	}
	if eng.stats.Nodes < 100 {
		t.Fatalf("synthetic tree too small to be meaningful: %d nodes", eng.stats.Nodes)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(ctx, items); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sequential steady-state Run: %.1f allocs, want exactly 0", allocs)
	}
}

// TestParallelMarginalAllocs checks that parallel-mode allocations are
// per run (tasks, forks, per-worker arenas, goroutines), not per node:
// raising the node budget must not raise the allocation count.
func TestParallelMarginalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only holds in normal builds")
	}
	measure := func(maxNodes int) (allocs float64, nodes int) {
		v := &parMinsupVisitor{minsupVisitor{minsup: 2}}
		eng, items := synthEnumerator(v, 40, 20, 24, 4)
		eng.MaxNodes = maxNodes
		ctx := context.Background()
		if _, err := eng.Run(ctx, items); err != nil { // warm-up
			t.Fatal(err)
		}
		allocs = testing.AllocsPerRun(10, func() {
			if _, err := eng.Run(ctx, items); err != nil {
				t.Fatal(err)
			}
		})
		return allocs, eng.stats.Nodes
	}
	aSmall, nSmall := measure(200)
	aBig, nBig := measure(4000)
	if nBig <= nSmall {
		t.Fatalf("budgets did not separate node counts: %d vs %d", nSmall, nBig)
	}
	// Identical worker/task structure, ~20x the nodes: the marginal cost
	// per extra node must be zero allocations (tolerance covers runtime
	// noise like goroutine stack growth).
	marginal := (aBig - aSmall) / float64(nBig-nSmall)
	if marginal > 0.01 {
		t.Errorf("parallel marginal allocations = %.4f/node over %d extra nodes (%.0f -> %.0f), want ~0",
			marginal, nBig-nSmall, aSmall, aBig)
	}
}

// BenchmarkMineKernel measures raw enumeration throughput of the
// sequential kernel on the synthetic tree, reporting nodes/sec.
func BenchmarkMineKernel(b *testing.B) {
	v := &minsupVisitor{minsup: 2}
	eng, items := synthEnumerator(v, 60, 30, 30, 0)
	ctx := context.Background()
	if _, err := eng.Run(ctx, items); err != nil {
		b.Fatal(err)
	}
	nodesPerRun := eng.stats.Nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nodesPerRun)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkMineKernelParallel is the same tree mined with four workers.
func BenchmarkMineKernelParallel(b *testing.B) {
	v := &parMinsupVisitor{minsupVisitor{minsup: 2}}
	eng, items := synthEnumerator(v, 60, 30, 30, 4)
	ctx := context.Background()
	if _, err := eng.Run(ctx, items); err != nil {
		b.Fatal(err)
	}
	nodesPerRun := eng.stats.Nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, items); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nodesPerRun)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}
