package engine

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/rules"
)

// ParallelVisitor is the contract for the parallel mode: a visitor that
// can split into independent per-subtree forks and later fold them back
// deterministically. Visitors that do not implement it run sequentially
// regardless of Workers.
type ParallelVisitor interface {
	Visitor

	// Fork returns a visitor owning its own scratch state for one
	// first-level subtree. Fork is called on the dispatching goroutine
	// after the root visit has quiesced, before any worker starts; the
	// returned visitor must not share mutable state with the parent
	// visitor or other forks (shared read-only data and explicitly
	// synchronized structures like Floors are fine).
	Fork() Visitor

	// Join folds the forks back into the parent, in first-level task
	// order (the exact order sequential DFS would have visited the
	// subtrees). Every entry is non-nil and quiescent; a deterministic
	// replay of fork events in this order reproduces sequential output.
	Join(forks []Visitor)
}

// taskCollector is the spawner installed for the parallel root visit:
// it deep-copies each first-level child task out of the arena (x, items
// and cand all alias reusable buffers) so the tasks survive dispatch.
type taskCollector struct {
	tasks []task
}

func (c *taskCollector) spawn(t task) error {
	t.x = t.x.Clone()
	t.items = append([]int(nil), t.items...)
	t.cand = append([]int(nil), t.cand...)
	c.tasks = append(c.tasks, t)
	return nil
}

// runParallel enumerates the root node on the caller's goroutine,
// collecting its children as tasks, then builds one fork of the visitor
// per task and one private sub-enumerator per worker — each with its
// own cloned scratch arena, sharing only the read-only ItemRows /
// rowItems indexes and the atomic Budget — all before any worker
// starts. Workers claim task indices in DFS order and run them on their
// own arena (every arena buffer is fully rewritten before it is read,
// so reuse across tasks cannot leak state between subtrees). Forks are
// joined in task order, which is what makes parallel output identical
// to sequential output.
func (e *Enumerator) runParallel(pv ParallelVisitor, root task) error {
	col := &taskCollector{}
	e.sp = col
	if err := e.visitNode(root); err != nil {
		if errors.Is(err, ErrNodeBudget) {
			e.stats.Aborted = true
		}
		return err
	}
	tasks := col.tasks

	workers := e.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		// Zero or one subtree: nothing to distribute.
		e.sp = e
		for _, t := range tasks {
			if err := e.visitNode(t); err != nil {
				return err
			}
		}
		return nil
	}
	e.stats.Workers = workers

	forks := make([]Visitor, len(tasks))
	for i := range tasks {
		forks[i] = pv.Fork()
	}
	subs := make([]*Enumerator, workers)
	for w := range subs {
		sub := &Enumerator{
			NumRows:         e.NumRows,
			NumPos:          e.NumPos,
			ItemRows:        e.ItemRows,
			DisableBackward: e.DisableBackward,
			budget:          e.budget,
			scratch:         e.scratch.clone(),
			rowItems:        e.rowItems,
			prog:            e.prog, // shared: ticks and emissions are synchronized
		}
		sub.sp = sub
		subs[w] = sub
	}
	errs := make([]error, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sub *Enumerator) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				sub.Visitor = forks[i]
				errs[i] = sub.visitNode(tasks[i])
			}
		}(subs[w])
	}
	wg.Wait()

	var budgetErr, ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrNodeBudget):
			if budgetErr == nil {
				budgetErr = err
			}
		case ctxErr == nil:
			ctxErr = err
		}
	}
	for i := range subs {
		e.stats.merge(subs[i].stats)
	}
	if ctxErr != nil {
		// Cancellation: the caller gets ctx.Err() and discards results,
		// so there is nothing worth joining.
		return ctxErr
	}
	// On a budget abort the partial forks still hold valid groups; join
	// them so the caller sees the same partial-result semantics as a
	// sequential abort.
	pv.Join(forks)
	return budgetErr
}

// Floors is the cross-worker dynamic-threshold board for parallel top-k
// mining: one (confidence, support) floor per positive row, monotone
// non-decreasing in the (CompareConf, support) order. Workers carry a
// private snapshot and call Sync periodically, so top-k pruning
// tightens across subtree boundaries without a lock on the hot path.
// Floors only ever carries thresholds that are valid lower bounds for
// sequential execution (published from full top-k lists), which is why
// sharing them cannot change the final result set.
type Floors struct {
	mu   sync.Mutex
	conf []float64
	sup  []int
}

// NewFloors returns a zeroed board over numPos positive rows.
func NewFloors(numPos int) *Floors {
	return &Floors{conf: make([]float64, numPos), sup: make([]int, numPos)}
}

// Sync exchanges thresholds with the board under one lock: each of the
// caller's per-row floors is max-merged into the board, then the board
// is copied back into the caller's slices. Both slices must have the
// board's length.
// MinConf returns the weakest confidence floor currently on the board
// (0 when the board is empty or any row still has no floor). It is the
// parallel run's observable dynamic-minconf value for progress
// reporting.
func (f *Floors) MinConf() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return minConfOf(f.conf)
}

func (f *Floors) Sync(conf []float64, sup []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range conf {
		c := rules.CompareConf(conf[i], f.conf[i])
		if c > 0 || (c == 0 && sup[i] > f.sup[i]) {
			f.conf[i], f.sup[i] = conf[i], sup[i]
		}
	}
	copy(conf, f.conf)
	copy(sup, f.sup)
}
