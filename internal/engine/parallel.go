package engine

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/rules"
)

// ParallelVisitor is the contract for the parallel mode: a visitor that
// can split into independent per-subtree forks and later fold them back
// deterministically. Visitors that do not implement it run sequentially
// regardless of Workers.
type ParallelVisitor interface {
	Visitor

	// Fork returns a visitor owning its own scratch state for one
	// first-level subtree. Fork is called on the dispatching goroutine
	// after the root visit has quiesced, before any worker starts; the
	// returned visitor must not share mutable state with the parent
	// visitor or other forks (shared read-only data and explicitly
	// synchronized structures like Floors are fine).
	Fork() Visitor

	// Join folds the forks back into the parent, in first-level task
	// order (the exact order sequential DFS would have visited the
	// subtrees). Every entry is non-nil and quiescent; a deterministic
	// replay of fork events in this order reproduces sequential output.
	Join(forks []Visitor)
}

// runParallel enumerates the root node on the caller's goroutine,
// collecting its children as tasks, builds one fork of the visitor and
// one private sub-enumerator per task (cloned scratch, shared read-only
// ItemRows, shared Budget) before any worker starts, then lets Workers
// goroutines claim task indices in DFS order. The goroutines see only
// the prebuilt per-task slices — no bitset crosses into a worker except
// inside the task it exclusively owns. Forks are joined in task order,
// which is what makes parallel output identical to sequential output.
func (e *Enumerator) runParallel(pv ParallelVisitor, root task) error {
	var tasks []task
	e.spawn = func(t task) error {
		// visitNode reuses its child item buffer between iterations;
		// retained tasks need their own copy.
		t.items = append([]int(nil), t.items...)
		tasks = append(tasks, t)
		return nil
	}
	if err := e.visitNode(root); err != nil {
		if errors.Is(err, ErrNodeBudget) {
			e.stats.Aborted = true
		}
		return err
	}

	workers := e.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		// Zero or one subtree: nothing to distribute.
		e.spawn = e.enumerate
		for _, t := range tasks {
			if err := e.enumerate(t); err != nil {
				return err
			}
		}
		return nil
	}
	e.stats.Workers = workers

	forks := make([]Visitor, len(tasks))
	subs := make([]*Enumerator, len(tasks))
	errs := make([]error, len(tasks))
	for i := range tasks {
		fork := pv.Fork()
		forks[i] = fork
		sub := &Enumerator{
			NumRows:         e.NumRows,
			NumPos:          e.NumPos,
			ItemRows:        e.ItemRows,
			Visitor:         fork,
			DisableBackward: e.DisableBackward,
			budget:          e.budget,
		}
		sub.spawn = sub.enumerate
		subs[i] = sub
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				errs[i] = subs[i].enumerate(tasks[i])
			}
		}()
	}
	wg.Wait()

	var budgetErr, ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrNodeBudget):
			if budgetErr == nil {
				budgetErr = err
			}
		case ctxErr == nil:
			ctxErr = err
		}
	}
	for i := range subs {
		e.stats.merge(subs[i].stats)
	}
	if ctxErr != nil {
		// Cancellation: the caller gets ctx.Err() and discards results,
		// so there is nothing worth joining.
		return ctxErr
	}
	// On a budget abort the partial forks still hold valid groups; join
	// them so the caller sees the same partial-result semantics as a
	// sequential abort.
	pv.Join(forks)
	return budgetErr
}

// Floors is the cross-worker dynamic-threshold board for parallel top-k
// mining: one (confidence, support) floor per positive row, monotone
// non-decreasing in the (CompareConf, support) order. Workers carry a
// private snapshot and call Sync periodically, so top-k pruning
// tightens across subtree boundaries without a lock on the hot path.
// Floors only ever carries thresholds that are valid lower bounds for
// sequential execution (published from full top-k lists), which is why
// sharing them cannot change the final result set.
type Floors struct {
	mu   sync.Mutex
	conf []float64
	sup  []int
}

// NewFloors returns a zeroed board over numPos positive rows.
func NewFloors(numPos int) *Floors {
	return &Floors{conf: make([]float64, numPos), sup: make([]int, numPos)}
}

// Sync exchanges thresholds with the board under one lock: each of the
// caller's per-row floors is max-merged into the board, then the board
// is copied back into the caller's slices. Both slices must have the
// board's length.
func (f *Floors) Sync(conf []float64, sup []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range conf {
		c := rules.CompareConf(conf[i], f.conf[i])
		if c > 0 || (c == 0 && sup[i] > f.sup[i]) {
			f.conf[i], f.sup[i] = conf[i], sup[i]
		}
	}
	copy(conf, f.conf)
	copy(sup, f.sup)
}
