package engine

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/rules"
)

// ParallelVisitor is the contract for the parallel mode: a visitor that
// can split into independent per-worker forks whose buffered events are
// folded back deterministically while mining is still in flight.
// Visitors that do not implement it run sequentially regardless of
// Workers.
type ParallelVisitor interface {
	Visitor

	// Fork returns a visitor owning its own scratch state for one
	// worker. Fork is called on the dispatching goroutine before any
	// worker starts; the returned visitor must not share mutable state
	// with the parent visitor or other forks (shared read-only data and
	// explicitly synchronized structures like Floors are fine). A fork
	// lives for the whole run and sees the events of every task its
	// worker executes, so threshold knowledge accumulates across
	// subtrees instead of resetting per task.
	Fork() Visitor

	// Merge consumes one event batch previously sealed by a fork's
	// Flush. Merge is called on the dispatching goroutine only, in
	// exact sequential enumeration order: the scheduler splices each
	// batch at the position the events would have occupied in a
	// sequential DFS, so replaying batches through Merge reproduces
	// sequential output while workers keep mining.
	Merge(batch any)
}

// Flusher seals a fork's buffered events into an opaque batch that the
// parent's Merge can consume. The scheduler calls Flush on the fork's
// own worker goroutine at every task hand-off boundary (before an
// offload, and when a task completes), so a batch never straddles a
// splice point. Forks that buffer nothing (pure aggregators) may omit
// Flusher or return nil.
type Flusher interface {
	Flush() any
}

// Diverger is an optional fork extension for visitors that can prune
// harder while their private state still matches a prefix of the
// sequential enumeration. A worker's first task is such a prefix
// region: the fork starts from dispatch-time state (a sequential
// prefix by construction) and inline DFS applies events in sequential
// order, while offloaded subtrees only *remove* events from its view —
// so everything the fork knows precedes the current node sequentially.
// That stops being true the moment the worker picks up a second task
// (own deque or stolen): earlier tasks may lie sequentially after it.
// The scheduler calls Diverge on the fork's own worker goroutine
// before its second task starts, exactly once per run.
type Diverger interface {
	Diverge()
}

// Baseliner is an optional fork extension that hands pruning state
// from a task's spawner to its executor. TaskBaseline is called on the
// spawning worker's goroutine at offload time — the moment the child's
// run is spliced at the spawner's current sequential position — so
// whatever state it captures is anchored at or before every node of
// the offloaded subtree. AdoptBaseline is called on the executing
// worker's goroutine before each task starts (with nil for the root
// task, which has no spawner) and must REPLACE any baseline adopted
// for a previous task: task splice positions do not grow with
// execution order, so state justified at one task's position may lie
// sequentially after the next task's. The returned value crosses
// goroutines through the deque and must not alias the spawner's
// mutable state.
type Baseliner interface {
	TaskBaseline() any
	AdoptBaseline(any)
}

// WorkerJoiner is an optional extension for commutative per-worker
// aggregates (counters, min/max): after all workers quiesce and every
// batch has been merged, JoinWorkers receives the forks in worker
// order. Order-sensitive state must flow through Flush/Merge instead.
type WorkerJoiner interface {
	JoinWorkers(forks []Visitor)
}

// Work-stealing granularity: a subtree is offloaded to the deque only
// while at least one worker is idle and the task still has enough
// candidate rows to plausibly amortize the hand-off copy. Smaller
// tasks run inline on their owner.
const minSplitCand = 4

// maxBacklog caps a worker's own deque during adaptive generation:
// once this many offloaded tasks sit unstolen, the owner goes back to
// inline recursion until thieves drain the surplus. Without the cap an
// oversubscribed machine (more workers than free CPUs) reports idle
// thieves that never get scheduled to steal, and the running worker
// would shred its whole subtree into tasks nobody consumes.
const maxBacklog = 8

// ptask is a deque entry: one enumeration task whose payload buffers
// (x, items, cand — all arena-aliased at spawn time) have been
// deep-copied into memory owned by the ptask, so the task survives
// sitting in a deque and can be stolen by any worker. ptasks are
// pooled per worker; a worker allocates from its own freelist and the
// executing worker recycles, so freelists stay single-goroutine.
type ptask struct {
	t     task
	run   *taskRun
	base  any // spawner's pruning baseline (Baseliner), nil for the root
	x     *bitset.Set
	items []int
	cand  []int
}

// runSeg is one ordered segment of a task's event stream: either a
// sealed batch of visitor events, or a reference to the run of a child
// task offloaded at this position. The segment sequence of a run,
// expanded depth-first, is exactly the sequential enumeration order of
// the subtree — the splice position is the event stream's sequential
// index.
type runSeg struct {
	batch any
	child *taskRun
}

// taskRun is the reorder window entry for one offloaded subtree:
// workers append segments as the subtree is mined, the merge walker
// consumes them in order, and closed marks quiescence. Runs are pooled
// on the scheduler.
type taskRun struct {
	segs   []runSeg
	closed bool
}

// scheduler owns the parallel run: per-worker deques, the idle gate
// for adaptive task generation, parking for thieves that found
// nothing, and the streaming merge state. It is retained on the
// Enumerator across Runs so deques, freelists and per-worker scratch
// arenas are reused.
type scheduler struct {
	eng *Enumerator
	all []*pworker // every worker ever built (arenas retained)
	ws  []*pworker // workers active this run: all[:Workers]
	wg  sync.WaitGroup

	// idle is the number of workers currently hunting for work. Owners
	// consult it on the spawn hot path (one atomic load) and offload
	// only while it is positive, which is what stops task generation
	// once every worker is busy.
	idle atomic.Int32

	// mu guards the parking state: version is bumped at every push so
	// a thief that scanned all deques and found nothing can re-check
	// before sleeping (missed-wakeup safe), unfinished counts created
	// but not yet completed tasks and reaching zero releases everyone.
	mu         sync.Mutex
	cond       *sync.Cond
	version    uint64
	unfinished int

	// mergeMu guards every taskRun plus the run pool; mergeCond wakes
	// the merge walker when a segment is appended or a run closes.
	mergeMu   sync.Mutex
	mergeCond *sync.Cond
	runFree   []*taskRun

	errMu     sync.Mutex
	budgetErr error
	ctxErr    error
}

// pworker is one mining worker: a private sub-enumerator over a cloned
// scratch arena, a long-lived visitor fork, a mutex-guarded deque
// (owner pops newest from the back, thieves take the oldest half from
// the front), and pools for ptasks and steal batches.
type pworker struct {
	id    int
	sched *scheduler
	sub   *Enumerator
	fork  Visitor
	fl    Flusher
	div   Diverger
	bl    Baseliner
	run   *taskRun // run of the task currently executing
	// ntasks counts tasks started this run; the transition to the
	// second one is the fork's Diverge point (see Diverger).
	ntasks int

	mu    sync.Mutex
	deque []*ptask
	// qlen mirrors len(deque) for the lock-free backlog check on the
	// spawn hot path.
	qlen atomic.Int32

	free     []*ptask // ptask pool, owner-goroutine only
	stealBuf []*ptask // scratch for stealHalf, owner-goroutine only
}

// runParallel mines the tree with work-stealing workers and merges
// their event batches into pv in sequential order while mining is in
// flight. The root task is handed to worker 0; everything else is
// adaptive: a worker offloads a child subtree only while some worker
// is idle, otherwise it recurses inline exactly like the sequential
// engine. Determinism does not depend on scheduling — only splice
// positions do, and those are fixed by the enumeration order.
func (e *Enumerator) runParallel(pv ParallelVisitor, root task) error {
	workers := e.Workers
	e.stats.Workers = workers
	if e.sched == nil {
		e.sched = newScheduler()
	}
	s := e.sched
	s.reset(e, workers)
	for _, w := range s.ws {
		w.fork = pv.Fork()
		w.fl, _ = w.fork.(Flusher)
		w.div, _ = w.fork.(Diverger)
		w.bl, _ = w.fork.(Baseliner)
		w.sub.Visitor = w.fork
	}

	w0 := s.ws[0]
	rootRun := s.newRun()
	w0.pushBottom(w0.newTask(root, rootRun))

	s.wg.Add(len(s.ws))
	for _, w := range s.ws {
		go w.loop()
	}
	// The dispatcher goroutine is the merge consumer: it walks the run
	// tree in sequential order, blocking only at the frontier of
	// not-yet-mined segments. By the time the walk returns, every task
	// has completed and closed its run.
	s.consume(rootRun, pv)
	s.wg.Wait()

	for _, w := range s.ws {
		e.stats.merge(w.sub.stats)
	}
	s.errMu.Lock()
	budgetErr, ctxErr := s.budgetErr, s.ctxErr
	s.errMu.Unlock()
	if ctxErr != nil {
		// Cancellation: the caller gets ctx.Err() and discards results.
		return ctxErr
	}
	if wj, ok := pv.(WorkerJoiner); ok {
		forks := make([]Visitor, len(s.ws))
		for i, w := range s.ws {
			forks[i] = w.fork
		}
		wj.JoinWorkers(forks)
	}
	// On a budget abort the merged prefix still holds valid groups; the
	// caller sees the same partial-result semantics as sequential.
	return budgetErr
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	s.mergeCond = sync.NewCond(&s.mergeMu)
	return s
}

// reset prepares the scheduler for one Run: grows the worker set to
// the requested size (reusing arenas from earlier Runs), re-points
// every active worker at this Run's budget and progress sampler, and
// re-arms the termination counter for the root task.
func (s *scheduler) reset(e *Enumerator, workers int) {
	s.eng = e
	s.budgetErr, s.ctxErr = nil, nil
	s.version = 0
	s.unfinished = 1 // the root task
	for len(s.all) < workers {
		w := &pworker{id: len(s.all), sched: s}
		w.sub = &Enumerator{
			NumRows:  e.NumRows,
			NumPos:   e.NumPos,
			ItemRows: e.ItemRows,
			scratch:  e.scratch.clone(),
			rowItems: e.rowItems,
		}
		w.sub.sp = w
		s.all = append(s.all, w)
	}
	s.ws = s.all[:workers]
	for _, w := range s.ws {
		w.sub.DisableBackward = e.DisableBackward
		w.sub.budget = e.budget
		w.sub.prog = e.prog // shared: ticks and emissions are synchronized
		w.sub.stats = Stats{}
		w.run = nil
		w.ntasks = 0
	}
}

// newRun takes a pooled run or builds one. Recycled runs come back
// from the merge walker with segs already cleared.
func (s *scheduler) newRun() *taskRun {
	s.mergeMu.Lock()
	var r *taskRun
	if n := len(s.runFree); n > 0 {
		r, s.runFree = s.runFree[n-1], s.runFree[:n-1]
	}
	s.mergeMu.Unlock()
	if r == nil {
		r = &taskRun{}
	}
	r.closed = false
	return r
}

// newTask deep-copies a spawned task out of the arena into a pooled
// ptask. This is the ownership hand-off the deque model requires: the
// copy happens once, at offload time, and from then on any worker may
// execute the task without touching the spawner's scratch.
func (w *pworker) newTask(t task, run *taskRun) *ptask {
	var pt *ptask
	if n := len(w.free); n > 0 {
		pt, w.free = w.free[n-1], w.free[:n-1]
	} else {
		pt = &ptask{x: bitset.New(w.sched.eng.NumRows)}
	}
	pt.fill(t, run)
	return pt
}

// fill copies a spawned task's arena-aliased payload (x, items, cand)
// into this ptask's own buffers.
func (pt *ptask) fill(t task, run *taskRun) {
	pt.run = run
	pt.x.CopyFrom(t.x)
	pt.items = append(pt.items[:0], t.items...)
	pt.cand = append(pt.cand[:0], t.cand...)
	pt.t = task{x: pt.x, items: pt.items, cand: pt.cand, minNext: t.minNext, depth: t.depth}
}

// recycle returns a finished ptask to the executing worker's pool.
func (w *pworker) recycle(pt *ptask) {
	pt.run = nil
	pt.base = nil
	w.free = append(w.free, pt)
}

// pushBottom appends to the owner's end of the deque.
func (w *pworker) pushBottom(pt *ptask) {
	w.mu.Lock()
	w.deque = append(w.deque, pt)
	w.qlen.Store(int32(len(w.deque)))
	w.mu.Unlock()
}

// popBottom takes the newest task (LIFO for locality); nil when empty.
func (w *pworker) popBottom() *ptask {
	w.mu.Lock()
	n := len(w.deque)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	pt := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	w.qlen.Store(int32(n - 1))
	w.mu.Unlock()
	return pt
}

// stealHalf removes the oldest half of v's deque (rounded up) into
// out. Oldest tasks sit closest to the root and carry the biggest
// subtrees, which is what makes steal-half effective on skewed trees.
func (v *pworker) stealHalf(out []*ptask) []*ptask {
	v.mu.Lock()
	n := len(v.deque)
	if n == 0 {
		v.mu.Unlock()
		return out
	}
	take := (n + 1) / 2
	out = append(out, v.deque[:take]...)
	rest := copy(v.deque, v.deque[take:])
	for i := rest; i < n; i++ {
		v.deque[i] = nil
	}
	v.deque = v.deque[:rest]
	v.qlen.Store(int32(rest))
	v.mu.Unlock()
	return out
}

// addTask registers a newly offloaded task and wakes parked thieves.
func (s *scheduler) addTask() {
	s.mu.Lock()
	s.unfinished++
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// finishTask retires one task; the last one releases every sleeper.
func (s *scheduler) finishTask() {
	s.mu.Lock()
	s.unfinished--
	done := s.unfinished == 0
	if done {
		s.version++
	}
	s.mu.Unlock()
	if done {
		s.cond.Broadcast()
	}
}

// signalWork wakes thieves after tasks became visible in some deque
// without the unfinished count changing (e.g. a thief re-queued the
// surplus of a stolen batch).
func (s *scheduler) signalWork() {
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// loop is the worker body: drain own deque, then steal; park when the
// whole system is out of visible work, exit when all tasks finished.
func (w *pworker) loop() {
	s := w.sched
	defer s.wg.Done()
	for {
		pt := w.popBottom()
		if pt == nil {
			pt = s.stealWork(w)
			if pt == nil {
				return
			}
		}
		w.runTask(pt)
	}
}

// stealWork hunts the other deques for tasks. The worker counts as
// idle for the whole hunt — that is the signal owners consult before
// offloading more subtrees. The version counter closes the
// scan-then-sleep race: a push between the snapshot and the Wait bumps
// the version, so the thief rescans instead of sleeping through it.
func (s *scheduler) stealWork(w *pworker) *ptask {
	s.idle.Add(1)
	defer s.idle.Add(-1)
	for {
		s.mu.Lock()
		v := s.version
		s.mu.Unlock()
		for off := 1; off < len(s.ws); off++ {
			victim := s.ws[(w.id+off)%len(s.ws)]
			batch := victim.stealHalf(w.stealBuf[:0])
			w.stealBuf = batch[:0]
			if len(batch) == 0 {
				continue
			}
			pt := batch[0]
			if len(batch) > 1 {
				w.mu.Lock()
				w.deque = append(w.deque, batch[1:]...)
				w.qlen.Store(int32(len(w.deque)))
				w.mu.Unlock()
				s.signalWork()
			}
			return pt
		}
		s.mu.Lock()
		for s.version == v && s.unfinished > 0 {
			s.cond.Wait()
		}
		done := s.unfinished == 0
		s.mu.Unlock()
		if done {
			return nil
		}
	}
}

// runTask executes one task subtree on this worker's sub-enumerator.
// Errors (budget, cancellation) are recorded and the run is still
// flushed and closed, so the merge walker always terminates: after a
// cancellation, tasks left in deques drain through here cheaply — the
// budget check at node entry fails before any mining work happens.
func (w *pworker) runTask(pt *ptask) {
	w.ntasks++
	if w.ntasks == 2 && w.div != nil {
		w.div.Diverge()
	}
	if w.bl != nil {
		w.bl.AdoptBaseline(pt.base)
	}
	w.run = pt.run
	if err := w.sub.visitNode(pt.t); err != nil {
		w.sched.recordErr(err)
	}
	w.flushEvents()
	w.closeRun(pt.run)
	w.run = nil
	w.recycle(pt)
	w.sched.finishTask()
}

// spawn implements the spawner seam for parallel workers: offload the
// child subtree to the deque while somebody is idle, the subtree is
// worth shipping and the owner's own backlog is not already saturated;
// otherwise recurse inline like the sequential engine.
func (w *pworker) spawn(t task) error {
	if !t.first && len(t.cand) >= minSplitCand && w.qlen.Load() < maxBacklog && w.sched.idle.Load() > 0 {
		w.offload(t)
		return nil
	}
	return w.sub.visitNode(t)
}

// offload seals the fork's buffered events (they precede the child in
// sequential order), splices the child's run at the current position
// of the owner's run, and publishes the task.
func (w *pworker) offload(t task) {
	s := w.sched
	pt := w.newTask(t, s.newRun())
	if w.bl != nil {
		pt.base = w.bl.TaskBaseline()
	}
	b := w.flushBatch()
	s.mergeMu.Lock()
	if b != nil {
		w.run.segs = append(w.run.segs, runSeg{batch: b})
	}
	w.run.segs = append(w.run.segs, runSeg{child: pt.run})
	s.mergeMu.Unlock()
	s.mergeCond.Broadcast()
	w.pushBottom(pt)
	s.addTask()
}

// flushBatch seals the fork's pending events; nil when it buffers
// nothing.
func (w *pworker) flushBatch() any {
	if w.fl == nil {
		return nil
	}
	return w.fl.Flush()
}

// flushEvents appends the fork's pending events to the current run.
func (w *pworker) flushEvents() {
	b := w.flushBatch()
	if b == nil {
		return
	}
	s := w.sched
	s.mergeMu.Lock()
	w.run.segs = append(w.run.segs, runSeg{batch: b})
	s.mergeMu.Unlock()
	s.mergeCond.Broadcast()
}

// closeRun marks a run quiescent: no segment will be appended after
// this, so the merge walker may pass its end.
func (w *pworker) closeRun(r *taskRun) {
	s := w.sched
	s.mergeMu.Lock()
	r.closed = true
	s.mergeMu.Unlock()
	s.mergeCond.Broadcast()
}

// consume walks a run's segments in order on the dispatcher goroutine:
// batches are handed to pv.Merge, child references are walked
// recursively before the walk moves past their splice position. The
// walk blocks only at the frontier — a segment not yet produced — so
// merging proceeds while workers are still mining. Fully consumed runs
// go back to the pool.
func (s *scheduler) consume(r *taskRun, pv ParallelVisitor) {
	for i := 0; ; i++ {
		s.mergeMu.Lock()
		for i >= len(r.segs) && !r.closed {
			s.mergeCond.Wait()
		}
		if i >= len(r.segs) {
			r.segs = r.segs[:0]
			s.runFree = append(s.runFree, r)
			s.mergeMu.Unlock()
			return
		}
		seg := r.segs[i]
		r.segs[i] = runSeg{}
		s.mergeMu.Unlock()
		if seg.child != nil {
			s.consume(seg.child, pv)
		} else {
			pv.Merge(seg.batch)
		}
	}
}

// recordErr keeps the first budget error and the first hard
// (cancellation) error; cancellation wins when both occur.
func (s *scheduler) recordErr(err error) {
	s.errMu.Lock()
	if errors.Is(err, ErrNodeBudget) {
		if s.budgetErr == nil {
			s.budgetErr = err
		}
	} else if s.ctxErr == nil {
		s.ctxErr = err
	}
	s.errMu.Unlock()
}

// Floors is the cross-worker dynamic-threshold board for parallel top-k
// mining: one (confidence, support) floor per positive row, monotone
// non-decreasing in the (CompareConf, support) order. Workers carry a
// private snapshot and call Sync periodically, so top-k pruning
// tightens across subtree boundaries without a lock on the hot path.
// Floors only ever carries thresholds that are valid lower bounds for
// sequential execution (published from full top-k lists), which is why
// sharing them cannot change the final result set.
type Floors struct {
	mu   sync.Mutex
	conf []float64
	sup  []int
	// fconf/fsup are the merge frontier's thresholds: unlike the
	// speculative floors above (worker lists can run ahead of the
	// sequential order), these are exact sequential-prefix state, so
	// workers may prune threshold ties against them — precisely what the
	// sequential run does against its own lists.
	fconf  []float64
	fsup   []int
	minsup int
}

// NewFloors returns a zeroed board over numPos positive rows.
func NewFloors(numPos int) *Floors {
	return &Floors{
		conf: make([]float64, numPos), sup: make([]int, numPos),
		fconf: make([]float64, numPos), fsup: make([]int, numPos),
	}
}

// MinConf returns the weakest confidence floor currently on the board
// (0 when the board is empty or any row still has no floor). It is the
// parallel run's observable dynamic-minconf value for progress
// reporting.
func (f *Floors) MinConf() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return minConfOf(f.conf)
}

// Sync exchanges thresholds with the board under one lock: each of the
// caller's per-row floors is max-merged into the board, then the board
// is copied back into the caller's slices. Both slices must have the
// board's length.
func (f *Floors) Sync(conf []float64, sup []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range conf {
		c := rules.CompareConf(conf[i], f.conf[i])
		if c > 0 || (c == 0 && sup[i] > f.sup[i]) {
			f.conf[i], f.sup[i] = conf[i], sup[i]
		}
	}
	copy(conf, f.conf)
	copy(sup, f.sup)
}

// PublishFrontier records the merge frontier's per-row thresholds.
// Only the streaming merge (which replays events in exact sequential
// order) may call it: the values must be the sequential run's
// thresholds at a position at or before every in-flight node, and they
// must be monotone across calls (top-k thresholds only tighten). The
// board overwrites rather than max-merges — the caller's state is the
// ground truth.
func (f *Floors) PublishFrontier(conf []float64, sup []int) {
	f.mu.Lock()
	copy(f.fconf, conf)
	copy(f.fsup, sup)
	f.mu.Unlock()
}

// Frontier copies the current frontier thresholds into the caller's
// slices (same length as the board).
func (f *Floors) Frontier(conf []float64, sup []int) {
	f.mu.Lock()
	copy(conf, f.fconf)
	copy(sup, f.fsup)
	f.mu.Unlock()
}

// RaiseMinsup publishes an absolute-support floor: no group with
// support below v can enter any final list. The board keeps the
// maximum ever published. The streaming merge publishes the sequential
// dynamic-minsup raise here — the merge frontier is a strict prefix of
// the sequential run and the raise is monotone in enumeration order,
// so every in-flight node (always at a position at or past the
// frontier) would face at least this floor sequentially too.
func (f *Floors) RaiseMinsup(v int) {
	f.mu.Lock()
	if v > f.minsup {
		f.minsup = v
	}
	f.mu.Unlock()
}

// Minsup returns the board's current absolute-support floor (0 until
// the first RaiseMinsup).
func (f *Floors) Minsup() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.minsup
}
