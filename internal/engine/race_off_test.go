//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build.
// Its shadow-memory bookkeeping allocates, so the zero-allocation pins
// skip under -race (the same tests' correctness side still runs there
// via the Parallel/Oracle suites).
const raceEnabled = false
