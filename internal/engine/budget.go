package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrNodeBudget is the sentinel the mining recursions return up the
// stack when Options.MaxNodes is exhausted. It replaces the old
// panic-based long-jump: budget exhaustion is an expected, data-sized
// outcome, so it travels as an error value. Run-level entry points
// translate it into Stats.Aborted and a nil error; only context errors
// (cancellation, deadline) surface to callers.
var ErrNodeBudget = errors.New("engine: node budget exhausted")

// Budget meters enumeration work against a node cap and a context.
// One Budget is shared by every worker of a run: the node counter is
// atomic, so a parallel search stops within one node of the cap, and
// cancelling the context stops all workers at their next node entry.
type Budget struct {
	ctx      context.Context
	maxNodes int64
	nodes    atomic.Int64
}

// NewBudget returns a budget charging against ctx and maxNodes
// (0 = no node cap). A nil ctx means context.Background().
func NewBudget(ctx context.Context, maxNodes int) *Budget {
	b := &Budget{}
	b.Reset(ctx, maxNodes)
	return b
}

// Reset rearms the budget for a new run without allocating: the node
// counter restarts at zero and subsequent Charge calls check the given
// context and cap. Not safe to call while workers are charging.
func (b *Budget) Reset(ctx context.Context, maxNodes int) {
	if ctx == nil {
		ctx = context.Background() //vet:ignore ctxflow defensive default for a nil ctx; callers on the cancellation path always pass one
	}
	b.ctx = ctx
	b.maxNodes = int64(maxNodes)
	b.nodes.Store(0)
}

// Charge debits n work units. It returns the context's error when the
// run is cancelled or past its deadline, ErrNodeBudget when the node
// cap is exhausted, and nil otherwise. Cancellation wins over the cap,
// so a cancelled run reports ctx.Err() rather than a budget abort.
//
//vet:allocfree
func (b *Budget) Charge(n int) error {
	if err := b.ctx.Err(); err != nil {
		return err
	}
	v := b.nodes.Add(int64(n))
	if b.maxNodes > 0 && v > b.maxNodes {
		return ErrNodeBudget
	}
	return nil
}

// Nodes returns the work units charged so far.
//
//vet:allocfree
func (b *Budget) Nodes() int { return int(b.nodes.Load()) }

// Remaining returns the work units left before exhaustion, or -1 when
// the budget has no node cap.
//
//vet:allocfree
func (b *Budget) Remaining() int64 {
	if b.maxNodes <= 0 {
		return -1
	}
	left := b.maxNodes - b.nodes.Load()
	if left < 0 {
		return 0
	}
	return left
}

// maxProcs is the Workers default.
func maxProcs() int { return runtime.GOMAXPROCS(0) }
