package engine

import (
	"math"
	"sync"
	"sync/atomic"
)

// ProgressSnapshot is one periodic observation of a running
// enumeration, delivered to Options.Progress. All fields are sampled
// cheaply from counters the hot loop maintains anyway; in parallel runs
// they are a consistent-enough view for monitoring, not a barrier
// snapshot (Nodes and Groups may be one sampling stride apart).
type ProgressSnapshot struct {
	// Nodes is the number of enumeration nodes entered so far, across
	// all workers of the run.
	Nodes int64
	// Groups is the number of OnGroup events so far.
	Groups int64
	// MaxDepth is the deepest enumeration level reached so far.
	MaxDepth int
	// MinconfFloor is the current dynamic minimum-confidence floor of
	// the search, when the visitor exposes one (see FloorReporter);
	// 0 for miners without a dynamic confidence threshold.
	MinconfFloor float64
	// BudgetRemaining is the number of nodes left before a MaxNodes
	// abort, or -1 when the run is unbounded.
	BudgetRemaining int64
}

// ProgressFunc receives ProgressSnapshots during a run. Calls are
// serialized (never concurrent with each other) but may come from any
// worker goroutine; implementations should store and return — a slow
// hook stalls the worker that happened to emit. Every run that enters
// at least one node delivers at least one final snapshot.
type ProgressFunc func(ProgressSnapshot)

// DefaultProgressEvery is the node sampling stride when
// Options.ProgressEvery is zero: roughly microsecond-scale work between
// samples at the kernel's nodes/s, so the hook costs nothing
// measurable.
const DefaultProgressEvery = 4096

// FloorReporter is implemented by visitors whose pruning uses a
// dynamic global confidence floor worth exposing in progress snapshots
// (the top-k visitor's weakest per-row threshold). ProgressFloor is
// called on the cold sampling path only, from the goroutine that emits
// the snapshot; implementations relying on visitor-goroutine state must
// synchronize accordingly.
type FloorReporter interface {
	ProgressFloor() float64
}

// progressSampler turns per-node ticks into periodic ProgressFunc
// calls. One sampler is shared by every worker of a run: ticks and
// group counts are atomic, and emission is mutex-serialized so the
// hook never observes concurrent calls. The sampler is retained on the
// Enumerator and re-armed per Run, so steady-state runs allocate
// nothing.
type progressSampler struct {
	fn     ProgressFunc
	every  int64
	budget *Budget
	floor  FloorReporter // nil when the visitor reports no floor

	ticks  atomic.Int64
	groups atomic.Int64
	depth  atomic.Int64

	mu sync.Mutex // serializes emissions
}

// arm readies the sampler for a new run.
func (p *progressSampler) arm(fn ProgressFunc, every int64, budget *Budget, floor FloorReporter) {
	p.fn = fn
	p.every = every
	p.budget = budget
	p.floor = floor
	p.ticks.Store(0)
	p.groups.Store(0)
	p.depth.Store(0)
}

// tick charges one node and emits a snapshot every `every` ticks.
// localDepth is the calling worker's deepest level so far; the sampler
// folds it into the global maximum at emission time only, keeping the
// per-node cost to one atomic add and a comparison.
//
//vet:allocfree
func (p *progressSampler) tick(localDepth int) {
	if p.ticks.Add(1)%p.every != 0 {
		return
	}
	p.emit(localDepth)
}

// onGroup counts one OnGroup event (rare relative to nodes).
//
//vet:allocfree
func (p *progressSampler) onGroup() { p.groups.Add(1) }

// emit delivers one snapshot. Cold path: runs once per sampling stride
// and once at the end of the run.
func (p *progressSampler) emit(localDepth int) {
	for {
		d := p.depth.Load()
		if int64(localDepth) <= d || p.depth.CompareAndSwap(d, int64(localDepth)) {
			break
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := ProgressSnapshot{
		Nodes:           int64(p.budget.Nodes()),
		Groups:          p.groups.Load(),
		MaxDepth:        int(p.depth.Load()),
		BudgetRemaining: p.budget.Remaining(),
	}
	if p.floor != nil {
		snap.MinconfFloor = p.floor.ProgressFloor()
	}
	p.fn(snap)
}

// minConfOf scans per-row confidence floors for the weakest entry,
// mapping "no rows" to 0.
func minConfOf(conf []float64) float64 {
	min := math.Inf(1)
	for _, c := range conf {
		if c < min {
			min = c
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
