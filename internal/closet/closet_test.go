package closet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/charm"
	"repro/internal/dataset"
)

func bruteForceClosed(d *dataset.Dataset, minsup int) []ClosedItemset {
	n := d.NumRows()
	seen := map[string]ClosedItemset{}
	for mask := 1; mask < 1<<n; mask++ {
		rows := bitset.New(n)
		for r := 0; r < n; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		items := d.CommonItems(rows)
		if len(items) == 0 {
			continue
		}
		sup := d.SupportSet(items)
		if sup.Count() < minsup {
			continue
		}
		key := sup.Key()
		if _, ok := seen[key]; !ok {
			seen[key] = ClosedItemset{Items: items, Support: sup.Count()}
		}
	}
	var out []ClosedItemset
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return less(out[i].Items, out[j].Items)
	})
	return out
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(7)
	nItems := 2 + r.Intn(9)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	return d
}

func TestFigure1ClosedItemsets(t *testing.T) {
	d, _ := dataset.RunningExample()
	for minsup := 1; minsup <= 4; minsup++ {
		res, err := Mine(d, Config{Minsup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceClosed(d, minsup)
		if !reflect.DeepEqual(res.Closed, want) {
			t.Fatalf("minsup=%d mismatch:\ngot  %v\nwant %v", minsup, res.Closed, want)
		}
	}
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		res, err := Mine(d, Config{Minsup: minsup})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Closed, bruteForceClosed(d, minsup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreesWithCharm(t *testing.T) {
	// The two column-enumeration baselines must produce identical closed
	// collections.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		a, err := Mine(d, Config{Minsup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		b, err := charm.Mine(d, charm.Config{Minsup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Closed) != len(b.Closed) {
			t.Fatalf("trial %d: closet %d vs charm %d closed sets", trial, len(a.Closed), len(b.Closed))
		}
		for i := range a.Closed {
			if a.Closed[i].Support != b.Closed[i].Support ||
				!reflect.DeepEqual(a.Closed[i].Items, b.Closed[i].Items) {
				t.Fatalf("trial %d: closed[%d] differs: %v vs %v", trial, i, a.Closed[i], b.Closed[i])
			}
		}
	}
}

func TestMaxNodesAborts(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, Config{Minsup: 1, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("tiny budget should abort")
	}
}

func TestValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, Config{Minsup: 0}); err == nil {
		t.Fatal("minsup=0 must error")
	}
}
