// Package closet implements a CLOSET+-style closed itemset miner [30]:
// FP-tree based pattern growth with item merging (hybrid tree
// projection) and result-set subsumption checking — the second
// column-enumeration baseline of the paper's Figure 6 experiments.
//
// As with CHARM, the point of carrying this baseline is that pattern
// growth over thousands of discretized gene-expression items does not
// terminate in reasonable time; MaxNodes bounds benchmark runs, and
// correctness is validated against brute force on small data.
package closet

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedItemset mirrors charm.ClosedItemset: a closed itemset and its
// support over all rows.
type ClosedItemset = engine.ClosedItemset

// Config parameterizes a run.
type Config struct {
	Minsup   int
	MaxNodes int // 0 = unbounded
}

// Result is the output of Mine.
type Result struct {
	Closed  []ClosedItemset
	Nodes   int
	Aborted bool
}

// fpNode is one FP-tree node.
type fpNode struct {
	item     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header chain
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root   *fpNode
	heads  map[int]*fpNode
	counts map[int]int // item -> support within this (conditional) tree
	minsup int
}

func newTree(minsup int) *fpTree {
	return &fpTree{
		root:   &fpNode{item: -1, children: map[int]*fpNode{}},
		heads:  map[int]*fpNode{},
		counts: map[int]int{},
		minsup: minsup,
	}
}

// insert adds a transaction (already filtered and sorted in the tree's
// item order) with a count.
func (t *fpTree) insert(items []int, count int) {
	n := t.root
	for _, it := range items {
		c, ok := n.children[it]
		if !ok {
			c = &fpNode{item: it, parent: n, children: map[int]*fpNode{}}
			c.next = t.heads[it]
			t.heads[it] = c
			n.children[it] = c
		}
		c.count += count
		t.counts[it] += count
		n = c
	}
}

type grower struct {
	cfg    Config
	budget *engine.Budget
	nodes  int
	closed map[int][][]int
	out    []ClosedItemset
}

// tick charges n work units against the budget; the returned error
// (budget exhausted or context cancelled) unwinds the recursion.
func (m *grower) tick(n int) error {
	m.nodes += n
	return m.budget.Charge(n)
}

// Mine discovers all closed itemsets of d with support >= cfg.Minsup.
// It is MineContext without cancellation.
func Mine(d *dataset.Dataset, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the search and returns ctx.Err() with a nil Result. A
// Config.MaxNodes abort is not an error — the partial Result is
// returned with Aborted set.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("closet: minsup must be >= 1, got %d", cfg.Minsup)
	}
	// Global item supports; keep frequent ones, order by descending
	// support (FP-tree convention), ties by item id for determinism.
	sup := make([]int, d.NumItems())
	for i := range sup {
		sup[i] = d.ItemRows(i).Count()
	}
	orderOf := buildOrder(sup, cfg.Minsup)

	tree := newTree(cfg.Minsup)
	for _, row := range d.Rows {
		tx := filterSort(row, sup, cfg.Minsup, orderOf)
		if len(tx) > 0 {
			tree.insert(tx, 1)
		}
	}

	m := &grower{cfg: cfg, budget: engine.NewBudget(ctx, cfg.MaxNodes), closed: map[int][][]int{}}
	res := &Result{}
	switch err := m.mineTree(tree, nil, orderOf); {
	case errors.Is(err, engine.ErrNodeBudget):
		res.Aborted = true
	case err != nil:
		return nil, err
	}
	res.Closed = m.out
	res.Nodes = m.nodes
	sort.Slice(res.Closed, func(i, j int) bool {
		a, b := res.Closed[i], res.Closed[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return less(a.Items, b.Items)
	})
	return res, nil
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// buildOrder returns a rank per item (lower rank = earlier in
// transactions = higher support); -1 marks infrequent items.
func buildOrder(sup []int, minsup int) []int {
	type is struct{ item, sup int }
	var freq []is
	for i, s := range sup {
		if s >= minsup {
			freq = append(freq, is{i, s})
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		if freq[a].sup != freq[b].sup {
			return freq[a].sup > freq[b].sup
		}
		return freq[a].item < freq[b].item
	})
	order := make([]int, len(sup))
	for i := range order {
		order[i] = -1
	}
	for rank, f := range freq {
		order[f.item] = rank
	}
	return order
}

// filterSort keeps frequent items of a transaction sorted by tree order.
func filterSort(row []int, sup []int, minsup int, orderOf []int) []int {
	var tx []int
	for _, it := range row {
		if sup[it] >= minsup && orderOf[it] >= 0 {
			tx = append(tx, it)
		}
	}
	sort.Slice(tx, func(a, b int) bool { return orderOf[tx[a]] < orderOf[tx[b]] })
	return tx
}

// mineTree performs pattern growth on a (conditional) FP-tree with the
// given prefix itemset.
func (m *grower) mineTree(t *fpTree, prefix []int, orderOf []int) error {
	if err := m.tick(1); err != nil {
		return err
	}

	// Header items in ascending support order (bottom-up growth).
	var items []int
	for it, c := range t.counts {
		if c >= t.minsup {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return orderOf[items[a]] > orderOf[items[b]] })

	for _, it := range items {
		sup := t.counts[it]
		// Conditional pattern base of `it`.
		type path struct {
			items []int
			count int
		}
		var base []path
		condCount := map[int]int{}
		for n := t.heads[it]; n != nil; n = n.next {
			var p []int
			for a := n.parent; a != nil && a.item != -1; a = a.parent {
				p = append(p, a.item)
			}
			// budget tracks real path-collection work
			if err := m.tick(1 + len(p)); err != nil {
				return err
			}
			base = append(base, path{items: p, count: n.count})
			for _, x := range p {
				condCount[x] += n.count
			}
		}
		// Item merging: items appearing in every transaction of the base
		// join the prefix directly (they share it's support).
		var merged []int
		for x, c := range condCount {
			if c == sup {
				merged = append(merged, x)
			}
		}
		newPrefix := append(append([]int(nil), prefix...), it)
		newPrefix = append(newPrefix, merged...)
		sort.Ints(newPrefix)

		// Conditional tree over the remaining frequent base items.
		cond := newTree(t.minsup)
		mergedSet := map[int]bool{}
		for _, x := range merged {
			mergedSet[x] = true
		}
		for _, p := range base {
			var tx []int
			for _, x := range p.items {
				if !mergedSet[x] && condCount[x] >= t.minsup {
					tx = append(tx, x)
				}
			}
			if len(tx) > 0 {
				sort.Slice(tx, func(a, b int) bool { return orderOf[tx[a]] < orderOf[tx[b]] })
				cond.insert(tx, p.count)
			}
		}
		if len(cond.counts) > 0 {
			if err := m.mineTree(cond, newPrefix, orderOf); err != nil {
				return err
			}
		}
		m.addClosed(newPrefix, sup)
	}
	return nil
}

// addClosed records the itemset unless a known superset has the same
// support (subsumption check, hashed by support).
func (m *grower) addClosed(items []int, sup int) {
	for _, z := range m.closed[sup] {
		if isSubset(items, z) {
			return
		}
	}
	m.closed[sup] = append(m.closed[sup], items)
	m.out = append(m.out, ClosedItemset{Items: append([]int(nil), items...), Support: sup})
}

func isSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
