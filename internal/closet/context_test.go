package closet

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
)

func TestMineContextCancelled(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, d, Config{Minsup: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled mine must not return a result")
	}
}
