package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/jobs"
)

// JobRequest is the body of POST /v1/jobs: a job spec plus the data to
// run it on — either "dataset" naming a registered dataset or "data"
// carrying rows inline (exactly one of the two).
type JobRequest struct {
	jobs.Spec
	Data *InlineDataset `json:"data,omitempty"`
}

// InlineDataset is a discretized dataset carried in a job submission.
type InlineDataset struct {
	// Classes are the class names; row labels index into them.
	Classes []string `json:"classes"`
	// Items optionally names the item universe; NumItems sizes it
	// anonymously. Omitting both sizes the universe from the rows.
	Items    []string    `json:"items,omitempty"`
	NumItems int         `json:"numItems,omitempty"`
	Rows     []InlineRow `json:"rows"`
}

// InlineRow is one training row: its item ids and its class label.
type InlineRow struct {
	Items []int `json:"items"`
	Label int   `json:"label"`
}

// toDataset validates and converts the inline payload. Rows are sorted
// and deduplicated here so clients need not care about item order.
func (in *InlineDataset) toDataset() (*dataset.Dataset, error) {
	if in == nil || len(in.Rows) == 0 {
		return nil, errors.New("inline dataset has no rows")
	}
	numItems := in.NumItems
	if len(in.Items) > 0 {
		numItems = len(in.Items)
	}
	if numItems == 0 {
		for _, r := range in.Rows {
			for _, it := range r.Items {
				if it >= numItems {
					numItems = it + 1
				}
			}
		}
	}
	d := &dataset.Dataset{ClassNames: in.Classes}
	for i := 0; i < numItems; i++ {
		name := fmt.Sprintf("i%d", i)
		if i < len(in.Items) {
			name = in.Items[i]
		}
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: name, Lo: 0, Hi: 1})
	}
	for _, r := range in.Rows {
		row := append([]int(nil), r.Items...)
		sort.Ints(row)
		dedup := row[:0]
		for i, it := range row {
			if i == 0 || it != row[i-1] {
				dedup = append(dedup, it)
			}
		}
		d.Rows = append(d.Rows, dedup)
		d.Labels = append(d.Labels, dataset.Label(r.Label))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var data jobs.Data
	switch {
	case req.Data != nil && req.Spec.Dataset != "":
		writeError(w, http.StatusBadRequest, "set one of dataset or data, not both")
		return
	case req.Data != nil:
		d, err := req.Data.toDataset()
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "inline dataset: "+err.Error())
			return
		}
		data = jobs.Data{Dataset: d}
	case req.Spec.Dataset != "":
		resolved, ok := s.resolveJobDataset(w, req.Spec.Dataset)
		if !ok {
			return
		}
		data = resolved
	default:
		writeError(w, http.StatusBadRequest, "set one of dataset (registered name) or data (inline rows)")
		return
	}
	rec, err := s.jobs.Submit(req.Spec, data)
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]*jobs.Record{"jobs": s.jobs.Jobs()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// resolveJobDataset turns a job submission's dataset reference into
// job data. With a datastore configured the store is consulted first:
// "{name}" resolves the latest snapshot, "{name}@{v}" pins a specific
// version (a pruned version is a 409 — the reference was once valid
// but its snapshot is gone). A name the store does not know falls back
// to the static registered-dataset map, so file-backed -dataset
// serving keeps working unchanged alongside streaming ingestion.
func (s *Server) resolveJobDataset(w http.ResponseWriter, ref string) (jobs.Data, bool) {
	if s.store != nil {
		snap, err := s.store.Resolve(ref)
		switch {
		case err == nil:
			return jobs.Data{
				Dataset:     snap.Dataset,
				Discretizer: snap.Discretizer,
				Name:        snap.Name,
				Version:     snap.Version,
			}, true
		case errors.Is(err, datastore.ErrNotFound):
			// Fall through to the static map.
		default:
			writeDatasetError(w, err)
			return jobs.Data{}, false
		}
	}
	nd, ok := s.datasets[ref]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q (have %v)",
			ref, s.datasetNames()))
		return jobs.Data{}, false
	}
	return jobs.Data{Dataset: nd.Dataset, Discretizer: nd.Discretizer, Name: ref}, true
}

// datasetNames lists every resolvable dataset name: the static map
// plus the datastore's, deduplicated and sorted (for 404 diagnostics).
func (s *Server) datasetNames() []string {
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	if s.store != nil {
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			seen[n] = true
		}
		for _, n := range s.store.Names() {
			if !seen[n] {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// writeJobError maps the jobs sentinels onto the HTTP error taxonomy.
func writeJobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrBadSpec):
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
