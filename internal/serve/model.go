package serve

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/rcbt"
)

// servedModel is a model plus the per-model serving state the read
// path needs: the prediction cache, a pool of rule-major batch scorers
// (one per in-flight batch — a BatchScorer is single-threaded), and a
// pool of discretized-row bitsets so steady-state requests allocate no
// row storage.
//
// Models without a fixed item universe (classifier-only envelopes with
// NumItems == 0) get none of this: their row universe is inferred per
// request, so rows are not poolable, cache keys are not comparable,
// and the batch kernel has no view to build. They fall back to the
// scalar per-row path.
type servedModel struct {
	model *rcbt.Model
	cache *predictCache // nil when disabled or no fixed universe
	batch bool          // rule-major kernel available

	scorers sync.Pool // *rcbt.BatchScorer
	rows    sync.Pool // *bitset.Set over the model universe
}

func newServedModel(m *rcbt.Model, cacheSize int) *servedModel {
	sm := &servedModel{model: m}
	if m.NumItems <= 0 {
		return sm
	}
	if cacheSize > 0 {
		sm.cache = newPredictCache(cacheSize)
	}
	sm.rows.New = func() any { return bitset.New(m.NumItems) }
	// Probe the kernel: NewBatchScorer panics when a rule antecedent
	// indexes outside the declared universe (a corrupt envelope). Such
	// a model still serves — on the scalar path, where the same rows
	// simply never match the out-of-universe rules' antecedents.
	func() {
		defer func() {
			sm.batch = recover() == nil
		}()
		sm.scorers.Put(rcbt.NewBatchScorer(m.Classifier, m.NumItems))
	}()
	if sm.batch {
		sm.scorers.New = func() any { return rcbt.NewBatchScorer(m.Classifier, m.NumItems) }
	}
	return sm
}

// rowSet converts one request row (the values/items one-of) into a
// pooled bitset over the model universe; return it with putRow. Only
// valid for models with a fixed universe.
func (sm *servedModel) rowSet(values []float64, items []int) (*bitset.Set, error) {
	m := sm.model
	switch {
	case len(values) > 0 && len(items) > 0:
		return nil, shapeError("set exactly one of values or items, not both")
	case len(values) > 0:
		if m.Discretizer == nil {
			return nil, fmt.Errorf("rcbt: model has no discretizer; classify by item ids instead")
		}
		if got, want := len(values), len(m.Discretizer.GeneNames); got != want {
			return nil, fmt.Errorf("rcbt: row has %d values, model fitted on %d genes", got, want)
		}
		items = m.Discretizer.RowItems(values)
	case len(items) == 0:
		return nil, shapeError("set one of values or items")
	}
	set := sm.rows.Get().(*bitset.Set)
	set.Clear()
	for _, it := range items {
		if it < 0 || it >= m.NumItems {
			sm.putRow(set)
			return nil, fmt.Errorf("rcbt: item id %d outside model universe [0,%d)", it, m.NumItems)
		}
		set.Add(it)
	}
	return set, nil
}

func (sm *servedModel) putRow(set *bitset.Set) { sm.rows.Put(set) }
