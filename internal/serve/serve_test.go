package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rcbt"
	"repro/internal/synth"
)

// exampleModel trains RCBT on the paper's running example. It has no
// discretizer, so it serves item-id requests only.
func exampleModel(t *testing.T) *rcbt.Model {
	t.Helper()
	d, _ := dataset.RunningExample()
	clf, err := rcbt.Train(d, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return &rcbt.Model{
		Classifier: clf,
		ClassNames: d.ClassNames,
		NumItems:   d.NumItems(),
		Meta:       rcbt.Meta{Dataset: "running-example", TrainRows: d.NumRows()},
	}
}

// synthModel trains on a synthetic matrix and bundles the discretizer,
// so it serves raw expression values.
func synthModel(t *testing.T) (*rcbt.Model, *dataset.Matrix) {
	t.Helper()
	trainM, testM, err := synth.Generate(synth.Scaled(synth.ALL(), 60))
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(trainM)
	if err != nil {
		t.Fatal(err)
	}
	train, err := dz.Transform(trainM)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := rcbt.Train(train, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return &rcbt.Model{
		Classifier:  clf,
		Discretizer: dz,
		ClassNames:  train.ClassNames,
		NumItems:    train.NumItems(),
	}, testM
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no models must fail")
	}
	if _, err := New(Config{Models: map[string]*rcbt.Model{"m": nil}}); err == nil {
		t.Fatal("New with nil model must fail")
	}
}

func TestClassifyMatchesInProcessPredict(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": m}})
	d, _ := dataset.RunningExample()

	for r := 0; r < d.NumRows(); r++ {
		wantLabel, wantIdx := m.Classifier.Predict(d.RowItemSet(r))
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("row %d: status %d: %s", r, rec.Code, rec.Body)
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(wantLabel) || resp.Classifier != wantIdx {
			t.Fatalf("row %d: served (%d,%d), in-process (%d,%d)",
				r, resp.Label, resp.Classifier, wantLabel, wantIdx)
		}
		if resp.Class != d.ClassNames[wantLabel] {
			t.Fatalf("row %d: class %q, want %q", r, resp.Class, d.ClassNames[wantLabel])
		}
	}
}

func TestClassifyValuesMatchesInProcess(t *testing.T) {
	m, testM := synthModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"synth": m}})
	for r := 0; r < testM.NumRows() && r < 10; r++ {
		want, _, err := m.PredictValues(testM.Values[r])
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(ClassifyRequest{Model: "synth", Values: testM.Values[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("row %d: status %d: %s", r, rec.Code, rec.Body)
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(want) {
			t.Fatalf("row %d: served label %d, in-process %d", r, resp.Label, want)
		}
	}
}

func TestClassifyErrors(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"malformed json":     {`{"model": "example", "items": [`, http.StatusBadRequest},
		"unknown field":      {`{"model": "example", "rows": []}`, http.StatusBadRequest},
		"no row":             {`{"model": "example"}`, http.StatusBadRequest},
		"both values+items":  {`{"model": "example", "items": [0], "values": [1.0]}`, http.StatusBadRequest},
		"unknown model":      {`{"model": "nope", "items": [0]}`, http.StatusNotFound},
		"item out of range":  {`{"model": "example", "items": [9999]}`, http.StatusUnprocessableEntity},
		"values without dz":  {`{"model": "example", "values": [1.0, 2.0]}`, http.StatusUnprocessableEntity},
		"method not allowed": {``, http.StatusMethodNotAllowed},
	} {
		t.Run(name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			if name == "method not allowed" {
				req := httptest.NewRequest(http.MethodGet, "/v1/classify", nil)
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
			} else {
				rec = postJSON(t, s, "/v1/classify", tc.body)
			}
			if rec.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.code, rec.Body)
			}
		})
	}
}

func TestBatchClassify(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{
		Models:       map[string]*rcbt.Model{"example": m},
		BatchWorkers: 3,
	})
	d, _ := dataset.RunningExample()
	req := BatchRequest{Model: "example"}
	for r := 0; r < d.NumRows(); r++ {
		req.Rows = append(req.Rows, BatchRow{Items: d.Rows[r]})
	}
	// One poison row: must error per-row, not fail the batch.
	req.Rows = append(req.Rows, BatchRow{Items: []int{12345}})

	body, _ := json.Marshal(req)
	rec := postJSON(t, s, "/v1/classify/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != d.NumRows()+1 {
		t.Fatalf("%d results, want %d", len(resp.Results), d.NumRows()+1)
	}
	for r := 0; r < d.NumRows(); r++ {
		want, _ := m.Classifier.Predict(d.RowItemSet(r))
		if resp.Results[r].Label != int(want) {
			t.Fatalf("row %d: label %d, want %d", r, resp.Results[r].Label, want)
		}
	}
	last := resp.Results[d.NumRows()]
	if last.Error == "" || last.Label != -1 {
		t.Fatalf("poison row result %+v, want per-row error", last)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s := newTestServer(t, Config{
		Models:   map[string]*rcbt.Model{"example": exampleModel(t)},
		MaxBatch: 2,
	})
	body := `{"model": "example", "rows": [{"items":[0]},{"items":[0]},{"items":[0]}]}`
	rec := postJSON(t, s, "/v1/classify/batch", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
}

func TestRequestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{
		Models:         map[string]*rcbt.Model{"example": exampleModel(t)},
		RequestTimeout: time.Nanosecond,
	})
	rec := postJSON(t, s, "/v1/classify", `{"model": "example", "items": [0]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
}

func TestModelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{
		"b-example": exampleModel(t),
		"a-example": exampleModel(t),
	}})
	req := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Models) != 2 || resp.Models[0].Name != "a-example" {
		t.Fatalf("models = %+v, want sorted pair", resp.Models)
	}
	if resp.Models[0].Meta == nil || resp.Models[0].Meta.Dataset != "running-example" {
		t.Fatalf("meta not surfaced: %+v", resp.Models[0])
	}
	if resp.Models[0].HasDiscretizer {
		t.Fatal("example model should not report a discretizer")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("ok")) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
}

func TestMetricsExposition(t *testing.T) {
	d, _ := dataset.RunningExample()
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})

	// Generate traffic: successes, a 400 and a 404.
	for r := 0; r < d.NumRows(); r++ {
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		if rec := postJSON(t, s, "/v1/classify", string(body)); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d", rec.Code)
		}
	}
	postJSON(t, s, "/v1/classify", `{`)
	postJSON(t, s, "/v1/classify", `{"model": "nope", "items": [0]}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf(`rcbtserved_requests_total{path="/v1/classify",code="200"} %d`, d.NumRows()),
		`rcbtserved_requests_total{path="/v1/classify",code="400"} 1`,
		`rcbtserved_requests_total{path="/v1/classify",code="404"} 1`,
		`rcbtserved_predictions_total{model="example",class="C"}`,
		`rcbtserved_request_seconds_count 7`,
		// The scrape itself is the one in-flight request.
		`rcbtserved_in_flight 1`,
		`# TYPE rcbtserved_request_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestCheckedInFixtureServes guards the committed CI smoke fixtures:
// testdata/model.json must load and classify testdata/
// classify_request.json successfully.
func TestCheckedInFixtureServes(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "model.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rcbt.LoadModel(f)
	f.Close() // vetsuite:allow uncheckederr -- read-only test fixture
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"fixture": m}})

	reqBody, err := os.ReadFile(filepath.Join("testdata", "classify_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s, "/v1/classify", string(reqBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("fixture classify: %d %s", rec.Code, rec.Body)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Class == "" || resp.Label < 0 {
		t.Fatalf("fixture classify response: %+v", resp)
	}
}

func TestServedModelFromEnvelopeRoundTrip(t *testing.T) {
	// A model that went through Save/LoadModel must serve identically
	// to the in-memory one.
	m := exampleModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rcbt.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": loaded}})
	d, _ := dataset.RunningExample()
	for r := 0; r < d.NumRows(); r++ {
		want, _ := m.Classifier.Predict(d.RowItemSet(r))
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(want) {
			t.Fatalf("row %d: served %d, want %d", r, resp.Label, want)
		}
	}
}
