package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/rcbt"
	"repro/internal/synth"
)

// exampleModel trains RCBT on the paper's running example. It has no
// discretizer, so it serves item-id requests only.
func exampleModel(t *testing.T) *rcbt.Model {
	t.Helper()
	d, _ := dataset.RunningExample()
	clf, err := rcbt.Train(d, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return &rcbt.Model{
		Classifier: clf,
		ClassNames: d.ClassNames,
		NumItems:   d.NumItems(),
		Meta:       rcbt.Meta{Dataset: "running-example", TrainRows: d.NumRows()},
	}
}

// synthModel trains on a synthetic matrix and bundles the discretizer,
// so it serves raw expression values.
func synthModel(t *testing.T) (*rcbt.Model, *dataset.Matrix) {
	t.Helper()
	trainM, testM, err := synth.Generate(synth.Scaled(synth.ALL(), 60))
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(trainM)
	if err != nil {
		t.Fatal(err)
	}
	train, err := dz.Transform(trainM)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := rcbt.Train(train, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return &rcbt.Model{
		Classifier:  clf,
		Discretizer: dz,
		ClassNames:  train.ClassNames,
		NumItems:    train.NumItems(),
	}, testM
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSONRaw(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// postJSON posts and follows a single 308 hop the way a real client
// re-sends the body — so every legacy-path test exercises both the
// redirect and the resource route it lands on.
func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := postJSONRaw(t, s, path, body)
	if rec.Code == http.StatusPermanentRedirect {
		loc := rec.Header().Get("Location")
		if loc == "" {
			t.Fatalf("308 from %s without a Location header", path)
		}
		rec = postJSONRaw(t, s, loc, body)
	}
	return rec
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no models must fail")
	}
	if _, err := New(Config{Models: map[string]*rcbt.Model{"m": nil}}); err == nil {
		t.Fatal("New with nil model must fail")
	}
}

func TestClassifyMatchesInProcessPredict(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": m}})
	d, _ := dataset.RunningExample()

	for r := 0; r < d.NumRows(); r++ {
		wantLabel, wantIdx := m.Classifier.Predict(d.RowItemSet(r))
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("row %d: status %d: %s", r, rec.Code, rec.Body)
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(wantLabel) || resp.Classifier != wantIdx {
			t.Fatalf("row %d: served (%d,%d), in-process (%d,%d)",
				r, resp.Label, resp.Classifier, wantLabel, wantIdx)
		}
		if resp.Class != d.ClassNames[wantLabel] {
			t.Fatalf("row %d: class %q, want %q", r, resp.Class, d.ClassNames[wantLabel])
		}
	}
}

func TestClassifyValuesMatchesInProcess(t *testing.T) {
	m, testM := synthModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"synth": m}})
	for r := 0; r < testM.NumRows() && r < 10; r++ {
		want, _, err := m.PredictValues(testM.Values[r])
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(ClassifyRequest{Model: "synth", Values: testM.Values[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("row %d: status %d: %s", r, rec.Code, rec.Body)
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(want) {
			t.Fatalf("row %d: served label %d, in-process %d", r, resp.Label, want)
		}
	}
}

func TestClassifyErrors(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"malformed json":     {`{"model": "example", "items": [`, http.StatusBadRequest},
		"unknown field":      {`{"model": "example", "rows": []}`, http.StatusBadRequest},
		"no row":             {`{"model": "example"}`, http.StatusBadRequest},
		"both values+items":  {`{"model": "example", "items": [0], "values": [1.0]}`, http.StatusBadRequest},
		"unknown model":      {`{"model": "nope", "items": [0]}`, http.StatusNotFound},
		"item out of range":  {`{"model": "example", "items": [9999]}`, http.StatusUnprocessableEntity},
		"values without dz":  {`{"model": "example", "values": [1.0, 2.0]}`, http.StatusUnprocessableEntity},
		"method not allowed": {``, http.StatusMethodNotAllowed},
	} {
		t.Run(name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			if name == "method not allowed" {
				req := httptest.NewRequest(http.MethodGet, "/v1/classify", nil)
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
			} else {
				rec = postJSON(t, s, "/v1/classify", tc.body)
			}
			if rec.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.code, rec.Body)
			}
		})
	}
}

func TestBatchClassify(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{
		Models:       map[string]*rcbt.Model{"example": m},
		BatchWorkers: 3,
	})
	d, _ := dataset.RunningExample()
	req := BatchRequest{Model: "example"}
	for r := 0; r < d.NumRows(); r++ {
		req.Rows = append(req.Rows, BatchRow{Items: d.Rows[r]})
	}
	// One poison row: must error per-row, not fail the batch.
	req.Rows = append(req.Rows, BatchRow{Items: []int{12345}})

	body, _ := json.Marshal(req)
	rec := postJSON(t, s, "/v1/classify/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != d.NumRows()+1 {
		t.Fatalf("%d results, want %d", len(resp.Results), d.NumRows()+1)
	}
	for r := 0; r < d.NumRows(); r++ {
		want, _ := m.Classifier.Predict(d.RowItemSet(r))
		if resp.Results[r].Label != int(want) {
			t.Fatalf("row %d: label %d, want %d", r, resp.Results[r].Label, want)
		}
	}
	last := resp.Results[d.NumRows()]
	if last.Error == "" || last.Label != -1 {
		t.Fatalf("poison row result %+v, want per-row error", last)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s := newTestServer(t, Config{
		Models:   map[string]*rcbt.Model{"example": exampleModel(t)},
		MaxBatch: 2,
	})
	body := `{"model": "example", "rows": [{"items":[0]},{"items":[0]},{"items":[0]}]}`
	rec := postJSON(t, s, "/v1/classify/batch", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
}

func TestRequestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{
		Models:         map[string]*rcbt.Model{"example": exampleModel(t)},
		RequestTimeout: time.Nanosecond,
	})
	rec := postJSON(t, s, "/v1/classify", `{"model": "example", "items": [0]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
}

func TestModelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{
		"b-example": exampleModel(t),
		"a-example": exampleModel(t),
	}})
	req := httptest.NewRequest(http.MethodGet, "/v1/models", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Models) != 2 || resp.Models[0].Name != "a-example" {
		t.Fatalf("models = %+v, want sorted pair", resp.Models)
	}
	if resp.Models[0].Meta == nil || resp.Models[0].Meta.Dataset != "running-example" {
		t.Fatalf("meta not surfaced: %+v", resp.Models[0])
	}
	if resp.Models[0].HasDiscretizer {
		t.Fatal("example model should not report a discretizer")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("ok")) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
}

func TestMetricsExposition(t *testing.T) {
	d, _ := dataset.RunningExample()
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})

	// Generate traffic: successes, a 400 and a 404.
	for r := 0; r < d.NumRows(); r++ {
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		if rec := postJSON(t, s, "/v1/classify", string(body)); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d", rec.Code)
		}
	}
	postJSON(t, s, "/v1/classify", `{`)
	postJSON(t, s, "/v1/classify", `{"model": "nope", "items": [0]}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		// Every legacy post is two requests: a 308 on the old path, then
		// the real work on the resource route — whose model-name segment
		// is collapsed to {name} so the label set stays bounded.
		fmt.Sprintf(`rcbtserved_requests_total{path="/v1/classify",code="308"} %d`, d.NumRows()+2),
		fmt.Sprintf(`rcbtserved_requests_total{path="/v1/models/{name}/classify",code="200"} %d`, d.NumRows()),
		`rcbtserved_requests_total{path="/v1/models/{name}/classify",code="400"} 1`,
		`rcbtserved_requests_total{path="/v1/models/{name}/classify",code="404"} 1`,
		`rcbtserved_predictions_total{model="example",class="C"}`,
		fmt.Sprintf(`rcbtserved_request_seconds_count %d`, 2*(d.NumRows()+2)),
		// The scrape itself is the one in-flight request.
		`rcbtserved_in_flight 1`,
		`# TYPE rcbtserved_request_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestLegacyRedirect pins the one-release compatibility contract: the
// pre-resource classify paths answer 308 with the model-scoped
// location (resolved from the body, or the single served model) and a
// Deprecation header.
func TestLegacyRedirect(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	rec := postJSONRaw(t, s, "/v1/classify", `{"model": "example", "items": [0]}`)
	if rec.Code != http.StatusPermanentRedirect {
		t.Fatalf("status %d, want 308: %s", rec.Code, rec.Body)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/models/example/classify" {
		t.Fatalf("Location = %q", loc)
	}
	if rec.Header().Get("Deprecation") == "" {
		t.Error("redirect is missing the Deprecation header")
	}
	// A single-model server resolves a nameless legacy body.
	rec = postJSONRaw(t, s, "/v1/classify/batch", `{"rows": [{"items":[0]}]}`)
	if rec.Code != http.StatusPermanentRedirect ||
		rec.Header().Get("Location") != "/v1/models/example/classify/batch" {
		t.Fatalf("nameless batch redirect: %d %q", rec.Code, rec.Header().Get("Location"))
	}
	// Body/path mismatch on the resource route is rejected, not silently
	// re-routed.
	rec = postJSONRaw(t, s, "/v1/models/other/classify", `{"model": "example", "items": [0]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched model: status %d, want 400", rec.Code)
	}
}

// TestErrorEnvelope pins the unified {"error":{"code","message"}}
// shape across handler families.
func TestErrorEnvelope(t *testing.T) {
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": exampleModel(t)}})
	for name, tc := range map[string]struct {
		path, body string
		status     int
		code       string
	}{
		"not found":     {"/v1/models/nope/classify", `{"items": [0]}`, http.StatusNotFound, "not_found"},
		"bad request":   {"/v1/models/example/classify", `{`, http.StatusBadRequest, "bad_request"},
		"unprocessable": {"/v1/models/example/classify", `{"items": [9999]}`, http.StatusUnprocessableEntity, "unprocessable"},
	} {
		t.Run(name, func(t *testing.T) {
			rec := postJSONRaw(t, s, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body)
			}
			var resp struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("error body is not the envelope: %v in %s", err, rec.Body)
			}
			if resp.Error.Code != tc.code || resp.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %q with a message", resp.Error, tc.code)
			}
		})
	}
}

// TestModelEnvelopeGet: GET /v1/models/{name} returns the same
// envelope Model.Save writes — loadable and serving identically.
func TestModelEnvelopeGet(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": m}})
	req := httptest.NewRequest(http.MethodGet, "/v1/models/example", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	loaded, err := rcbt.LoadModel(rec.Body)
	if err != nil {
		t.Fatalf("envelope does not load: %v", err)
	}
	d, _ := dataset.RunningExample()
	for r := 0; r < d.NumRows(); r++ {
		want, _ := m.Classifier.Predict(d.RowItemSet(r))
		got, _ := loaded.Classifier.Predict(d.RowItemSet(r))
		if got != want {
			t.Fatalf("row %d: fetched model predicts %d, original %d", r, got, want)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/models/nope", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", rec.Code)
	}
}

// TestModelPullOnMiss: a replica without the model fetches the
// envelope from its peer on first use, registers it, and serves it —
// and the loop-guard header keeps a self-peering replica from
// recursing.
func TestModelPullOnMiss(t *testing.T) {
	m := exampleModel(t)
	origin := newTestServer(t, Config{Models: map[string]*rcbt.Model{"shared": m}})
	originTS := httptest.NewServer(origin)
	defer originTS.Close()

	// The replica holds a different model, so it starts non-empty but
	// misses "shared".
	replica := newTestServer(t, Config{
		Models: map[string]*rcbt.Model{"local": exampleModel(t)},
		Peers:  []string{originTS.URL},
	})
	d, _ := dataset.RunningExample()
	body, _ := json.Marshal(ClassifyRequest{Items: d.Rows[0]})
	rec := postJSONRaw(t, replica, "/v1/models/shared/classify", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("pull-on-miss classify: %d %s", rec.Code, rec.Body)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, _ := m.Classifier.Predict(d.RowItemSet(0))
	if resp.Label != int(want) {
		t.Fatalf("pulled model predicts %d, origin predicts %d", resp.Label, want)
	}
	// Loop guard: a request already marked as a peer fetch is answered
	// from local state only — no pull happens even though the peer has
	// the model, which is what breaks replica-to-replica cycles.
	guarded := newTestServer(t, Config{
		Models: map[string]*rcbt.Model{"local": exampleModel(t)},
		Peers:  []string{originTS.URL},
	})
	req := httptest.NewRequest(http.MethodGet, "/v1/models/shared", nil)
	req.Header.Set("X-Rcbt-Peer-Fetch", "1")
	guardRec := httptest.NewRecorder()
	guarded.ServeHTTP(guardRec, req)
	if guardRec.Code != http.StatusNotFound {
		t.Fatalf("guarded fetch: status %d, want 404", guardRec.Code)
	}

	// The model is now registered locally on the replica: listed, and
	// served with the origin gone.
	originTS.Close()
	names := replica.ModelNames()
	if len(names) != 2 || names[1] != "shared" {
		t.Fatalf("replica models = %v, want [local shared]", names)
	}
	rec = postJSONRaw(t, replica, "/v1/models/shared/classify", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-pull classify: %d %s", rec.Code, rec.Body)
	}
}

// TestCheckedInFixtureServes guards the committed CI smoke fixtures:
// testdata/model.json must load and classify testdata/
// classify_request.json successfully.
func TestCheckedInFixtureServes(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "model.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rcbt.LoadModel(f)
	f.Close() // vetsuite:allow uncheckederr -- read-only test fixture
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"fixture": m}})

	reqBody, err := os.ReadFile(filepath.Join("testdata", "classify_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s, "/v1/classify", string(reqBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("fixture classify: %d %s", rec.Code, rec.Body)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Class == "" || resp.Label < 0 {
		t.Fatalf("fixture classify response: %+v", resp)
	}
}

func TestServedModelFromEnvelopeRoundTrip(t *testing.T) {
	// A model that went through Save/LoadModel must serve identically
	// to the in-memory one.
	m := exampleModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rcbt.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": loaded}})
	d, _ := dataset.RunningExample()
	for r := 0; r < d.NumRows(); r++ {
		want, _ := m.Classifier.Predict(d.RowItemSet(r))
		body, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(want) {
			t.Fatalf("row %d: served %d, want %d", r, resp.Label, want)
		}
	}
}
