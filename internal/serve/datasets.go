package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/jobs"
)

// DatasetRow is one expression row in a dataset create/append request:
// raw values (one per gene) plus a class label, given as a class name
// or a class index.
type DatasetRow struct {
	Values []float64 `json:"values"`
	Label  RowLabel  `json:"label"`
}

// RowLabel accepts a class name ("ALL") or a class index (0) and
// resolves against the dataset's class list.
type RowLabel struct {
	name  string
	index int
	isIdx bool
	set   bool
}

// UnmarshalJSON accepts a JSON string (class name) or number (index).
func (l *RowLabel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*l = RowLabel{name: s, set: true}
		return nil
	}
	var idx int
	if err := json.Unmarshal(b, &idx); err != nil {
		return errors.New("label must be a class name or a class index")
	}
	*l = RowLabel{index: idx, isIdx: true, set: true}
	return nil
}

// resolve maps the label onto the class list.
func (l RowLabel) resolve(classes []string) (dataset.Label, error) {
	if !l.set {
		return 0, errors.New("row has no label")
	}
	if l.isIdx {
		if l.index < 0 || l.index >= len(classes) {
			return 0, fmt.Errorf("label index %d outside [0,%d)", l.index, len(classes))
		}
		return dataset.Label(l.index), nil
	}
	for i, c := range classes {
		if c == l.name {
			return dataset.Label(i), nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (have %v)", l.name, classes)
}

// DatasetCreateRequest is the body of POST /v1/datasets.
type DatasetCreateRequest struct {
	Name    string       `json:"name"`
	Classes []string     `json:"classes"`
	Genes   []string     `json:"genes"`
	Rows    []DatasetRow `json:"rows,omitempty"`
}

// DatasetAppendRequest is the body of POST /v1/datasets/{name}/rows.
type DatasetAppendRequest struct {
	Rows []DatasetRow `json:"rows"`
}

// DatasetInfo describes one dataset snapshot in the GET responses.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Version int      `json:"version"`
	Rows    int      `json:"rows"`
	Genes   int      `json:"genes"`
	Classes []string `json:"classes"`
	// Items and SelectedGenes describe the discretized form: the item
	// vocabulary size and how many genes survived MDL.
	Items         int       `json:"items"`
	SelectedGenes int       `json:"selectedGenes"`
	CreatedAt     time.Time `json:"createdAt"`
	// Refresh reports how this version was built from its predecessor
	// (absent on version 1).
	Refresh *datastore.RefreshStats `json:"refresh,omitempty"`
	// Versions lists the retained snapshot versions (latest-info
	// responses only).
	Versions []int `json:"versions,omitempty"`
}

// datasetInfo renders a snapshot.
func datasetInfo(snap *datastore.Snapshot) DatasetInfo {
	info := DatasetInfo{
		Name:          snap.Name,
		Version:       snap.Version,
		Rows:          snap.Matrix.NumRows(),
		Genes:         snap.Matrix.NumGenes(),
		Classes:       snap.Matrix.ClassNames,
		Items:         snap.Dataset.NumItems(),
		SelectedGenes: snap.Discretizer.NumSelectedGenes(),
		CreatedAt:     snap.CreatedAt,
	}
	if snap.Refresh != (datastore.RefreshStats{}) {
		r := snap.Refresh
		info.Refresh = &r
	}
	return info
}

// rowsToColumns resolves request rows into the store's values+labels
// form.
func rowsToColumns(rows []DatasetRow, classes []string) ([][]float64, []dataset.Label, error) {
	values := make([][]float64, len(rows))
	labels := make([]dataset.Label, len(rows))
	for i, r := range rows {
		l, err := r.Label.resolve(classes)
		if err != nil {
			return nil, nil, fmt.Errorf("row %d: %w", i, err)
		}
		values[i] = r.Values
		labels[i] = l
	}
	return values, labels, nil
}

func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	var req DatasetCreateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	values, labels, err := rowsToColumns(req.Rows, req.Classes)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	snap, err := s.store.Create(req.Name, req.Classes, req.Genes, values, labels)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetInfo(snap))
}

func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req DatasetAppendRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cur, err := s.store.Get(name)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	values, labels, err := rowsToColumns(req.Rows, cur.Matrix.ClassNames)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	snap, err := s.store.Append(name, values, labels)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	if s.refresher != nil {
		s.refresher.Trigger(name)
	}
	writeJSON(w, http.StatusOK, datasetInfo(snap))
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	infos := make([]DatasetInfo, 0)
	for _, name := range s.store.Names() {
		snap, err := s.store.Get(name)
		if err != nil {
			continue // removed between Names and Get
		}
		infos = append(infos, datasetInfo(snap))
	}
	writeJSON(w, http.StatusOK, map[string][]DatasetInfo{"datasets": infos})
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	snap, err := s.store.Get(name)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	info := datasetInfo(snap)
	if vs, err := s.store.Versions(name); err == nil {
		info.Versions = vs
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDatasetGetVersion(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil || v < 1 {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("version %q must be a positive integer", r.PathValue("v")))
		return
	}
	snap, err := s.store.GetVersion(name, v)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo(snap))
}

// writeDatasetError maps the datastore sentinels onto the HTTP error
// taxonomy: a pruned pinned version is a 409 (the reference was valid
// once; the conflict is with the retention policy), like ErrExists.
func writeDatasetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, datastore.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, datastore.ErrVersionGone):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, datastore.ErrExists):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, datastore.ErrBadRequest):
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// fireRefresh is the auto-refresh trigger target: it resolves the
// dataset's latest snapshot and submits a train job for it. The job
// flows through the normal pipeline — journal, worker pool, model
// persistence — and its OnModel hook hot-swaps the refreshed model
// into the serve registry with a fresh prediction cache, so a client
// polling /v1/classify across the swap only ever sees a fully
// installed model (old or new).
func (s *Server) fireRefresh(name string) {
	snap, err := s.store.Get(name)
	if err != nil {
		if s.logger != nil {
			s.logger.Error("auto-refresh resolve", "dataset", name, "err", err)
		}
		return
	}
	spec := s.refreshSpec
	spec.Kind = jobs.KindTrain
	spec.Dataset = name
	if spec.ModelName == "" {
		spec.ModelName = name
	}
	rec, err := s.jobs.Submit(spec, jobs.Data{
		Dataset:     snap.Dataset,
		Discretizer: snap.Discretizer,
		Name:        name,
		Version:     snap.Version,
	})
	if err != nil {
		if s.logger != nil {
			s.logger.Error("auto-refresh submit", "dataset", name, "version", snap.Version, "err", err)
		}
		return
	}
	if s.logger != nil {
		s.logger.Info("auto-refresh train submitted",
			"dataset", name, "version", snap.Version, "job", rec.ID, "model", spec.ModelName)
	}
}

// Close releases the server's background resources: the auto-refresh
// debouncer stops firing. Safe to call on servers without a datastore.
func (s *Server) Close() {
	if s.refresher != nil {
		s.refresher.Stop()
	}
}

// writeModelVersionMetrics emits one gauge per served model reporting
// the datastore snapshot version it was trained on (0 = unversioned
// data), so dashboards can alert when a served model lags its dataset.
func (s *Server) writeModelVersionMetrics(w io.Writer) {
	type mv struct {
		name    string
		version int
	}
	s.mu.RLock()
	vs := make([]mv, 0, len(s.models))
	for name, sm := range s.models {
		vs = append(vs, mv{name, sm.model.Meta.DatasetVersion})
	}
	s.mu.RUnlock()
	if len(vs) == 0 {
		return
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].name < vs[j].name })
	fmt.Fprintln(w, "# HELP rcbtserved_model_dataset_version Datastore snapshot version the model was trained on (0 = unversioned).")
	fmt.Fprintln(w, "# TYPE rcbtserved_model_dataset_version gauge")
	for _, v := range vs {
		fmt.Fprintf(w, "rcbtserved_model_dataset_version{model=%q} %d\n", v.name, v.version)
	}
}

// writeDatasetMetrics emits per-dataset latest-version gauges.
func (s *Server) writeDatasetMetrics(w io.Writer) {
	names := s.store.Names()
	if len(names) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP rcbtserved_dataset_latest_version Latest snapshot version per dataset.")
	fmt.Fprintln(w, "# TYPE rcbtserved_dataset_latest_version gauge")
	for _, name := range names {
		snap, err := s.store.Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "rcbtserved_dataset_latest_version{dataset=%q} %d\n", name, snap.Version)
	}
}
