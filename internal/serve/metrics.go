package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
)

// metricPath collapses the high-cardinality path segments (model
// names, job ids) to their route wildcards, so requests_total keeps a
// bounded label set no matter how many models or jobs exist.
func metricPath(p string) string {
	if rest, ok := strings.CutPrefix(p, "/v1/models/"); ok && rest != "" {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return "/v1/models/{name}" + rest[i:]
		}
		return "/v1/models/{name}"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/jobs/"); ok && rest != "" {
		return "/v1/jobs/{id}"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/datasets/"); ok && rest != "" {
		tail := ""
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			tail = rest[i:]
			if strings.HasPrefix(tail, "/versions/") && len(tail) > len("/versions/") {
				tail = "/versions/{v}"
			}
		}
		return "/v1/datasets/{name}" + tail
	}
	return p
}

// latencyBuckets are the upper bounds (seconds) of the request latency
// histogram, chosen for a CPU-bound classifier: most single-row
// predictions land well under a millisecond, batch requests and cold
// models in the tail.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// metrics is the per-Server metric registry. Everything is owned by
// the Server instance rather than a process-global registry so that
// tests can spin up many servers without duplicate-registration
// panics, and exposition stays allocation-light on the hot path.
type metrics struct {
	inFlight atomic.Int64

	mu          sync.Mutex
	requests    map[string]uint64 // "path|code" -> count
	predictions map[string]uint64 // "model|class" -> count

	bucketCounts []atomic.Uint64 // parallel to latencyBuckets, plus +Inf at the end
	latencyCount atomic.Uint64
	latencySumNs atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[string]uint64),
		predictions:  make(map[string]uint64),
		bucketCounts: make([]atomic.Uint64, len(latencyBuckets)+1),
	}
}

func (m *metrics) recordRequest(path string, code int, elapsed time.Duration) {
	key := path + "|" + strconv.Itoa(code)
	m.mu.Lock()
	m.requests[key]++
	m.mu.Unlock()

	secs := elapsed.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	m.bucketCounts[i].Add(1)
	m.latencyCount.Add(1)
	m.latencySumNs.Add(uint64(elapsed.Nanoseconds()))
}

func (m *metrics) recordPrediction(model, class string) {
	key := model + "|" + class
	m.mu.Lock()
	m.predictions[key]++
	m.mu.Unlock()
}

// writeProm renders the registry in the Prometheus text exposition
// format (version 0.0.4), the lingua franca every scraper accepts.
func (m *metrics) writeProm(w io.Writer) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	predictions := make(map[string]uint64, len(m.predictions))
	for k, v := range m.predictions {
		predictions[k] = v
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP rcbtserved_requests_total HTTP requests by path and status code.")
	fmt.Fprintln(w, "# TYPE rcbtserved_requests_total counter")
	for _, k := range sortedKeys(requests) {
		path, code, _ := cutLast(k)
		fmt.Fprintf(w, "rcbtserved_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintln(w, "# HELP rcbtserved_predictions_total Predictions by model and predicted class.")
	fmt.Fprintln(w, "# TYPE rcbtserved_predictions_total counter")
	for _, k := range sortedKeys(predictions) {
		model, class, _ := cutLast(k)
		fmt.Fprintf(w, "rcbtserved_predictions_total{model=%q,class=%q} %d\n", model, class, predictions[k])
	}

	fmt.Fprintln(w, "# HELP rcbtserved_request_seconds HTTP request latency.")
	fmt.Fprintln(w, "# TYPE rcbtserved_request_seconds histogram")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i].Load()
		fmt.Fprintf(w, "rcbtserved_request_seconds_bucket{le=%q} %d\n", formatFloat(ub), cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "rcbtserved_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "rcbtserved_request_seconds_sum %s\n",
		formatFloat(float64(m.latencySumNs.Load())/1e9))
	fmt.Fprintf(w, "rcbtserved_request_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintln(w, "# HELP rcbtserved_in_flight Requests currently being served.")
	fmt.Fprintln(w, "# TYPE rcbtserved_in_flight gauge")
	fmt.Fprintf(w, "rcbtserved_in_flight %d\n", m.inFlight.Load())
}

// writeCacheMetrics renders each cache-enabled model's prediction
// cache counters. A hot-swap replaces the cache, so a reset of these
// counters is itself the observable signal that a model was reloaded.
func (s *Server) writeCacheMetrics(w io.Writer) {
	type modelCounters struct {
		name string
		c    cacheCounters
	}
	s.mu.RLock()
	snaps := make([]modelCounters, 0, len(s.models))
	for name, sm := range s.models {
		if sm.cache != nil {
			snaps = append(snaps, modelCounters{name, sm.cache.counters()})
		}
	}
	s.mu.RUnlock()
	if len(snaps) == 0 {
		return
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	fmt.Fprintln(w, "# HELP rcbtserved_predict_cache_hits_total Prediction cache hits by model.")
	fmt.Fprintln(w, "# TYPE rcbtserved_predict_cache_hits_total counter")
	for _, sn := range snaps {
		fmt.Fprintf(w, "rcbtserved_predict_cache_hits_total{model=%q} %d\n", sn.name, sn.c.hits)
	}
	fmt.Fprintln(w, "# HELP rcbtserved_predict_cache_misses_total Prediction cache misses by model.")
	fmt.Fprintln(w, "# TYPE rcbtserved_predict_cache_misses_total counter")
	for _, sn := range snaps {
		fmt.Fprintf(w, "rcbtserved_predict_cache_misses_total{model=%q} %d\n", sn.name, sn.c.misses)
	}
	fmt.Fprintln(w, "# HELP rcbtserved_predict_cache_evictions_total Prediction cache LRU evictions by model.")
	fmt.Fprintln(w, "# TYPE rcbtserved_predict_cache_evictions_total counter")
	for _, sn := range snaps {
		fmt.Fprintf(w, "rcbtserved_predict_cache_evictions_total{model=%q} %d\n", sn.name, sn.c.evictions)
	}
}

// writeJobMetrics renders the job manager's counters after the request
// metrics: queue and running gauges, terminal-state counters, and the
// job duration histogram (bucket counts arrive already cumulative).
func writeJobMetrics(w io.Writer, jm jobs.Metrics) {
	fmt.Fprintln(w, "# HELP rcbtserved_jobs_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE rcbtserved_jobs_queue_depth gauge")
	fmt.Fprintf(w, "rcbtserved_jobs_queue_depth %d\n", jm.QueueDepth)

	fmt.Fprintln(w, "# HELP rcbtserved_jobs_running Jobs currently executing.")
	fmt.Fprintln(w, "# TYPE rcbtserved_jobs_running gauge")
	fmt.Fprintf(w, "rcbtserved_jobs_running %d\n", jm.Running)

	fmt.Fprintln(w, "# HELP rcbtserved_jobs_total Finished jobs by terminal state.")
	fmt.Fprintln(w, "# TYPE rcbtserved_jobs_total counter")
	states := make([]string, 0, len(jm.ByState))
	for st := range jm.ByState {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "rcbtserved_jobs_total{state=%q} %d\n", st, jm.ByState[st])
	}

	fmt.Fprintln(w, "# HELP rcbtserved_job_duration_seconds Wall-clock run time of finished jobs.")
	fmt.Fprintln(w, "# TYPE rcbtserved_job_duration_seconds histogram")
	for i, ub := range jobs.DurationBuckets {
		fmt.Fprintf(w, "rcbtserved_job_duration_seconds_bucket{le=%q} %d\n",
			formatFloat(ub), jm.DurationBucket[i])
	}
	fmt.Fprintf(w, "rcbtserved_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", jm.DurationCount)
	fmt.Fprintf(w, "rcbtserved_job_duration_seconds_sum %s\n", formatFloat(jm.DurationSum))
	fmt.Fprintf(w, "rcbtserved_job_duration_seconds_count %d\n", jm.DurationCount)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cutLast splits key at its final '|', so paths containing '|' (they
// should not, but defence costs nothing) stay intact.
func cutLast(key string) (before, after string, ok bool) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '|' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
