package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/rcbt"

	_ "repro/internal/carpenter" // register the slow closed-set miner the drain tests lean on
)

// newJobServer wires a jobs manager over a temp dir into a Server with
// the running example registered as a named dataset.
func newJobServer(t *testing.T, dir string) (*Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.Open(context.Background(), jobs.Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	d, _ := dataset.RunningExample()
	s := newTestServer(t, Config{
		Jobs: mgr,
		Datasets: map[string]NamedDataset{
			"running-example": {Dataset: d},
			"dense":           {Dataset: denseServeDataset()},
		},
	})
	return s, mgr
}

// denseServeDataset mirrors the jobs package's slow-job dataset: a
// closed-itemset tree far too large to finish inside a test.
func denseServeDataset() *dataset.Dataset {
	rng := rand.New(rand.NewSource(7))
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	const rows, items = 52, 72
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: fmt.Sprintf("g%d", i), Lo: 0, Hi: 1})
	}
	for r := 0; r < rows; r++ {
		var row []int
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.6 {
				row = append(row, i)
			}
		}
		if len(row) == 0 {
			row = append(row, r%items)
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, dataset.Label(r%2))
	}
	return d
}

func getJSON(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func deleteJSON(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, path, nil))
	return rec
}

// submitJob posts a job and returns its accepted record.
func submitJob(t *testing.T, s *Server, body string) jobs.Record {
	t.Helper()
	rec := postJSON(t, s, "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body)
	}
	var job jobs.Record
	if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State != jobs.StateQueued {
		t.Fatalf("accepted record %+v", job)
	}
	return job
}

// pollJob polls GET /v1/jobs/{id} until the record goes terminal.
func pollJob(t *testing.T, s *Server, id string) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := getJSON(t, s, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll: status %d: %s", rec.Code, rec.Body)
		}
		var job jobs.Record
		if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in 30s", id)
	return jobs.Record{}
}

// pollJobRunning waits for the job to leave the queue.
func pollJobRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var job jobs.Record
		if err := json.Unmarshal(getJSON(t, s, "/v1/jobs/"+id).Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		switch job.State {
		case jobs.StateRunning:
			return
		case jobs.StateQueued:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("job %s reached %s before running", id, job.State)
		}
	}
	t.Fatalf("job %s never started", id)
}

// TestJobLifecycleE2E is the end-to-end satellite: submit a train job
// over HTTP, poll to success, classify through the hot-registered
// model, and check label parity with an in-process training run.
func TestJobLifecycleE2E(t *testing.T) {
	s, _ := newJobServer(t, t.TempDir())
	job := submitJob(t, s,
		`{"kind":"train","dataset":"running-example","modelName":"hot","k":2,"nl":3,"minsupFrac":0.5}`)
	done := pollJob(t, s, job.ID)
	if done.State != jobs.StateSucceeded {
		t.Fatalf("job: %s (%s)", done.State, done.Error)
	}
	if done.ModelName != "hot" || done.Result == nil || done.Result.Classifiers == 0 {
		t.Fatalf("job record %+v result %+v", done, done.Result)
	}

	// The trained model serves without any restart or re-registration.
	d, _ := dataset.RunningExample()
	ref, err := rcbt.Train(d, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.NumRows(); r++ {
		wantLabel, _ := ref.Predict(d.RowItemSet(r))
		body, _ := json.Marshal(ClassifyRequest{Model: "hot", Items: d.Rows[r]})
		rec := postJSON(t, s, "/v1/classify", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("classify row %d: status %d: %s", r, rec.Code, rec.Body)
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Label != int(wantLabel) {
			t.Fatalf("row %d: served label %d, in-process %d", r, resp.Label, wantLabel)
		}
	}

	// The job shows up in the listing and in the metrics.
	var list struct {
		Jobs []jobs.Record `json:"jobs"`
	}
	if err := json.Unmarshal(getJSON(t, s, "/v1/jobs").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job listing %+v", list.Jobs)
	}
	metrics := getJSON(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`rcbtserved_jobs_total{state="succeeded"} 1`,
		"rcbtserved_jobs_queue_depth 0",
		"rcbtserved_jobs_running 0",
		"rcbtserved_job_duration_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestJobInlineDataset(t *testing.T) {
	s, _ := newJobServer(t, t.TempDir())
	d, _ := dataset.RunningExample()
	inline := InlineDataset{Classes: d.ClassNames, NumItems: d.NumItems()}
	for r, row := range d.Rows {
		inline.Rows = append(inline.Rows, InlineRow{Items: row, Label: int(d.Labels[r])})
	}
	body, _ := json.Marshal(struct {
		Kind  string        `json:"kind"`
		Class string        `json:"class"`
		K     int           `json:"k"`
		Data  InlineDataset `json:"data"`
	}{Kind: "mine", Class: "C", K: 2, Data: inline})
	job := submitJob(t, s, string(body))
	done := pollJob(t, s, job.ID)
	if done.State != jobs.StateSucceeded {
		t.Fatalf("inline mine job: %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Groups == 0 {
		t.Fatalf("inline mine result %+v", done.Result)
	}
}

func TestJobHTTPErrors(t *testing.T) {
	s, _ := newJobServer(t, t.TempDir())
	cases := []struct {
		name string
		body string
		want int
	}{
		{"no dataset", `{"kind":"mine"}`, http.StatusBadRequest},
		{"both datasets", `{"kind":"mine","dataset":"running-example","data":{"classes":["a","b"],"rows":[{"items":[0],"label":0}]}}`, http.StatusBadRequest},
		{"unknown dataset", `{"kind":"mine","dataset":"nope"}`, http.StatusNotFound},
		{"bad kind", `{"kind":"optimize","dataset":"running-example"}`, http.StatusUnprocessableEntity},
		{"bad inline rows", `{"kind":"mine","data":{"classes":["only"],"rows":[{"items":[0],"label":0}]}}`, http.StatusUnprocessableEntity},
		{"unknown field", `{"kind":"mine","dataset":"running-example","frobnicate":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := postJSON(t, s, "/v1/jobs", tc.body); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	if rec := getJSON(t, s, "/v1/jobs/job-missing"); rec.Code != http.StatusNotFound {
		t.Errorf("get unknown: %d", rec.Code)
	}
	if rec := deleteJSON(t, s, "/v1/jobs/job-missing"); rec.Code != http.StatusNotFound {
		t.Errorf("cancel unknown: %d", rec.Code)
	}
}

// TestJobShutdownOrdering is satellite (a) at the handler level: during
// a drain, running jobs keep going and new submissions get 503; Close
// then cancels the stragglers.
func TestJobShutdownOrdering(t *testing.T) {
	s, mgr := newJobServer(t, t.TempDir())
	slow := submitJob(t, s, `{"kind":"mine","miner":"carpenter","minsup":1,"dataset":"dense"}`)
	pollJobRunning(t, s, slow.ID)

	mgr.Drain()
	rec := postJSON(t, s, "/v1/jobs", `{"kind":"mine","dataset":"running-example"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503 (%s)", rec.Code, rec.Body)
	}
	// Draining rejects new work but does not kill running jobs.
	var mid jobs.Record
	if err := json.Unmarshal(getJSON(t, s, "/v1/jobs/"+slow.ID).Body.Bytes(), &mid); err != nil {
		t.Fatal(err)
	}
	if mid.State != jobs.StateRunning {
		t.Fatalf("running job during drain: %s", mid.State)
	}

	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	var final jobs.Record
	if err := json.Unmarshal(getJSON(t, s, "/v1/jobs/"+slow.ID).Body.Bytes(), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateCanceled {
		t.Fatalf("running job after Close: %s (%s)", final.State, final.Error)
	}
}

// TestJobCancelEndpoint drives DELETE /v1/jobs/{id} through running and
// terminal states.
func TestJobCancelEndpoint(t *testing.T) {
	s, _ := newJobServer(t, t.TempDir())
	slow := submitJob(t, s, `{"kind":"mine","miner":"carpenter","minsup":1,"dataset":"dense"}`)
	pollJobRunning(t, s, slow.ID)
	if rec := deleteJSON(t, s, "/v1/jobs/"+slow.ID); rec.Code != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", rec.Code, rec.Body)
	}
	done := pollJob(t, s, slow.ID)
	if done.State != jobs.StateCanceled || done.Error == "" {
		t.Fatalf("canceled job %+v", done)
	}
	if rec := deleteJSON(t, s, "/v1/jobs/"+slow.ID); rec.Code != http.StatusConflict {
		t.Fatalf("cancel terminal: status %d, want 409", rec.Code)
	}
}

// TestJobRestartServing is the crash-restart satellite over HTTP: a
// fresh manager+server on the same data dir lists the old job and
// serves its model.
func TestJobRestartServing(t *testing.T) {
	dir := t.TempDir()
	s1, mgr1 := newJobServer(t, dir)
	job := submitJob(t, s1,
		`{"kind":"train","dataset":"running-example","modelName":"survivor","k":2,"nl":3,"minsupFrac":0.5}`)
	if done := pollJob(t, s1, job.ID); done.State != jobs.StateSucceeded {
		t.Fatalf("train job: %s (%s)", done.State, done.Error)
	}
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a new manager and server over the same data dir, with no
	// preloaded models at all.
	mgr2, err := jobs.Open(context.Background(), jobs.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr2.Close() })
	s2 := newTestServer(t, Config{Jobs: mgr2})

	var list struct {
		Jobs []jobs.Record `json:"jobs"`
	}
	if err := json.Unmarshal(getJSON(t, s2, "/v1/jobs").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID || list.Jobs[0].State != jobs.StateSucceeded {
		t.Fatalf("restarted listing %+v", list.Jobs)
	}
	if names := s2.ModelNames(); len(names) != 1 || names[0] != "survivor" {
		t.Fatalf("restarted models %v", names)
	}

	d, _ := dataset.RunningExample()
	body, _ := json.Marshal(ClassifyRequest{Model: "survivor", Items: d.Rows[0]})
	if rec := postJSON(t, s2, "/v1/classify", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("classify after restart: status %d: %s", rec.Code, rec.Body)
	}
}
