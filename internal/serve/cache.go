package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// DefaultCacheSize is the per-model prediction cache capacity applied
// when Config.CacheSize is zero.
const DefaultCacheSize = 4096

// predictCache memoizes classifications of discretized rows for one
// served model. Expression cohorts repeat rows heavily (re-submitted
// panels, retried batches), and a classification is a pure function of
// the discretized row, so a bounded LRU turns those repeats into a hash
// lookup instead of a rule sweep.
//
// Keys are the rows' bitset.Set.Hash64 values; a hit additionally
// verifies Set.Equal against the stored row, so a 64-bit hash collision
// degrades to a miss (and an overwrite on insert), never to a wrong
// label. Concurrent requests for the same uncached row are coalesced
// singleflight-style: one computes, the rest wait for its result.
//
// Invalidation is by replacement: RegisterModel builds a fresh cache
// for the incoming model, so a hot-swap can never serve the old
// model's labels.
type predictCache struct {
	capacity int

	mu     sync.Mutex
	byHash map[uint64]*list.Element // one slot per hash; Equal-verified
	lru    *list.List               // front = most recently used *cacheEntry
	flight map[uint64]*inflightPredict

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	hash  uint64
	key   *bitset.Set // cloned at insert; never aliased to request state
	label dataset.Label
	idx   int
}

type inflightPredict struct {
	key   *bitset.Set
	done  chan struct{}
	label dataset.Label
	idx   int
	err   error
}

func newPredictCache(capacity int) *predictCache {
	return &predictCache{
		capacity: capacity,
		byHash:   make(map[uint64]*list.Element, capacity),
		lru:      list.New(),
		flight:   make(map[uint64]*inflightPredict),
	}
}

// get returns the cached classification of row, if present. The batch
// path probes with get and fills misses through the batch kernel; the
// single-row path uses getOrCompute for singleflight coalescing.
func (c *predictCache) get(row *bitset.Set) (dataset.Label, int, bool) {
	h := row.Hash64()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byHash[h]; ok {
		ent := e.Value.(*cacheEntry)
		if ent.key.Equal(row) {
			c.lru.MoveToFront(e)
			c.hits.Add(1)
			return ent.label, ent.idx, true
		}
	}
	c.misses.Add(1)
	return 0, 0, false
}

// put memoizes a classification. The row is cloned, so callers may
// return it to a pool immediately.
func (c *predictCache) put(row *bitset.Set, label dataset.Label, idx int) {
	h := row.Hash64()
	c.mu.Lock()
	c.insertLocked(h, row.Clone(), label, idx)
	c.mu.Unlock()
}

func (c *predictCache) insertLocked(h uint64, key *bitset.Set, label dataset.Label, idx int) {
	if e, ok := c.byHash[h]; ok {
		// Same row re-inserted, or a hash collision: either way the slot
		// holds the newest classification.
		ent := e.Value.(*cacheEntry)
		ent.key, ent.label, ent.idx = key, label, idx
		c.lru.MoveToFront(e)
		return
	}
	c.byHash[h] = c.lru.PushFront(&cacheEntry{hash: h, key: key, label: label, idx: idx})
	if c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byHash, oldest.Value.(*cacheEntry).hash)
		c.evictions.Add(1)
	}
}

// getOrCompute returns the cached classification of row, computing and
// memoizing it with fn on a miss. Concurrent misses on the same row are
// coalesced: exactly one caller runs fn, the rest block on its result.
// fn's error is propagated to every waiter and nothing is cached.
func (c *predictCache) getOrCompute(row *bitset.Set, fn func() (dataset.Label, int, error)) (dataset.Label, int, error) {
	h := row.Hash64()
	c.mu.Lock()
	if e, ok := c.byHash[h]; ok {
		ent := e.Value.(*cacheEntry)
		if ent.key.Equal(row) {
			c.lru.MoveToFront(e)
			c.hits.Add(1)
			c.mu.Unlock()
			return ent.label, ent.idx, nil
		}
	}
	c.misses.Add(1)
	if fl, ok := c.flight[h]; ok && fl.key.Equal(row) {
		c.mu.Unlock()
		<-fl.done
		return fl.label, fl.idx, fl.err
	}
	// Leader (or a hash-colliding concurrent row, which computes
	// unconditionally rather than wait behind a different row's flight).
	fl := &inflightPredict{key: row.Clone(), done: make(chan struct{})}
	leader := c.flight[h] == nil
	if leader {
		c.flight[h] = fl
	}
	c.mu.Unlock()

	fl.label, fl.idx, fl.err = fn()

	c.mu.Lock()
	if leader {
		delete(c.flight, h)
	}
	if fl.err == nil {
		c.insertLocked(h, fl.key, fl.label, fl.idx)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.label, fl.idx, fl.err
}

// cacheCounters is a point-in-time snapshot for /metrics.
type cacheCounters struct {
	hits, misses, evictions uint64
}

func (c *predictCache) counters() cacheCounters {
	return cacheCounters{
		hits:      c.hits.Load(),
		misses:    c.misses.Load(),
		evictions: c.evictions.Load(),
	}
}
