package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/discretize"
	"repro/internal/jobs"
	"repro/internal/rcbt"
)

// streamFixtureCreate is the create body used across the streaming
// tests: 8 rows over two genes; g0 separates the classes perfectly
// (cut at (4+10)/2 = 7), g1 is noise MDL drops.
const streamFixtureCreate = `{
 "name": "d",
 "classes": ["a", "b"],
 "genes": ["g0", "g1"],
 "rows": [
  {"values": [1, 3], "label": "a"}, {"values": [2, 1], "label": "a"},
  {"values": [3, 4], "label": "a"}, {"values": [4, 1], "label": "a"},
  {"values": [10, 5], "label": "b"}, {"values": [11, 9], "label": "b"},
  {"values": [12, 2], "label": "b"}, {"values": [13, 6], "label": "b"}
 ]
}`

// newStreamServer wires a datastore and a jobs manager into a Server
// with auto-refresh debounced at refreshAfter.
func newStreamServer(t *testing.T, refreshAfter time.Duration, keep int) (*Server, *datastore.Store) {
	t.Helper()
	store, err := datastore.Open(datastore.Config{Dir: t.TempDir(), KeepVersions: keep})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.Open(context.Background(), jobs.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	d, _ := dataset.RunningExample()
	s := newTestServer(t, Config{
		Jobs:         mgr,
		Store:        store,
		RefreshAfter: refreshAfter,
		RefreshSpec:  jobs.Spec{K: 2, NL: 3, MinsupFrac: 0.5},
		Datasets:     map[string]NamedDataset{"running-example": {Dataset: d}},
	})
	t.Cleanup(s.Close)
	return s, store
}

func decodeDatasetInfo(t *testing.T, body *bytes.Buffer) DatasetInfo {
	t.Helper()
	var info DatasetInfo
	if err := json.Unmarshal(body.Bytes(), &info); err != nil {
		t.Fatalf("decode dataset info: %v (%s)", err, body)
	}
	return info
}

func TestDatasetCRUD(t *testing.T) {
	s, _ := newStreamServer(t, -1, 0) // auto-refresh off: pure CRUD

	rec := postJSONRaw(t, s, "/v1/datasets", streamFixtureCreate)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body)
	}
	info := decodeDatasetInfo(t, rec.Body)
	if info.Name != "d" || info.Version != 1 || info.Rows != 8 || info.Genes != 2 {
		t.Fatalf("create info %+v", info)
	}
	if info.SelectedGenes != 1 || info.Items != 2 {
		t.Fatalf("discretization info %+v: want 1 selected gene, 2 items", info)
	}

	if rec := postJSONRaw(t, s, "/v1/datasets", streamFixtureCreate); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/datasets",
		`{"name":"bad/name","classes":["a","b"],"genes":["g"]}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad name: status %d: %s", rec.Code, rec.Body)
	}

	// Append two rows interior to the existing intervals → fast path.
	rec = postJSONRaw(t, s, "/v1/datasets/d/rows",
		`{"rows":[{"values":[2,8],"label":"a"},{"values":[12,3],"label":1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body)
	}
	info = decodeDatasetInfo(t, rec.Body)
	if info.Version != 2 || info.Rows != 10 {
		t.Fatalf("append info %+v", info)
	}
	if info.Refresh == nil || !info.Refresh.FastPath || info.Refresh.AppendedRows != 2 {
		t.Fatalf("append refresh stats %+v", info.Refresh)
	}

	// Error taxonomy on append.
	if rec := postJSONRaw(t, s, "/v1/datasets/nope/rows", `{"rows":[{"values":[1,1],"label":"a"}]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("append unknown: status %d", rec.Code)
	}
	if rec := postJSONRaw(t, s, "/v1/datasets/d/rows", `{"rows":[{"values":[1,1],"label":"c"}]}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("append unknown class: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/datasets/d/rows", `{"rows":[{"values":[1],"label":"a"}]}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("append short row: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/datasets/d/rows", `{"rows":[]}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty append: status %d: %s", rec.Code, rec.Body)
	}

	// Inspection: latest, pinned, list, gone.
	rec = getJSON(t, s, "/v1/datasets/d")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: status %d", rec.Code)
	}
	info = decodeDatasetInfo(t, rec.Body)
	if info.Version != 2 || len(info.Versions) != 2 {
		t.Fatalf("get info %+v", info)
	}
	rec = getJSON(t, s, "/v1/datasets/d/versions/1")
	if rec.Code != http.StatusOK || decodeDatasetInfo(t, rec.Body).Rows != 8 {
		t.Fatalf("get v1: status %d: %s", rec.Code, rec.Body)
	}
	if rec := getJSON(t, s, "/v1/datasets/d/versions/9"); rec.Code != http.StatusConflict {
		t.Fatalf("get future version: status %d", rec.Code)
	}
	if rec := getJSON(t, s, "/v1/datasets/d/versions/zero"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("get non-numeric version: status %d", rec.Code)
	}
	if rec := getJSON(t, s, "/v1/datasets/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("get unknown: status %d", rec.Code)
	}
	rec = getJSON(t, s, "/v1/datasets")
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list.Datasets) != 1 {
		t.Fatalf("list: %v (%s)", err, rec.Body)
	}
}

// TestJobDatasetResolution covers the name / name@version job routing:
// latest, pinned, pruned (409), malformed (422), and the static-map
// fallback.
func TestJobDatasetResolution(t *testing.T) {
	s, store := newStreamServer(t, -1, 2)
	if rec := postJSONRaw(t, s, "/v1/datasets", streamFixtureCreate); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/datasets/d/rows",
		`{"rows":[{"values":[2,8],"label":"a"}]}`); rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}

	// Pinned to v1 while it is retained.
	job := submitJob(t, s, `{"kind":"train","dataset":"d@1","modelName":"m1","k":2,"nl":3,"minsupFrac":0.5}`)
	done := pollJob(t, s, job.ID)
	if done.State != jobs.StateSucceeded {
		t.Fatalf("pinned train: %+v", done)
	}
	if done.Spec.DatasetVersion != 1 || done.Spec.Dataset != "d@1" {
		t.Fatalf("pinned spec %+v, want datasetVersion 1", done.Spec)
	}

	// Latest resolves to v2.
	job = submitJob(t, s, `{"kind":"train","dataset":"d","modelName":"m2","k":2,"nl":3,"minsupFrac":0.5}`)
	if done = pollJob(t, s, job.ID); done.State != jobs.StateSucceeded || done.Spec.DatasetVersion != 2 {
		t.Fatalf("latest train %+v, want datasetVersion 2", done)
	}

	// Two more appends prune v1 (KeepVersions=2) → pinned ref is 409.
	for i := 0; i < 2; i++ {
		if rec := postJSONRaw(t, s, "/v1/datasets/d/rows",
			`{"rows":[{"values":[2,8],"label":"a"}]}`); rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	if vs, err := store.Versions("d"); err != nil || vs[0] != 3 {
		t.Fatalf("retained versions %v (%v)", vs, err)
	}
	if rec := postJSONRaw(t, s, "/v1/jobs", `{"kind":"train","dataset":"d@1"}`); rec.Code != http.StatusConflict {
		t.Fatalf("pruned pin: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/jobs", `{"kind":"train","dataset":"d@x"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed ref: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSONRaw(t, s, "/v1/jobs", `{"kind":"train","dataset":"ghost"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown ref: status %d: %s", rec.Code, rec.Body)
	}

	// The static registered-dataset map still resolves.
	job = submitJob(t, s, `{"kind":"mine","dataset":"running-example","minsupFrac":0.5}`)
	if done = pollJob(t, s, job.ID); done.State != jobs.StateSucceeded {
		t.Fatalf("static dataset mine: %+v", done)
	}
	if done.Spec.DatasetVersion != 0 {
		t.Fatalf("static dataset stamped version %d, want 0", done.Spec.DatasetVersion)
	}
}

// pollModelVersion polls GET /v1/models until the named model reports
// the wanted dataset version.
func pollModelVersion(t *testing.T, s *Server, model string, version int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := getJSON(t, s, "/v1/models")
		var resp struct {
			Models []ModelInfo `json:"models"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err == nil {
			for _, mi := range resp.Models {
				if mi.Name == model && mi.Meta != nil && mi.Meta.DatasetVersion == version {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("model %s never reached dataset version %d", model, version)
}

// TestAutoRefreshOracle is the tentpole's correctness bar: an append
// triggers a debounced re-train whose hot-swapped model must be
// indistinguishable from a from-scratch train on the final snapshot.
func TestAutoRefreshOracle(t *testing.T) {
	s, store := newStreamServer(t, time.Millisecond, 0)
	if rec := postJSONRaw(t, s, "/v1/datasets", streamFixtureCreate); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body)
	}
	rec := postJSONRaw(t, s, "/v1/datasets/d/rows",
		`{"rows":[{"values":[6,1],"label":"a"},{"values":[12,7],"label":"b"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}
	pollModelVersion(t, s, "d", 2)

	// Fetch the served envelope and rebuild the model it carries.
	envRec := getJSON(t, s, "/v1/models/d")
	if envRec.Code != http.StatusOK {
		t.Fatalf("model envelope: %d", envRec.Code)
	}
	got, err := rcbt.LoadModel(bytes.NewReader(envRec.Body.Bytes()))
	if err != nil {
		t.Fatalf("load served model: %v", err)
	}
	if got.Meta.DatasetVersion != 2 || got.Meta.TrainRows != 10 {
		t.Fatalf("served meta %+v", got.Meta)
	}

	// From-scratch oracle: refit + retransform + retrain on the final
	// snapshot's matrix, independent of the incremental pipeline.
	snap, err := store.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	dz, err := discretize.FitMatrix(snap.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	full, err := dz.Transform(snap.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rcbt.Train(full, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := got.Classifier.Save(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.Save(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if gotBuf.String() != wantBuf.String() {
		t.Fatalf("refreshed classifier diverges from from-scratch train:\n got %s\nwant %s",
			gotBuf.String(), wantBuf.String())
	}

	// The metrics surface the versions.
	metrics := getJSON(t, s, "/metrics").Body.String()
	for _, line := range []string{
		`rcbtserved_model_dataset_version{model="d"} 2`,
		`rcbtserved_dataset_latest_version{dataset="d"} 2`,
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("metrics missing %q:\n%s", line, metrics)
		}
	}
}

// TestClassifyAcrossSwap hammers /v1/classify while appends hot-swap
// the model underneath: every response must be a 200 with a label from
// the class list — never an error, never a half-installed model.
func TestClassifyAcrossSwap(t *testing.T) {
	s, _ := newStreamServer(t, time.Millisecond, 0)
	if rec := postJSONRaw(t, s, "/v1/datasets", streamFixtureCreate); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body)
	}
	// Seed the first model and wait for it to serve.
	if rec := postJSONRaw(t, s, "/v1/jobs",
		`{"kind":"train","dataset":"d","modelName":"d","k":2,"nl":3,"minsupFrac":0.5}`); rec.Code != http.StatusAccepted {
		t.Fatalf("seed train: %d: %s", rec.Code, rec.Body)
	}
	pollModelVersion(t, s, "d", 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"values":[%d, 5]}`, 1+(i+w)%13)
				req := httptest.NewRequest(http.MethodPost, "/v1/models/d/classify", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					select {
					case errCh <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String()):
					default:
					}
					return
				}
				var resp ClassifyResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil ||
					(resp.Class != "a" && resp.Class != "b") {
					select {
					case errCh <- fmt.Sprintf("bad classify body: %s", rec.Body.String()):
					default:
					}
					return
				}
			}
		}(w)
	}

	// Each append swaps in a refreshed model while the workers hammer.
	for i := 0; i < 4; i++ {
		rec := postJSONRaw(t, s, "/v1/datasets/d/rows",
			fmt.Sprintf(`{"rows":[{"values":[%d,1],"label":"a"},{"values":[%d,2],"label":"b"}]}`, 1+i, 10+i))
		if rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d: %s", i, rec.Code, rec.Body)
		}
		pollModelVersion(t, s, "d", 2+i)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatalf("classification failed across swap: %s", msg)
	default:
	}
}
