package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/dataset"
	"repro/internal/rcbt"
)

// maxBodyBytes bounds request bodies so a misbehaving client cannot
// buffer unbounded JSON into the server.
const maxBodyBytes = 32 << 20

// ClassifyRequest is the body of POST /v1/classify. Exactly one of
// Values (raw expression row, discretized with the model's cuts) or
// Items (pre-discretized item ids) must be set.
type ClassifyRequest struct {
	Model  string    `json:"model"`
	Values []float64 `json:"values,omitempty"`
	Items  []int     `json:"items,omitempty"`
}

// ClassifyResponse is the body of a successful classification.
type ClassifyResponse struct {
	Model string `json:"model"`
	Label int    `json:"label"`
	Class string `json:"class"`
	// Classifier is the 0-based index of the sub-classifier that
	// decided (0 = main), or -1 when the default class was used.
	Classifier int `json:"classifier"`
}

// BatchRequest is the body of POST /v1/classify/batch. Each row is
// classified independently against the same model.
type BatchRequest struct {
	Model string     `json:"model"`
	Rows  []BatchRow `json:"rows"`
}

// BatchRow is one row of a batch request; the same one-of rule as
// ClassifyRequest applies.
type BatchRow struct {
	Values []float64 `json:"values,omitempty"`
	Items  []int     `json:"items,omitempty"`
}

// BatchResponse carries one result per request row, in order. Rows
// that failed have a non-empty Error and a Label of -1.
type BatchResponse struct {
	Model   string        `json:"model"`
	Results []BatchResult `json:"results"`
}

// BatchResult is the outcome for one batch row.
type BatchResult struct {
	Label      int    `json:"label"`
	Class      string `json:"class,omitempty"`
	Classifier int    `json:"classifier"`
	Error      string `json:"error,omitempty"`
}

// ModelInfo describes one loaded model in GET /v1/models.
type ModelInfo struct {
	Name           string     `json:"name"`
	Classes        []string   `json:"classes,omitempty"`
	NumItems       int        `json:"numItems,omitempty"`
	Genes          int        `json:"genes,omitempty"`
	HasDiscretizer bool       `json:"hasDiscretizer"`
	Meta           *rcbt.Meta `json:"meta,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, ok := s.lookupModel(w, req.Model)
	if !ok {
		return
	}
	label, idx, err := predictRow(r.Context(), m, req.Values, req.Items)
	if err != nil {
		writeClassifyError(w, err)
		return
	}
	s.metrics.recordPrediction(req.Model, m.ClassName(label))
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Model:      req.Model,
		Label:      int(label),
		Class:      m.ClassName(label),
		Classifier: idx,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, ok := s.lookupModel(w, req.Model)
	if !ok {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no rows")
		return
	}
	if len(req.Rows) > s.maxB {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d rows, limit is %d", len(req.Rows), s.maxB))
		return
	}

	results := make([]BatchResult, len(req.Rows))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(req.Rows) {
		workers = len(req.Rows)
	}
	ctx := r.Context()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				row := req.Rows[idx]
				label, clfIdx, err := predictRow(ctx, m, row.Values, row.Items)
				if err != nil {
					results[idx] = BatchResult{Label: -1, Classifier: -1, Error: err.Error()}
					continue
				}
				s.metrics.recordPrediction(req.Model, m.ClassName(label))
				results[idx] = BatchResult{Label: int(label), Class: m.ClassName(label), Classifier: clfIdx}
			}
		}()
	}
feed:
	for i := range req.Rows {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		writeClassifyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Model: req.Model, Results: results})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	models := make(map[string]*rcbt.Model, len(s.models))
	for name, m := range s.models {
		models[name] = m
	}
	s.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(models))
	for _, name := range s.ModelNames() {
		m, ok := models[name]
		if !ok { // registered between the snapshot and ModelNames
			continue
		}
		info := ModelInfo{
			Name:           name,
			Classes:        m.ClassNames,
			NumItems:       m.NumItems,
			HasDiscretizer: m.Discretizer != nil,
		}
		if m.Discretizer != nil {
			info.Genes = len(m.Discretizer.GeneNames)
		}
		if m.Meta != (rcbt.Meta{}) {
			meta := m.Meta
			info.Meta = &meta
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w)
	if s.jobs != nil {
		writeJobMetrics(w, s.jobs.Metrics())
	}
}

// predictRow applies the one-of values/items rule and honours the
// request context: expired deadlines surface as the context error so
// callers can map them to 504.
func predictRow(ctx context.Context, m *rcbt.Model, values []float64, items []int) (dataset.Label, int, error) {
	if err := ctx.Err(); err != nil {
		return -1, -1, err
	}
	switch {
	case len(values) > 0 && len(items) > 0:
		return -1, -1, shapeError("set exactly one of values or items, not both")
	case len(values) > 0:
		return m.PredictValues(values)
	case len(items) > 0:
		return m.PredictItems(items)
	default:
		return -1, -1, shapeError("set one of values or items")
	}
}

// shapeError marks a malformed row specification; it maps to 400
// rather than the 422 used for rows a valid request shape cannot
// classify (wrong width, unknown item ids).
type shapeError string

func (e shapeError) Error() string { return string(e) }

func (s *Server) lookupModel(w http.ResponseWriter, name string) (*rcbt.Model, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		// A single-model server does not need the name spelled out.
		if len(s.models) == 1 {
			for _, m := range s.models {
				return m, true
			}
		}
		writeError(w, http.StatusBadRequest, "model name required")
		return nil, false
	}
	m, ok := s.models[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return nil, false
	}
	return m, true
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return false
	}
	return true
}

func writeClassifyError(w http.ResponseWriter, err error) {
	var shape shapeError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	case errors.As(err, &shape):
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) // vetsuite:allow uncheckederr -- response already committed; client gone is not actionable
}
