package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rcbt"
)

// maxBodyBytes bounds request bodies so a misbehaving client cannot
// buffer unbounded JSON into the server.
const maxBodyBytes = 32 << 20

// ClassifyRequest is the body of POST /v1/models/{name}/classify.
// Exactly one of Values (raw expression row, discretized with the
// model's cuts) or Items (pre-discretized item ids) must be set.
// Model is optional on the model-scoped route (the path names the
// model); when present it must match the path.
type ClassifyRequest struct {
	Model  string    `json:"model,omitempty"`
	Values []float64 `json:"values,omitempty"`
	Items  []int     `json:"items,omitempty"`
}

// ClassifyResponse is the body of a successful classification.
type ClassifyResponse struct {
	Model string `json:"model"`
	Label int    `json:"label"`
	Class string `json:"class"`
	// Classifier is the 0-based index of the sub-classifier that
	// decided (0 = main), or -1 when the default class was used.
	Classifier int `json:"classifier"`
}

// BatchRequest is the body of POST /v1/models/{name}/classify/batch.
// Each row is classified independently against the same model. The
// same Model rule as ClassifyRequest applies.
type BatchRequest struct {
	Model string     `json:"model,omitempty"`
	Rows  []BatchRow `json:"rows"`
}

// BatchRow is one row of a batch request; the same one-of rule as
// ClassifyRequest applies.
type BatchRow struct {
	Values []float64 `json:"values,omitempty"`
	Items  []int     `json:"items,omitempty"`
}

// BatchResponse carries one result per request row, in order. Rows
// that failed have a non-empty Error and a Label of -1.
type BatchResponse struct {
	Model   string        `json:"model"`
	Results []BatchResult `json:"results"`
}

// BatchResult is the outcome for one batch row.
type BatchResult struct {
	Label      int    `json:"label"`
	Class      string `json:"class,omitempty"`
	Classifier int    `json:"classifier"`
	Error      string `json:"error,omitempty"`
}

// ModelInfo describes one loaded model in GET /v1/models.
type ModelInfo struct {
	Name           string     `json:"name"`
	Classes        []string   `json:"classes,omitempty"`
	NumItems       int        `json:"numItems,omitempty"`
	Genes          int        `json:"genes,omitempty"`
	HasDiscretizer bool       `json:"hasDiscretizer"`
	Meta           *rcbt.Meta `json:"meta,omitempty"`
}

// errorResponse is the unified error envelope every handler writes:
// {"error":{"code","message"}}. Code is a stable machine-readable slug
// derived from the HTTP status; Message is the human diagnostic.
type errorResponse struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// codeForStatus names each HTTP status the handlers produce; clients
// switch on the slug instead of parsing messages.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "deadline"
	default:
		if status >= 500 {
			return "internal"
		}
		return "error"
	}
}

// redirectLegacyClassify serves the pre-resource classify paths for
// one release: the body is peeked for the model name (a single-model
// server fills it in) and the client is 308-redirected to the
// model-scoped route. 308 re-sends the method and body, so the target
// handler sees the original request.
func (s *Server) redirectLegacyClassify(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
			return
		}
		var peek struct {
			Model string `json:"model"`
		}
		json.Unmarshal(body, &peek) // vetsuite:allow uncheckederr -- best-effort peek; malformed bodies get their real diagnostic at the target
		name := peek.Model
		if name == "" {
			s.mu.RLock()
			if len(s.models) == 1 {
				for n := range s.models {
					name = n
				}
			}
			s.mu.RUnlock()
		}
		if name == "" {
			writeError(w, http.StatusBadRequest, "model name required")
			return
		}
		w.Header().Set("Deprecation", "true")
		http.Redirect(w, r, "/v1/models/"+url.PathEscape(name)+"/classify"+suffix, http.StatusPermanentRedirect)
	}
}

// bindModelName reconciles the route's {name} with the body's
// (optional, legacy) model field: an empty body field inherits the
// path, a mismatch is a 400.
func bindModelName(w http.ResponseWriter, r *http.Request, model *string) bool {
	name := r.PathValue("name")
	if *model != "" && *model != name {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("body names model %q but the path names %q", *model, name))
		return false
	}
	*model = name
	return true
}

func (s *Server) handleClassifyModel(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !bindModelName(w, r, &req.Model) {
		return
	}
	sm, ok := s.lookupModel(w, r, req.Model)
	if !ok {
		return
	}
	m := sm.model
	var (
		label dataset.Label
		idx   int
		err   error
	)
	if m.NumItems > 0 {
		if err = r.Context().Err(); err != nil {
			writeClassifyError(w, err)
			return
		}
		var row *bitset.Set
		row, err = sm.rowSet(req.Values, req.Items)
		if err != nil {
			writeClassifyError(w, err)
			return
		}
		if sm.cache != nil {
			label, idx, err = sm.cache.getOrCompute(row, func() (dataset.Label, int, error) {
				l, i := m.Classifier.Predict(row)
				return l, i, nil
			})
		} else {
			label, idx = m.Classifier.Predict(row)
		}
		sm.putRow(row)
	} else {
		label, idx, err = predictRow(r.Context(), m, req.Values, req.Items)
	}
	if err != nil {
		writeClassifyError(w, err)
		return
	}
	s.metrics.recordPrediction(req.Model, m.ClassName(label))
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Model:      req.Model,
		Label:      int(label),
		Class:      m.ClassName(label),
		Classifier: idx,
	})
}

func (s *Server) handleBatchModel(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBatchRequest(w, r, s.maxB)
	if !ok {
		return
	}
	if !bindModelName(w, r, &req.Model) {
		return
	}
	sm, ok := s.lookupModel(w, r, req.Model)
	if !ok {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no rows")
		return
	}
	if sm.batch {
		s.batchKernel(w, r, sm, req)
		return
	}
	s.batchScalar(w, r, sm.model, req)
}

// decodeBatchRequest streams the batch body token by token, so a batch
// larger than maxB is rejected with 413 as soon as row maxB+1 appears —
// before any per-row classification work and without buffering the
// excess rows into memory.
func decodeBatchRequest(w http.ResponseWriter, r *http.Request, maxB int) (*BatchRequest, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	bad := func(msg string) (*BatchRequest, bool) {
		writeError(w, http.StatusBadRequest, "malformed request: "+msg)
		return nil, false
	}
	tok, err := dec.Token()
	if err != nil {
		return bad(err.Error())
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return bad("request body must be a JSON object")
	}
	req := &BatchRequest{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return bad(err.Error())
		}
		key, _ := keyTok.(string)
		switch key {
		case "model":
			if err := dec.Decode(&req.Model); err != nil {
				return bad(err.Error())
			}
		case "rows":
			tok, err := dec.Token()
			if err != nil {
				return bad(err.Error())
			}
			if tok == nil { // "rows": null, same as absent
				continue
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				return bad("rows must be an array")
			}
			for dec.More() {
				if len(req.Rows) >= maxB {
					writeError(w, http.StatusRequestEntityTooLarge,
						fmt.Sprintf("batch exceeds the %d-row limit", maxB))
					return nil, false
				}
				var row BatchRow
				if err := dec.Decode(&row); err != nil {
					return bad(err.Error())
				}
				req.Rows = append(req.Rows, row)
			}
			if _, err := dec.Token(); err != nil { // closing ']'
				return bad(err.Error())
			}
		default:
			return bad(fmt.Sprintf("unknown field %q", key))
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return bad(err.Error())
	}
	return req, true
}

// batchKernel is the read path for models with a fixed item universe:
// every row is discretized into a pooled bitset, probed against the
// prediction cache, and the misses go through one rule-major
// BatchScorer sweep instead of len(rows) scalar rule walks.
func (s *Server) batchKernel(w http.ResponseWriter, r *http.Request, sm *servedModel, req *BatchRequest) {
	ctx := r.Context()
	m := sm.model
	results := make([]BatchResult, len(req.Rows))
	missRows := make([]*bitset.Set, 0, len(req.Rows))
	missIdx := make([]int, 0, len(req.Rows))
	for i, br := range req.Rows {
		set, err := sm.rowSet(br.Values, br.Items)
		if err != nil {
			results[i] = BatchResult{Label: -1, Classifier: -1, Error: err.Error()}
			continue
		}
		if sm.cache != nil {
			if label, idx, ok := sm.cache.get(set); ok {
				results[i] = BatchResult{Label: int(label), Class: m.ClassName(label), Classifier: idx}
				s.metrics.recordPrediction(req.Model, m.ClassName(label))
				sm.putRow(set)
				continue
			}
		}
		missRows = append(missRows, set)
		missIdx = append(missIdx, i)
	}
	if err := ctx.Err(); err != nil {
		for _, set := range missRows {
			sm.putRow(set)
		}
		writeClassifyError(w, err)
		return
	}
	if len(missRows) > 0 {
		sc := sm.scorers.Get().(*rcbt.BatchScorer)
		labels := make([]dataset.Label, len(missRows))
		idxs := make([]int, len(missRows))
		sc.PredictInto(missRows, labels, idxs)
		sm.scorers.Put(sc)
		for k, i := range missIdx {
			if sm.cache != nil {
				sm.cache.put(missRows[k], labels[k], idxs[k])
			}
			results[i] = BatchResult{Label: int(labels[k]), Class: m.ClassName(labels[k]), Classifier: idxs[k]}
			s.metrics.recordPrediction(req.Model, m.ClassName(labels[k]))
			sm.putRow(missRows[k])
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Model: req.Model, Results: results})
}

// batchScalar is the fallback for models without a fixed universe: a
// bounded worker pool walking rows through the scalar predictor.
func (s *Server) batchScalar(w http.ResponseWriter, r *http.Request, m *rcbt.Model, req *BatchRequest) {
	results := make([]BatchResult, len(req.Rows))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(req.Rows) {
		workers = len(req.Rows)
	}
	ctx := r.Context()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				row := req.Rows[idx]
				label, clfIdx, err := predictRow(ctx, m, row.Values, row.Items)
				if err != nil {
					results[idx] = BatchResult{Label: -1, Classifier: -1, Error: err.Error()}
					continue
				}
				s.metrics.recordPrediction(req.Model, m.ClassName(label))
				results[idx] = BatchResult{Label: int(label), Class: m.ClassName(label), Classifier: clfIdx}
			}
		}()
	}
feed:
	for i := range req.Rows {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		writeClassifyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Model: req.Model, Results: results})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	models := make(map[string]*rcbt.Model, len(s.models))
	for name, sm := range s.models {
		models[name] = sm.model
	}
	s.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(models))
	for _, name := range s.ModelNames() {
		m, ok := models[name]
		if !ok { // registered between the snapshot and ModelNames
			continue
		}
		info := ModelInfo{
			Name:           name,
			Classes:        m.ClassNames,
			NumItems:       m.NumItems,
			HasDiscretizer: m.Discretizer != nil,
		}
		if m.Discretizer != nil {
			info.Genes = len(m.Discretizer.GeneNames)
		}
		if m.Meta != (rcbt.Meta{}) {
			meta := m.Meta
			info.Meta = &meta
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w)
	s.writeCacheMetrics(w)
	s.writeModelVersionMetrics(w)
	if s.jobs != nil {
		writeJobMetrics(w, s.jobs.Metrics())
	}
	if s.store != nil {
		s.writeDatasetMetrics(w)
	}
}

// predictRow applies the one-of values/items rule and honours the
// request context: expired deadlines surface as the context error so
// callers can map them to 504.
func predictRow(ctx context.Context, m *rcbt.Model, values []float64, items []int) (dataset.Label, int, error) {
	if err := ctx.Err(); err != nil {
		return -1, -1, err
	}
	switch {
	case len(values) > 0 && len(items) > 0:
		return -1, -1, shapeError("set exactly one of values or items, not both")
	case len(values) > 0:
		return m.PredictValues(values)
	case len(items) > 0:
		return m.PredictItems(items)
	default:
		return -1, -1, shapeError("set one of values or items")
	}
}

// shapeError marks a malformed row specification; it maps to 400
// rather than the 422 used for rows a valid request shape cannot
// classify (wrong width, unknown item ids).
type shapeError string

func (e shapeError) Error() string { return string(e) }

func (s *Server) lookupModel(w http.ResponseWriter, r *http.Request, name string) (*servedModel, bool) {
	s.mu.RLock()
	if name == "" {
		// A single-model server does not need the name spelled out.
		if len(s.models) == 1 {
			for _, m := range s.models {
				s.mu.RUnlock()
				return m, true
			}
		}
		s.mu.RUnlock()
		writeError(w, http.StatusBadRequest, "model name required")
		return nil, false
	}
	m, ok := s.models[name]
	s.mu.RUnlock()
	if !ok {
		if m = s.pullFromPeers(r, name); m != nil {
			return m, true
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return nil, false
	}
	return m, true
}

// peerFetchHeader guards pull-on-miss against replica loops: a fetch
// carrying it is answered from local state only.
const peerFetchHeader = "X-Rcbt-Peer-Fetch"

// pullFromPeers fetches the named model's envelope from the first
// configured peer that has it, registers it locally, and returns the
// served model — the replication read path. It returns nil when peers
// are not configured, the incoming request is itself a peer fetch
// (loop guard), or no peer has the model.
func (s *Server) pullFromPeers(r *http.Request, name string) *servedModel {
	if len(s.peers) == 0 || r.Header.Get(peerFetchHeader) != "" {
		return nil
	}
	for _, peer := range s.peers {
		m, err := s.fetchPeerModel(r.Context(), peer, name)
		if err != nil {
			if s.logger != nil {
				s.logger.Warn("peer model fetch", "peer", peer, "model", name, "err", err)
			}
			continue
		}
		if err := s.RegisterModel(name, m); err != nil {
			continue
		}
		if s.logger != nil {
			s.logger.Info("model pulled from peer", "peer", peer, "model", name)
		}
		s.mu.RLock()
		sm := s.models[name]
		s.mu.RUnlock()
		return sm
	}
	return nil
}

func (s *Server) fetchPeerModel(ctx context.Context, peer, name string) (*rcbt.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/v1/models/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(peerFetchHeader, "1")
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() // vetsuite:allow uncheckederr -- read-only response body
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: model %q: status %d", peer, name, resp.StatusCode)
	}
	return rcbt.LoadModel(io.LimitReader(resp.Body, maxBodyBytes))
}

// handleModelGet writes the model's envelope — the same JSON
// rcbt.Model.Save persists — so replicas (and operators) can fetch a
// servable copy of any model this replica holds.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	sm, ok := s.models[name]
	s.mu.RUnlock()
	if !ok {
		if sm = s.pullFromPeers(r, name); sm == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := sm.model.Save(w); err != nil && s.logger != nil {
		s.logger.Error("write model envelope", "model", name, "err", err)
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return false
	}
	return true
}

func writeClassifyError(w http.ResponseWriter, err error) {
	var shape shapeError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	case errors.As(err, &shape):
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: errorDetail{Code: codeForStatus(code), Message: msg}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) // vetsuite:allow uncheckederr -- response already committed; client gone is not actionable
}
