// Package serve exposes trained RCBT classifiers over an HTTP JSON
// API. A Server owns a set of named models (the envelopes written by
// rcbt.Model.Save / cmd/rcbt -save), classifies single rows and
// bounded batches, and reports Prometheus-style metrics.
//
// Endpoints (resource-oriented surface):
//
//	GET  /v1/models                        list loaded models and their metadata
//	GET  /v1/models/{name}                 fetch a model's envelope (replication)
//	POST /v1/models/{name}/classify        classify one row
//	POST /v1/models/{name}/classify/batch  classify up to Config.MaxBatch rows
//	POST   /v1/jobs                        submit a mine/train job (with Config.Jobs)
//	GET    /v1/jobs                        list jobs, GET /v1/jobs/{id} one job
//	DELETE /v1/jobs/{id}                   cancel a job
//	POST /v1/datasets                      create a versioned dataset (with Config.Store)
//	POST /v1/datasets/{name}/rows          append rows → new snapshot + auto-refresh
//	GET  /v1/datasets                      list datasets; /{name} latest, /{name}/versions/{v} pinned
//	GET  /healthz                          liveness probe
//	GET  /metrics                          Prometheus text exposition
//
// Job submissions reference datastore datasets as "{name}" (latest
// snapshot) or "{name}@{v}" (pinned version; 409 once pruned).
//
// The pre-resource paths POST /v1/classify and POST /v1/classify/batch
// answer with 308 redirects onto the model-scoped routes for one
// release. Every error body is the unified envelope
// {"error":{"code","message"}}.
//
// With Config.Peers set, a model lookup that misses locally pulls the
// envelope from the first peer replica that has it (GET
// /v1/models/{name}) and registers it, so any replica serves any
// model regardless of where its train job ran.
//
// All state is per-Server: tests and embedders can run any number of
// instances in one process.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/datastore"
	"repro/internal/discretize"
	"repro/internal/jobs"
	"repro/internal/rcbt"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 1024
	DefaultBatchWorkers   = 4
	// DefaultRefreshAfter is the auto-refresh debounce: how long a
	// dataset's appends must go quiet before a re-train job fires.
	DefaultRefreshAfter = 150 * time.Millisecond
)

// NamedDataset is a training dataset registered under a name, so job
// submissions can reference it instead of inlining rows. The
// discretizer, when present, is bundled into models trained on it.
type NamedDataset struct {
	Dataset     *dataset.Dataset
	Discretizer *discretize.Discretizer
}

// Config configures a Server. The zero value of every field means
// "use the default"; one of Models or Jobs is required.
type Config struct {
	// Models maps a serving name (used in request bodies and URLs)
	// to a loaded model.
	Models map[string]*rcbt.Model

	// Jobs, when non-nil, enables the /v1/jobs endpoints on this
	// manager. New reloads models persisted by the manager's earlier
	// succeeded train jobs and hot-registers models from new ones; a
	// server with a Jobs manager may start with zero Models.
	Jobs *jobs.Manager

	// Datasets are the named datasets job submissions may train or
	// mine on ({"dataset": "<name>"} in the request body).
	Datasets map[string]NamedDataset

	// Store, when non-nil, enables the /v1/datasets streaming-ingestion
	// endpoints. Job submissions resolve dataset references through the
	// store first — "{name}" takes the latest snapshot, "{name}@{v}"
	// pins one — falling back to the static Datasets map.
	Store *datastore.Store

	// RefreshAfter is the auto-refresh debounce: once a dataset's
	// appends go quiet for this long, a train job on its latest
	// snapshot is submitted and the resulting model hot-swapped in.
	// 0 means DefaultRefreshAfter; negative disables auto-refresh.
	// Requires both Store and Jobs.
	RefreshAfter time.Duration

	// RefreshSpec is the template for auto-refresh train jobs (K, NL,
	// minsup, timeout...). Kind is forced to "train" and an empty
	// ModelName defaults to the dataset's name.
	RefreshSpec jobs.Spec

	// RequestTimeout bounds the handling of a single request. When it
	// expires mid-request the response is 504 Gateway Timeout.
	RequestTimeout time.Duration

	// MaxBatch caps the rows accepted by /v1/classify/batch; larger
	// requests are rejected with 413 before any work happens.
	MaxBatch int

	// BatchWorkers bounds the goroutines classifying one batch on the
	// scalar fallback path (models without a fixed item universe).
	BatchWorkers int

	// CacheSize caps each model's prediction cache (classifications
	// memoized by discretized row). 0 means DefaultCacheSize; a
	// negative value disables caching.
	CacheSize int

	// Logger receives one INFO record per request. nil disables
	// request logging.
	Logger *slog.Logger

	// Peers are base URLs ("http://host:port") of replica servers. A
	// model lookup that misses locally is retried against each peer's
	// GET /v1/models/{name}; the fetched envelope is registered and
	// served (pull-on-miss). Empty disables replication.
	Peers []string
	// PeerTimeout bounds one peer model fetch (0 = 5s).
	PeerTimeout time.Duration
}

// Server is an http.Handler serving the classification API.
type Server struct {
	mu        sync.RWMutex // guards models: train jobs register into a live server
	models    map[string]*servedModel
	jobs      *jobs.Manager
	datasets  map[string]NamedDataset
	timeout   time.Duration
	maxB      int
	workers   int
	cacheSize int
	logger    *slog.Logger
	metrics   *metrics
	mux       *http.ServeMux

	store       *datastore.Store
	refresher   *jobs.Refresher
	refreshSpec jobs.Spec

	peers      []string
	peerClient *http.Client
}

// New validates cfg and builds a Server. With a Jobs manager it also
// reloads every model persisted by the manager's earlier succeeded
// train jobs (newest submission wins a name) and hooks new train jobs
// to hot-register their models.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 && cfg.Jobs == nil && cfg.Store == nil {
		return nil, errors.New("serve: no models configured and no jobs manager")
	}
	s := &Server{
		models:    make(map[string]*servedModel, len(cfg.Models)),
		jobs:      cfg.Jobs,
		datasets:  cfg.Datasets,
		store:     cfg.Store,
		timeout:   cfg.RequestTimeout,
		maxB:      cfg.MaxBatch,
		workers:   cfg.BatchWorkers,
		cacheSize: cfg.CacheSize,
		logger:    cfg.Logger,
		metrics:   newMetrics(),
	}
	if s.timeout == 0 {
		s.timeout = DefaultRequestTimeout
	}
	if s.maxB == 0 {
		s.maxB = DefaultMaxBatch
	}
	if s.workers <= 0 {
		s.workers = DefaultBatchWorkers
	}
	if s.cacheSize == 0 {
		s.cacheSize = DefaultCacheSize
	}
	if len(cfg.Peers) > 0 {
		s.peers = append([]string(nil), cfg.Peers...)
		timeout := cfg.PeerTimeout
		if timeout == 0 {
			timeout = 5 * time.Second
		}
		s.peerClient = &http.Client{Timeout: timeout}
	}
	for name, m := range cfg.Models {
		if err := s.RegisterModel(name, m); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/models/{name}/classify", s.handleClassifyModel)
	s.mux.HandleFunc("POST /v1/models/{name}/classify/batch", s.handleBatchModel)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModelGet)
	// Pre-resource paths: one release of permanent redirects. 308
	// preserves the method and body, so clients land on the new route
	// with the original request intact.
	s.mux.HandleFunc("POST /v1/classify", s.redirectLegacyClassify(""))
	s.mux.HandleFunc("POST /v1/classify/batch", s.redirectLegacyClassify("/batch"))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.jobs != nil {
		s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
		s.reloadJobModels()
		s.jobs.SetOnModel(func(name string, m *rcbt.Model) {
			if err := s.RegisterModel(name, m); err != nil && s.logger != nil {
				s.logger.Error("hot-register model", "name", name, "err", err)
			}
		})
	}
	if s.store != nil {
		s.mux.HandleFunc("POST /v1/datasets", s.handleDatasetCreate)
		s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
		s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
		s.mux.HandleFunc("GET /v1/datasets/{name}/versions/{v}", s.handleDatasetGetVersion)
		s.mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleDatasetAppend)
		if s.jobs != nil && cfg.RefreshAfter >= 0 {
			after := cfg.RefreshAfter
			if after == 0 {
				after = DefaultRefreshAfter
			}
			s.refreshSpec = cfg.RefreshSpec
			s.refresher = jobs.NewRefresher(after, s.fireRefresh)
		}
	}
	return s, nil
}

// RegisterModel atomically adds or replaces a served model; requests
// already classifying against a replaced model finish on the old one.
// The replacement carries a fresh prediction cache, so a hot-swap
// empties the name's cached classifications — the old model's labels
// can never leak through the new model.
func (s *Server) RegisterModel(name string, m *rcbt.Model) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	if m == nil || m.Classifier == nil {
		return fmt.Errorf("serve: model %q has no classifier", name)
	}
	sm := newServedModel(m, s.cacheSize)
	s.mu.Lock()
	s.models[name] = sm
	s.mu.Unlock()
	return nil
}

// reloadJobModels restores the models persisted by succeeded train
// jobs from previous processes on the same data dir. Jobs() lists in
// submission order, so the newest job holding a name wins. A missing
// or corrupt model file skips that record rather than failing startup:
// the journal survives disk mishaps the models did not.
func (s *Server) reloadJobModels() {
	for _, rec := range s.jobs.Jobs() {
		if rec.State != jobs.StateSucceeded || rec.ModelPath == "" {
			continue
		}
		m, err := loadModelFile(rec.ModelPath)
		if err == nil {
			err = s.RegisterModel(rec.ModelName, m)
		}
		if err != nil && s.logger != nil {
			s.logger.Error("reload job model", "job", rec.ID, "path", rec.ModelPath, "err", err)
		}
	}
}

func loadModelFile(path string) (*rcbt.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // vetsuite:allow uncheckederr -- read-only file, nothing buffered to lose
	return rcbt.LoadModel(f)
}

// ModelNames returns the serving names in sorted order.
func (s *Server) ModelNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ServeHTTP applies the request deadline, in-flight accounting,
// logging and metrics, then dispatches to the route handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start)
	s.metrics.recordRequest(metricPath(r.URL.Path), sw.code(), elapsed)
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code()),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// statusWriter captures the status code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
