// Package serve exposes trained RCBT classifiers over an HTTP JSON
// API. A Server owns a set of named models (the envelopes written by
// rcbt.Model.Save / cmd/rcbt -save), classifies single rows and
// bounded batches, and reports Prometheus-style metrics.
//
// Endpoints:
//
//	POST /v1/classify        classify one row of a named model
//	POST /v1/classify/batch  classify up to Config.MaxBatch rows
//	GET  /v1/models          list loaded models and their metadata
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition
//
// All state is per-Server: tests and embedders can run any number of
// instances in one process.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"repro/internal/rcbt"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 1024
	DefaultBatchWorkers   = 4
)

// Config configures a Server. The zero value of every field means
// "use the default"; Models is the only required field.
type Config struct {
	// Models maps a serving name (used in request bodies and URLs)
	// to a loaded model.
	Models map[string]*rcbt.Model

	// RequestTimeout bounds the handling of a single request. When it
	// expires mid-request the response is 504 Gateway Timeout.
	RequestTimeout time.Duration

	// MaxBatch caps the rows accepted by /v1/classify/batch; larger
	// requests are rejected with 413 before any work happens.
	MaxBatch int

	// BatchWorkers bounds the goroutines classifying one batch.
	BatchWorkers int

	// Logger receives one INFO record per request. nil disables
	// request logging.
	Logger *slog.Logger
}

// Server is an http.Handler serving the classification API.
type Server struct {
	models  map[string]*rcbt.Model
	timeout time.Duration
	maxB    int
	workers int
	logger  *slog.Logger
	metrics *metrics
	mux     *http.ServeMux
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("serve: no models configured")
	}
	for name, m := range cfg.Models {
		if name == "" {
			return nil, errors.New("serve: empty model name")
		}
		if m == nil || m.Classifier == nil {
			return nil, fmt.Errorf("serve: model %q has no classifier", name)
		}
	}
	s := &Server{
		models:  cfg.Models,
		timeout: cfg.RequestTimeout,
		maxB:    cfg.MaxBatch,
		workers: cfg.BatchWorkers,
		logger:  cfg.Logger,
		metrics: newMetrics(),
	}
	if s.timeout == 0 {
		s.timeout = DefaultRequestTimeout
	}
	if s.maxB == 0 {
		s.maxB = DefaultMaxBatch
	}
	if s.workers <= 0 {
		s.workers = DefaultBatchWorkers
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("POST /v1/classify/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ModelNames returns the serving names in sorted order.
func (s *Server) ModelNames() []string {
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ServeHTTP applies the request deadline, in-flight accounting,
// logging and metrics, then dispatches to the route handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start)
	s.metrics.recordRequest(r.URL.Path, sw.code(), elapsed)
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code()),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// statusWriter captures the status code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
