package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rcbt"
)

func TestPredictCacheLRU(t *testing.T) {
	c := newPredictCache(2)
	rowA := bitset.FromIndices(10, 1)
	rowB := bitset.FromIndices(10, 2)
	rowC := bitset.FromIndices(10, 3)

	if _, _, ok := c.get(rowA); ok {
		t.Fatal("empty cache must miss")
	}
	c.put(rowA, 1, 0)
	c.put(rowB, 0, 1)
	if label, idx, ok := c.get(rowA); !ok || label != 1 || idx != 0 {
		t.Fatalf("get(A) = (%d,%d,%v), want (1,0,true)", label, idx, ok)
	}
	// A was just touched, so inserting C must evict B.
	c.put(rowC, 1, 2)
	if _, _, ok := c.get(rowB); ok {
		t.Fatal("B should have been evicted")
	}
	if _, _, ok := c.get(rowA); !ok {
		t.Fatal("A should have survived the eviction")
	}
	cc := c.counters()
	if cc.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", cc.evictions)
	}
	if cc.hits != 2 || cc.misses != 2 {
		t.Fatalf("(hits,misses) = (%d,%d), want (2,2)", cc.hits, cc.misses)
	}

	// Mutating the caller's row after put must not corrupt the cached
	// key (put clones).
	rowC.Add(7)
	if _, _, ok := c.get(bitset.FromIndices(10, 3)); !ok {
		t.Fatal("cached key aliased to the caller's mutable row")
	}
}

func TestPredictCacheSingleflight(t *testing.T) {
	c := newPredictCache(8)
	row := bitset.FromIndices(10, 4)
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			label, idx, err := c.getOrCompute(row, func() (dataset.Label, int, error) {
				computes.Add(1)
				<-gate // hold the leader so the others pile up behind it
				return 1, 3, nil
			})
			if err != nil || label != 1 || idx != 3 {
				t.Errorf("getOrCompute = (%d,%d,%v)", label, idx, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes for one row, want 1 (singleflight)", got)
	}
	// Now cached: no further computes.
	if _, _, err := c.getOrCompute(row, func() (dataset.Label, int, error) {
		computes.Add(1)
		return 0, 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatal("cached row recomputed")
	}
}

func TestPredictCacheErrorNotCached(t *testing.T) {
	c := newPredictCache(8)
	row := bitset.FromIndices(10, 5)
	if _, _, err := c.getOrCompute(row, func() (dataset.Label, int, error) {
		return 0, 0, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("error must propagate")
	}
	if _, _, ok := c.get(row); ok {
		t.Fatal("failed compute must not be cached")
	}
}

func getMetrics(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

// TestServeCacheMetrics drives repeated classifications through both
// the single-row and batch endpoints and checks the hit/miss counters
// surface in /metrics.
func TestServeCacheMetrics(t *testing.T) {
	m := exampleModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": m}})
	d, _ := dataset.RunningExample()

	row, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[0]})
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		if rec := postJSON(t, s, "/v1/classify", string(row)); rec.Code != http.StatusOK {
			t.Fatalf("classify status %d: %s", rec.Code, rec.Body)
		}
	}
	batch := BatchRequest{Model: "example"}
	for r := 0; r < d.NumRows(); r++ {
		batch.Rows = append(batch.Rows, BatchRow{Items: d.Rows[r]})
	}
	body, _ := json.Marshal(batch)
	// First batch: row 0 hits (classified above), the rest miss and are
	// filled; the identical second batch hits on every row.
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, s, "/v1/classify/batch", string(body)); rec.Code != http.StatusOK {
			t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
		}
	}

	text := getMetrics(t, s)
	wantHits := uint64(2 + 1 + d.NumRows())
	wantMisses := uint64(1 + d.NumRows() - 1)
	for _, want := range []string{
		fmt.Sprintf(`rcbtserved_predict_cache_hits_total{model="example"} %d`, wantHits),
		fmt.Sprintf(`rcbtserved_predict_cache_misses_total{model="example"} %d`, wantMisses),
		`rcbtserved_predict_cache_evictions_total{model="example"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestHotSwapEmptiesCache proves a model reload cannot serve stale
// cached labels: after RegisterModel replaces a name, the same row
// must classify through the NEW model, and the cache counters reset.
func TestHotSwapEmptiesCache(t *testing.T) {
	d, _ := dataset.RunningExample()
	m := exampleModel(t)
	s := newTestServer(t, Config{Models: map[string]*rcbt.Model{"example": m}})

	row, _ := json.Marshal(ClassifyRequest{Model: "example", Items: d.Rows[0]})
	var before ClassifyResponse
	for i := 0; i < 2; i++ { // warm the cache: miss then hit
		rec := postJSON(t, s, "/v1/classify", string(row))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &before); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(getMetrics(t, s), `rcbtserved_predict_cache_hits_total{model="example"} 1`) {
		t.Fatal("cache not warmed before the swap")
	}

	// Swap in a constant-default model: every rule gone, so any row —
	// including the cached one — must now get the default class. If the
	// old cache survived the swap, row 0 would keep its old label.
	swapped := &rcbt.Model{
		Classifier: rcbt.ConstantClassifier(dataset.Label(1-before.Label), len(d.ClassNames)),
		ClassNames: d.ClassNames,
		NumItems:   d.NumItems(),
	}
	if err := s.RegisterModel("example", swapped); err != nil {
		t.Fatal(err)
	}

	rec := postJSON(t, s, "/v1/classify", string(row))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-swap status %d: %s", rec.Code, rec.Body)
	}
	var after ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Label == before.Label {
		t.Fatalf("post-swap label %d == pre-swap label %d: stale cache served", after.Label, before.Label)
	}
	text := getMetrics(t, s)
	if !strings.Contains(text, `rcbtserved_predict_cache_hits_total{model="example"} 0`) ||
		!strings.Contains(text, `rcbtserved_predict_cache_misses_total{model="example"} 1`) {
		t.Fatalf("swap did not reset the cache counters:\n%s", text)
	}
}

// TestBatchKernelMatchesScalarServing: the batch endpoint (kernel path,
// cache disabled) must agree row for row with the single-row endpoint.
func TestBatchKernelMatchesScalarServing(t *testing.T) {
	m, testM := synthModel(t)
	s := newTestServer(t, Config{
		Models:    map[string]*rcbt.Model{"synth": m},
		CacheSize: -1, // force every row through the rule-major kernel
	})
	batch := BatchRequest{Model: "synth"}
	n := testM.NumRows()
	for r := 0; r < n; r++ {
		batch.Rows = append(batch.Rows, BatchRow{Values: testM.Values[r]})
	}
	body, _ := json.Marshal(batch)
	rec := postJSON(t, s, "/v1/classify/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != n {
		t.Fatalf("%d results, want %d", len(resp.Results), n)
	}
	for r := 0; r < n; r++ {
		want, wantIdx, err := m.PredictValues(testM.Values[r])
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[r]
		if got.Label != int(want) || got.Classifier != wantIdx {
			t.Fatalf("row %d: batch (%d,%d), scalar (%d,%d)", r, got.Label, got.Classifier, want, wantIdx)
		}
	}
}

// TestBatchTooLargeStreaming: the 413 must fire even when the
// oversized rows arrive before the model name, and the handler must
// not have buffered past the limit.
func TestBatchTooLargeStreaming(t *testing.T) {
	s := newTestServer(t, Config{
		Models:   map[string]*rcbt.Model{"example": exampleModel(t)},
		MaxBatch: 2,
	})
	var sb strings.Builder
	sb.WriteString(`{"rows": [`)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"items":[0]}`)
	}
	sb.WriteString(`], "model": "example"}`)
	rec := postJSON(t, s, "/v1/classify/batch", sb.String())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
}
