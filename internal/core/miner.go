package core

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts MineTopkRGS to the engine.Miner interface under the name
// "topk".
type miner struct{}

func (miner) Name() string { return "topk" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	cfg := DefaultConfig(opts.Minsup, opts.K)
	cfg.MaxNodes = opts.MaxNodes
	cfg.MinConf = opts.Minconf
	cfg.Workers = opts.EffectiveWorkers()
	cfg.Progress = opts.Progress
	cfg.ProgressEvery = opts.ProgressEvery
	if opts.DisableSeedInit {
		cfg.SeedInit = false
	}
	if opts.DisableTopKPruning {
		cfg.TopKPruning = false
	}
	if opts.DisableBackwardPruning {
		cfg.BackwardPruning = false
	}
	if opts.DisableRowSort {
		cfg.SortRowsByItemCount = false
	}
	if opts.DisableDynamicMinsup {
		cfg.DynamicMinsup = false
	}
	res, err := MineContext(ctx, d, opts.Class, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	return &engine.Result{
		PerRow:           res.PerRow,
		Groups:           res.Groups,
		NumFrequentItems: res.NumFrequentItems,
	}, res.Stats, nil
}

func init() { engine.Register(miner{}) }
