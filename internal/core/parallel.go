// Parallel MineTopkRGS: the topkVisitor forks one workerVisitor per
// work-stealing worker. Workers mine whatever subtrees the scheduler
// hands them with private cloned top-k lists (scratch state, later
// discarded) and record the group events that survive their pruning.
// At every task hand-off boundary the engine seals those events into a
// batch (Flush) and streams it back to the parent (Merge) at the
// batch's sequential enumeration position, which makes parallel output
// identical to sequential output:
//
//   - a worker only suppresses (prunes or drops) work that the
//     sequential run provably suppresses or rejects at the same
//     position. All three suppression channels are anchored at known
//     sequential positions at or before the current node: the merge
//     frontier (the parent's lists, an exact sequential prefix before
//     every in-flight task), the task baseline (the spawning worker's
//     sound state captured at the task's splice position, see
//     engine.Baseliner), and — while the worker is still sequentially
//     exact, per the engine.Diverger contract — its own local lists.
//     Speculative knowledge (another worker's lists, or this worker's
//     own lists after divergence — state that may reflect sequentially
//     LATER regions) must never suppress: a group strictly below every
//     FINAL threshold can still be admitted sequentially and displaced
//     later, and while it sits in a list it blocks tie admissions, so
//     dropping it would change which of two tie-valued groups survives;
//   - every surviving event is replayed through the unmodified
//     sequential list update at its sequential position, so extra
//     events a sequential run would have rejected are rejected the
//     same way, in the same order.
//
// Because the merge runs while mining is in flight, the parent's lists
// tighten during the run; Merge publishes their thresholds back to the
// floors board, which is what closes the floor-propagation lag behind
// the old full-replay barrier.
package core

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/rules"
)

// Fork returns the private visitor for one worker: cloned per-row
// lists seeded with everything known at dispatch time, the parent's
// current effective minsup, and a snapshot of the shared threshold
// board. The fork lives for the whole run and accumulates threshold
// knowledge across every task its worker executes.
func (v *topkVisitor) Fork() engine.Visitor {
	w := &workerVisitor{
		parent:      v,
		cfg:         v.cfg,
		effMinsup:   v.effMinsup,
		boardMinsup: v.effMinsup,
		floors:      v.floors,
		lists:       make([]*rules.TopKList, len(v.lists)),
		floorConf:   make([]float64, len(v.lists)),
		floorSup:    make([]int, len(v.lists)),
		frontConf:   make([]float64, len(v.lists)),
		frontSup:    make([]int, len(v.lists)),
		baseConf:    make([]float64, len(v.lists)),
		baseSup:     make([]int, len(v.lists)),
		exact:       true,
	}
	for p, l := range v.lists {
		w.lists[p] = l.Clone()
	}
	return w
}

// Merge replays one sealed event batch through the sequential Step 13
// logic. The engine calls it on the dispatching goroutine in exact
// sequential order, so v.lists evolve exactly as a sequential run's
// would; afterwards the freshly tightened thresholds are published to
// the floors board so in-flight workers prune with them.
func (v *topkVisitor) Merge(batch any) {
	for _, ev := range batch.([]groupEvent) {
		items := ev.items
		conf := float64(ev.xp) / float64(ev.xp+ev.xn)
		v.apply(func() []int { return items }, ev.rows, conf, ev.xp, ev.xPos)
	}
	v.publishFloors()
}

// publishFloors pushes the thresholds of the parent's full lists to the
// cross-worker board. The frontier channel (PublishFrontier) carries
// the parent's thresholds verbatim: the parent's lists hold the exact
// sequential state up to the merge frontier — a position before every
// in-flight task — so workers may prune threshold TIES against them,
// exactly as the sequential run prunes ties against its own current
// lists. Tie-pruning is what keeps parallel node counts close to
// sequential on tie-dense datasets. The speculative channel (Sync)
// feeds progress reporting only.
func (v *topkVisitor) publishFloors() {
	if v.floors == nil {
		return
	}
	if v.floorConf == nil {
		v.floorConf = make([]float64, len(v.lists))
		v.floorSup = make([]int, len(v.lists))
		v.frontConf = make([]float64, len(v.lists))
		v.frontSup = make([]int, len(v.lists))
	}
	changed := false
	for p, l := range v.lists {
		if l.Len() < l.K() {
			continue
		}
		c, s := l.Threshold()
		v.frontConf[p], v.frontSup[p] = c, s // monotone: thresholds only tighten
		if cmp := rules.CompareConf(c, v.floorConf[p]); cmp > 0 || (cmp == 0 && s > v.floorSup[p]) {
			v.floorConf[p], v.floorSup[p] = c, s
			changed = true
		}
	}
	if changed {
		v.floors.Sync(v.floorConf, v.floorSup)
	}
	v.floors.PublishFrontier(v.frontConf, v.frontSup)
	// The sequential dynamic-minsup raise (with its +1: strictly better
	// supports only) is also a frontier fact, so it rides the same board.
	// The frontier precedes every in-flight task in sequential order, and
	// from the moment the raise condition holds, the sequential run
	// rejects every group at or below the k-th support — so cutting their
	// subtrees loses nothing the replay needs.
	if v.cfg.DynamicMinsup {
		v.maybeRaiseMinsup()
		if v.effMinsup > v.cfg.Minsup {
			v.floors.RaiseMinsup(v.effMinsup)
		}
	}
}

// groupEvent is one OnGroup invocation a worker kept: enough to replay
// Step 13 exactly. The antecedent is pre-expanded (the members map is
// read-only during mining, so workers may share it).
type groupEvent struct {
	items  []int
	rows   *bitset.Set
	xp, xn int
	xPos   []int
}

// syncInterval is how many nodes a worker mines between exchanges with
// the shared floors board. Small enough that the streaming parent's
// frontier sharpens in-flight workers within a subtree, large enough
// that the mutex stays off the hot path.
const syncInterval = 4

// taskBaseline is the engine.Baseliner payload: the spawning worker's
// tightest sound per-row thresholds and support cut, captured at the
// offloaded task's splice position. Everything in it is justified at
// that position, which sequentially precedes every node of the task.
type taskBaseline struct {
	conf   []float64
	sup    []int
	minsup int
}

// workerVisitor mines subtrees on one worker goroutine. It owns every
// mutable structure it touches; the only shared state is the read-only
// parent (cfg, members) and the mutex-guarded floors board.
type workerVisitor struct {
	parent *topkVisitor
	cfg    Config

	// lists are clones of the parent's per-row lists, evolved privately
	// with the events of every subtree this worker mines. While the
	// worker is exact they are a sequential-prefix state and prune;
	// afterwards they only feed the progress floors. They are discarded
	// when the run ends.
	lists []*rules.TopKList
	// effMinsup is the operative support cut: the tightest of the
	// board's frontier-rooted raise (boardMinsup), the current task's
	// baseline cut, and — while exact — the worker's own sequential
	// raise. The self-raise and the baseline are justified only at this
	// task's positions, so AdoptBaseline resets effMinsup for each
	// task; carrying either into a task that splices earlier could cut
	// groups the sequential run admits (and later displaces), changing
	// which of two tie-valued groups survives.
	effMinsup   int
	boardMinsup int

	// floors is the shared board. frontConf/frontSup snapshot its merge
	// frontier; baseConf/baseSup hold the current task's baseline; both
	// are sound suppression channels (anchored before this task), and
	// floorConf/floorSup are publish scratch for the speculative
	// progress channel. The per-node minimum over the sound channels
	// rides in the Threshold snapshot UpdateThresholds returns, so
	// deferred sibling prunes see the thresholds of the node that
	// deferred them, exactly like the sequential engine.
	floors    *engine.Floors
	floorConf []float64
	floorSup  []int
	frontConf []float64
	frontSup  []int
	baseConf  []float64
	baseSup   []int

	// exact is true while everything in this worker's lists precedes
	// the current node in sequential order — the whole first task, per
	// the engine.Diverger contract. While exact, the local lists ARE a
	// sequential-prefix state, so the worker prunes ties against them
	// and raises minsup with the sequential +1, exactly like the
	// sequential engine. A run that never splits (e.g. no worker ever
	// goes idle) therefore explores exactly the sequential node set.
	exact bool

	updateCalls int
	events      []groupEvent
}

// Diverge implements engine.Diverger: from the second task on, the
// worker's lists may contain events from sequentially-later regions,
// so sequential-exact tie pruning must stop — and since the next task
// may splice earlier than the nodes that justified a self-raise, the
// support cut falls back to the frontier-rooted board value, which
// precedes every task the worker can still receive.
func (w *workerVisitor) Diverge() {
	w.exact = false
	w.effMinsup = w.boardMinsup
}

// TaskBaseline implements engine.Baseliner: called at offload time on
// this worker's goroutine, it captures the tightest thresholds the
// worker may currently suppress with. They are all justified at the
// worker's current position — exactly the offloaded task's splice
// position — so the executor may suppress against them anywhere in the
// task. This is what hands accumulated pruning power across a steal:
// without it a thief starts every subtree from the merge frontier
// alone, and on tie-dense trees over-explores by large factors.
func (w *workerVisitor) TaskBaseline() any {
	n := len(w.lists)
	b := &taskBaseline{
		conf:   make([]float64, n),
		sup:    make([]int, n),
		minsup: w.effMinsup,
	}
	for p := 0; p < n; p++ {
		b.conf[p], b.sup[p] = w.soundAt(p)
	}
	return b
}

// AdoptBaseline implements engine.Baseliner: installs the spawner's
// baseline for the task about to start, REPLACING the previous task's
// (splice positions do not grow with execution order, so the old
// baseline may be unsound here). A nil baseline (the root task) resets
// to the board state.
func (w *workerVisitor) AdoptBaseline(v any) {
	if b, ok := v.(*taskBaseline); ok {
		copy(w.baseConf, b.conf)
		copy(w.baseSup, b.sup)
		w.effMinsup = b.minsup
	} else {
		for p := range w.baseConf {
			w.baseConf[p], w.baseSup[p] = 0, 0
		}
		w.effMinsup = w.boardMinsup
	}
	if w.boardMinsup > w.effMinsup {
		w.effMinsup = w.boardMinsup
	}
}

// Flush seals the buffered events into a batch for the parent's Merge.
// The engine calls it on this worker's goroutine at task hand-off
// boundaries, so a batch never straddles an offloaded child's splice
// position. Ownership of the slice transfers to the merge side.
func (w *workerVisitor) Flush() any {
	if len(w.events) == 0 {
		return nil
	}
	evs := w.events
	w.events = nil
	return evs
}

// syncFloors publishes the thresholds of full local lists to the shared
// board's progress channel, refreshes the frontier snapshot, and adopts
// the board's frontier-rooted minsup raise. Only full lists publish: a
// non-full list's threshold is (0,0) by construction, and a full list's
// k-th entry is a genuine group of every covered row, so its threshold
// can only underestimate the row's final one.
func (w *workerVisitor) syncFloors() {
	if w.floors == nil {
		return
	}
	for p, l := range w.lists {
		if l.Len() < l.K() {
			continue
		}
		c, s := l.Threshold()
		if cmp := rules.CompareConf(c, w.floorConf[p]); cmp > 0 || (cmp == 0 && s > w.floorSup[p]) {
			w.floorConf[p], w.floorSup[p] = c, s
		}
	}
	w.floors.Sync(w.floorConf, w.floorSup)
	w.floors.Frontier(w.frontConf, w.frontSup)
	if m := w.floors.Minsup(); m > w.boardMinsup {
		w.boardMinsup = m
	}
	if w.boardMinsup > w.effMinsup {
		w.effMinsup = w.boardMinsup
	}
}

// soundAt returns the tightest threshold this worker may suppress
// against on row p: the best of the merge frontier, the task baseline,
// and — while exact — its own list. Each channel is anchored at a
// sequential position at or before the current node, so their per-row
// maximum is never ahead of the sequential run's own threshold here.
func (w *workerVisitor) soundAt(p int) (float64, int) {
	c, s := w.frontConf[p], w.frontSup[p]
	if bc, bs := w.baseConf[p], w.baseSup[p]; bc > c || (bc == c && bs > s) {
		c, s = bc, bs
	}
	if w.exact {
		if lc, ls := w.lists[p].Threshold(); lc > c || (lc == c && ls > s) {
			c, s = lc, ls
		}
	}
	return c, s
}

// UpdateThresholds mirrors the sequential Step 8 scan over the
// worker's sound per-row thresholds. The returned minimum rides in the
// engine's per-node snapshot, so sibling prunes deferred past a
// recursion stay anchored at this node's position — the same snapshot
// discipline the sequential engine applies, and the reason the
// soundness argument survives the worker's exact flag flipping between
// the scan and a deferred prune.
func (w *workerVisitor) UpdateThresholds(xPos, candPos []int) engine.Threshold {
	w.updateCalls++
	// The fork-time snapshot goes stale as the merge frontier advances:
	// refresh on the first node, then every syncInterval nodes.
	if w.updateCalls == 1 || w.updateCalls%syncInterval == 0 {
		w.syncFloors()
		if w.cfg.DynamicMinsup {
			w.maybeRaiseMinsup()
		}
	}
	if !w.cfg.TopKPruning {
		return engine.Threshold{}
	}
	minC := math.Inf(1)
	minS := math.MaxInt
	scan := func(rs []int) {
		for _, p := range rs {
			if c, s := w.soundAt(p); c < minC || (c == minC && s < minS) {
				minC, minS = c, s
			}
		}
	}
	scan(xPos)
	scan(candPos)
	if math.IsInf(minC, 1) {
		minC, minS = 0, 0 // no reachable positive rows: node is sterile anyway
	}
	// Same static-floor clamp as the sequential Step 8: the floor holds
	// at every sequential position, so it is sound in every channel.
	if w.cfg.MinConf > 0 && rules.CompareConf(w.cfg.MinConf, minC) > 0 {
		minC, minS = w.cfg.MinConf, 0
	}
	return engine.Threshold{Conf: minC, Sup: minS}
}

// maybeRaiseMinsup is the worker form of the dynamic support raise. It
// only fires while the worker is sequentially exact: then the local
// lists are a sequential-prefix state, the raise (with the sequential
// +1) is exactly what the sequential run would do at this node, and
// every group it cuts is one the sequential run rejects from here on.
// After divergence the lists may reflect out-of-order regions and the
// worker relies on the board's and the baseline's raises instead.
func (w *workerVisitor) maybeRaiseMinsup() {
	if !w.exact {
		return
	}
	minKthSup := math.MaxInt
	for _, l := range w.lists {
		if l.Len() < l.K() {
			return
		}
		c, s := l.Threshold()
		if c < 1.0 {
			return
		}
		if s < minKthSup {
			minKthSup = s
		}
	}
	minKthSup++
	if minKthSup > w.effMinsup {
		w.effMinsup = minKthSup
	}
}

// PruneBeforeScan is Step 9 with the sequential tie-cutting bound: the
// snapshot's thresholds are never ahead of the sequential run at this
// node, so whatever this cuts — ties included — the sequential run
// cuts too.
func (w *workerVisitor) PruneBeforeScan(th engine.Threshold, xp, xn, rp, rn int) bool {
	ubSup := xp + rp
	if ubSup < w.effMinsup {
		return true
	}
	if !w.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifies(th, ubConf, ubSup)
}

// PruneAfterScan is Step 11 with the same bound as PruneBeforeScan.
func (w *workerVisitor) PruneAfterScan(th engine.Threshold, xp, xn, mp, rn int) bool {
	ubSup := xp + mp
	if ubSup < w.effMinsup {
		return true
	}
	if !w.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifies(th, ubConf, ubSup)
}

// OnGroup records the event for replay unless the replay provably
// rejects it, and mirrors the sequential list update on the local
// clones so the worker's own thresholds keep tightening while exact.
func (w *workerVisitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	if xp < w.cfg.Minsup {
		return
	}
	conf := float64(xp) / float64(xp+xn)
	// Identical static-floor skip as the sequential OnGroup, so the local
	// lists stay an exact mirror of a floored sequential run while exact.
	if w.cfg.MinConf > 0 && rules.CompareConf(conf, w.cfg.MinConf) < 0 {
		return
	}
	// Strict filter against the sound per-row thresholds: replay-time
	// thresholds are at least these, and apply only admits groups that
	// strictly beat some covered row's threshold — an event that cannot
	// do so now never will. No speculative source may join the filter: a
	// group strictly below a FINAL threshold can still be admitted at
	// replay time and block a tie while it lasts.
	keep := false
	for _, p := range xPos {
		c, s := w.soundAt(p)
		if cmp := rules.CompareConf(conf, c); cmp > 0 || (cmp == 0 && xp > s) {
			keep = true
			break
		}
	}
	if !keep {
		return
	}
	// Everything the engine passed aliases its arena; the recorded event
	// must own its data (expansion copies items, rows and xPos are copied
	// here), so the batch never needs the worker — or the arena — alive.
	ev := groupEvent{
		items: w.parent.expand(items),
		rows:  rows.Clone(),
		xp:    xp,
		xn:    xn,
		xPos:  append([]int(nil), xPos...),
	}
	w.events = append(w.events, ev)

	var g *rules.Group
	for _, p := range xPos {
		l := w.lists[p]
		if !l.Qualifies(conf, xp) {
			continue
		}
		dup := false
		for _, g0 := range l.Groups() {
			if rules.CompareConf(g0.Confidence, conf) == 0 && g0.Support == xp && g0.Rows != nil && g0.Rows.Equal(rows) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if g == nil {
			g = &rules.Group{Antecedent: ev.items, Class: w.parent.cls, Support: xp, Confidence: conf, Rows: ev.rows}
		}
		l.Consider(g)
	}
}
