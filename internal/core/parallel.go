// Parallel MineTopkRGS: the topkVisitor forks one workerVisitor per
// first-level subtree of the row enumeration tree. Workers mine with
// private cloned top-k lists (scratch state, later discarded), share
// dynamic thresholds through an engine.Floors board, and record the
// group events that survive their pruning. Join replays those events in
// exact depth-first order through the sequential Step 13 logic, which
// makes parallel output identical to sequential output:
//
//   - a worker only suppresses (prunes or drops) work that is strictly
//     below a threshold published from a full top-k list — a valid
//     lower bound of the final threshold of every covered row — so no
//     member of any final list is ever suppressed (ties are kept);
//   - every surviving event is replayed through the unmodified
//     sequential list update at its sequential position, so extra
//     events a sequential run would have pruned are rejected the same
//     way the sequential run rejects them.
package core

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/rules"
)

// Fork returns the private visitor for one first-level subtree: cloned
// per-row lists seeded with everything known at dispatch time, the
// parent's current effective minsup, and a snapshot of the shared
// threshold board.
func (v *topkVisitor) Fork() engine.Visitor {
	w := &workerVisitor{
		parent:    v,
		cfg:       v.cfg,
		effMinsup: v.effMinsup,
		floors:    v.floors,
		lists:     make([]*rules.TopKList, len(v.lists)),
		floorConf: make([]float64, len(v.lists)),
		floorSup:  make([]int, len(v.lists)),
	}
	for p, l := range v.lists {
		w.lists[p] = l.Clone()
	}
	if w.floors != nil {
		w.floors.Sync(w.floorConf, w.floorSup)
	}
	return w
}

// Join replays every fork's recorded events, in first-level task order,
// through the sequential Step 13 logic. The forks' own lists are
// scratch and die here; only the replay mutates v.lists.
func (v *topkVisitor) Join(forks []engine.Visitor) {
	for _, f := range forks {
		w := f.(*workerVisitor)
		for _, ev := range w.events {
			items := ev.items
			conf := float64(ev.xp) / float64(ev.xp+ev.xn)
			v.apply(func() []int { return items }, ev.rows, conf, ev.xp, ev.xPos)
		}
	}
}

// groupEvent is one OnGroup invocation a worker kept: enough to replay
// Step 13 exactly. The antecedent is pre-expanded (the members map is
// read-only during mining, so workers may share it).
type groupEvent struct {
	items  []int
	rows   *bitset.Set
	xp, xn int
	xPos   []int
}

// syncInterval is how many nodes a worker mines between exchanges with
// the shared floors board. Small enough that one worker's full lists
// sharpen the others within a subtree, large enough that the mutex
// stays off the hot path.
const syncInterval = 4

// workerVisitor mines one first-level subtree on a worker goroutine. It
// owns every mutable structure it touches; the only shared state is the
// read-only parent (cfg, members) and the mutex-guarded floors board.
type workerVisitor struct {
	parent *topkVisitor
	cfg    Config

	// lists are clones of the parent's per-row lists, evolved privately
	// with this subtree's events. Their thresholds prune locally and are
	// published to floors when full; the lists are discarded at Join.
	lists []*rules.TopKList
	// effMinsup starts from the parent's fork-time value; worker raises
	// go to the minimum k-th support (without the sequential +1: a +1
	// would prune support ties that the sequential run keeps, and tie
	// rejection is replay's job).
	effMinsup int

	// floors is the shared board; floorConf/floorSup are this worker's
	// snapshot of it, refreshed by periodic Sync calls.
	floors    *engine.Floors
	floorConf []float64
	floorSup  []int

	updateCalls int
	events      []groupEvent
}

// thresholdAt returns row p's pruning threshold: the stronger of the
// local list's and the floor snapshot's.
func (w *workerVisitor) thresholdAt(p int) (float64, int) {
	c, s := w.lists[p].Threshold()
	if cmp := rules.CompareConf(w.floorConf[p], c); cmp > 0 || (cmp == 0 && w.floorSup[p] > s) {
		return w.floorConf[p], w.floorSup[p]
	}
	return c, s
}

// syncFloors publishes the thresholds of full local lists to the shared
// board and refreshes the snapshot. Only full lists publish: a non-full
// list's threshold is (0,0) by construction, and a full list's k-th
// entry is a genuine group of every covered row, so its threshold can
// only underestimate the row's final one — exactly what makes the board
// safe to prune with.
func (w *workerVisitor) syncFloors() {
	if w.floors == nil {
		return
	}
	for p, l := range w.lists {
		if l.Len() < l.K() {
			continue
		}
		c, s := l.Threshold()
		if cmp := rules.CompareConf(c, w.floorConf[p]); cmp > 0 || (cmp == 0 && s > w.floorSup[p]) {
			w.floorConf[p], w.floorSup[p] = c, s
		}
	}
	w.floors.Sync(w.floorConf, w.floorSup)
}

// UpdateThresholds mirrors the sequential Step 8 scan, but each row's
// threshold also consults the floors snapshot, so one worker's full
// lists sharpen every other worker's pruning.
func (w *workerVisitor) UpdateThresholds(xPos, candPos []int) engine.Threshold {
	w.updateCalls++
	// Forks are built before any worker starts, so the snapshot taken at
	// fork time is stale by the time a late task runs: refresh on the
	// first node, then every syncInterval nodes.
	if w.updateCalls == 1 || w.updateCalls%syncInterval == 0 {
		w.syncFloors()
		if w.cfg.DynamicMinsup {
			w.maybeRaiseMinsup()
		}
	}
	if !w.cfg.TopKPruning {
		return engine.Threshold{}
	}
	minC := math.Inf(1)
	minS := math.MaxInt
	scan := func(rs []int) {
		for _, p := range rs {
			c, s := w.thresholdAt(p)
			if c < minC || (c == minC && s < minS) {
				minC, minS = c, s
			}
		}
	}
	scan(xPos)
	scan(candPos)
	if math.IsInf(minC, 1) {
		minC, minS = 0, 0 // no reachable positive rows: node is sterile anyway
	}
	return engine.Threshold{Conf: minC, Sup: minS}
}

// maybeRaiseMinsup is the worker form of the dynamic support raise:
// when every local list is full at 100% confidence, supports strictly
// below the smallest k-th support cannot qualify anywhere. Unlike the
// sequential raise there is no +1 — ties must survive to replay.
func (w *workerVisitor) maybeRaiseMinsup() {
	minKthSup := math.MaxInt
	for _, l := range w.lists {
		if l.Len() < l.K() {
			return
		}
		c, s := l.Threshold()
		if c < 1.0 {
			return
		}
		if s < minKthSup {
			minKthSup = s
		}
	}
	if minKthSup > w.effMinsup {
		w.effMinsup = minKthSup
	}
}

// qualifiesTieOK is the worker form of qualifies: a subtree survives
// unless its upper bound is strictly below the threshold. Workers may
// hold thresholds that the sequential run only reaches later, so the
// tie case — which sequential pruning cuts — must be kept here and left
// to replay-time rejection.
func qualifiesTieOK(th engine.Threshold, ubConf float64, ubSup int) bool {
	if c := rules.CompareConf(ubConf, th.Conf); c != 0 {
		return c > 0
	}
	return ubSup >= th.Sup
}

// PruneBeforeScan is Step 9 with tie-keeping bounds.
func (w *workerVisitor) PruneBeforeScan(th engine.Threshold, xp, xn, rp, rn int) bool {
	ubSup := xp + rp
	if ubSup < w.effMinsup {
		return true
	}
	if !w.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifiesTieOK(th, ubConf, ubSup)
}

// PruneAfterScan is Step 11 with tie-keeping bounds.
func (w *workerVisitor) PruneAfterScan(th engine.Threshold, xp, xn, mp, rn int) bool {
	ubSup := xp + mp
	if ubSup < w.effMinsup {
		return true
	}
	if !w.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifiesTieOK(th, ubConf, ubSup)
}

// OnGroup records the event for replay unless it is strictly below the
// threshold of every covered row (in which case no final list can ever
// admit it), and mirrors the sequential list update on the local clones
// so the worker's own thresholds keep tightening.
func (w *workerVisitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	if xp < w.cfg.Minsup {
		return
	}
	conf := float64(xp) / float64(xp+xn)
	keep := false
	for _, p := range xPos {
		c, s := w.thresholdAt(p)
		if cmp := rules.CompareConf(conf, c); cmp > 0 || (cmp == 0 && xp >= s) {
			keep = true
			break
		}
	}
	if !keep {
		return
	}
	// Everything the engine passed aliases its arena; the recorded event
	// must own its data (expansion copies items, rows and xPos are copied
	// here), so replay never needs the worker — or the arena — alive.
	ev := groupEvent{
		items: w.parent.expand(items),
		rows:  rows.Clone(),
		xp:    xp,
		xn:    xn,
		xPos:  append([]int(nil), xPos...),
	}
	w.events = append(w.events, ev)

	var g *rules.Group
	for _, p := range xPos {
		l := w.lists[p]
		if !l.Qualifies(conf, xp) {
			continue
		}
		dup := false
		for _, g0 := range l.Groups() {
			if rules.CompareConf(g0.Confidence, conf) == 0 && g0.Support == xp && g0.Rows != nil && g0.Rows.Equal(rows) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if g == nil {
			g = &rules.Group{Antecedent: ev.items, Class: w.parent.cls, Support: xp, Confidence: conf, Rows: ev.rows}
		}
		l.Consider(g)
	}
}
