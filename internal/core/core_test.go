package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// names maps a group's antecedent to sorted item names for readable
// assertions on the running example.
func names(d *dataset.Dataset, g *rules.Group) string {
	ns := d.ItemNames(g.Antecedent)
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n[:1] // item names are single letters in the example
	}
	sort.Strings(parts)
	s := ""
	for _, p := range parts {
		s += p
	}
	return s
}

func TestRunningExampleTop1ClassC(t *testing.T) {
	// Example 1.1 with the paper's own Definition 2.2 applied strictly:
	// r1, r2 -> abc (conf 1.0, sup 2). For r3 the most significant
	// covering group is {c} (conf 0.75, sup 3), which dominates the
	// cde (conf 0.667) quoted in the example prose — the example
	// overlooks the single-item group; the formal definitions win here.
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 0, DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantTop := map[int]struct {
		ant  string
		conf float64
		sup  int
	}{
		0: {"abc", 1.0, 2},
		1: {"abc", 1.0, 2},
		2: {"c", 0.75, 3},
	}
	for row, want := range wantTop {
		gs := res.PerRow[row]
		if len(gs) != 1 {
			t.Fatalf("row %d: %d groups, want 1", row, len(gs))
		}
		g := gs[0]
		if got := names(d, g); got != want.ant {
			t.Errorf("row %d antecedent = %s, want %s", row, got, want.ant)
		}
		if g.Confidence != want.conf || g.Support != want.sup {
			t.Errorf("row %d (conf,sup) = (%v,%d), want (%v,%d)", row, g.Confidence, g.Support, want.conf, want.sup)
		}
	}
}

func TestRunningExampleTop1ClassNotC(t *testing.T) {
	// r4, r5 -> efg with confidence 2/3 and support 2 (Example 1.1).
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 1, DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int{3, 4} {
		gs := res.PerRow[row]
		if len(gs) != 1 {
			t.Fatalf("row %d: %d groups, want 1", row, len(gs))
		}
		g := gs[0]
		if got := names(d, g); got != "efg" {
			t.Errorf("row %d antecedent = %s, want efg", row, got)
		}
		if g.Support != 2 || g.Confidence != 2.0/3.0 {
			t.Errorf("row %d (conf,sup) = (%v,%d)", row, g.Confidence, g.Support)
		}
	}
}

func TestRunningExampleTopKLargerK(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 0, DefaultConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	// r1's covering groups with sup>=2, by significance:
	// abc (1.0, 2), c (0.75, 3), cde (0.667, 2), e (0.5, 2)... top-3 are
	// abc, c, cde.
	gs := res.PerRow[0]
	if len(gs) != 3 {
		t.Fatalf("r1 has %d groups, want 3", len(gs))
	}
	got := []string{names(d, gs[0]), names(d, gs[1]), names(d, gs[2])}
	want := []string{"abc", "c", "cde"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("r1 top-3 = %v, want %v", got, want)
	}
}

func TestUpperBoundsAreClosed(t *testing.T) {
	// Every reported antecedent must be closed: I(R(A)) == A.
	d, _ := dataset.RunningExample()
	for cls := dataset.Label(0); cls <= 1; cls++ {
		res, err := Mine(d, cls, DefaultConfig(1, 5))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range res.Groups {
			sup := d.SupportSet(g.Antecedent)
			closed := d.CommonItems(sup)
			if !reflect.DeepEqual(closed, g.Antecedent) {
				t.Fatalf("class %d: antecedent %v not closed (closure %v)", cls, g.Antecedent, closed)
			}
			if !sup.Equal(g.Rows) {
				t.Fatalf("class %d: Rows mismatch for %v", cls, g.Antecedent)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, 0, DefaultConfig(2, 0)); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := Mine(d, 0, DefaultConfig(0, 1)); err == nil {
		t.Fatal("minsup=0 must error")
	}
	if _, err := Mine(d, 9, DefaultConfig(2, 1)); err == nil {
		t.Fatal("bad class must error")
	}
}

func TestMinsupLargerThanClass(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, 0, DefaultConfig(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequentItems != 0 || len(res.Groups) != 0 {
		t.Fatal("minsup beyond class size must yield no groups")
	}
	// Per-row entries still exist (empty) for every positive row.
	if len(res.PerRow) != 3 {
		t.Fatalf("PerRow has %d entries, want 3", len(res.PerRow))
	}
}

func TestAllIdenticalRows(t *testing.T) {
	d := &dataset.Dataset{
		Items:      []dataset.Item{{GeneName: "x"}, {GeneName: "y"}},
		Rows:       [][]int{{0, 1}, {0, 1}, {0, 1}},
		Labels:     []dataset.Label{0, 0, 1},
		ClassNames: []string{"C", "notC"},
	}
	res, err := Mine(d, 0, DefaultConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Single rule group: xy -> C with support 2, confidence 2/3.
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	g := res.Groups[0]
	if g.Support != 2 || g.Confidence != 2.0/3.0 || len(g.Antecedent) != 2 {
		t.Fatalf("group = %+v", g)
	}
}

// assertSameTopK compares miner output to the oracle on (conf, sup)
// sequences per row; antecedents are compared only when the
// significance is strict (ties may be broken differently).
func assertSameTopK(t *testing.T, d *dataset.Dataset, cls dataset.Label, minsup, k int, cfg Config) {
	t.Helper()
	res, err := Mine(d, cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceTopK(d, cls, minsup, k)
	for row, wg := range want {
		gg := res.PerRow[row]
		if len(gg) != len(wg) {
			t.Fatalf("row %d: got %d groups, want %d\ngot: %v\nwant: %v",
				row, len(gg), len(wg), render(d, gg), render(d, wg))
		}
		for i := range wg {
			if gg[i].Confidence != wg[i].Confidence || gg[i].Support != wg[i].Support {
				t.Fatalf("row %d rank %d: got (%v,%d), want (%v,%d)",
					row, i, gg[i].Confidence, gg[i].Support, wg[i].Confidence, wg[i].Support)
			}
		}
	}
}

func render(d *dataset.Dataset, gs []*rules.Group) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Render(d)
	}
	return out
}

func TestAgainstOracleDefaults(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		k := 1 + r.Intn(4)
		for cls := dataset.Label(0); cls <= 1; cls++ {
			if d.ClassCount(cls) == 0 {
				continue
			}
			res, err := Mine(d, cls, DefaultConfig(minsup, k))
			if err != nil {
				return false
			}
			want := bruteForceTopK(d, cls, minsup, k)
			for row, wg := range want {
				gg := res.PerRow[row]
				if len(gg) != len(wg) {
					return false
				}
				for i := range wg {
					if gg[i].Confidence != wg[i].Confidence || gg[i].Support != wg[i].Support {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstOracleAblations(t *testing.T) {
	// Every ablation configuration must still produce correct output —
	// the optimizations change work, not results.
	configs := []func(c *Config){
		func(c *Config) { c.SeedInit = false },
		func(c *Config) { c.TopKPruning = false },
		func(c *Config) { c.BackwardPruning = false },
		func(c *Config) { c.SortRowsByItemCount = false },
		func(c *Config) { c.DynamicMinsup = false },
		func(c *Config) {
			c.SeedInit, c.TopKPruning, c.BackwardPruning = false, false, false
			c.SortRowsByItemCount, c.DynamicMinsup = false, false
		},
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		k := 1 + r.Intn(3)
		for ci, mod := range configs {
			cfg := DefaultConfig(minsup, k)
			mod(&cfg)
			for cls := dataset.Label(0); cls <= 1; cls++ {
				if d.ClassCount(cls) == 0 {
					continue
				}
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							t.Fatalf("trial %d config %d class %d: panic %v", trial, ci, cls, rec)
						}
					}()
					assertSameTopK(t, d, cls, minsup, k, cfg)
				}()
			}
		}
	}
}

func TestTopKPruningReducesWork(t *testing.T) {
	// On the running example with k=1, pruning must not increase node
	// count and typically reduces it.
	d, _ := dataset.RunningExample()
	on, err := Mine(d, 0, DefaultConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1, 1)
	cfg.TopKPruning = false
	cfg.SeedInit = false
	cfg.DynamicMinsup = false
	off, err := Mine(d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.Nodes > off.Stats.Nodes {
		t.Fatalf("pruning increased node count: %d > %d", on.Stats.Nodes, off.Stats.Nodes)
	}
}

func TestPerRowListsSortedAndCovering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		res, err := Mine(d, 0, DefaultConfig(1, 3))
		if err != nil {
			return false
		}
		for row, gs := range res.PerRow {
			rowItems := d.RowItemSet(row)
			for i, g := range gs {
				if !g.Covers(rowItems) {
					return false // every listed group must cover its row
				}
				if g.Support < 1 {
					return false
				}
				if i > 0 && g.MoreSignificant(gs[i-1]) {
					return false // significance order
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsBoundedByKTimesRows(t *testing.T) {
	// "The number of discovered top-k covering rule groups is bounded by
	// the product of k and the number of rows" (Section 1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		k := 1 + r.Intn(3)
		res, err := Mine(d, 0, DefaultConfig(1, k))
		if err != nil {
			return false
		}
		return len(res.Groups) <= k*d.ClassCount(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicMinsupRaise engineers a dataset where every row's k
// groups reach 100% confidence, so the §4.1.1 dynamic minsup raise can
// fire; results must still match the oracle and the raise must not
// increase work.
func TestDynamicMinsupRaise(t *testing.T) {
	// Six positive rows, two negative. Five "perfect" items cover large,
	// distinct positive subsets; negatives carry an unrelated item.
	rowsOf := func(rs ...int) []int { return rs }
	itemRows := [][]int{
		rowsOf(0, 1, 2, 3, 4, 5),
		rowsOf(0, 1, 2, 3, 4),
		rowsOf(1, 2, 3, 4, 5),
		rowsOf(0, 2, 3, 4, 5),
		rowsOf(0, 1, 3, 4, 5),
		rowsOf(6, 7), // negative-only item
	}
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := range itemRows {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	rows := make([][]int, 8)
	for it, rs := range itemRows {
		for _, r := range rs {
			rows[r] = append(rows[r], it)
		}
	}
	for r := 0; r < 8; r++ {
		d.Rows = append(d.Rows, rows[r])
		if r < 6 {
			d.Labels = append(d.Labels, 0)
		} else {
			d.Labels = append(d.Labels, 1)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	cfgOn := DefaultConfig(2, 2)
	cfgOff := cfgOn
	cfgOff.DynamicMinsup = false
	assertSameTopK(t, d, 0, 2, 2, cfgOn)
	assertSameTopK(t, d, 0, 2, 2, cfgOff)

	on, err := Mine(d, 0, cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Mine(d, 0, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.Nodes > off.Stats.Nodes {
		t.Fatalf("dynamic minsup increased nodes: %d > %d", on.Stats.Nodes, off.Stats.Nodes)
	}
}

// TestMaxNodesPartialResults checks the bounded-mining contract: an
// aborted run reports Aborted and still returns valid (covering,
// sorted) partial lists.
func TestMaxNodesPartialResults(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := randomDataset(r)
	cfg := DefaultConfig(1, 3)
	cfg.MaxNodes = 2
	res, err := Mine(d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Aborted {
		t.Fatal("budget of 2 nodes should abort")
	}
	for row, gs := range res.PerRow {
		items := d.RowItemSet(row)
		for _, g := range gs {
			if !g.Covers(items) {
				t.Fatal("partial results must still cover their rows")
			}
		}
	}
}
