// Package core implements MineTopkRGS (Figure 3), the paper's primary
// contribution: discovery of the top-k covering rule groups for every
// row of a discretized gene expression dataset, with a user-specified
// minimum support but no minimum confidence — the confidence threshold
// is derived dynamically from the per-row top-k lists and drives the
// top-k pruning of Section 4.1.1.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rules"
)

// Config controls MineTopkRGS. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// K is the number of covering rule groups kept per row.
	K int
	// Minsup is the absolute minimum support (count of consequent-class
	// rows containing the antecedent).
	Minsup int

	// SeedInit enables the single-item initialization optimization of
	// Section 4.1.1: per-row lists start from single-item rule groups
	// instead of dummy (0, 0) entries, raising pruning thresholds early.
	SeedInit bool
	// TopKPruning enables the dynamic minimum-confidence pruning. Turning
	// it off (ablation) leaves only support-based pruning.
	TopKPruning bool
	// BackwardPruning enables the closedness check of Section 4.1.2.
	// Turning it off (ablation) re-discovers groups redundantly.
	BackwardPruning bool
	// SortRowsByItemCount enables the ORD refinement that orders rows of
	// the same class by ascending frequent-item count.
	SortRowsByItemCount bool
	// DynamicMinsup enables raising the support threshold once every
	// row's k groups all reach 100% confidence.
	DynamicMinsup bool
	// MaxNodes, when positive, aborts the enumeration after that many
	// nodes; Result.Stats.Aborted reports the cutoff and the per-row
	// lists hold the best groups seen so far (possibly incomplete).
	MaxNodes int
	// MinConf, when positive, is a static minimum-confidence floor: rule
	// groups with confidence strictly below it are discarded, and the
	// dynamic top-k threshold never drops below (MinConf, 0). Callers
	// must guarantee that no group of the final top-k lists can fall
	// strictly below the floor (e.g. a cluster coordinator whose merged
	// lists are already full at or above it) — otherwise lists come back
	// short. Groups tied with the floor are kept.
	MinConf float64
	// Workers > 1 mines first-level subtrees on that many goroutines;
	// output is deterministically identical to sequential mining. 0 or 1
	// runs sequentially.
	Workers int
	// Progress, when non-nil, receives engine.ProgressSnapshots every
	// ProgressEvery nodes (0 = engine.DefaultProgressEvery). The
	// snapshot's MinconfFloor is the weakest per-row top-k confidence
	// threshold — the dynamic minconf the search currently prunes with.
	Progress      engine.ProgressFunc
	ProgressEvery int
}

// DefaultConfig returns the paper's configuration with all
// optimizations enabled.
func DefaultConfig(minsup, k int) Config {
	return Config{
		K:                   k,
		Minsup:              minsup,
		SeedInit:            true,
		TopKPruning:         true,
		BackwardPruning:     true,
		SortRowsByItemCount: true,
		DynamicMinsup:       true,
	}
}

// Result is the output of Mine.
type Result struct {
	// PerRow maps each consequent-class row (original row id) to its
	// top-k covering rule groups, most significant first. Rows with no
	// qualifying group map to an empty slice.
	PerRow map[int][]*rules.Group
	// Groups is the deduplicated union of all per-row groups, sorted by
	// significance. Group antecedents use dataset item ids; Rows bitsets
	// use original row ids.
	Groups []*rules.Group
	// Stats reports the enumeration work (node counts, prunes).
	Stats engine.Stats
	// NumFrequentItems is the item count after Step 1's frequency filter.
	NumFrequentItems int
}

// Mine discovers the top-k covering rule groups for every row of class
// cls in d (Algorithm MineTopkRGS). It is MineContext without
// cancellation.
func Mine(d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cls, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the enumeration at the next node and returns ctx.Err()
// with a nil Result. A Config.MaxNodes abort is not an error — the
// partial Result is returned with Stats.Aborted set.
func MineContext(ctx context.Context, d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("core: minsup must be >= 1, got %d", cfg.Minsup)
	}
	if int(cls) < 0 || int(cls) >= d.NumClasses() {
		return nil, fmt.Errorf("core: class %d outside [0,%d)", cls, d.NumClasses())
	}

	// Step 1: frequent items — positive-class support >= minsup.
	posAll := d.RowSet(cls)
	numPos := posAll.Count()
	if numPos == 0 {
		return nil, fmt.Errorf("core: no rows of class %s", d.ClassNames[cls])
	}
	var freqItems []int
	for i := 0; i < d.NumItems(); i++ {
		if d.ItemRows(i).IntersectionCount(posAll) >= cfg.Minsup {
			freqItems = append(freqItems, i)
		}
	}

	res := &Result{PerRow: make(map[int][]*rules.Group)}
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] == cls {
			res.PerRow[r] = nil
		}
	}
	res.NumFrequentItems = len(freqItems)
	if len(freqItems) == 0 {
		return res, nil
	}

	// Steps 2-3: class dominant order (positives first); within a class,
	// ascending frequent-item count (Section 4.1.2).
	order := rowOrder(d, cls, freqItems, cfg.SortRowsByItemCount)
	// itemRows over reordered row ids.
	itemRows := make([]*bitset.Set, d.NumItems())
	newID := make([]int, d.NumRows()) // original -> reordered
	for newR, origR := range order {
		newID[origR] = newR
	}
	for _, it := range freqItems {
		s := bitset.New(d.NumRows())
		d.ItemRows(it).ForEach(func(origR int) bool {
			s.Add(newID[origR])
			return true
		})
		itemRows[it] = s
	}

	// Step 4: per-positive-row top-k lists (reordered ids 0..numPos-1).
	v := &topkVisitor{
		cfg:       cfg,
		cls:       cls,
		numPos:    numPos,
		effMinsup: cfg.Minsup,
		lists:     make([]*rules.TopKList, numPos),
	}
	for p := 0; p < numPos; p++ {
		v.lists[p] = rules.NewTopKList(cfg.K)
	}
	if cfg.SeedInit {
		v.seed(itemRows, freqItems, numPos)
	}

	// Deduplicate items sharing a support set: they are interchangeable
	// during enumeration (identical projections and closures); one
	// representative runs in the engine and OnGroup expands antecedents
	// back to the full item lists.
	reps, members := dedupItems(itemRows, freqItems)
	v.members = members

	// Steps 5-14: depth-first enumeration, parallel across first-level
	// subtrees when cfg.Workers > 1.
	if cfg.Workers > 1 {
		v.floors = engine.NewFloors(numPos)
	}
	eng := &engine.Enumerator{
		NumRows:         d.NumRows(),
		NumPos:          numPos,
		ItemRows:        itemRows,
		Visitor:         v,
		DisableBackward: !cfg.BackwardPruning,
		MaxNodes:        cfg.MaxNodes,
		Workers:         cfg.Workers,
		Progress:        cfg.Progress,
		ProgressEvery:   cfg.ProgressEvery,
	}
	stats, err := eng.Run(ctx, reps)
	if err != nil {
		return nil, err
	}
	res.Stats = stats

	// Post-pass: replace remaining single-item seeds with the upper
	// bound of their rule group (I(R(item)) over frequent items).
	v.resolveSeeds(itemRows, freqItems)

	// Map results back to original row ids.
	seen := make(map[*rules.Group]bool)
	for p := 0; p < numPos; p++ {
		origRow := order[p]
		gs := v.lists[p].Groups()
		out := make([]*rules.Group, len(gs))
		for i, g := range gs {
			if !seen[g] {
				seen[g] = true
				g.Rows = remapRows(g.Rows, order)
				res.Groups = append(res.Groups, g)
			}
			out[i] = g
		}
		res.PerRow[origRow] = out
	}
	rules.SortGroups(res.Groups)
	return res, nil
}

// dedupItems groups frequent items by identical support sets, returning
// one representative per group and a members map (representative ->
// full sorted member list). Support sets are bucketed by their 64-bit
// hash with an Equal check resolving collisions — Set.Key's string
// materialization dominated heap profiles on wide datasets.
func dedupItems(itemRows []*bitset.Set, freqItems []int) ([]int, map[int][]int) {
	byHash := map[uint64][]int{} // rowset hash -> representative items
	members := map[int][]int{}
	var reps []int
	for _, it := range freqItems {
		h := itemRows[it].Hash64()
		rep := -1
		for _, cand := range byHash[h] {
			if itemRows[cand].Equal(itemRows[it]) {
				rep = cand
				break
			}
		}
		if rep < 0 {
			byHash[h] = append(byHash[h], it)
			reps = append(reps, it)
			rep = it
		}
		members[rep] = append(members[rep], it)
	}
	return reps, members
}

// rowOrder returns the ORD permutation: reordered index -> original row.
func rowOrder(d *dataset.Dataset, cls dataset.Label, freqItems []int, sortByCount bool) []int {
	isFreq := make([]bool, d.NumItems())
	for _, it := range freqItems {
		isFreq[it] = true
	}
	count := make([]int, d.NumRows())
	for r, row := range d.Rows {
		for _, it := range row {
			if isFreq[it] {
				count[r]++
			}
		}
	}
	var pos, neg []int
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] == cls {
			pos = append(pos, r)
		} else {
			neg = append(neg, r)
		}
	}
	if sortByCount {
		byCount := func(rows []int) {
			sort.SliceStable(rows, func(i, j int) bool { return count[rows[i]] < count[rows[j]] })
		}
		byCount(pos)
		byCount(neg)
	}
	return append(pos, neg...)
}

// remapRows converts a reordered-id row set to original ids.
func remapRows(s *bitset.Set, order []int) *bitset.Set {
	if s == nil {
		return nil
	}
	out := bitset.New(s.Len())
	s.ForEach(func(newR int) bool {
		out.Add(order[newR])
		return true
	})
	return out
}

// topkVisitor implements the Steps 8/9/11/13 logic of Figure 3.
type topkVisitor struct {
	cfg    Config
	cls    dataset.Label
	numPos int

	lists     []*rules.TopKList // per reordered positive row
	effMinsup int               // dynamically raised when DynamicMinsup

	// floors is the cross-worker threshold board, non-nil only for
	// parallel runs (Config.Workers > 1); floorConf/floorSup are the
	// merge side's publication scratch for the speculative floors and
	// frontConf/frontSup for the tie-prunable frontier channel (see
	// publishFloors).
	floors    *engine.Floors
	floorConf []float64
	floorSup  []int
	frontConf []float64
	frontSup  []int

	// provisional single-item seeds: group -> item id, resolved after
	// mining into their true upper bounds.
	provisional map[*rules.Group]int

	// members expands a representative item to all items sharing its
	// support set (OnGroup antecedent expansion).
	members map[int][]int

	updateCalls int
}

// seed installs single-item rule groups into the per-row lists,
// deduplicated by support set so no two seeds of one row belong to the
// same rule group.
func (v *topkVisitor) seed(itemRows []*bitset.Set, freqItems []int, numPos int) {
	v.provisional = make(map[*rules.Group]int)
	byRowset := make(map[uint64][]*rules.Group)
	for _, it := range freqItems {
		rs := itemRows[it]
		h := rs.Hash64()
		dup := false
		for _, g0 := range byRowset[h] {
			if g0.Rows.Equal(rs) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		xp := rs.CountBelow(numPos)
		xn := rs.Count() - xp
		g := &rules.Group{
			Antecedent: []int{it},
			Class:      v.cls,
			Support:    xp,
			Confidence: float64(xp) / float64(xp+xn),
			Rows:       rs.Clone(),
		}
		byRowset[h] = append(byRowset[h], g)
		v.provisional[g] = it
		rs.ForEach(func(p int) bool {
			if p >= numPos {
				return false
			}
			v.lists[p].Consider(g)
			return true
		})
	}
}

// resolveSeeds rewrites every provisional seed's antecedent to its rule
// group's upper bound: the set of frequent items whose support contains
// the seed's support set.
func (v *topkVisitor) resolveSeeds(itemRows []*bitset.Set, freqItems []int) {
	for g := range v.provisional {
		var upper []int
		for _, it := range freqItems {
			if itemRows[it].ContainsAll(g.Rows) {
				upper = append(upper, it)
			}
		}
		g.Antecedent = upper
	}
}

// UpdateThresholds is Step 8: the weakest (conf, sup) threshold across
// the rows reachable from the current node.
func (v *topkVisitor) UpdateThresholds(xPos, candPos []int) engine.Threshold {
	v.updateCalls++
	if v.cfg.DynamicMinsup && v.updateCalls%64 == 0 {
		v.maybeRaiseMinsup()
	}
	if !v.cfg.TopKPruning {
		return engine.Threshold{}
	}
	minC := math.Inf(1)
	minS := math.MaxInt
	scan := func(rs []int) {
		for _, p := range rs {
			c, s := v.lists[p].Threshold()
			if c < minC || (c == minC && s < minS) {
				minC, minS = c, s
			}
		}
	}
	scan(xPos)
	scan(candPos)
	if math.IsInf(minC, 1) {
		minC, minS = 0, 0 // no reachable positive rows: node is sterile anyway
	}
	// The static floor clamps the dynamic threshold from below. Sup 0
	// keeps subtrees tied with the floor alive: any real group has
	// support >= 1, so qualifies() still admits conf == MinConf.
	if v.cfg.MinConf > 0 && rules.CompareConf(v.cfg.MinConf, minC) > 0 {
		minC, minS = v.cfg.MinConf, 0
	}
	return engine.Threshold{Conf: minC, Sup: minS}
}

// ProgressFloor implements engine.FloorReporter: the weakest per-row
// top-k confidence threshold, i.e. the dynamic minconf floor pruning is
// currently measured against. Parallel runs read the cross-worker
// Floors board (mutex-guarded); sequential runs scan the lists on the
// mining goroutine itself, so neither path races with list updates.
func (v *topkVisitor) ProgressFloor() float64 {
	if v.floors != nil {
		return v.floors.MinConf()
	}
	minC := math.Inf(1)
	for _, l := range v.lists {
		c, _ := l.Threshold()
		if c < minC {
			minC = c
		}
	}
	if math.IsInf(minC, 1) {
		return 0
	}
	return minC
}

// maybeRaiseMinsup implements the second Section 4.1.1 optimization:
// once every row's k-th group reaches 100% confidence, only groups with
// support above the smallest k-th support can still qualify anywhere.
func (v *topkVisitor) maybeRaiseMinsup() {
	minKthSup := math.MaxInt
	for _, l := range v.lists {
		if l.Len() < l.K() {
			return
		}
		c, s := l.Threshold()
		if c < 1.0 {
			return
		}
		if s < minKthSup {
			minKthSup = s
		}
	}
	if minKthSup+1 > v.effMinsup {
		v.effMinsup = minKthSup + 1
	}
}

// qualifies reports whether a subtree whose best possible group has the
// given (confidence, support) upper bounds could still beat th.
func qualifies(th engine.Threshold, ubConf float64, ubSup int) bool {
	if c := rules.CompareConf(ubConf, th.Conf); c != 0 {
		return c > 0
	}
	return ubSup > th.Sup
}

// PruneBeforeScan is Step 9 (loose bounds).
func (v *topkVisitor) PruneBeforeScan(th engine.Threshold, xp, xn, rp, rn int) bool {
	ubSup := xp + rp
	if ubSup < v.effMinsup {
		return true
	}
	if !v.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifies(th, ubConf, ubSup)
}

// PruneAfterScan is Step 11 (tight bounds).
func (v *topkVisitor) PruneAfterScan(th engine.Threshold, xp, xn, mp, rn int) bool {
	ubSup := xp + mp
	if ubSup < v.effMinsup {
		return true
	}
	if !v.cfg.TopKPruning {
		return false
	}
	ubConf := float64(ubSup) / float64(ubSup+xn)
	return !qualifies(th, ubConf, ubSup)
}

// expand rewrites a representative item list into the full antecedent.
func (v *topkVisitor) expand(reps []int) []int {
	var out []int
	for _, r := range reps {
		out = append(out, v.members[r]...)
	}
	sort.Ints(out)
	return out
}

// OnGroup is Step 13: update the top-k lists of the covered rows.
func (v *topkVisitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {

	if xp < v.cfg.Minsup {
		return
	}
	conf := float64(xp) / float64(xp+xn)
	if v.cfg.MinConf > 0 && rules.CompareConf(conf, v.cfg.MinConf) < 0 {
		return
	}
	v.apply(func() []int { return v.expand(items) }, rows, conf, xp, xPos)
}

// apply is the Step 13 list maintenance shared by live OnGroup events
// and the deterministic replay of worker-recorded events during Join:
// offer the group to every covered row's list, building it lazily on
// first acceptance. antecedent is called at most once.
func (v *topkVisitor) apply(antecedent func() []int, rows *bitset.Set, conf float64, xp int, xPos []int) {
	var g *rules.Group // built on first acceptance
	for _, p := range xPos {
		l := v.lists[p]
		if !l.Qualifies(conf, xp) {
			continue
		}
		// Skip if this rule group is already present as a seed (same
		// support set); resolveSeeds rewrites its antecedent later.
		dup := false
		for _, g0 := range l.Groups() {
			if rules.CompareConf(g0.Confidence, conf) == 0 && g0.Support == xp && g0.Rows != nil && g0.Rows.Equal(rows) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if g == nil {
			// rows aliases the engine's arena (or a replayed event's
			// buffer); the retained group needs its own copy.
			g = &rules.Group{
				Antecedent: antecedent(),
				Class:      v.cls,
				Support:    xp,
				Confidence: conf,
				Rows:       rows.Clone(),
			}
		}
		l.Consider(g)
	}
}
