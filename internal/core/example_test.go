package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ExampleMine mines the top-1 covering rule groups of the paper's
// running example (Figure 1) for consequent class C.
func ExampleMine() {
	d, _ := dataset.RunningExample()
	res, err := core.Mine(d, 0, core.DefaultConfig(2, 1))
	if err != nil {
		panic(err)
	}
	for r := 0; r < 3; r++ { // the three class-C rows
		for _, g := range res.PerRow[r] {
			fmt.Printf("r%d: %s\n", r+1, g.Render(d))
		}
	}
	// Output:
	// r1: a[0,1) b[0,1) c[0,1) -> C (sup=2 conf=1.000)
	// r2: a[0,1) b[0,1) c[0,1) -> C (sup=2 conf=1.000)
	// r3: c[0,1) -> C (sup=3 conf=0.750)
}
