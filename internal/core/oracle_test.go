package core

import (
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// bruteForceGroups enumerates every rule group of class cls by closing
// all row subsets — the oracle the miner is validated against. Only
// groups with support >= minsup are returned.
func bruteForceGroups(d *dataset.Dataset, cls dataset.Label, minsup int) []*rules.Group {
	n := d.NumRows()
	if n > 20 {
		panic("oracle: dataset too large for exhaustive enumeration")
	}
	seen := map[string]*rules.Group{}
	for mask := 1; mask < 1<<n; mask++ {
		rows := bitset.New(n)
		for r := 0; r < n; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		items := d.CommonItems(rows)
		if len(items) == 0 {
			continue
		}
		sup := d.SupportSet(items) // R(I(X))
		key := sup.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		xp := 0
		sup.ForEach(func(r int) bool {
			if d.Labels[r] == cls {
				xp++
			}
			return true
		})
		if xp < minsup {
			continue
		}
		seen[key] = &rules.Group{
			Antecedent: items,
			Class:      cls,
			Support:    xp,
			Confidence: float64(xp) / float64(sup.Count()),
			Rows:       sup,
		}
	}
	out := make([]*rules.Group, 0, len(seen))
	for _, g := range seen {
		out = append(out, g)
	}
	rules.SortGroups(out)
	return out
}

// bruteForceTopK derives the per-row top-k lists from the oracle groups.
func bruteForceTopK(d *dataset.Dataset, cls dataset.Label, minsup, k int) map[int][]*rules.Group {
	groups := bruteForceGroups(d, cls, minsup)
	out := map[int][]*rules.Group{}
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] != cls {
			continue
		}
		items := d.RowItemSet(r)
		var covering []*rules.Group
		for _, g := range groups {
			if g.Covers(items) {
				covering = append(covering, g)
			}
		}
		sort.SliceStable(covering, func(i, j int) bool { return rules.GroupLess(covering[i], covering[j]) })
		if len(covering) > k {
			covering = covering[:k]
		}
		out[r] = covering
	}
	return out
}

// randomDataset builds a small random dataset for cross-validation.
func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(8)   // 3..10 rows
	nItems := 2 + r.Intn(10) // 2..11 items
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 { // dense rows: richer closed structure
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	// Guarantee at least one positive row.
	d.Labels[0] = 0
	return d
}
