package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// sameResults fails the test unless a and b are deep-equal mining
// results: identical per-row lists (same order, same group contents)
// and identical global group slices.
func sameResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	sameGroup := func(where string, x, y *rules.Group) {
		t.Helper()
		if rules.CompareConf(x.Confidence, y.Confidence) != 0 || x.Support != y.Support ||
			x.Class != y.Class || len(x.Antecedent) != len(y.Antecedent) {
			t.Fatalf("%s %s: group differs: %v (%.4f,%d) vs %v (%.4f,%d)",
				label, where, x.Antecedent, x.Confidence, x.Support, y.Antecedent, y.Confidence, y.Support)
		}
		for i := range x.Antecedent {
			if x.Antecedent[i] != y.Antecedent[i] {
				t.Fatalf("%s %s: antecedents differ: %v vs %v", label, where, x.Antecedent, y.Antecedent)
			}
		}
		if (x.Rows == nil) != (y.Rows == nil) || (x.Rows != nil && !x.Rows.Equal(y.Rows)) {
			t.Fatalf("%s %s: row sets differ", label, where)
		}
	}
	if len(a.PerRow) != len(b.PerRow) {
		t.Fatalf("%s: PerRow sizes differ: %d vs %d", label, len(a.PerRow), len(b.PerRow))
	}
	for row, ga := range a.PerRow {
		gb, ok := b.PerRow[row]
		if !ok || len(ga) != len(gb) {
			t.Fatalf("%s row %d: list lengths differ: %d vs %d (present=%v)", label, row, len(ga), len(gb), ok)
		}
		for i := range ga {
			sameGroup(fmt.Sprintf("row %d rank %d", row, i), ga[i], gb[i])
		}
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: Groups lengths differ: %d vs %d", label, len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		sameGroup(fmt.Sprintf("Groups[%d]", i), a.Groups[i], b.Groups[i])
	}
}

// workerCounts are the parallelism levels the determinism oracle runs;
// CI exercises this test under -race with 2 and 8 among them.
func workerCounts() []int {
	return []int{2, 8, runtime.GOMAXPROCS(0)}
}

func TestParallelMatchesSequentialRunningExample(t *testing.T) {
	d, _ := dataset.RunningExample()
	for cls := dataset.Label(0); cls <= 1; cls++ {
		for _, k := range []int{1, 3} {
			cfg := DefaultConfig(2, k)
			seq, err := Mine(d, cls, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts() {
				cfg.Workers = workers
				par, err := Mine(d, cls, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("cls=%d k=%d workers=%d", cls, k, workers), seq, par)
			}
		}
	}
}

func TestParallelMatchesSequentialRandomCorpus(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		k := 1 + r.Intn(3)
		cfg := DefaultConfig(minsup, k)
		seq, err := Mine(d, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts() {
			cfg.Workers = workers
			par, err := Mine(d, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("trial=%d minsup=%d k=%d workers=%d", trial, minsup, k, workers), seq, par)
		}
	}
}

// wideDataset builds a dataset big enough that parallel runs really
// overlap: rows*items with ~2/3 density and alternating labels.
func wideDataset(r *rand.Rand, rows, items int) *dataset.Dataset {
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < rows; row++ {
		var its []int
		for i := 0; i < items; i++ {
			if r.Intn(3) != 0 {
				its = append(its, i)
			}
		}
		d.Rows = append(d.Rows, its)
		d.Labels = append(d.Labels, dataset.Label(row%2))
	}
	return d
}

func TestParallelMatchesSequentialWide(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := wideDataset(r, 24, 30)
	cfg := DefaultConfig(2, 2)
	seq, err := Mine(d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts() {
		cfg.Workers = workers
		par, err := Mine(d, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("wide workers=%d", workers), seq, par)
	}
}

func TestMineContextCancelled(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig(2, 1)
		cfg.Workers = workers
		res, err := MineContext(ctx, d, 0, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled mine must not return a result", workers)
		}
	}
}

func TestMineContextDeadline(t *testing.T) {
	// A dataset dense enough that the search cannot finish within the
	// deadline: the run must come back promptly with the context error.
	r := rand.New(rand.NewSource(3))
	d := wideDataset(r, 60, 200)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	cfg := DefaultConfig(1, 20)
	cfg.Workers = 4
	_, err := MineContext(ctx, d, 0, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestParallelNodeOverheadBounded pins parallel search efficiency:
// workers prune with thresholds that lag the sequential ones (merge
// frontier, task baselines, exact-prefix lists), so they explore extra
// nodes, but the propagation machinery must keep that overexploration
// small. The perf trajectory records the same ratio as
// nodes_overhead_ratio on the fig6 PC profile; 1.5 is the regression
// wall. Individual runs can overshoot on an unlucky schedule —
// concurrent sibling subtrees only see each other's thresholds once the
// merge frontier reaches them — so each worker count gets the best of
// three runs: a real propagation regression (historically 3-39x) fails
// every schedule, noise does not.
func TestParallelNodeOverheadBounded(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := wideDataset(r, 24, 30)
	cfg := DefaultConfig(2, 2)
	seq, err := Mine(d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Nodes < 100 {
		t.Fatalf("dataset too small to measure overexploration: %d nodes", seq.Stats.Nodes)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Workers = workers
		best := math.Inf(1)
		for trial := 0; trial < 3; trial++ {
			par, err := Mine(d, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(par.Stats.Nodes) / float64(seq.Stats.Nodes)
			t.Logf("workers=%d trial %d: %d nodes vs %d sequential (ratio %.3f)",
				workers, trial, par.Stats.Nodes, seq.Stats.Nodes, ratio)
			if ratio < best {
				best = ratio
			}
		}
		if best > 1.5 {
			t.Errorf("workers=%d: best node overhead ratio %.3f > 1.5: threshold propagation regressed",
				workers, best)
		}
	}
}

func TestMaxNodesPartialResultParallel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := wideDataset(r, 24, 30)
	cfg := DefaultConfig(2, 2)
	cfg.MaxNodes = 50
	cfg.Workers = 4
	res, err := Mine(d, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Aborted {
		t.Fatal("tiny budget must abort")
	}
}
