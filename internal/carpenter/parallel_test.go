package carpenter

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func randomDense(r *rand.Rand, rows, items int) *dataset.Dataset {
	d := &dataset.Dataset{ClassNames: []string{"C"}}
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < rows; row++ {
		var its []int
		for i := 0; i < items; i++ {
			if r.Intn(3) != 0 {
				its = append(its, i)
			}
		}
		d.Rows = append(d.Rows, its)
		d.Labels = append(d.Labels, 0)
	}
	return d
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	d := randomDense(r, 20, 24)
	for _, minsup := range []int{1, 3} {
		seq, err := Mine(d, Config{Minsup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := Mine(d, Config{Minsup: minsup, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("minsup=%d workers=%d", minsup, workers)
			if len(par.Closed) != len(seq.Closed) {
				t.Fatalf("%s: %d closed sets vs %d", label, len(par.Closed), len(seq.Closed))
			}
			for i := range seq.Closed {
				a, b := seq.Closed[i], par.Closed[i]
				if a.Support != b.Support || len(a.Items) != len(b.Items) {
					t.Fatalf("%s: closed set %d differs: %+v vs %+v", label, i, a, b)
				}
				for j := range a.Items {
					if a.Items[j] != b.Items[j] {
						t.Fatalf("%s: closed set %d items differ: %v vs %v", label, i, a.Items, b.Items)
					}
				}
			}
		}
	}
}

func TestMineContextCancelled(t *testing.T) {
	d, _ := dataset.RunningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, d, Config{Minsup: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled mine must not return a result")
	}
}

func TestMaxNodesAborts(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	d := randomDense(r, 16, 20)
	for _, workers := range []int{1, 4} {
		res, err := Mine(d, Config{Minsup: 1, MaxNodes: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Aborted {
			t.Fatalf("workers=%d: tiny budget must abort", workers)
		}
	}
}
