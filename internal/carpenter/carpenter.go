// Package carpenter implements CARPENTER [23], the first row
// enumeration algorithm and the direct ancestor of FARMER and
// MineTopkRGS: closed frequent itemset mining over all rows (no class
// labels) by depth-first row-set enumeration with forward closure and
// backward pruning.
//
// It is a thin instantiation of the shared engine in internal/engine
// with every row treated as "positive", included both as a historical
// baseline and as a cross-check for the column-enumeration miners
// (CHARM, CLOSET+): all three must produce identical closed
// collections.
package carpenter

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedItemset is one result: a closed itemset and its support over
// all rows.
type ClosedItemset = engine.ClosedItemset

// Config parameterizes a run.
type Config struct {
	Minsup   int // absolute minimum support over all rows
	MaxNodes int // 0 = unbounded
	// Workers > 1 mines first-level subtrees on that many goroutines;
	// output is identical to sequential output.
	Workers int
	// Progress, when non-nil, receives engine.ProgressSnapshots every
	// ProgressEvery nodes (0 = engine.DefaultProgressEvery).
	Progress      engine.ProgressFunc
	ProgressEvery int
}

// Result is the output of Mine.
type Result struct {
	Closed  []ClosedItemset
	Stats   engine.Stats
	Aborted bool
}

// visitor collects closed itemsets above minsup.
type visitor struct {
	minsup  int
	members map[int][]int // representative item -> all same-support items
	out     []ClosedItemset
}

func (v *visitor) UpdateThresholds(xPos, candPos []int) engine.Threshold {
	return engine.Threshold{}
}

// Fork returns a private collector for one worker; the members map is
// shared read-only.
func (v *visitor) Fork() engine.Visitor {
	return &visitor{minsup: v.minsup, members: v.members}
}

// Flush seals the itemsets collected since the last hand-off boundary;
// every itemset already owns its memory (OnGroup copies), so handing
// the slice to the merge side transfers ownership cleanly.
func (v *visitor) Flush() any {
	if len(v.out) == 0 {
		return nil
	}
	out := v.out
	v.out = nil
	return out
}

// Merge appends one streamed batch. The engine delivers batches in
// sequential discovery order (the final sort makes output order
// canonical regardless, but determinism should not depend on it).
func (v *visitor) Merge(batch any) {
	v.out = append(v.out, batch.([]ClosedItemset)...)
}

func (v *visitor) PruneBeforeScan(_ engine.Threshold, xp, xn, rp, rn int) bool {
	return xp+rp < v.minsup
}

func (v *visitor) PruneAfterScan(_ engine.Threshold, xp, xn, mp, rn int) bool {
	return xp+mp < v.minsup
}

func (v *visitor) OnGroup(items []int, rows *bitset.Set, xp, xn int, xPos []int) {
	if xp < v.minsup {
		return
	}
	var full []int
	for _, rep := range items {
		full = append(full, v.members[rep]...)
	}
	sort.Ints(full)
	v.out = append(v.out, ClosedItemset{Items: full, Support: xp})
}

// Mine discovers all closed itemsets of d with support >= cfg.Minsup
// using row enumeration. It is MineContext without cancellation.
func Mine(d *dataset.Dataset, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the search at the next node and returns ctx.Err() with a
// nil Result. A Config.MaxNodes abort is not an error — the partial
// Result is returned with Aborted set.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("carpenter: minsup must be >= 1, got %d", cfg.Minsup)
	}
	n := d.NumRows()
	// Frequent items, deduplicated by identical support sets (the same
	// representative trick as MineTopkRGS — interchangeable during
	// enumeration, expanded at output).
	v := &visitor{minsup: cfg.Minsup, members: map[int][]int{}}
	itemRows := make([]*bitset.Set, d.NumItems())
	byHash := map[uint64][]int{} // support-set hash -> representatives
	var reps []int
	for i := 0; i < d.NumItems(); i++ {
		rs := d.ItemRows(i)
		if rs.Count() < cfg.Minsup {
			continue
		}
		itemRows[i] = rs
		h := rs.Hash64()
		rep := -1
		for _, cand := range byHash[h] {
			if itemRows[cand].Equal(rs) {
				rep = cand
				break
			}
		}
		if rep < 0 {
			byHash[h] = append(byHash[h], i)
			reps = append(reps, i)
			rep = i
		}
		v.members[rep] = append(v.members[rep], i)
	}

	eng := &engine.Enumerator{
		NumRows:       n,
		NumPos:        n, // unlabeled mining: every row counts toward support
		ItemRows:      itemRows,
		Visitor:       v,
		MaxNodes:      cfg.MaxNodes,
		Workers:       cfg.Workers,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
	}
	stats, err := eng.Run(ctx, reps)
	if err != nil {
		return nil, err
	}

	sort.Slice(v.out, func(i, j int) bool {
		a, b := v.out[i], v.out[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return less(a.Items, b.Items)
	})
	return &Result{Closed: v.out, Stats: stats, Aborted: stats.Aborted}, nil
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
