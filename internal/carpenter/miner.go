package carpenter

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts CARPENTER to the engine.Miner interface under the name
// "carpenter".
type miner struct{}

func (miner) Name() string { return "carpenter" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	cfg := Config{
		Minsup:        opts.Minsup,
		MaxNodes:      opts.MaxNodes,
		Workers:       opts.EffectiveWorkers(),
		Progress:      opts.Progress,
		ProgressEvery: opts.ProgressEvery,
	}
	res, err := MineContext(ctx, d, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats := res.Stats
	stats.Aborted = stats.Aborted || res.Aborted
	return &engine.Result{Closed: res.Closed}, stats, nil
}

func init() { engine.Register(miner{}) }
