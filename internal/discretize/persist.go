package discretize

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the discretizer's cut points in a line-oriented
// text format:
//
//	#classes <names...>
//	<geneName> <cut> <cut> ...     (one line per gene; no cuts = dropped)
func (dz *Discretizer) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#classes %s\n", strings.Join(dz.ClassNames, " "))
	for g, name := range dz.GeneNames {
		fmt.Fprintf(bw, "%s", name)
		for _, c := range dz.Cuts[g] {
			fmt.Fprintf(bw, "\t%g", c)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// FromCuts rebuilds a discretizer from serialized cut points — the
// reconstruction hook for model envelopes (see internal/rcbt's model
// persistence). cuts[g] holds gene g's strictly ascending cut points;
// an empty slice marks a gene rejected by MDL. The item table is
// rebuilt deterministically, so item ids match the fitting run's.
func FromCuts(classNames, geneNames []string, cuts [][]float64) (*Discretizer, error) {
	if len(classNames) < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 classes, have %d", len(classNames))
	}
	if len(geneNames) != len(cuts) {
		return nil, fmt.Errorf("discretize: %d gene names but %d cut lists", len(geneNames), len(cuts))
	}
	if len(geneNames) == 0 {
		return nil, fmt.Errorf("discretize: no genes")
	}
	for g, cs := range cuts {
		for i := 1; i < len(cs); i++ {
			if cs[i] <= cs[i-1] {
				return nil, fmt.Errorf("discretize: gene %s cuts not strictly ascending", geneNames[g])
			}
		}
	}
	dz := &Discretizer{
		Cuts:       cuts,
		GeneNames:  geneNames,
		ClassNames: classNames,
	}
	dz.buildItems()
	return dz, nil
}

// Read parses a discretizer written by Write.
func Read(r io.Reader) (*Discretizer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	dz := &Discretizer{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "#classes" {
			dz.ClassNames = fields[1:]
			continue
		}
		dz.GeneNames = append(dz.GeneNames, fields[0])
		var cuts []float64
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("discretize: line %d: bad cut %q: %w", line, f, err)
			}
			cuts = append(cuts, v)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				return nil, fmt.Errorf("discretize: line %d: cuts not strictly ascending", line)
			}
		}
		dz.Cuts = append(dz.Cuts, cuts)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("discretize: read: %w", err)
	}
	if len(dz.ClassNames) < 2 {
		return nil, fmt.Errorf("discretize: missing or short #classes header")
	}
	if len(dz.GeneNames) == 0 {
		return nil, fmt.Errorf("discretize: no genes")
	}
	dz.buildItems()
	return dz, nil
}
