package discretize

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func TestEqualAndDiffCuts(t *testing.T) {
	if !EqualCuts(nil, nil) || !EqualCuts([]float64{1, 2}, []float64{1, 2}) {
		t.Fatal("EqualCuts rejects equal lists")
	}
	if EqualCuts([]float64{1}, []float64{1, 2}) || EqualCuts([]float64{1}, []float64{1.5}) {
		t.Fatal("EqualCuts accepts differing lists")
	}

	old := [][]float64{{1}, nil, {2, 3}}
	cur := [][]float64{{1}, {5}, {2, 4}}
	if got := DiffCuts(old, cur); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("DiffCuts = %v, want [1 2]", got)
	}
	if got := DiffCuts(old, old); got != nil {
		t.Fatalf("DiffCuts(x,x) = %v, want nil", got)
	}
	// Length mismatch: the extra gene is changed.
	if got := DiffCuts([][]float64{{1}}, [][]float64{{1}, {2}}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DiffCuts length mismatch = %v, want [1]", got)
	}
}

// TestIntervalIndexMatchesTransform checks the exported interval
// arithmetic against Transform on a fitted discretizer: item id =
// GeneItemRange start + IntervalIndex, including the cut-equal
// boundary ([Lo,Hi) puts a value equal to a cut in the right bin).
func TestIntervalIndexMatchesTransform(t *testing.T) {
	m := &dataset.Matrix{
		GeneNames:  []string{"g0", "noise"},
		ClassNames: []string{"a", "b"},
		Values: [][]float64{
			{1, 5}, {2, 5}, {3, 5}, {4, 5},
			{10, 5}, {11, 5}, {12, 5}, {13, 5},
		},
		Labels: []dataset.Label{0, 0, 0, 0, 1, 1, 1, 1},
	}
	dz, err := FitMatrix(m)
	if err != nil {
		t.Fatalf("FitMatrix: %v", err)
	}
	if len(dz.Cuts[0]) == 0 {
		t.Fatal("fixture gene g0 got no cut")
	}
	start, n := dz.GeneItemRange(0)
	if start != 0 || n != len(dz.Cuts[0])+1 {
		t.Fatalf("GeneItemRange(0) = %d,%d", start, n)
	}
	if s, n := dz.GeneItemRange(1); s != -1 || n != 0 {
		t.Fatalf("GeneItemRange(dropped) = %d,%d, want -1,0", s, n)
	}
	if got, want := len(dz.ItemTable()), dz.NumItems(); got != want {
		t.Fatalf("ItemTable has %d items, want %d", got, want)
	}

	cut := dz.Cuts[0][0]
	for _, v := range []float64{cut - 1, cut, cut + 1, -100, 100} {
		wantItems := dz.RowItems([]float64{v, 5})
		got := start + dz.IntervalIndex(0, v)
		if len(wantItems) != 1 || wantItems[0] != got {
			t.Fatalf("value %g: IntervalIndex item %d, RowItems %v", v, got, wantItems)
		}
	}
}
