package discretize

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// sepMatrix builds a matrix with one perfectly separable gene, one noisy
// gene, and one constant gene.
func sepMatrix() *dataset.Matrix {
	return &dataset.Matrix{
		GeneNames: []string{"sep", "noise", "const"},
		Values: [][]float64{
			{1, 0.3, 7}, {2, 0.9, 7}, {3, 0.1, 7}, {4, 0.7, 7},
			{10, 0.2, 7}, {11, 0.8, 7}, {12, 0.4, 7}, {13, 0.6, 7},
		},
		Labels:     []dataset.Label{0, 0, 0, 0, 1, 1, 1, 1},
		ClassNames: []string{"pos", "neg"},
	}
}

func TestFitSelectsInformativeGene(t *testing.T) {
	dz, err := FitMatrix(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(dz.Cuts[0]) == 0 {
		t.Fatal("separable gene should receive a cut")
	}
	if len(dz.Cuts[2]) != 0 {
		t.Fatal("constant gene must be rejected")
	}
	if got := dz.Cuts[0][0]; got != 7 {
		t.Fatalf("cut = %v, want 7 (midpoint of 4 and 10)", got)
	}
	if dz.NumSelectedGenes() < 1 {
		t.Fatal("at least one gene should be selected")
	}
}

func TestTransformProducesOneItemPerSelectedGene(t *testing.T) {
	m := sepMatrix()
	dz, err := FitMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dz.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != m.NumRows() {
		t.Fatalf("rows = %d, want %d", d.NumRows(), m.NumRows())
	}
	want := dz.NumSelectedGenes()
	for r, row := range d.Rows {
		if len(row) != want {
			t.Fatalf("row %d has %d items, want %d", r, len(row), want)
		}
	}
	// All class-0 rows share the low interval item of gene "sep"; all
	// class-1 rows share the high interval item.
	low := d.Rows[0][0]
	high := d.Rows[4][0]
	if low == high {
		t.Fatal("separable gene should discretize the classes apart")
	}
	for r := 0; r < 4; r++ {
		if d.Rows[r][0] != low {
			t.Fatalf("row %d item = %d, want %d", r, d.Rows[r][0], low)
		}
	}
	for r := 4; r < 8; r++ {
		if d.Rows[r][0] != high {
			t.Fatalf("row %d item = %d, want %d", r, d.Rows[r][0], high)
		}
	}
}

func TestItemIntervalsTileTheLine(t *testing.T) {
	dz, err := FitMatrix(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	d, err := dz.Transform(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	// Group items per gene; they must tile (-inf, +inf) without gaps.
	byGene := map[int][]dataset.Item{}
	for _, it := range d.Items {
		byGene[it.Gene] = append(byGene[it.Gene], it)
	}
	for g, items := range byGene {
		if !math.IsInf(items[0].Lo, -1) {
			t.Errorf("gene %d first interval should start at -inf", g)
		}
		for i := 1; i < len(items); i++ {
			if items[i].Lo != items[i-1].Hi {
				t.Errorf("gene %d gap between intervals %d and %d", g, i-1, i)
			}
		}
		if !math.IsInf(items[len(items)-1].Hi, 1) {
			t.Errorf("gene %d last interval should end at +inf", g)
		}
	}
}

func TestItemForBoundarySemantics(t *testing.T) {
	dz, err := FitMatrix(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	cut := dz.Cuts[0][0] // 7
	lowItem := dz.itemFor(0, cut-0.001)
	cutItem := dz.itemFor(0, cut)
	if lowItem == cutItem {
		t.Fatal("value equal to the cut belongs to the right interval")
	}
	if dz.itemFor(2, 123) != -1 {
		t.Fatal("dropped gene must map to -1")
	}
}

func TestTransformSchemaMismatch(t *testing.T) {
	dz, err := FitMatrix(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	other := &dataset.Matrix{
		GeneNames:  []string{"only"},
		Values:     [][]float64{{1}},
		Labels:     []dataset.Label{0},
		ClassNames: []string{"pos", "neg"},
	}
	if _, err := dz.Transform(other); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestFitRejectsInvalidMatrix(t *testing.T) {
	bad := &dataset.Matrix{
		GeneNames:  []string{"g"},
		Values:     [][]float64{{1}, {2}},
		Labels:     []dataset.Label{0},
		ClassNames: []string{"a", "b"},
	}
	if _, err := FitMatrix(bad); err == nil {
		t.Fatal("invalid matrix must be rejected")
	}
}

func TestPureNoiseMostlyRejected(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n, g := 40, 50
	m := &dataset.Matrix{
		GeneNames:  make([]string, g),
		Values:     make([][]float64, n),
		Labels:     make([]dataset.Label, n),
		ClassNames: []string{"pos", "neg"},
	}
	for j := 0; j < g; j++ {
		m.GeneNames[j] = "noise"
	}
	for i := 0; i < n; i++ {
		row := make([]float64, g)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		m.Values[i] = row
		m.Labels[i] = dataset.Label(i % 2)
	}
	dz, err := FitMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if kept := dz.NumSelectedGenes(); kept > g/4 {
		t.Fatalf("MDL kept %d/%d pure-noise genes; expected strong rejection", kept, g)
	}
}

func TestQuickCutsStrictlyInsideObservedRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(30)
		m := &dataset.Matrix{
			GeneNames:  []string{"g"},
			Values:     make([][]float64, n),
			Labels:     make([]dataset.Label, n),
			ClassNames: []string{"a", "b"},
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := float64(r.Intn(20))
			m.Values[i] = []float64{v}
			m.Labels[i] = dataset.Label(r.Intn(2))
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		dz, err := FitMatrix(m)
		if err != nil {
			return false
		}
		for _, c := range dz.Cuts[0] {
			if c <= lo || c >= hi {
				return false
			}
		}
		// Cuts must be sorted ascending and distinct.
		for i := 1; i < len(dz.Cuts[0]); i++ {
			if dz.Cuts[0][i] <= dz.Cuts[0][i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransformIdempotentPartition(t *testing.T) {
	// Every training row maps to exactly one item per selected gene, and
	// rows with identical values for a gene share the same item.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(20)
		m := &dataset.Matrix{
			GeneNames:  []string{"g0", "g1"},
			Values:     make([][]float64, n),
			Labels:     make([]dataset.Label, n),
			ClassNames: []string{"a", "b"},
		}
		for i := 0; i < n; i++ {
			m.Values[i] = []float64{float64(r.Intn(8)), r.NormFloat64() + float64(i%2)*3}
			m.Labels[i] = dataset.Label(i % 2)
		}
		dz, err := FitMatrix(m)
		if err != nil {
			return false
		}
		d, err := dz.Transform(m)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for g := 0; g < 2; g++ {
					if m.Values[i][g] == m.Values[j][g] {
						if dz.itemFor(g, m.Values[i][g]) != dz.itemFor(g, m.Values[j][g]) {
							return false
						}
					}
				}
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	dz, err := FitMatrix(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dz.Write(&sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Cuts, dz.Cuts) {
		t.Fatalf("cuts changed:\n got %v\nwant %v", loaded.Cuts, dz.Cuts)
	}
	if !reflect.DeepEqual(loaded.GeneNames, dz.GeneNames) || !reflect.DeepEqual(loaded.ClassNames, dz.ClassNames) {
		t.Fatal("names changed")
	}
	// Transforms must be identical.
	a, err := dz.Transform(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Transform(sepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("transform changed across persist round trip")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no classes":    "g1 1 2\n",
		"bad float":     "#classes a b\ng1 xx\n",
		"not ascending": "#classes a b\ng1 2 1\n",
		"no genes":      "#classes a b\n",
		"single class":  "#classes only\ng1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRowItems(t *testing.T) {
	m := sepMatrix()
	dz, err := FitMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dz.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range m.Values {
		got := dz.RowItems(row)
		if !reflect.DeepEqual(got, d.Rows[r]) {
			t.Fatalf("row %d: RowItems = %v, Transform = %v", r, got, d.Rows[r])
		}
	}
	// Short and long rows must not panic.
	if items := dz.RowItems(nil); len(items) != 0 {
		t.Fatal("empty row should yield no items")
	}
	long := append(append([]float64{}, m.Values[0]...), 1, 2, 3)
	_ = dz.RowItems(long)
}
