// Package discretize implements entropy-minimized discretization of
// real-valued gene expression matrices with the Fayyad–Irani MDL
// stopping criterion — the same algorithm behind the MLC++ "entropy"
// partition the paper uses. Genes for which MDL accepts no cut point
// carry no class information and are dropped, so discretization doubles
// as feature selection ("# Genes after Discretization" in Table 1).
package discretize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Discretizer holds per-gene cut points learned from a training matrix
// and converts matrices into discretized item datasets. Cut points for
// gene g are Cuts[g], sorted ascending; an empty slice means the gene
// was rejected by the MDL criterion and produces no items.
type Discretizer struct {
	Cuts       [][]float64
	GeneNames  []string
	ClassNames []string

	items     []dataset.Item
	itemStart []int // first item id of each gene; -1 for dropped genes
}

// Fit learns cut points from the training matrix m.
func Fit(m *Matrix) (*Discretizer, error) { return FitMatrix(m) }

// Matrix is an alias re-exported for readability of the Fit signature.
type Matrix = dataset.Matrix

// FitMatrix learns MDL-accepted cut points for every gene of m.
func FitMatrix(m *dataset.Matrix) (*Discretizer, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	dz := &Discretizer{
		Cuts:       make([][]float64, m.NumGenes()),
		GeneNames:  append([]string(nil), m.GeneNames...),
		ClassNames: append([]string(nil), m.ClassNames...),
	}
	labels := make([]int, m.NumRows())
	for r, l := range m.Labels {
		labels[r] = int(l)
	}
	k := len(m.ClassNames)
	vs := make([]stats.LabeledValue, m.NumRows())
	for g := 0; g < m.NumGenes(); g++ {
		for r := range m.Values {
			vs[r] = stats.LabeledValue{Value: m.Values[r][g], Label: labels[r]}
		}
		stats.SortLabeledValues(vs)
		var cuts []float64
		mdlPartition(vs, k, &cuts)
		sort.Float64s(cuts)
		dz.Cuts[g] = cuts
	}
	dz.buildItems()
	return dz, nil
}

// mdlPartition recursively splits the sorted labeled values, appending
// accepted cut points.
func mdlPartition(vs []stats.LabeledValue, numClasses int, cuts *[]float64) {
	cut, gain, ok := stats.BestBinarySplit(vs, numClasses)
	if !ok {
		return
	}
	// Locate the boundary index: first element with value > cut.
	b := sort.Search(len(vs), func(i int) bool { return vs[i].Value > cut })
	left, right := vs[:b], vs[b:]
	if !mdlAccepts(vs, left, right, gain) {
		return
	}
	*cuts = append(*cuts, cut)
	mdlPartition(left, numClasses, cuts)
	mdlPartition(right, numClasses, cuts)
}

// mdlAccepts applies the Fayyad–Irani MDLPC criterion:
//
//	Gain(S;T) > log2(N-1)/N + Δ(S;T)/N
//	Δ(S;T) = log2(3^k - 2) - [k·H(S) - k1·H(S1) - k2·H(S2)]
//
// where k, k1, k2 are the numbers of distinct classes present in S, S1,
// S2.
func mdlAccepts(s, s1, s2 []stats.LabeledValue, gain float64) bool {
	n := float64(len(s))
	if n < 2 {
		return false
	}
	k := float64(distinctClasses(s))
	k1 := float64(distinctClasses(s1))
	k2 := float64(distinctClasses(s2))
	h := entropyOf(s)
	h1 := entropyOf(s1)
	h2 := entropyOf(s2)
	delta := math.Log2(math.Pow(3, k)-2) - (k*h - k1*h1 - k2*h2)
	threshold := (math.Log2(n-1) + delta) / n
	return gain > threshold
}

func distinctClasses(vs []stats.LabeledValue) int {
	seen := map[int]bool{}
	for _, v := range vs {
		seen[v.Label] = true
	}
	return len(seen)
}

func entropyOf(vs []stats.LabeledValue) float64 {
	counts := map[int]int{}
	for _, v := range vs {
		counts[v.Label]++
	}
	flat := make([]int, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	return stats.Entropy(flat)
}

// buildItems enumerates the item table: one item per interval of each
// retained gene, in gene order.
func (dz *Discretizer) buildItems() {
	dz.items = nil
	dz.itemStart = make([]int, len(dz.Cuts))
	for g, cuts := range dz.Cuts {
		if len(cuts) == 0 {
			dz.itemStart[g] = -1
			continue
		}
		dz.itemStart[g] = len(dz.items)
		bounds := append([]float64{math.Inf(-1)}, cuts...)
		bounds = append(bounds, math.Inf(1))
		for i := 0; i+1 < len(bounds); i++ {
			dz.items = append(dz.items, dataset.Item{
				Gene:     g,
				GeneName: dz.GeneNames[g],
				Lo:       bounds[i],
				Hi:       bounds[i+1],
			})
		}
	}
}

// NumSelectedGenes returns how many genes survived discretization.
func (dz *Discretizer) NumSelectedGenes() int {
	n := 0
	for _, c := range dz.Cuts {
		if len(c) > 0 {
			n++
		}
	}
	return n
}

// SelectedGenes returns the indices of genes with at least one cut.
func (dz *Discretizer) SelectedGenes() []int {
	var out []int
	for g, c := range dz.Cuts {
		if len(c) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// NumItems returns the total number of items produced.
func (dz *Discretizer) NumItems() int { return len(dz.items) }

// itemFor returns the item id for gene g at value v, or -1 when the gene
// was dropped.
func (dz *Discretizer) itemFor(g int, v float64) int {
	start := dz.itemStart[g]
	if start < 0 {
		return -1
	}
	cuts := dz.Cuts[g]
	// Interval index = count of cuts <= v.
	idx := sort.SearchFloat64s(cuts, v)
	// SearchFloat64s returns the first i with cuts[i] >= v; a value equal
	// to a cut belongs to the right interval ([Lo,Hi) semantics).
	if idx < len(cuts) && cuts[idx] == v {
		idx++
	}
	return start + idx
}

// RowItems maps one raw expression row (one value per gene) to its
// item ids under the learned cut points. Genes rejected by MDL yield no
// item; extra or missing values beyond the fitted gene count are
// ignored.
func (dz *Discretizer) RowItems(values []float64) []int {
	out := make([]int, 0, dz.NumSelectedGenes())
	n := len(values)
	if n > len(dz.Cuts) {
		n = len(dz.Cuts)
	}
	for g := 0; g < n; g++ {
		if it := dz.itemFor(g, values[g]); it >= 0 {
			out = append(out, it)
		}
	}
	return out
}

// Transform converts a matrix into a discretized dataset using the
// learned cut points. The matrix must have the same gene schema as the
// training matrix.
func (dz *Discretizer) Transform(m *dataset.Matrix) (*dataset.Dataset, error) {
	if len(m.GeneNames) != len(dz.GeneNames) {
		return nil, fmt.Errorf("discretize: matrix has %d genes, discretizer fitted on %d", len(m.GeneNames), len(dz.GeneNames))
	}
	d := &dataset.Dataset{
		Items:      dz.items,
		Rows:       make([][]int, m.NumRows()),
		Labels:     append([]dataset.Label(nil), m.Labels...),
		ClassNames: append([]string(nil), dz.ClassNames...),
	}
	for r, row := range m.Values {
		items := make([]int, 0, dz.NumSelectedGenes())
		for g, v := range row {
			if it := dz.itemFor(g, v); it >= 0 {
				items = append(items, it)
			}
		}
		d.Rows[r] = items // gene order is ascending, so items are sorted
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
