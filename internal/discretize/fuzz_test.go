package discretize

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// FuzzDiscretize decodes a small labeled expression matrix from fuzz
// bytes, fits the MDL discretizer on it and checks the structural
// invariants the miner depends on: cut points sorted and finite, items
// covering the real line gene by gene, Transform mapping every training
// value into an interval that actually contains it, and RowItems
// agreeing with Transform.
func FuzzDiscretize(f *testing.F) {
	f.Add([]byte{3, 4, 0, 1, 0, 1, 10, 200, 30, 40, 50, 60, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 2, 0, 1, 128, 128})
	f.Add([]byte{2, 6, 0, 0, 1, 1, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeMatrix(data)
		if m == nil {
			return
		}
		dz, err := FitMatrix(m)
		if err != nil {
			t.Fatalf("FitMatrix rejected a valid matrix: %v", err)
		}

		for g, cuts := range dz.Cuts {
			if !sort.Float64sAreSorted(cuts) {
				t.Fatalf("gene %d cuts not sorted: %v", g, cuts)
			}
			for _, c := range cuts {
				if math.IsNaN(c) || math.IsInf(c, 0) {
					t.Fatalf("gene %d has non-finite cut %v", g, c)
				}
			}
		}

		d, err := dz.Transform(m)
		if err != nil {
			t.Fatalf("Transform on the training matrix: %v", err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("transformed dataset invalid: %v", err)
		}
		for r, row := range d.Rows {
			if !sort.IntsAreSorted(row) {
				t.Fatalf("row %d items not sorted: %v", r, row)
			}
			if want := dz.RowItems(m.Values[r]); !equalInts(row, want) {
				t.Fatalf("row %d: Transform %v != RowItems %v", r, row, want)
			}
			for _, it := range row {
				item := d.Items[it]
				v := m.Values[r][item.Gene]
				if v < item.Lo || v >= item.Hi {
					t.Fatalf("row %d gene %d: value %v outside item interval [%v,%v)",
						r, item.Gene, v, item.Lo, item.Hi)
				}
			}
		}
	})
}

// decodeMatrix builds a valid two-class matrix from fuzz bytes, or nil
// when the input is too short to define one. Layout: numGenes, numRows,
// then one label byte per row, then one value byte per cell (scaled into
// a small float range so equal values occur often — ties are where the
// cut placement logic is subtle).
func decodeMatrix(data []byte) *dataset.Matrix {
	if len(data) < 2 {
		return nil
	}
	numGenes := int(data[0])%6 + 1
	numRows := int(data[1])%10 + 2
	data = data[2:]
	if len(data) < numRows*(numGenes+1) {
		return nil
	}
	m := &dataset.Matrix{
		GeneNames:  make([]string, numGenes),
		ClassNames: []string{"C", "notC"},
	}
	for g := range m.GeneNames {
		m.GeneNames[g] = "g" + string(rune('A'+g))
	}
	for r := 0; r < numRows; r++ {
		m.Labels = append(m.Labels, dataset.Label(data[0]%2))
		data = data[1:]
		row := make([]float64, numGenes)
		for g := range row {
			row[g] = float64(int(data[g])%16) / 4.0
		}
		data = data[numGenes:]
		m.Values = append(m.Values, row)
	}
	return m
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
