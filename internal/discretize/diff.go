package discretize

import "repro/internal/dataset"

// Cut-point diffing: the primitive behind incremental dataset refresh
// (internal/datastore). Fayyad–Irani cuts are per-gene, so after rows
// are appended only genes whose refitted cut points differ from the
// previous version's need their item columns rebuilt — every other
// gene's row→interval mapping is unchanged for the old rows.
//
// Equality here is exact float64 equality on purpose: cut points are
// deterministic midpoints computed by stats.BestBinarySplit, so two
// fits over identical data produce bit-identical cuts, and any
// difference — however small — moves at least one row across an
// interval boundary in principle. An epsilon would silently reuse a
// stale column.

// EqualCuts reports whether two cut-point lists are identical
// (same length, same values, element-wise).
func EqualCuts(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffCuts returns the indices of genes whose cut lists differ between
// the two fits, in ascending order. The slices may have different
// lengths (a schema change); every index present in only one of them is
// reported as changed.
func DiffCuts(old, new [][]float64) []int {
	n := len(old)
	if len(new) > n {
		n = len(new)
	}
	var changed []int
	for g := 0; g < n; g++ {
		var a, b []float64
		if g < len(old) {
			a = old[g]
		}
		if g < len(new) {
			b = new[g]
		}
		if !EqualCuts(a, b) {
			changed = append(changed, g)
		}
	}
	return changed
}

// ItemTable returns the discretizer's item table: one dataset.Item per
// interval of each retained gene, in gene order. The slice is shared
// with every dataset this discretizer transforms; callers must not
// mutate it. Incremental refresh uses it to assemble a dataset from
// reused interval columns without re-running Transform.
func (dz *Discretizer) ItemTable() []dataset.Item { return dz.items }

// GeneItemRange returns the first global item id of gene g's intervals
// and the interval count. Genes rejected by MDL (no cuts) return
// (-1, 0). Item ids for gene g are start..start+n-1, interval index
// ascending.
func (dz *Discretizer) GeneItemRange(g int) (start, n int) {
	start = dz.itemStart[g]
	if start < 0 {
		return -1, 0
	}
	return start, len(dz.Cuts[g]) + 1
}

// IntervalIndex returns the interval index of value v within gene g's
// cut points: the count of cuts <= v ([Lo,Hi) semantics, matching
// itemFor). It is valid for any gene, including dropped ones (where
// the only interval is 0).
func (dz *Discretizer) IntervalIndex(g int, v float64) int {
	cuts := dz.Cuts[g]
	idx := 0
	for idx < len(cuts) && cuts[idx] <= v {
		idx++
	}
	return idx
}
