package datastore

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// RefreshStats describes how one snapshot was built from its
// predecessor. It is persisted in the snapshot envelope and surfaced
// by the GET /v1/datasets endpoints so operators can see whether an
// append took the fast path.
type RefreshStats struct {
	// AppendedRows is how many rows the append added.
	AppendedRows int `json:"appendedRows,omitempty"`
	// ChangedGenes counts genes whose refitted Fayyad–Irani cut points
	// differ from the previous version's — their item columns were
	// recomputed over every row.
	ChangedGenes int `json:"changedGenes,omitempty"`
	// ReusedGenes counts retained genes whose previous row→interval
	// column was reused (only the appended rows were discretized).
	ReusedGenes int `json:"reusedGenes,omitempty"`
	// FastPath marks an append that changed no gene's cuts at all: the
	// previous dataset and its transposed bitset index were extended
	// via dataset.AppendRows instead of being rebuilt.
	FastPath bool `json:"fastPath,omitempty"`
	// BuildNanos is the wall time of the refresh (fit + rebuild),
	// excluding persistence.
	BuildNanos int64 `json:"buildNanos,omitempty"`
}

// buildFull fits and transforms a matrix from scratch — the create
// (version 1) and oracle path. The interval columns are left nil and
// computed lazily by the first append that needs them.
func buildFull(name string, version int, m *dataset.Matrix) (*Snapshot, error) {
	dz, err := discretize.FitMatrix(m)
	if err != nil {
		return nil, err
	}
	ds, err := dz.Transform(m)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Name:        name,
		Version:     version,
		CreatedAt:   time.Now().UTC(),
		Matrix:      m,
		Discretizer: dz,
		Dataset:     ds,
	}, nil
}

// buildIncremental produces old's successor snapshot for the grown
// matrix m (old's rows plus appended new ones). Cut points are always
// refit — a cut is a global property of its gene's column, so no
// append can skip the fit — but the expensive per-row discretization
// is incremental:
//
//   - No gene's cuts changed (the common case for small appends): the
//     item vocabulary is identical, so the previous dataset is extended
//     with just the appended rows via dataset.AppendRows, which also
//     grows the transposed bitset index instead of rebuilding it.
//   - Some genes changed: only their columns are re-discretized over
//     all rows; every unchanged retained gene reuses its previous
//     row→interval column and discretizes only the appended rows. Rows
//     are then assembled from the columns and the new vocabulary.
//
// Either way the result deep-equals a from-scratch Transform of m —
// the oracle property the tests enforce.
func buildIncremental(old *Snapshot, m *dataset.Matrix, appended int) (*Snapshot, error) {
	start := time.Now()
	dz, err := discretize.FitMatrix(m)
	if err != nil {
		return nil, err
	}
	changed := discretize.DiffCuts(old.Discretizer.Cuts, dz.Cuts)
	stats := RefreshStats{AppendedRows: appended, ChangedGenes: len(changed)}
	oldRows := old.Matrix.NumRows()

	var ds *dataset.Dataset
	var cols [][]int32
	if len(changed) == 0 {
		stats.FastPath = true
		stats.ReusedGenes = dz.NumSelectedGenes()
		rows := make([][]int, appended)
		labels := make([]dataset.Label, appended)
		for i := 0; i < appended; i++ {
			rows[i] = dz.RowItems(m.Values[oldRows+i])
			labels[i] = m.Labels[oldRows+i]
		}
		ds, err = old.Dataset.AppendRows(rows, labels)
		if err != nil {
			return nil, err
		}
		if old.cols != nil {
			cols = growCols(old.cols, dz, m, oldRows)
		}
	} else {
		old.ensureCols()
		changedSet := make(map[int]bool, len(changed))
		for _, g := range changed {
			changedSet[g] = true
		}
		cols = make([][]int32, m.NumGenes())
		for g := 0; g < m.NumGenes(); g++ {
			if len(dz.Cuts[g]) == 0 {
				continue // gene dropped by MDL: no items, no column
			}
			col := make([]int32, m.NumRows())
			if !changedSet[g] && old.cols[g] != nil {
				copy(col, old.cols[g])
				for r := oldRows; r < m.NumRows(); r++ {
					col[r] = int32(dz.IntervalIndex(g, m.Values[r][g]))
				}
				stats.ReusedGenes++
			} else {
				for r := 0; r < m.NumRows(); r++ {
					col[r] = int32(dz.IntervalIndex(g, m.Values[r][g]))
				}
			}
			cols[g] = col
		}
		ds = assemble(dz, m, cols)
	}
	stats.BuildNanos = time.Since(start).Nanoseconds()
	return &Snapshot{
		Name:        old.Name,
		Version:     old.Version + 1,
		CreatedAt:   time.Now().UTC(),
		Matrix:      m,
		Discretizer: dz,
		Dataset:     ds,
		Refresh:     stats,
		cols:        cols,
	}, nil
}

// ensureCols materializes the snapshot's row→interval columns when
// they are missing (recovered snapshots, fast-path successors of
// column-less snapshots). Called only with the owning set's lock held.
func (s *Snapshot) ensureCols() {
	if s.cols != nil {
		return
	}
	dz, m := s.Discretizer, s.Matrix
	s.cols = make([][]int32, m.NumGenes())
	for g := 0; g < m.NumGenes(); g++ {
		if len(dz.Cuts[g]) == 0 {
			continue
		}
		col := make([]int32, m.NumRows())
		for r := 0; r < m.NumRows(); r++ {
			col[r] = int32(dz.IntervalIndex(g, m.Values[r][g]))
		}
		s.cols[g] = col
	}
}

// growCols extends every retained gene's column with the appended
// rows' interval indices. Valid only when no gene's cuts changed, so
// the old columns' indices are still correct.
func growCols(old [][]int32, dz *discretize.Discretizer, m *dataset.Matrix, oldRows int) [][]int32 {
	cols := make([][]int32, len(old))
	for g, col := range old {
		if col == nil {
			continue
		}
		nc := make([]int32, m.NumRows())
		copy(nc, col)
		for r := oldRows; r < m.NumRows(); r++ {
			nc[r] = int32(dz.IntervalIndex(g, m.Values[r][g]))
		}
		cols[g] = nc
	}
	return cols
}

// assemble builds the discretized dataset from per-gene interval
// columns, producing exactly what dz.Transform(m) would: gene item ids
// are assigned in gene order, so appending per-gene items in ascending
// gene order yields sorted rows.
func assemble(dz *discretize.Discretizer, m *dataset.Matrix, cols [][]int32) *dataset.Dataset {
	d := &dataset.Dataset{
		Items:      dz.ItemTable(),
		Rows:       make([][]int, m.NumRows()),
		Labels:     append([]dataset.Label(nil), m.Labels...),
		ClassNames: append([]string(nil), dz.ClassNames...),
	}
	starts := make([]int, len(cols))
	for g := range cols {
		if cols[g] != nil {
			starts[g], _ = dz.GeneItemRange(g)
		}
	}
	for r := range d.Rows {
		items := make([]int, 0, dz.NumSelectedGenes())
		for g, col := range cols {
			if col == nil {
				continue
			}
			items = append(items, starts[g]+int(col[r]))
		}
		d.Rows[r] = items
	}
	return d
}
