package datastore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// SnapshotSchemaVersion is the on-disk snapshot layout written by the
// store. Recovery accepts exactly this version.
const SnapshotSchemaVersion = 1

// snapshotKind tags the envelope so recovery rejects files written by
// other subsystems that share the data directory.
const snapshotKind = "rcbt-dataset-snapshot"

// snapshotEnvelope is one version's on-disk form. It is self-contained
// — full matrix plus the fitted cut points — so any retained version
// recovers without replaying its predecessors, and pruning old files
// never breaks newer ones. Cuts are persisted rather than refit at
// load time: FromCuts rebuilds the identical discretizer (and item
// vocabulary) deterministically, keeping recovery cheap and exact.
type snapshotEnvelope struct {
	Schema    int             `json:"schema"`
	Kind      string          `json:"kind"`
	Name      string          `json:"name"`
	Version   int             `json:"version"`
	CreatedAt time.Time       `json:"createdAt"`
	Classes   []string        `json:"classes"`
	Genes     []string        `json:"genes"`
	Labels    []dataset.Label `json:"labels"`
	Values    [][]float64     `json:"values"`
	Cuts      [][]float64     `json:"cuts"`
	Refresh   RefreshStats    `json:"refresh"`
}

// snapshotFileRE matches version snapshot file names.
var snapshotFileRE = regexp.MustCompile(`^v(\d+)\.json$`)

// setDir returns the directory holding one dataset's snapshots.
func (s *Store) setDir(name string) string { return filepath.Join(s.dir, name) }

// snapshotPath returns the file path of one version.
func (s *Store) snapshotPath(name string, version int) string {
	return filepath.Join(s.setDir(name), fmt.Sprintf("v%06d.json", version))
}

// persist writes one snapshot file with the journal's unique-staging
// atomic-rename discipline: a crash leaves either the complete file or
// a stray .tmp that recovery deletes — never a torn snapshot.
func (s *Store) persist(snap *Snapshot) error {
	if err := os.MkdirAll(s.setDir(snap.Name), 0o755); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	env := snapshotEnvelope{
		Schema:    SnapshotSchemaVersion,
		Kind:      snapshotKind,
		Name:      snap.Name,
		Version:   snap.Version,
		CreatedAt: snap.CreatedAt,
		Classes:   snap.Matrix.ClassNames,
		Genes:     snap.Matrix.GeneNames,
		Labels:    snap.Matrix.Labels,
		Values:    snap.Matrix.Values,
		Cuts:      snap.Discretizer.Cuts,
		Refresh:   snap.Refresh,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	if err := atomicWrite(s.snapshotPath(snap.Name, snap.Version), data); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	return nil
}

// atomicWrite stages data in a unique temp file next to path and
// renames it into place (the job journal's idiom: concurrent writers
// cannot steal each other's staging file, and a crash never leaves a
// torn destination).
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()      // vetsuite:allow uncheckederr -- error path, Write failure already reported
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	return nil
}

// removeSnapshotFile deletes a pruned version's file, best-effort: a
// leftover is deleted again by the next recovery's prune.
func (s *Store) removeSnapshotFile(name string, version int) {
	os.Remove(s.snapshotPath(name, version)) // vetsuite:allow uncheckederr -- best-effort prune; recovery re-prunes leftovers
}

// recover scans the root directory and loads every dataset at its
// retained complete versions. Per dataset, the latest parseable
// version wins (a corrupt or alien file is skipped with the next
// older version tried), and up to KeepVersions complete versions are
// kept. Stray .tmp staging files from crashed writes are deleted.
func (s *Store) recover() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("datastore: recover: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !nameRE.MatchString(e.Name()) {
			continue
		}
		st, err := s.recoverSet(e.Name())
		if err != nil {
			return err
		}
		if st != nil {
			s.sets[st.name] = st
		}
	}
	return nil
}

// recoverSet loads one dataset directory; nil when it holds no
// complete snapshot.
func (s *Store) recoverSet(name string) (*set, error) {
	dir := s.setDir(name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("datastore: recover %s: %w", name, err)
	}
	var versions []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name())) // vetsuite:allow uncheckederr -- stray staging file from a crashed write
			continue
		}
		m := snapshotFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		v, err := strconv.Atoi(m[1])
		if err != nil || v < 1 {
			continue
		}
		versions = append(versions, v)
	}
	if len(versions) == 0 {
		return nil, nil
	}
	sort.Sort(sort.Reverse(sort.IntSlice(versions)))
	st := &set{name: name, versions: map[int]*Snapshot{}}
	for _, v := range versions {
		if st.latest != 0 && s.keep > 0 && len(st.versions) >= s.keep {
			break
		}
		snap, err := loadSnapshot(s.snapshotPath(name, v), name, v)
		if err != nil {
			// A torn rename cannot produce a corrupt file, but disk
			// mishaps can; skip it and fall back to an older version.
			continue
		}
		if st.latest == 0 {
			st.latest = v
		}
		st.versions[v] = snap
	}
	if st.latest == 0 {
		return nil, nil
	}
	return st, nil
}

// loadSnapshot reads one snapshot file and rebuilds the in-memory
// snapshot: matrix from the envelope, discretizer from the persisted
// cuts (FromCuts — no refit), dataset by transforming the matrix.
func loadSnapshot(path, name string, version int) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env snapshotEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("datastore: %s: %w", path, err)
	}
	if env.Kind != snapshotKind {
		return nil, fmt.Errorf("datastore: %s: not a dataset snapshot (kind %q)", path, env.Kind)
	}
	if env.Schema != SnapshotSchemaVersion {
		return nil, fmt.Errorf("datastore: %s: unsupported schema %d (want %d)", path, env.Schema, SnapshotSchemaVersion)
	}
	if env.Name != name || env.Version != version {
		return nil, fmt.Errorf("datastore: %s: envelope says %s v%d", path, env.Name, env.Version)
	}
	m := &dataset.Matrix{
		GeneNames:  env.Genes,
		ClassNames: env.Classes,
		Values:     env.Values,
		Labels:     env.Labels,
	}
	if m.Values == nil {
		m.Values = [][]float64{}
	}
	if m.Labels == nil {
		m.Labels = []dataset.Label{}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("datastore: %s: %w", path, err)
	}
	if len(env.Cuts) != len(env.Genes) {
		return nil, fmt.Errorf("datastore: %s: %d cut lists for %d genes", path, len(env.Cuts), len(env.Genes))
	}
	dz, err := discretize.FromCuts(env.Classes, env.Genes, env.Cuts)
	if err != nil {
		return nil, fmt.Errorf("datastore: %s: %w", path, err)
	}
	ds, err := dz.Transform(m)
	if err != nil {
		return nil, fmt.Errorf("datastore: %s: %w", path, err)
	}
	return &Snapshot{
		Name:        name,
		Version:     version,
		CreatedAt:   env.CreatedAt,
		Matrix:      m,
		Discretizer: dz,
		Dataset:     ds,
		Refresh:     env.Refresh,
	}, nil
}
