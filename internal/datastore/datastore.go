// Package datastore is the versioned dataset subsystem behind the
// streaming ingestion API: named gene-expression datasets whose every
// mutation (create, append rows) produces a new immutable snapshot,
// persisted as one self-contained JSON file per version with the same
// unique-staging atomic-rename discipline as the job journal. A
// restarted store recovers each dataset at its latest complete
// version; a torn write from a crash mid-append is at worst a stray
// .tmp file that recovery deletes.
//
// Appends run the incremental refresh pipeline (refresh.go): cut
// points are refit on the grown matrix, but only genes whose
// Fayyad–Irani cuts actually changed have their item columns
// recomputed — unchanged genes reuse the previous snapshot's
// row→interval columns, and when no gene changed at all the previous
// dataset and its transposed bitset index are extended in place-free
// fashion via dataset.AppendRows. The refreshed snapshot is guaranteed
// to deep-equal a from-scratch FitMatrix+Transform on the same data
// (the oracle the tests enforce), so models re-trained on it are
// indistinguishable from full retrains.
//
// See DESIGN.md §12 for the snapshot format and refresh semantics.
package datastore

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// Sentinel errors. The HTTP layer maps them onto the error taxonomy:
// ErrNotFound → 404, ErrExists / ErrVersionGone → 409, ErrBadRequest
// → 422.
var (
	// ErrNotFound reports an unknown dataset name.
	ErrNotFound = errors.New("datastore: no such dataset")
	// ErrExists rejects creating a dataset whose name is taken.
	ErrExists = errors.New("datastore: dataset already exists")
	// ErrVersionGone reports a version that was pruned by the retention
	// policy or never existed. A client pinned to "name@v" learns its
	// snapshot is no longer trainable.
	ErrVersionGone = errors.New("datastore: version pruned or unknown")
	// ErrBadRequest wraps every request validation failure.
	ErrBadRequest = errors.New("datastore: invalid request")
)

// nameRE is the dataset (and model) name character set: path-safe and
// free of '@' and '/', so "name@version" references and snapshot file
// paths parse unambiguously. Deliberately identical to the job
// manager's model-name rule — auto-refresh reuses the dataset name as
// the served model name.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Config configures a Store.
type Config struct {
	// Dir is the root directory; dataset name n's snapshots live at
	// Dir/n/v%06d.json. Required.
	Dir string
	// KeepVersions bounds retained versions per dataset; older
	// snapshots are pruned from memory and disk after each append.
	// 0 keeps everything.
	KeepVersions int
}

// Store is a collection of named, versioned datasets. All methods are
// safe for concurrent use; mutations of one dataset serialize on a
// per-dataset lock so appends to different datasets proceed in
// parallel.
type Store struct {
	dir  string
	keep int

	mu   sync.RWMutex // guards sets map shape
	sets map[string]*set
}

// set is one named dataset's retained versions.
type set struct {
	mu       sync.Mutex // serializes mutations and guards fields below
	name     string
	latest   int
	versions map[int]*Snapshot
}

// Snapshot is one immutable version of a dataset: the raw expression
// matrix, the discretizer fit on it, and the discretized item dataset.
// Callers must treat every reachable field as read-only — snapshots
// are shared between the store, serving, and in-flight train jobs.
type Snapshot struct {
	Name      string
	Version   int
	CreatedAt time.Time

	Matrix      *dataset.Matrix
	Discretizer *discretize.Discretizer
	Dataset     *dataset.Dataset

	// Refresh describes how this snapshot was built from its
	// predecessor (zero for version 1 and recovered snapshots).
	Refresh RefreshStats

	// cols[g] is gene g's row→interval-index column (nil for genes
	// MDL dropped). Kept only on the latest version of each dataset;
	// it is the reuse substrate of the next incremental refresh.
	cols [][]int32
}

// Open creates dir if needed and recovers every dataset found under it
// at its latest complete version (plus up to KeepVersions-1 older
// complete versions). Stray .tmp staging files from crashed appends
// are deleted.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("datastore: Config.Dir is required")
	}
	s := &Store{
		dir:  cfg.Dir,
		keep: cfg.KeepVersions,
		sets: map[string]*set{},
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// bad builds an ErrBadRequest-wrapped validation error.
func bad(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Create registers a new dataset from its schema and initial rows
// (which may be empty: a dataset can be created bare and filled by
// appends) and persists snapshot version 1.
func (s *Store) Create(name string, classes, genes []string, values [][]float64, labels []dataset.Label) (*Snapshot, error) {
	if !nameRE.MatchString(name) {
		return nil, bad("dataset name %q must match %s", name, nameRE)
	}
	if len(classes) < 2 {
		return nil, bad("need at least 2 classes, have %d", len(classes))
	}
	if len(genes) == 0 {
		return nil, bad("need at least 1 gene")
	}
	m := &dataset.Matrix{
		GeneNames:  append([]string(nil), genes...),
		ClassNames: append([]string(nil), classes...),
		Values:     copyValues(values, len(genes)),
		Labels:     append([]dataset.Label(nil), labels...),
	}
	if err := m.Validate(); err != nil {
		return nil, bad("%v", err)
	}

	s.mu.Lock()
	if _, ok := s.sets[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	st := &set{name: name, versions: map[int]*Snapshot{}}
	st.mu.Lock() // build v1 before anyone can observe the set
	s.sets[name] = st
	s.mu.Unlock()
	defer st.mu.Unlock()

	snap, err := buildFull(name, 1, m)
	if err != nil {
		s.dropSet(name)
		return nil, err
	}
	if err := s.persist(snap); err != nil {
		s.dropSet(name)
		return nil, err
	}
	st.latest = 1
	st.versions[1] = snap
	return snap, nil
}

// dropSet removes a half-created set after a failed Create.
func (s *Store) dropSet(name string) {
	s.mu.Lock()
	delete(s.sets, name)
	s.mu.Unlock()
}

// Append adds rows to a dataset, producing and persisting the next
// snapshot version via the incremental refresh pipeline. At least one
// row is required (an empty append would mint an identical version).
func (s *Store) Append(name string, values [][]float64, labels []dataset.Label) (*Snapshot, error) {
	if len(values) == 0 {
		return nil, bad("append needs at least one row")
	}
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.versions[st.latest]

	m := &dataset.Matrix{
		GeneNames:  old.Matrix.GeneNames,
		ClassNames: old.Matrix.ClassNames,
		Values:     make([][]float64, 0, len(old.Matrix.Values)+len(values)),
		Labels:     make([]dataset.Label, 0, len(old.Matrix.Labels)+len(labels)),
	}
	m.Values = append(append(m.Values, old.Matrix.Values...), copyValues(values, len(m.GeneNames))...)
	m.Labels = append(append(m.Labels, old.Matrix.Labels...), labels...)
	if err := m.Validate(); err != nil {
		return nil, bad("%v", err)
	}

	snap, err := buildIncremental(old, m, len(values))
	if err != nil {
		return nil, err
	}
	if err := s.persist(snap); err != nil {
		return nil, err
	}
	st.latest = snap.Version
	st.versions[snap.Version] = snap
	old.cols = nil // reuse substrate lives on the latest version only
	s.prune(st)
	return snap, nil
}

// prune enforces KeepVersions on one locked set: oldest versions past
// the cap are dropped from memory and their files removed. Removal
// failures are ignored — a leftover file is re-pruned on next recover.
func (s *Store) prune(st *set) {
	if s.keep <= 0 || len(st.versions) <= s.keep {
		return
	}
	vs := make([]int, 0, len(st.versions))
	for v := range st.versions {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs[:len(vs)-s.keep] {
		delete(st.versions, v)
		s.removeSnapshotFile(st.name, v)
	}
}

// lookup finds a set by name.
func (s *Store) lookup(name string) (*set, error) {
	s.mu.RLock()
	st, ok := s.sets[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return st, nil
}

// Get returns the latest snapshot of name.
func (s *Store) Get(name string) (*Snapshot, error) {
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.versions[st.latest], nil
}

// GetVersion returns one pinned snapshot. A version the dataset never
// reached, or one pruned by the retention policy, is ErrVersionGone.
func (s *Store) GetVersion(name string, version int) (*Snapshot, error) {
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	snap, ok := st.versions[version]
	if !ok {
		return nil, fmt.Errorf("%w: %s version %d (latest %d)", ErrVersionGone, name, version, st.latest)
	}
	return snap, nil
}

// Resolve parses a dataset reference — "name" for the latest version,
// "name@v" for a pinned one — and returns its snapshot.
func (s *Store) Resolve(ref string) (*Snapshot, error) {
	name, ver, err := ParseRef(ref)
	if err != nil {
		return nil, err
	}
	if ver == 0 {
		return s.Get(name)
	}
	return s.GetVersion(name, ver)
}

// ParseRef splits a "name" or "name@version" dataset reference.
// version 0 means "latest".
func ParseRef(ref string) (name string, version int, err error) {
	name = ref
	if i := strings.IndexByte(ref, '@'); i >= 0 {
		name = ref[:i]
		v, err := strconv.Atoi(ref[i+1:])
		if err != nil || v < 1 {
			return "", 0, bad("dataset reference %q: version must be a positive integer", ref)
		}
		version = v
	}
	if !nameRE.MatchString(name) {
		return "", 0, bad("dataset reference %q: name must match %s", ref, nameRE)
	}
	return name, version, nil
}

// Names returns the registered dataset names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.sets))
	for n := range s.sets {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Versions returns the retained version numbers of name, ascending.
func (s *Store) Versions(name string) ([]int, error) {
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	vs := make([]int, 0, len(st.versions))
	for v := range st.versions {
		vs = append(vs, v)
	}
	st.mu.Unlock()
	sort.Ints(vs)
	return vs, nil
}

// copyValues deep-copies the row values, normalizing each row to a
// fresh slice so later appends never alias caller memory. Rows of the
// wrong width are passed through; Matrix.Validate reports them.
func copyValues(values [][]float64, genes int) [][]float64 {
	out := make([][]float64, len(values))
	for i, row := range values {
		out[i] = append(make([]float64, 0, genes), row...)
	}
	return out
}
