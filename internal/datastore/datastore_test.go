package datastore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// sepMatrix builds a small matrix with one perfectly separated gene
// (values < 5 ↔ class a, > 5 ↔ class b — MDL accepts the cut at the
// class boundary midpoint) and one noise gene MDL drops.
func sepMatrix(t *testing.T) *dataset.Matrix {
	t.Helper()
	return &dataset.Matrix{
		GeneNames:  []string{"g0", "g1"},
		ClassNames: []string{"a", "b"},
		Values: [][]float64{
			{1, 3}, {2, 1}, {3, 4}, {4, 1},
			{10, 5}, {11, 9}, {12, 2}, {13, 6},
		},
		Labels: []dataset.Label{0, 0, 0, 0, 1, 1, 1, 1},
	}
}

func openStore(t *testing.T, dir string, keep int) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, KeepVersions: keep})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// assertOracle checks the incremental snapshot against a from-scratch
// fit+transform of the same matrix: identical cuts, identical dataset.
func assertOracle(t *testing.T, snap *Snapshot) {
	t.Helper()
	dz, err := discretize.FitMatrix(snap.Matrix)
	if err != nil {
		t.Fatalf("oracle fit: %v", err)
	}
	if !reflect.DeepEqual(snap.Discretizer.Cuts, dz.Cuts) {
		t.Fatalf("v%d cuts diverge from fresh fit:\n got %v\nwant %v",
			snap.Version, snap.Discretizer.Cuts, dz.Cuts)
	}
	want, err := dz.Transform(snap.Matrix)
	if err != nil {
		t.Fatalf("oracle transform: %v", err)
	}
	got := snap.Dataset
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("v%d item table diverges from fresh transform", snap.Version)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("v%d rows diverge:\n got %v\nwant %v", snap.Version, got.Rows, want.Rows)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("v%d labels diverge", snap.Version)
	}
	if !reflect.DeepEqual(got.ClassNames, want.ClassNames) {
		t.Fatalf("v%d class names diverge", snap.Version)
	}
	// The transposed index must match a from-scratch build too.
	for i := range got.Items {
		if !got.ItemRows(i).Equal(want.ItemRows(i)) {
			t.Fatalf("v%d item %d row set diverges from fresh index", snap.Version, i)
		}
	}
}

func TestCreateGetResolve(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	m := sepMatrix(t)
	snap, err := s.Create("leukemia", m.ClassNames, m.GeneNames, m.Values, m.Labels)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if snap.Version != 1 || snap.Name != "leukemia" {
		t.Fatalf("created %s v%d, want leukemia v1", snap.Name, snap.Version)
	}
	assertOracle(t, snap)

	if _, err := s.Create("leukemia", m.ClassNames, m.GeneNames, nil, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v, want ErrNotFound", err)
	}
	if _, err := s.Resolve("leukemia"); err != nil {
		t.Fatalf("Resolve latest: %v", err)
	}
	if got, err := s.Resolve("leukemia@1"); err != nil || got.Version != 1 {
		t.Fatalf("Resolve pinned: %v (v%d)", err, got.Version)
	}
	if _, err := s.Resolve("leukemia@2"); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("Resolve future version: %v, want ErrVersionGone", err)
	}
	for _, ref := range []string{"leukemia@0", "leukemia@x", "@1", "bad/name", "-lead"} {
		if _, err := s.Resolve(ref); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Resolve(%q): %v, want ErrBadRequest", ref, err)
		}
	}
	if names := s.Names(); len(names) != 1 || names[0] != "leukemia" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCreateValidation(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	cases := []struct {
		name           string
		classes, genes []string
	}{
		{"bad name!", []string{"a", "b"}, []string{"g"}},
		{"", []string{"a", "b"}, []string{"g"}},
		{"ok", []string{"a"}, []string{"g"}},
		{"ok", []string{"a", "b"}, nil},
	}
	for _, c := range cases {
		if _, err := s.Create(c.name, c.classes, c.genes, nil, nil); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Create(%q,%v,%v): %v, want ErrBadRequest", c.name, c.classes, c.genes, err)
		}
	}
	// A row/label shape error must not leave a half-registered set.
	if _, err := s.Create("shape", []string{"a", "b"}, []string{"g"},
		[][]float64{{1}}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("shape mismatch: %v, want ErrBadRequest", err)
	}
	if _, err := s.Get("shape"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed create left set registered: %v", err)
	}
}

// TestAppendFastPath appends rows that leave every gene's cuts intact
// and asserts the refresh took the AppendRows fast path while still
// matching the oracle.
func TestAppendFastPath(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	m := sepMatrix(t)
	snap, err := s.Create("d", m.ClassNames, m.GeneNames, m.Values, m.Labels)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Force the v1 index so the fast path exercises incremental growth.
	snap.Dataset.ItemRows(0)

	// Values interior to existing intervals: g0's midpoint cut (4+10)/2=7
	// is unmoved by another 2 on the left and 12 on the right.
	snap2, err := s.Append("d", [][]float64{{2, 8}, {12, 3}}, []dataset.Label{0, 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if snap2.Version != 2 {
		t.Fatalf("append produced v%d, want v2", snap2.Version)
	}
	if !snap2.Refresh.FastPath {
		t.Fatalf("expected fast path, got %+v", snap2.Refresh)
	}
	if snap2.Refresh.AppendedRows != 2 || snap2.Refresh.ChangedGenes != 0 {
		t.Fatalf("refresh stats %+v", snap2.Refresh)
	}
	assertOracle(t, snap2)
	// v1 stays immutable.
	if snap.Dataset.NumRows() != 8 || snap.Version != 1 {
		t.Fatalf("append mutated v1: %d rows", snap.Dataset.NumRows())
	}
}

// TestAppendCutChange appends a row that moves a cut point and asserts
// the merge path (changed gene rebuilt, unchanged gene reused).
func TestAppendCutChange(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	// Two separated genes with different boundaries.
	m := &dataset.Matrix{
		GeneNames:  []string{"g0", "g1"},
		ClassNames: []string{"a", "b"},
		Values: [][]float64{
			{1, 100}, {2, 101}, {3, 102}, {4, 103},
			{10, 200}, {11, 201}, {12, 202}, {13, 203},
		},
		Labels: []dataset.Label{0, 0, 0, 0, 1, 1, 1, 1},
	}
	if _, err := s.Create("d", m.ClassNames, m.GeneNames, m.Values, m.Labels); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// g0 value 6 (class a) moves its boundary midpoint from (4+10)/2=7
	// to (6+10)/2=8; g1 value 103 duplicates an existing value, so its
	// midpoint stays (103+200)/2=151.5 and g1's column is reused.
	snap, err := s.Append("d", [][]float64{{6, 103}}, []dataset.Label{0})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if snap.Refresh.FastPath {
		t.Fatalf("expected merge path, got %+v", snap.Refresh)
	}
	if snap.Refresh.ChangedGenes != 1 || snap.Refresh.ReusedGenes != 1 {
		t.Fatalf("refresh stats %+v, want 1 changed / 1 reused", snap.Refresh)
	}
	assertOracle(t, snap)
}

// TestPropertyIncrementalEqualsBatch is the oracle property test: any
// interleaving of appends over random matrices produces exactly the
// dataset a batch load of the final matrix would.
func TestPropertyIncrementalEqualsBatch(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		genes := 1 + rng.Intn(5)
		classes := 2 + rng.Intn(2)
		total := 2 + rng.Intn(28)

		geneNames := make([]string, genes)
		for g := range geneNames {
			geneNames[g] = "g" + string(rune('A'+g))
		}
		classNames := []string{"c0", "c1", "c2"}[:classes]
		values := make([][]float64, total)
		labels := make([]dataset.Label, total)
		for r := range values {
			row := make([]float64, genes)
			for g := range row {
				// Coarse grid: ties and class correlation are common, so
				// cut sets both change and persist across appends.
				row[g] = float64(rng.Intn(7)) + 0.5*float64(rng.Intn(2))
			}
			values[r] = row
			labels[r] = dataset.Label(rng.Intn(classes))
		}

		s := openStore(t, t.TempDir(), 0)
		initial := rng.Intn(total + 1)
		snap, err := s.Create("p", classNames, geneNames, values[:initial], labels[:initial])
		if err != nil {
			t.Logf("seed %d: create: %v", seed, err)
			return false
		}
		at := initial
		for at < total {
			chunk := 1 + rng.Intn(total-at)
			snap, err = s.Append("p", values[at:at+chunk], labels[at:at+chunk])
			if err != nil {
				t.Logf("seed %d: append: %v", seed, err)
				return false
			}
			at += chunk
		}

		dz, err := discretize.FitMatrix(&dataset.Matrix{
			GeneNames: geneNames, ClassNames: classNames, Values: values, Labels: labels,
		})
		if err != nil {
			t.Logf("seed %d: batch fit: %v", seed, err)
			return false
		}
		want, err := dz.Transform(snap.Matrix)
		if err != nil {
			t.Logf("seed %d: batch transform: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(snap.Discretizer.Cuts, dz.Cuts) {
			t.Logf("seed %d: cuts diverge", seed)
			return false
		}
		if !reflect.DeepEqual(snap.Dataset.Rows, want.Rows) ||
			!reflect.DeepEqual(snap.Dataset.Items, want.Items) ||
			!reflect.DeepEqual(snap.Dataset.Labels, want.Labels) {
			t.Logf("seed %d: dataset diverges", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	m := sepMatrix(t)
	if _, err := s.Create("d", m.ClassNames, m.GeneNames, m.Values, m.Labels); err != nil {
		t.Fatalf("Create: %v", err)
	}
	snap, err := s.Append("d", [][]float64{{6, 1}}, []dataset.Label{0})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}

	// A new store over the same directory sees the same latest version.
	s2 := openStore(t, dir, 0)
	got, err := s2.Get("d")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	if got.Version != snap.Version {
		t.Fatalf("recovered v%d, want v%d", got.Version, snap.Version)
	}
	if !reflect.DeepEqual(got.Dataset.Rows, snap.Dataset.Rows) ||
		!reflect.DeepEqual(got.Discretizer.Cuts, snap.Discretizer.Cuts) ||
		!reflect.DeepEqual(got.Matrix.Values, snap.Matrix.Values) {
		t.Fatal("recovered snapshot diverges from the one persisted")
	}
	if vs, err := s2.Versions("d"); err != nil || !reflect.DeepEqual(vs, []int{1, 2}) {
		t.Fatalf("recovered versions %v (%v), want [1 2]", vs, err)
	}
	// And appends keep working from the recovered state (exercises
	// ensureCols on a snapshot recovered without interval columns).
	snap3, err := s2.Append("d", [][]float64{{5, 2}}, []dataset.Label{1})
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	assertOracle(t, snap3)
}

// TestCrashMidAppendRecovery plants the debris a crash mid-append can
// leave — a stray staging file and a corrupt newest snapshot — and
// asserts recovery lands on the latest complete version and deletes
// the staging file.
func TestCrashMidAppendRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	m := sepMatrix(t)
	if _, err := s.Create("d", m.ClassNames, m.GeneNames, m.Values, m.Labels); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Append("d", [][]float64{{6, 1}}, []dataset.Label{0}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	setDir := filepath.Join(dir, "d")
	stray := filepath.Join(setDir, "v000003.json.123.tmp")
	if err := os.WriteFile(stray, []byte("{\"half\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt "newest" file (disk mishap, not a torn rename) must be
	// skipped in favor of the next older complete version.
	if err := os.WriteFile(filepath.Join(setDir, "v000003.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 0)
	got, err := s2.Get("d")
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	if got.Version != 2 {
		t.Fatalf("recovered v%d, want v2 (corrupt v3 skipped)", got.Version)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray staging file survived recovery: %v", err)
	}
	// The next append must supersede the corrupt file cleanly.
	snap, err := s2.Append("d", [][]float64{{2, 2}}, []dataset.Label{0})
	if err != nil {
		t.Fatalf("append over corrupt v3: %v", err)
	}
	if snap.Version != 3 {
		t.Fatalf("append produced v%d, want v3", snap.Version)
	}
	assertOracle(t, snap)
	s3 := openStore(t, dir, 0)
	if got, err := s3.Get("d"); err != nil || got.Version != 3 {
		t.Fatalf("re-recovered %v v%d, want v3", err, got.Version)
	}
}

func TestPruneAndVersionGone(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 2)
	m := sepMatrix(t)
	if _, err := s.Create("d", m.ClassNames, m.GeneNames, m.Values, m.Labels); err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append("d", [][]float64{{2, 1}}, []dataset.Label{0}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	vs, err := s.Versions("d")
	if err != nil || !reflect.DeepEqual(vs, []int{3, 4}) {
		t.Fatalf("versions %v (%v), want [3 4]", vs, err)
	}
	if _, err := s.GetVersion("d", 1); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("pruned version: %v, want ErrVersionGone", err)
	}
	if _, err := s.Resolve("d@2"); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("pruned ref: %v, want ErrVersionGone", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "d", "v000001.json")); !os.IsNotExist(err) {
		t.Fatal("pruned snapshot file still on disk")
	}
	// Recovery respects the retention cap too.
	s2 := openStore(t, dir, 2)
	if vs, err := s2.Versions("d"); err != nil || !reflect.DeepEqual(vs, []int{3, 4}) {
		t.Fatalf("recovered versions %v (%v), want [3 4]", vs, err)
	}
}

func TestParseRef(t *testing.T) {
	for _, c := range []struct {
		ref  string
		name string
		ver  int
		ok   bool
	}{
		{"d", "d", 0, true},
		{"data.set-1", "data.set-1", 0, true},
		{"d@3", "d", 3, true},
		{"d@0", "", 0, false},
		{"d@-1", "", 0, false},
		{"d@", "", 0, false},
		{"@3", "", 0, false},
		{"a/b", "", 0, false},
	} {
		name, ver, err := ParseRef(c.ref)
		if c.ok && (err != nil || name != c.name || ver != c.ver) {
			t.Errorf("ParseRef(%q) = %q,%d,%v want %q,%d", c.ref, name, ver, err, c.name, c.ver)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseRef(%q) accepted, want error", c.ref)
		}
	}
}
