package charm

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts CHARM to the engine.Miner interface under the name
// "charm".
type miner struct{}

func (miner) Name() string { return "charm" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	res, err := MineContext(ctx, d, Config{Minsup: opts.Minsup, MaxNodes: opts.MaxNodes})
	if err != nil {
		return nil, engine.Stats{}, err
	}
	return &engine.Result{Closed: res.Closed},
		engine.Stats{Nodes: res.Nodes, Groups: len(res.Closed), Workers: 1, Aborted: res.Aborted}, nil
}

func init() { engine.Register(miner{}) }
