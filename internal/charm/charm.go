// Package charm implements the CHARM closed-itemset miner of Zaki &
// Hsiao [31] using diffsets — the column-enumeration baseline of the
// paper's Figure 6 experiments. CHARM explores the itemset-tidset
// search tree, applying the four subsumption properties to skip
// non-closed branches; diffsets store each node's tidset as a
// difference from its parent's, so deep nodes stay cheap.
//
// On discretized gene expression data the item space is in the
// thousands, which is exactly why the paper reports CHARM failing to
// complete there: the column enumeration space explodes. MaxNodes
// bounds runs for benchmarking; correctness is validated on small
// datasets against brute force.
package charm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rules"
)

// ClosedItemset is one result: a closed itemset and its support
// (number of rows containing it, over the whole dataset).
type ClosedItemset = engine.ClosedItemset

// Config parameterizes a CHARM run.
type Config struct {
	Minsup int // absolute minimum support over all rows
	// MaxNodes, when positive, aborts after that many search nodes.
	MaxNodes int
}

// Result is the output of Mine.
type Result struct {
	Closed  []ClosedItemset
	Nodes   int
	Aborted bool
}

// candidate is an IT-node: extension items beyond the shared prefix,
// its diffset relative to the prefix tidset, and its support.
type candidate struct {
	ext  []int
	diff *bitset.Set
	sup  int
}

type searcher struct {
	cfg    Config
	budget *engine.Budget
	nodes  int
	closed map[int][][]int // support -> closed itemsets (sorted items)
	out    []ClosedItemset
}

// tick charges one work unit against the budget; the returned error
// (budget exhausted or context cancelled) unwinds the recursion.
func (m *searcher) tick() error {
	m.nodes++
	return m.budget.Charge(1)
}

// Mine discovers all closed itemsets of d with support >= cfg.Minsup.
// It is MineContext without cancellation.
func Mine(d *dataset.Dataset, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the search and returns ctx.Err() with a nil Result. A
// Config.MaxNodes abort is not an error — the partial Result is
// returned with Aborted set.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("charm: minsup must be >= 1, got %d", cfg.Minsup)
	}
	n := d.NumRows()
	all := bitset.New(n)
	all.Fill()

	var cands []*candidate
	for i := 0; i < d.NumItems(); i++ {
		t := d.ItemRows(i)
		sup := t.Count()
		if sup < cfg.Minsup {
			continue
		}
		cands = append(cands, &candidate{
			ext:  []int{i},
			diff: all.Difference(t), // d(X) = T \ t(X)
			sup:  sup,
		})
	}
	sortBySupport(cands)

	m := &searcher{cfg: cfg, budget: engine.NewBudget(ctx, cfg.MaxNodes), closed: make(map[int][][]int)}
	res := &Result{}
	switch err := m.extend(nil, cands); {
	case errors.Is(err, engine.ErrNodeBudget):
		res.Aborted = true
	case err != nil:
		return nil, err
	}
	res.Closed = m.out
	res.Nodes = m.nodes
	sort.Slice(res.Closed, func(i, j int) bool {
		a, b := res.Closed[i], res.Closed[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return less(a.Items, b.Items)
	})
	return res, nil
}

func less(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func sortBySupport(cs []*candidate) {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].sup < cs[j].sup })
}

// extend processes one prefix's candidate list (the CHARM-EXTEND loop).
func (m *searcher) extend(prefix []int, cands []*candidate) error {
	for i := 0; i < len(cands); i++ {
		ci := cands[i]
		if ci == nil {
			continue
		}
		if err := m.tick(); err != nil {
			return err
		}
		var children []*candidate
		for j := i + 1; j < len(cands); j++ {
			cj := cands[j]
			if cj == nil {
				continue
			}
			// budget tracks pair evaluations, the real unit of work
			if err := m.tick(); err != nil {
				return err
			}
			// t(P∪Xi) R t(P∪Xj) relations via diffsets:
			// t equal      iff d_i == d_j
			// t(i) ⊂ t(j)  iff d_i ⊃ d_j
			// t(i) ⊃ t(j)  iff d_i ⊂ d_j
			iInJ := cj.diff.ContainsAll(ci.diff) // d_i ⊆ d_j ⇔ t(i) ⊇ t(j)
			jInI := ci.diff.ContainsAll(cj.diff) // d_j ⊆ d_i ⇔ t(j) ⊇ t(i)
			switch {
			case iInJ && jInI: // property 1: equal tidsets
				ci.ext = append(ci.ext, cj.ext...)
				cands[j] = nil
			case jInI: // property 2: t(i) ⊂ t(j) — absorb j's items into i
				ci.ext = append(ci.ext, cj.ext...)
			case iInJ: // property 3: t(i) ⊃ t(j) — j moves under i
				cands[j] = nil
				d := cj.diff.Difference(ci.diff)
				sup := ci.sup - d.Count()
				if sup >= m.cfg.Minsup {
					children = append(children, &candidate{
						ext:  append([]int(nil), cj.ext...),
						diff: d,
						sup:  sup,
					})
				}
			default: // property 4: incomparable
				d := cj.diff.Difference(ci.diff)
				sup := ci.sup - d.Count()
				if sup >= m.cfg.Minsup {
					children = append(children, &candidate{
						ext:  append([]int(nil), cj.ext...),
						diff: d,
						sup:  sup,
					})
				}
			}
		}
		itemset := append(append([]int(nil), prefix...), ci.ext...)
		sort.Ints(itemset)
		if len(children) > 0 {
			sortBySupport(children)
			if err := m.extend(itemset, children); err != nil {
				return err
			}
		}
		m.addClosed(itemset, ci.sup)
	}
	return nil
}

// addClosed records the itemset unless a superset with equal support is
// already known (the CHARM subsumption check, hashed by support).
func (m *searcher) addClosed(items []int, sup int) {
	for _, z := range m.closed[sup] {
		if isSubset(items, z) {
			return
		}
	}
	m.closed[sup] = append(m.closed[sup], items)
	m.out = append(m.out, ClosedItemset{Items: items, Support: sup})
}

// isSubset reports a ⊆ b for sorted int slices.
func isSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// MineRuleGroups runs CHARM and converts each closed itemset into the
// rule group it generates for the given consequent class, filtered by
// class-level support and confidence. This is how the paper's
// comparison uses a closed-itemset miner as a rule-group miner.
func MineRuleGroups(d *dataset.Dataset, cls dataset.Label, cfg Config, minClassSup int, minconf float64) ([]*rules.Group, *Result, error) {
	res, err := Mine(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	var out []*rules.Group
	seen := map[string]bool{}
	for _, c := range res.Closed {
		g := rules.GroupFromItems(d, c.Items, cls)
		if g.Support < minClassSup || g.Confidence < minconf {
			continue
		}
		key := g.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, g)
	}
	rules.SortGroups(out)
	return out, res, nil
}
