package charm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// bruteForceClosed enumerates all closed itemsets with support >= minsup
// by closing every row subset.
func bruteForceClosed(d *dataset.Dataset, minsup int) []ClosedItemset {
	n := d.NumRows()
	seen := map[string]ClosedItemset{}
	for mask := 1; mask < 1<<n; mask++ {
		rows := bitset.New(n)
		for r := 0; r < n; r++ {
			if mask&(1<<r) != 0 {
				rows.Add(r)
			}
		}
		items := d.CommonItems(rows)
		if len(items) == 0 {
			continue
		}
		sup := d.SupportSet(items)
		if sup.Count() < minsup {
			continue
		}
		key := sup.Key()
		if _, ok := seen[key]; !ok {
			seen[key] = ClosedItemset{Items: items, Support: sup.Count()}
		}
	}
	var out []ClosedItemset
	for _, c := range seen {
		out = append(out, c)
	}
	sortClosed(out)
	return out
}

func sortClosed(cs []ClosedItemset) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Support != cs[j].Support {
			return cs[i].Support > cs[j].Support
		}
		return less(cs[i].Items, cs[j].Items)
	})
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(7)
	nItems := 2 + r.Intn(9)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	return d
}

func TestFigure1ClosedItemsets(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, Config{Minsup: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceClosed(d, 1)
	if !reflect.DeepEqual(res.Closed, want) {
		t.Fatalf("closed sets mismatch:\ngot  %v\nwant %v", res.Closed, want)
	}
}

func TestFigure1Minsup3(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, Config{Minsup: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceClosed(d, 3)
	if !reflect.DeepEqual(res.Closed, want) {
		t.Fatalf("closed sets mismatch:\ngot  %v\nwant %v", res.Closed, want)
	}
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		res, err := Mine(d, Config{Minsup: minsup})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Closed, bruteForceClosed(d, minsup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxNodesAborts(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, Config{Minsup: 1, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("tiny budget should abort")
	}
}

func TestValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, Config{Minsup: 0}); err == nil {
		t.Fatal("minsup=0 must error")
	}
}

func TestEmptyResult(t *testing.T) {
	d, _ := dataset.RunningExample()
	res, err := Mine(d, Config{Minsup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) != 0 {
		t.Fatal("excessive minsup must yield nothing")
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 3}, []int{1, 2, 3}, true},
		{[]int{1, 4}, []int{1, 2, 3}, false},
		{nil, []int{1}, true},
		{[]int{1}, nil, false},
		{[]int{1, 2}, []int{1, 2}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMineRuleGroupsMatchesFarmerSemantics(t *testing.T) {
	// Closed itemsets reinterpreted as rule groups must yield the same
	// group set (by closure + class counting) as the brute-force rule
	// group oracle: every class-frequent group's generating itemset is
	// closed over all rows OR shares its closure; dedup by closure.
	d, _ := dataset.RunningExample()
	groups, res, err := MineRuleGroups(d, 0, Config{Minsup: 1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("unexpected abort")
	}
	// Every group must be closed, meet the class threshold, and be unique.
	seen := map[string]bool{}
	for _, g := range groups {
		if g.Support < 2 {
			t.Fatalf("group below class support: %+v", g)
		}
		sup := d.SupportSet(g.Antecedent)
		if !sup.Equal(g.Rows) {
			t.Fatal("rows mismatch")
		}
		if seen[g.Key()] {
			t.Fatal("duplicate group")
		}
		seen[g.Key()] = true
	}
	// The abc -> C group must be present with conf 1.0.
	found := false
	for _, g := range groups {
		if g.Confidence == 1.0 && g.Support == 2 && len(g.Antecedent) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("abc -> C missing from CHARM-derived rule groups")
	}
}
