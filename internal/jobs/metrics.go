package jobs

// DurationBuckets are the job-duration histogram upper bounds in
// seconds. Jobs span milliseconds (toy datasets) to many minutes
// (real expression matrices), so the ladder is wider and coarser than
// the serving layer's request-latency buckets.
var DurationBuckets = []float64{0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300, 1800}

// Metrics is a point-in-time snapshot of the manager's counters,
// shaped for a Prometheus text rendering: a queue-depth gauge, a
// running gauge, terminal-state counters, and a cumulative job
// duration histogram over DurationBuckets.
type Metrics struct {
	QueueDepth int
	Running    int
	// ByState counts terminal transitions (succeeded/failed/canceled),
	// including records recovered from a previous process's journal.
	ByState map[string]int64
	// DurationCount / DurationSum / DurationBucket mirror a Prometheus
	// histogram; DurationBucket[i] counts jobs that ran in at most
	// DurationBuckets[i] seconds (cumulative).
	DurationCount  int64
	DurationSum    float64
	DurationBucket []int64
}

// Metrics returns a consistent snapshot of the job counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		QueueDepth:     m.queued,
		Running:        m.running,
		ByState:        make(map[string]int64, len(m.byState)),
		DurationCount:  m.durCount,
		DurationSum:    m.durSum,
		DurationBucket: append([]int64(nil), m.durBucket...),
	}
	for s, n := range m.byState {
		out.ByState[s] = n
	}
	return out
}
