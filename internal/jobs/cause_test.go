package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
)

// TestRecordCauseMatrix pins the error-taxonomy contract end to end:
// every journaled cause tag survives a JSON round-trip (exactly what
// persist/recoverJournal do) and maps back to a sentinel that
// errors.Is matches — including through an extra %w wrapping layer,
// which is how callers above the manager propagate it.
func TestRecordCauseMatrix(t *testing.T) {
	cases := []struct {
		tag  string
		want error
	}{
		{CauseCanceled, context.Canceled},
		{CauseDeadline, context.DeadlineExceeded},
		{CauseBudget, engine.ErrNodeBudget},
		{CauseInterrupted, ErrInterrupted},
	}
	for _, tc := range cases {
		t.Run(tc.tag, func(t *testing.T) {
			rec := &Record{
				Schema:   JournalSchemaVersion,
				ID:       "job-" + tc.tag,
				State:    StateFailed,
				ErrCause: tc.tag,
			}
			data, err := json.MarshalIndent(rec, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			var back Record
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			got := back.Cause()
			if got == nil {
				t.Fatalf("Cause() = nil after round-trip, want %v", tc.want)
			}
			if !errors.Is(got, tc.want) {
				t.Errorf("errors.Is(%v, %v) = false", got, tc.want)
			}
			// Another wrapping layer — the serve error taxonomy does this —
			// must not break the match.
			wrapped := fmt.Errorf("job %s: %w", back.ID, got)
			if !errors.Is(wrapped, tc.want) {
				t.Errorf("errors.Is after wrapping = false for %v", tc.want)
			}
			// The sentinels are distinct: no tag may match another's error.
			for _, other := range cases {
				if other.tag != tc.tag && errors.Is(got, other.want) {
					t.Errorf("cause %q also matches %v", tc.tag, other.want)
				}
			}
		})
	}

	// Clean completions and unknown tags map to no cause at all.
	for _, tag := range []string{"", "someday-new-tag"} {
		rec := &Record{ErrCause: tag}
		if got := rec.Cause(); got != nil {
			t.Errorf("Cause() with tag %q = %v, want nil", tag, got)
		}
	}
}
