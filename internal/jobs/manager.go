package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rcbt"
)

// Config parameterizes Open. Only DataDir is required.
type Config struct {
	// DataDir roots the durable state: job records under DataDir/jobs,
	// model envelopes under DataDir/models.
	DataDir string
	// Workers is the pool size (0 = 2). Each worker runs one job at a
	// time; a job's own Spec.Workers controls mining parallelism inside
	// that slot.
	Workers int
	// QueueDepth caps jobs waiting for a worker (0 = 64). Submissions
	// past the cap fail with ErrQueueFull.
	QueueDepth int
	// DefaultTimeout bounds jobs whose spec has no Timeout (0 = none).
	DefaultTimeout time.Duration
	// Logger receives job lifecycle lines (nil = silent).
	Logger *log.Logger
	// OnModel, when non-nil, is called with every model a train job
	// persists — after the journal records success — so a serving layer
	// can hot-register it. It runs on the worker goroutine.
	OnModel func(name string, m *rcbt.Model)
}

// job pairs a queued record id with its transient dataset.
type job struct {
	id   string
	data Data
}

// Manager owns the worker pool, queue and journal. Create with Open,
// stop with Close.
type Manager struct {
	cfg       Config
	jobsDir   string
	modelsDir string

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	mu       sync.Mutex
	onModel  func(string, *rcbt.Model)
	recs     map[string]*Record
	order    []string // submission order (recovered records first)
	cancels  map[string]context.CancelFunc
	running  int
	queued   int
	draining bool
	closed   bool
	// terminal accounting for the metrics surface
	byState   map[string]int64
	durCount  int64
	durSum    float64
	durBucket []int64 // cumulative counts per DurationBuckets entry
}

// Open creates the data directories, recovers journaled records
// (marking jobs that were queued or running when their process died as
// failed with an interrupted cause), and starts the worker pool. ctx is
// the base context every job runs under: cancelling it cancels all
// queued and running jobs, exactly like Close.
func Open(ctx context.Context, cfg Config) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("jobs: Config.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	m := &Manager{
		cfg:       cfg,
		jobsDir:   filepath.Join(cfg.DataDir, "jobs"),
		modelsDir: filepath.Join(cfg.DataDir, "models"),
		queue:     make(chan *job, cfg.QueueDepth),
		recs:      map[string]*Record{},
		cancels:   map[string]context.CancelFunc{},
		byState:   map[string]int64{},
		durBucket: make([]int64, len(DurationBuckets)),
	}
	m.onModel = cfg.OnModel
	m.baseCtx, m.baseCancel = context.WithCancel(ctx)
	if err := m.recoverJournal(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.run(j)
			}
		}()
	}
	return m, nil
}

// SetOnModel replaces the model callback after Open — a serving layer
// constructed after the manager uses this to hook hot registration.
func (m *Manager) SetOnModel(fn func(name string, model *rcbt.Model)) {
	m.mu.Lock()
	m.onModel = fn
	m.mu.Unlock()
}

// modelNameRE keeps persisted model names path-safe.
var modelNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// validate resolves spec defaults against the dataset and reports the
// first problem wrapped in ErrBadSpec.
func (m *Manager) validate(spec *Spec, data Data) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if data.Dataset == nil {
		return bad("no dataset")
	}
	if spec.Minsup < 0 || spec.MinsupFrac < 0 || spec.MinsupFrac > 1 {
		return bad("minsup %d / minsupFrac %v out of range", spec.Minsup, spec.MinsupFrac)
	}
	if spec.Minconf < 0 || spec.Minconf > 1 {
		return bad("minconf %v out of range [0,1]", spec.Minconf)
	}
	if spec.K < 0 || spec.NL < 0 || spec.Workers < 0 || spec.MaxNodes < 0 || spec.Timeout < 0 {
		return bad("negative tuning field")
	}
	if spec.Dataset == "" {
		spec.Dataset = data.Name
	}
	if spec.DatasetVersion == 0 {
		spec.DatasetVersion = data.Version
	}
	if spec.DatasetVersion < 0 {
		return bad("datasetVersion %d is negative", spec.DatasetVersion)
	}
	switch spec.Kind {
	case KindMine:
		if spec.Miner == "" {
			spec.Miner = "topk"
		}
		if _, ok := engine.Lookup(spec.Miner); !ok {
			return bad("unknown miner %q (have %v)", spec.Miner, engine.Miners())
		}
		if spec.ModelName != "" {
			return bad("modelName is only valid for train jobs")
		}
		if _, err := classOf(data.Dataset, spec.Class); err != nil {
			return bad("%v", err)
		}
	case KindTrain:
		if spec.Miner != "" {
			return bad("miner is only valid for mine jobs (train always uses topk)")
		}
		if spec.Minconf != 0 || spec.ReturnGroups {
			return bad("minconf and returnGroups are only valid for mine jobs")
		}
		if spec.ModelName != "" && !modelNameRE.MatchString(spec.ModelName) {
			return bad("model name %q is not path-safe", spec.ModelName)
		}
		cfg := rcbt.Config{K: spec.K, NL: spec.NL, MinsupFrac: spec.MinsupFrac,
			Workers: spec.Workers, MaxNodes: spec.MaxNodes}
		if err := cfg.Validate(); err != nil {
			return bad("%v", err)
		}
	default:
		return bad("kind must be %q or %q, got %q", KindMine, KindTrain, spec.Kind)
	}
	return nil
}

// classOf resolves a class name ("" = first class) to its label.
func classOf(d *dataset.Dataset, name string) (dataset.Label, error) {
	if name == "" {
		return 0, nil
	}
	for i, n := range d.ClassNames {
		if n == name {
			return dataset.Label(i), nil
		}
	}
	return 0, fmt.Errorf("class %q not in dataset (have %v)", name, d.ClassNames)
}

// newID returns a fresh journal-unique job id.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived id rather than aborting the submission.
		return fmt.Sprintf("job-%d", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}

// Submit validates the spec, journals a queued record and enqueues the
// job. It returns the queued record (a copy) without waiting for a
// worker.
func (m *Manager) Submit(spec Spec, data Data) (*Record, error) {
	if err := m.validate(&spec, data); err != nil {
		return nil, err
	}
	rec := &Record{
		Schema:      JournalSchemaVersion,
		ID:          newID(),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case m.queue <- &job{id: rec.ID, data: data}:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.recs[rec.ID] = rec
	m.order = append(m.order, rec.ID)
	m.queued++
	snap := rec.clone()
	// Journal the queued record while still holding the lock: a worker
	// that already popped the job blocks on the same lock in run(), so
	// its running-state write cannot land before this one.
	err := m.persist(snap)
	m.mu.Unlock()
	if err != nil {
		// The worker still runs the job; the journal just misses it until
		// the next transition persists. Surface the disk problem.
		return snap, fmt.Errorf("jobs: journal write: %w", err)
	}
	m.logf("job %s queued (%s)", rec.ID, spec.Kind)
	return snap, nil
}

// Get returns a copy of one job record.
func (m *Manager) Get(id string) (*Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return rec.clone(), nil
}

// Jobs returns copies of all known records — including ones recovered
// from a previous process — in submission order.
func (m *Manager) Jobs() []*Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Record, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.recs[id].clone())
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a running
// job's context is cancelled and the worker records the cancellation.
// The returned record reflects the state at return time (a running
// job may still report running until its miner unwinds).
func (m *Manager) Cancel(id string) (*Record, error) {
	m.mu.Lock()
	rec, ok := m.recs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch rec.State {
	case StateQueued:
		now := time.Now().UTC()
		rec.State = StateCanceled
		rec.Error = "canceled before start"
		rec.ErrCause = CauseCanceled
		rec.FinishedAt = &now
		m.queued--
		m.noteTerminalLocked(rec)
		snap := rec.clone()
		m.mu.Unlock()
		if err := m.persist(snap); err != nil {
			return snap, fmt.Errorf("jobs: journal write: %w", err)
		}
		m.logf("job %s canceled while queued", id)
		return snap, nil
	case StateRunning:
		cancel := m.cancels[id]
		snap := rec.clone()
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		m.logf("job %s cancel requested", id)
		return snap, nil
	default:
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrTerminal, id, rec.State)
	}
}

// Drain stops accepting submissions (ErrDraining) while letting
// running jobs finish, and cancels still-queued jobs with a drained
// cause — journaled immediately, so a process that dies between Drain
// and Close never leaves them "queued" on disk for restart recovery to
// re-report as interrupted. It is the first phase of a graceful
// shutdown; Close cancels what is still running.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	now := time.Now().UTC()
	var snaps []*Record
	for _, id := range m.order {
		rec := m.recs[id]
		if rec.State != StateQueued {
			continue
		}
		rec.State = StateCanceled
		rec.Error = "canceled by drain"
		rec.ErrCause = CauseDrained
		rec.FinishedAt = &now
		m.queued--
		m.noteTerminalLocked(rec)
		snaps = append(snaps, rec.clone())
	}
	m.mu.Unlock()
	// A worker that pops a drained job sees its terminal state and
	// skips it (run's queued-state guard), so journaling after the
	// unlock races with nothing.
	for _, snap := range snaps {
		if err := m.persist(snap); err != nil {
			m.logf("job %s: journal write: %v", snap.ID, err)
		}
		m.logf("job %s canceled by drain", snap.ID)
	}
}

// Close drains, cancels every queued and running job, and waits for the
// workers to journal their final states. It is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	m.draining = true
	close(m.queue)
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	return nil
}

// run executes one dequeued job on a worker goroutine.
func (m *Manager) run(j *job) {
	m.mu.Lock()
	rec := m.recs[j.id]
	if rec.State != StateQueued { // canceled while waiting
		m.mu.Unlock()
		return
	}
	m.queued--
	if m.baseCtx.Err() != nil { // Close won the race: never started
		m.finishLocked(rec, StateCanceled, "canceled by shutdown before start", CauseCanceled)
		return
	}
	now := time.Now().UTC()
	rec.State = StateRunning
	rec.StartedAt = &now
	m.running++
	ctx, cancel := context.WithCancel(m.baseCtx)
	m.cancels[j.id] = cancel
	timeout := time.Duration(rec.Spec.Timeout)
	if timeout == 0 {
		timeout = m.cfg.DefaultTimeout
	}
	spec := rec.Spec
	snap := rec.clone()
	m.mu.Unlock()
	defer cancel()

	if err := m.persist(snap); err != nil {
		m.logf("job %s: journal write: %v", j.id, err)
	}
	m.logf("job %s running (%s)", j.id, spec.Kind)

	runCtx := ctx
	if timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	var (
		sum        *Summary
		modelName  string
		modelPath  string
		err        error
		lastFlush  time.Time
		progressFn engine.ProgressFunc
	)
	// The hook runs on mining goroutines; the engine's sampler already
	// serializes calls, and the manager lock protects the record. The
	// journal flush is throttled so progress costs one small file write
	// every few hundred milliseconds at most.
	progressFn = func(s engine.ProgressSnapshot) {
		now := time.Now().UTC()
		m.mu.Lock()
		rec.Progress = &Progress{
			Nodes:           s.Nodes,
			Groups:          s.Groups,
			MaxDepth:        s.MaxDepth,
			MinconfFloor:    s.MinconfFloor,
			BudgetRemaining: s.BudgetRemaining,
			UpdatedAt:       now,
		}
		var flush *Record
		if now.Sub(lastFlush) >= 200*time.Millisecond {
			lastFlush = now
			flush = rec.clone()
		}
		m.mu.Unlock()
		if flush != nil {
			if werr := m.persist(flush); werr != nil {
				m.logf("job %s: journal write: %v", j.id, werr)
			}
		}
	}

	switch spec.Kind {
	case KindMine:
		sum, err = m.runMine(runCtx, spec, j.data, progressFn)
	case KindTrain:
		sum, modelName, modelPath, err = m.runTrain(runCtx, j.id, spec, j.data, progressFn)
	default: // unreachable: validate rejected it
		err = fmt.Errorf("%w: kind %q", ErrBadSpec, spec.Kind)
	}

	m.mu.Lock()
	m.running--
	delete(m.cancels, j.id)
	switch {
	case err == nil:
		rec.Result = sum
		rec.ModelName = modelName
		rec.ModelPath = modelPath
		if sum != nil && sum.Aborted {
			// Node budget exhausted: a successful partial result, with the
			// cause preserved so Cause() reports engine.ErrNodeBudget.
			rec.Partial = true
			rec.ErrCause = CauseBudget
		}
		m.finishLocked(rec, StateSucceeded, "", rec.ErrCause)
	case errors.Is(err, context.DeadlineExceeded):
		m.finishLocked(rec, StateFailed, fmt.Sprintf("job timeout (%v) exceeded", timeout), CauseDeadline)
	case errors.Is(err, context.Canceled):
		m.finishLocked(rec, StateCanceled, "canceled: "+err.Error(), CauseCanceled)
	default:
		m.finishLocked(rec, StateFailed, err.Error(), "")
	}
}

// finishLocked moves rec to a terminal state, updates the metric
// counters, and journals the final record. Caller holds m.mu; the lock
// is released before the journal write.
func (m *Manager) finishLocked(rec *Record, state, errMsg, cause string) {
	now := time.Now().UTC()
	rec.State = state
	rec.Error = errMsg
	rec.ErrCause = cause
	rec.FinishedAt = &now
	m.noteTerminalLocked(rec)
	snap := rec.clone()
	m.mu.Unlock()
	if err := m.persist(snap); err != nil {
		m.logf("job %s: journal write: %v", rec.ID, err)
	}
	m.logf("job %s %s%s", rec.ID, state, causeSuffix(snap))
}

func causeSuffix(r *Record) string {
	if r.Error != "" {
		return ": " + r.Error
	}
	if r.Partial {
		return " (partial: node budget)"
	}
	return ""
}

// noteTerminalLocked folds a terminal transition into the metric
// counters. Caller holds m.mu.
func (m *Manager) noteTerminalLocked(rec *Record) {
	m.byState[rec.State]++
	if rec.StartedAt == nil || rec.FinishedAt == nil {
		return
	}
	secs := rec.FinishedAt.Sub(*rec.StartedAt).Seconds()
	m.durCount++
	m.durSum += secs
	for i, le := range DurationBuckets {
		if secs <= le {
			m.durBucket[i]++
		}
	}
}

// runMine dispatches a mine job through the engine registry.
func (m *Manager) runMine(ctx context.Context, spec Spec, data Data, progress engine.ProgressFunc) (*Summary, error) {
	miner, ok := engine.Lookup(spec.Miner)
	if !ok {
		return nil, fmt.Errorf("%w: unknown miner %q", ErrBadSpec, spec.Miner)
	}
	d := data.Dataset
	cls, err := classOf(d, spec.Class)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	k := spec.K
	if k == 0 {
		k = 10
	}
	opts := engine.Options{
		Class:    cls,
		K:        k,
		Minsup:   resolveMinsup(spec, d, cls),
		Minconf:  spec.Minconf,
		Workers:  spec.Workers,
		MaxNodes: spec.MaxNodes,
		Progress: progress,
	}
	res, stats, err := miner.Mine(ctx, d, opts)
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		Nodes:   stats.Nodes,
		Groups:  len(res.Groups),
		Closed:  len(res.Closed),
		Aborted: stats.Aborted,
	}
	if spec.ReturnGroups {
		sum.GroupList = make([]MinedGroup, len(res.Groups))
		for i, g := range res.Groups {
			mg := MinedGroup{
				Items:      append([]int(nil), g.Antecedent...),
				Class:      int(g.Class),
				Support:    g.Support,
				Confidence: g.Confidence,
			}
			if g.Rows != nil {
				mg.Rows = g.Rows.Indices()
			}
			sum.GroupList[i] = mg
		}
	}
	return sum, nil
}

// resolveMinsup turns the spec's absolute/relative support into the
// absolute count the miner wants: relative to the consequent class for
// rule-group miners, to all rows for the closed-set miners.
func resolveMinsup(spec Spec, d *dataset.Dataset, cls dataset.Label) int {
	if spec.Minsup > 0 {
		return spec.Minsup
	}
	frac := spec.MinsupFrac
	if frac == 0 {
		frac = 0.7
	}
	base := d.ClassCount(cls)
	switch spec.Miner {
	case "carpenter", "charm", "closet":
		base = d.NumRows()
	}
	minsup := int(math.Ceil(frac * float64(base)))
	if minsup < 1 {
		minsup = 1
	}
	return minsup
}

// runTrain trains an RCBT classifier and persists it as a versioned
// model envelope under DataDir/models, then hands it to OnModel.
func (m *Manager) runTrain(ctx context.Context, id string, spec Spec, data Data, progress engine.ProgressFunc) (*Summary, string, string, error) {
	d := data.Dataset
	cfg := rcbt.Config{
		K:          spec.K,
		NL:         spec.NL,
		MinsupFrac: spec.MinsupFrac,
		Workers:    spec.Workers,
		MaxNodes:   spec.MaxNodes,
		Progress:   progress,
	}
	cls, err := rcbt.TrainContext(ctx, d, cfg)
	if err != nil {
		return nil, "", "", err
	}
	name := spec.ModelName
	if name == "" {
		name = id
	}
	model := &rcbt.Model{
		Classifier:  cls,
		Discretizer: data.Discretizer,
		ClassNames:  d.ClassNames,
		NumItems:    d.NumItems(),
		Meta: rcbt.Meta{
			Dataset:        spec.Dataset,
			DatasetVersion: spec.DatasetVersion,
			TrainRows:      d.NumRows(),
			CreatedAt:      time.Now().UTC().Format(time.RFC3339),
		},
	}
	path := filepath.Join(m.modelsDir, name+".json")
	if err := m.saveModel(path, model); err != nil {
		return nil, "", "", err
	}
	m.mu.Lock()
	onModel := m.onModel
	m.mu.Unlock()
	if onModel != nil {
		onModel(name, model)
	}
	return &Summary{Classifiers: cls.NumClassifiers()}, name, path, nil
}

// sortRecovered orders recovered records by submission time so Jobs()
// lists history before this process's submissions.
func sortRecovered(recs []*Record) {
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].SubmittedAt.Equal(recs[j].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[j].SubmittedAt)
		}
		return recs[i].ID < recs[j].ID
	})
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
