package jobs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRefresherSynchronousWhenNoDelay(t *testing.T) {
	var fired atomic.Int32
	r := NewRefresher(0, func(string) { fired.Add(1) })
	defer r.Stop()
	r.Trigger("d")
	r.Trigger("d")
	if got := fired.Load(); got != 2 {
		t.Fatalf("zero-delay refresher fired %d times, want 2 (synchronous)", got)
	}
}

func TestRefresherDebouncesBurst(t *testing.T) {
	var mu sync.Mutex
	fired := map[string]int{}
	done := make(chan string, 8)
	r := NewRefresher(30*time.Millisecond, func(name string) {
		mu.Lock()
		fired[name]++
		mu.Unlock()
		done <- name
	})
	defer r.Stop()

	for i := 0; i < 5; i++ {
		r.Trigger("d")
		time.Sleep(2 * time.Millisecond)
	}
	r.Trigger("other")

	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("refresher never fired")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if fired["d"] != 1 {
		t.Fatalf("burst fired %d times for d, want 1", fired["d"])
	}
	if fired["other"] != 1 {
		t.Fatalf("fired %d times for other, want 1", fired["other"])
	}
}

// TestRefresherStarvationCap triggers faster than the debounce window
// forever; the max-delay cap must fire anyway.
func TestRefresherStarvationCap(t *testing.T) {
	done := make(chan struct{}, 4)
	r := NewRefresher(10*time.Millisecond, func(string) { done <- struct{}{} })
	defer r.Stop()

	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(3 * time.Millisecond) // < delay: timer resets forever
	defer tick.Stop()
	for {
		select {
		case <-done:
			return // cap fired despite the steady trigger stream
		case <-tick.C:
			r.Trigger("d")
		case <-deadline:
			t.Fatal("starvation cap never fired")
		}
	}
}

func TestRefresherStop(t *testing.T) {
	var fired atomic.Int32
	r := NewRefresher(5*time.Millisecond, func(string) { fired.Add(1) })
	r.Trigger("d")
	r.Stop()
	r.Trigger("d") // ignored after Stop
	time.Sleep(30 * time.Millisecond)
	if got := fired.Load(); got != 0 {
		t.Fatalf("stopped refresher fired %d times", got)
	}
}
