package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rcbt"

	_ "repro/internal/carpenter" // register the miners jobs dispatch to
	_ "repro/internal/core"
)

// openTest returns a manager over a fresh temp data dir, closed with
// the test.
func openTest(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// denseDataset builds a dataset whose closed-itemset tree is
// astronomically large: carpenter at minsup 1 will not finish within
// any test timeout, which is exactly what the cancellation, deadline
// and budget tests need.
func denseDataset(rows, items int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(7))
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < items; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: fmt.Sprintf("g%d", i), Lo: 0, Hi: 1})
	}
	for r := 0; r < rows; r++ {
		var row []int
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.6 {
				row = append(row, i)
			}
		}
		if len(row) == 0 {
			row = append(row, r%items)
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, dataset.Label(r%2))
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}

// slowSpec is a mine job that cannot finish on its own.
func slowSpec() Spec { return Spec{Kind: KindMine, Miner: "carpenter", Minsup: 1} }

func slowData() Data {
	return Data{Dataset: denseDataset(52, 72), Name: "dense"}
}

// waitTerminal polls until the job leaves the transient states.
func waitTerminal(t *testing.T, m *Manager, id string) *Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Terminal() {
			return rec
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in 30s", id)
	return nil
}

// waitRunning polls until the job has actually started.
func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		switch rec.State {
		case StateRunning:
			return
		case StateQueued:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("job %s reached %s before running", id, rec.State)
		}
	}
	t.Fatalf("job %s never started", id)
}

func TestSubmitValidation(t *testing.T) {
	m := openTest(t, Config{})
	d, _ := dataset.RunningExample()
	data := Data{Dataset: d, Name: "running-example"}
	cases := []struct {
		name string
		spec Spec
		data Data
	}{
		{"bad kind", Spec{Kind: "optimize"}, data},
		{"no dataset", Spec{Kind: KindMine}, Data{}},
		{"unknown miner", Spec{Kind: KindMine, Miner: "apriori"}, data},
		{"unknown class", Spec{Kind: KindMine, Class: "tumor"}, data},
		{"model name on mine", Spec{Kind: KindMine, ModelName: "m"}, data},
		{"miner on train", Spec{Kind: KindTrain, Miner: "topk"}, data},
		{"unsafe model name", Spec{Kind: KindTrain, ModelName: "../escape"}, data},
		{"negative tuning", Spec{Kind: KindMine, K: -1}, data},
		{"bad minsup frac", Spec{Kind: KindMine, MinsupFrac: 1.5}, data},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.spec, tc.data); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", tc.name, err)
		}
	}
}

// TestConcurrentMineJobs is the pool determinism check: N submissions
// through a pool of 2 must all succeed with identical summaries, and
// each record must carry a final progress snapshot.
func TestConcurrentMineJobs(t *testing.T) {
	m := openTest(t, Config{Workers: 2})
	d, _ := dataset.RunningExample()
	data := Data{Dataset: d, Name: "running-example"}
	spec := Spec{Kind: KindMine, Class: "C", K: 2, Minsup: 2}

	const n = 8
	ids := make([]string, n)
	for i := range ids {
		rec, err := m.Submit(spec, data)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	var first *Summary
	for _, id := range ids {
		rec := waitTerminal(t, m, id)
		if rec.State != StateSucceeded {
			t.Fatalf("job %s: %s (%s)", id, rec.State, rec.Error)
		}
		if rec.Result == nil || rec.Result.Groups == 0 {
			t.Fatalf("job %s: empty result %+v", id, rec.Result)
		}
		if rec.Progress == nil || rec.Progress.Nodes == 0 {
			t.Fatalf("job %s: no progress snapshot", id)
		}
		if rec.StartedAt == nil || rec.FinishedAt == nil {
			t.Fatalf("job %s: missing timestamps", id)
		}
		if first == nil {
			first = rec.Result
		} else if !reflect.DeepEqual(rec.Result, first) {
			t.Fatalf("nondeterministic result: %+v vs %+v", rec.Result, first)
		}
	}
	mm := m.Metrics()
	if mm.ByState[StateSucceeded] != n {
		t.Errorf("succeeded counter = %d, want %d", mm.ByState[StateSucceeded], n)
	}
	if mm.DurationCount != n {
		t.Errorf("duration count = %d, want %d", mm.DurationCount, n)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := openTest(t, Config{Workers: 1})
	rec, err := m.Submit(slowSpec(), slowData())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, rec.ID)
	if _, err := m.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", got.State, got.Error)
	}
	if got.Error == "" {
		t.Error("canceled job has empty error message")
	}
	if !errors.Is(got.Cause(), context.Canceled) {
		t.Errorf("Cause() = %v, want context.Canceled", got.Cause())
	}
	if _, err := m.Cancel(rec.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("second cancel: got %v, want ErrTerminal", err)
	}
}

func TestJobDeadline(t *testing.T) {
	m := openTest(t, Config{Workers: 1})
	spec := slowSpec()
	spec.Timeout = Duration(60 * time.Millisecond)
	rec, err := m.Submit(spec, slowData())
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != StateFailed {
		t.Fatalf("state = %s, want failed", got.State)
	}
	if got.Error == "" {
		t.Error("deadline failure has empty error message")
	}
	if !errors.Is(got.Cause(), context.DeadlineExceeded) {
		t.Errorf("Cause() = %v, want context.DeadlineExceeded", got.Cause())
	}
}

// TestBudgetAbortDistinguishable is the regression test for the cause
// taxonomy: a node-budget abort is a successful partial run whose
// journaled cause is engine.ErrNodeBudget — not confusable, via
// errors.Is, with a context cancellation.
func TestBudgetAbortDistinguishable(t *testing.T) {
	m := openTest(t, Config{Workers: 2})
	spec := slowSpec()
	spec.MaxNodes = 500
	budgeted, err := m.Submit(spec, slowData())
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := m.Submit(slowSpec(), slowData())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, canceled.ID)
	if _, err := m.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}

	b := waitTerminal(t, m, budgeted.ID)
	if b.State != StateSucceeded || !b.Partial {
		t.Fatalf("budgeted job: state=%s partial=%v (%s), want succeeded+partial", b.State, b.Partial, b.Error)
	}
	if b.Result == nil || !b.Result.Aborted {
		t.Fatalf("budgeted job: result %+v, want Aborted", b.Result)
	}
	if !errors.Is(b.Cause(), engine.ErrNodeBudget) {
		t.Errorf("budgeted Cause() = %v, want engine.ErrNodeBudget", b.Cause())
	}
	if errors.Is(b.Cause(), context.Canceled) {
		t.Error("budget abort is reported as a cancellation")
	}

	c := waitTerminal(t, m, canceled.ID)
	if !errors.Is(c.Cause(), context.Canceled) {
		t.Errorf("canceled Cause() = %v, want context.Canceled", c.Cause())
	}
	if errors.Is(c.Cause(), engine.ErrNodeBudget) {
		t.Error("cancellation is reported as a budget abort")
	}
}

func TestQueueCapAndDrain(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, Config{DataDir: dir, Workers: 1, QueueDepth: 1})
	running, err := m.Submit(slowSpec(), slowData())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, running.ID)
	queued, err := m.Submit(slowSpec(), slowData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(slowSpec(), slowData()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap submit: got %v, want ErrQueueFull", err)
	}
	if mm := m.Metrics(); mm.QueueDepth != 1 || mm.Running != 1 {
		t.Errorf("metrics queue=%d running=%d, want 1/1", mm.QueueDepth, mm.Running)
	}

	m.Drain()
	if _, err := m.Submit(slowSpec(), slowData()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: got %v, want ErrDraining", err)
	}

	// Drain cancels the queued job on the spot — terminal in memory AND
	// in its journal, so a crash between Drain and Close cannot leave a
	// "queued" record for restart recovery to call interrupted. The
	// running job is untouched.
	got, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || got.StartedAt != nil {
		t.Fatalf("drained job: state=%s started=%v, want canceled/never started", got.State, got.StartedAt)
	}
	if !errors.Is(got.Cause(), ErrDrained) {
		t.Errorf("drained Cause() = %v, want ErrDrained", got.Cause())
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", queued.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Record
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateCanceled || onDisk.ErrCause != CauseDrained {
		t.Fatalf("journal after drain: state=%s cause=%s, want canceled/drained", onDisk.State, onDisk.ErrCause)
	}
	if r, err := m.Get(running.ID); err != nil || r.State != StateRunning {
		t.Fatalf("running job after drain: %v %v, want still running", r, err)
	}

	// Cancelling the drained job again is a terminal-state conflict.
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel drained job: got %v, want ErrTerminal", err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, running.ID)
}

// TestCloseCancelsRunning is the shutdown-ordering contract at the jobs
// layer: Close stops in-flight work and journals it canceled before
// returning.
func TestCloseCancelsRunning(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, Config{DataDir: dir, Workers: 1})
	rec, err := m.Submit(slowSpec(), slowData())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, rec.ID)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", rec.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var journaled Record
	if err := json.Unmarshal(data, &journaled); err != nil {
		t.Fatal(err)
	}
	if journaled.State != StateCanceled {
		t.Fatalf("journal after Close: state=%s (%s), want canceled", journaled.State, journaled.Error)
	}
	if !errors.Is(journaled.Cause(), context.Canceled) {
		t.Errorf("journaled Cause() = %v, want context.Canceled", journaled.Cause())
	}
}

func TestGetUnknown(t *testing.T) {
	m := openTest(t, Config{})
	if _, err := m.Get("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestTrainJobPersistsModel(t *testing.T) {
	var hotName string
	var hotModel *rcbt.Model
	m := openTest(t, Config{OnModel: func(name string, mod *rcbt.Model) {
		hotName, hotModel = name, mod
	}})
	d, _ := dataset.RunningExample()
	spec := Spec{Kind: KindTrain, ModelName: "example", K: 2, NL: 3, MinsupFrac: 0.5}
	rec, err := m.Submit(spec, Data{Dataset: d, Name: "running-example"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != StateSucceeded {
		t.Fatalf("train job: %s (%s)", got.State, got.Error)
	}
	if got.ModelName != "example" || got.ModelPath == "" {
		t.Fatalf("model not recorded: %+v", got)
	}
	if hotName != "example" || hotModel == nil {
		t.Fatalf("OnModel not called: %q %v", hotName, hotModel)
	}
	if got.Result == nil || got.Result.Classifiers == 0 {
		t.Fatalf("train summary %+v", got.Result)
	}

	f, err := os.Open(got.ModelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := rcbt.LoadModel(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Meta.Dataset != "running-example" || loaded.Meta.TrainRows != d.NumRows() {
		t.Errorf("model meta %+v", loaded.Meta)
	}

	// Label parity with an in-process training run on the same config.
	ref, err := rcbt.Train(d, rcbt.Config{K: 2, NL: 3, MinsupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.PredictDataset(d)
	have, _ := loaded.Classifier.PredictDataset(d)
	for r := range want {
		if want[r] != have[r] {
			t.Fatalf("row %d: job model predicts %d, in-process predicts %d", r, have[r], want[r])
		}
	}
}

// TestRestartDurability is the crash-restart satellite: a fresh
// manager over the same data dir lists its predecessor's jobs, serves
// its models, and reports a mid-flight job as failed, never running.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	m1 := openTest(t, Config{DataDir: dir})
	d, _ := dataset.RunningExample()
	data := Data{Dataset: d, Name: "running-example"}

	train, err := m1.Submit(Spec{Kind: KindTrain, ModelName: "surviving", K: 2, NL: 3, MinsupFrac: 0.5}, data)
	if err != nil {
		t.Fatal(err)
	}
	mine, err := m1.Submit(Spec{Kind: KindMine, Class: "C", Minsup: 2}, data)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, train.ID)
	waitTerminal(t, m1, mine.ID)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash: a journal record stuck in running, as left by a
	// process that died without unwinding.
	now := time.Now().UTC()
	crashed := Record{
		Schema:      JournalSchemaVersion,
		ID:          "job-crashed",
		Spec:        Spec{Kind: KindMine},
		State:       StateRunning,
		SubmittedAt: now.Add(-time.Minute),
		StartedAt:   &now,
	}
	raw, err := json.MarshalIndent(&crashed, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", crashed.ID+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openTest(t, Config{DataDir: dir})
	recs := m2.Jobs()
	if len(recs) != 3 {
		t.Fatalf("restarted manager lists %d jobs, want 3", len(recs))
	}
	byID := map[string]*Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if r := byID[train.ID]; r == nil || r.State != StateSucceeded || r.ModelPath == "" {
		t.Fatalf("train record after restart: %+v", r)
	}
	if r := byID[mine.ID]; r == nil || r.State != StateSucceeded {
		t.Fatalf("mine record after restart: %+v", r)
	}
	r := byID["job-crashed"]
	if r == nil || r.State != StateFailed {
		t.Fatalf("crashed record after restart: %+v", r)
	}
	if r.Error == "" || !errors.Is(r.Cause(), ErrInterrupted) {
		t.Fatalf("crashed record cause: error=%q cause=%v", r.Error, r.Cause())
	}
	if r.FinishedAt == nil {
		t.Error("crashed record has no finish time")
	}

	// The persisted model is still loadable through the recovered path.
	f, err := os.Open(byID[train.ID].ModelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := rcbt.LoadModel(f); err != nil {
		t.Fatal(err)
	}
	if got := m2.Metrics(); got.ByState[StateSucceeded] != 2 || got.ByState[StateFailed] != 1 {
		t.Errorf("restart metrics %+v", got.ByState)
	}
}

func TestDurationJSON(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte(`{"kind":"mine","timeout":"1m30s"}`), &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.Timeout) != 90*time.Second {
		t.Fatalf("timeout = %v", time.Duration(s.Timeout))
	}
	if err := json.Unmarshal([]byte(`{"kind":"mine","timeout":2.5}`), &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.Timeout) != 2500*time.Millisecond {
		t.Fatalf("numeric timeout = %v", time.Duration(s.Timeout))
	}
	out, err := json.Marshal(Spec{Kind: "mine", Timeout: Duration(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"kind":"mine","timeout":"1s"}` {
		t.Fatalf("marshal: %s", out)
	}
	if err := json.Unmarshal([]byte(`{"timeout":"soon"}`), &s); err == nil {
		t.Fatal("bad duration accepted")
	}
}
