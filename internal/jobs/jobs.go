// Package jobs runs mining and training asynchronously: a bounded
// worker pool drains a FIFO queue of job specs, every state transition
// is journaled as a JSON record under the manager's data directory, and
// successful train jobs persist versioned rcbt.Model envelopes — so a
// restarted manager lists its predecessors' jobs and serves their
// models. The HTTP surface in internal/serve is a thin shim over this
// package; the state machine and durability rules live here (and in
// DESIGN.md §9).
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
)

// Job states. queued and running are transient; succeeded, failed and
// canceled are terminal. A record read back from the journal is only
// ever transient while its manager is alive — Open marks interrupted
// jobs failed (see recover in journal.go).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// Error-cause tags journaled with a finished record. They are strings
// in the journal so the file stays self-describing; Record.Cause maps
// them back to errors.Is-compatible sentinels.
const (
	CauseCanceled    = "canceled"
	CauseDeadline    = "deadline"
	CauseBudget      = "budget"
	CauseInterrupted = "interrupted"
	CauseDrained     = "drained"
)

// Sentinel errors returned by Manager methods.
var (
	// ErrDraining rejects submissions once Drain or Close has been
	// called; the HTTP layer maps it to 503.
	ErrDraining = errors.New("jobs: manager is draining, not accepting new jobs")
	// ErrQueueFull rejects submissions past Config.QueueDepth (429).
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal rejects cancelling a job that already finished (409).
	ErrTerminal = errors.New("jobs: job is already in a terminal state")
	// ErrBadSpec wraps every spec validation failure (422).
	ErrBadSpec = errors.New("jobs: invalid spec")
	// ErrInterrupted is the Cause of a job found queued or running in
	// the journal at Open time: its process died mid-job.
	ErrInterrupted = errors.New("jobs: interrupted by manager restart")
	// ErrDrained is the Cause of a queued job canceled by Drain before
	// any worker picked it up: the manager shut down with it still
	// waiting. Unlike ErrInterrupted, the outcome was journaled cleanly.
	ErrDrained = errors.New("jobs: canceled by manager drain")
)

// KindMine and KindTrain are the two job kinds.
const (
	KindMine  = "mine"
	KindTrain = "train"
)

// Duration marshals as a Go duration string ("30s", "1m") so job specs
// read naturally over HTTP and in journal files.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a bare number of seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobs: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("jobs: duration must be a string like \"30s\" or a number of seconds")
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// Spec is the serializable description of one job. It is the POST
// /v1/jobs request body minus the dataset payload, and is journaled
// verbatim inside the job record.
type Spec struct {
	// Kind is "mine" or "train".
	Kind string `json:"kind"`
	// Miner names the engine-registry miner for mine jobs ("" = topk).
	Miner string `json:"miner,omitempty"`
	// Class is the consequent class name for rule-group mine jobs
	// ("" = the dataset's first class). Closed-set miners ignore it.
	Class string `json:"class,omitempty"`
	// K is the top-k width (mine: 0 = 10) or the RCBT classifier count
	// (train: 0 = 10).
	K int `json:"k,omitempty"`
	// Minsup is the absolute minimum support; 0 defers to MinsupFrac.
	Minsup int `json:"minsup,omitempty"`
	// MinsupFrac is the relative minimum support (0 = the paper's 0.7)
	// over the consequent class (rule miners, train) or all rows
	// (closed-set miners).
	MinsupFrac float64 `json:"minsupFrac,omitempty"`
	// Minconf is a static minimum-confidence floor for mine jobs
	// (0 = none). A cluster coordinator sets it to the merged boards'
	// global threshold so remote workers prune as aggressively as local
	// enumeration would.
	Minconf float64 `json:"minconf,omitempty"`
	// ReturnGroups asks a mine job to journal the discovered rule
	// groups in Result.GroupList (antecedents, supports, row sets) —
	// the payload a cluster coordinator merges. Off by default: group
	// lists can be large and listings only need the counts.
	ReturnGroups bool `json:"returnGroups,omitempty"`
	// NL is the lower-bound rule count for train jobs (0 = 20).
	NL int `json:"nl,omitempty"`
	// Workers is the per-job mining worker count (0 = sequential).
	Workers int `json:"workers,omitempty"`
	// MaxNodes caps enumeration nodes; an exhausted budget is not a
	// failure — the job succeeds with Partial set and Cause reporting
	// engine.ErrNodeBudget.
	MaxNodes int `json:"maxNodes,omitempty"`
	// Timeout bounds the job run ("0" = Config.DefaultTimeout; both
	// zero = unbounded). Expiry fails the job with a deadline cause.
	Timeout Duration `json:"timeout,omitempty"`
	// ModelName names the persisted model of a train job ("" = job id).
	// A later train job may reuse a name; the newest model wins.
	ModelName string `json:"modelName,omitempty"`
	// Dataset is provenance only at this layer: the registered dataset
	// name the HTTP layer resolved (or "" for an inline payload). With
	// a datastore it may be a pinned "name@version" reference.
	Dataset string `json:"dataset,omitempty"`
	// DatasetVersion is the datastore snapshot version the dataset was
	// resolved to (0 = unversioned: a -dataset file or inline rows).
	// Train jobs stamp it into the persisted model's Meta so operators
	// can see which snapshot a serving model was trained on.
	DatasetVersion int `json:"datasetVersion,omitempty"`
}

// Data is the resolved dataset a job runs on. The manager keeps it
// only while the job is queued or running; it is never journaled.
type Data struct {
	Dataset *dataset.Dataset
	// Discretizer, when non-nil, is bundled into the model a train job
	// persists so the model can classify raw expression rows.
	Discretizer *discretize.Discretizer
	// Name is recorded as Spec.Dataset / model provenance.
	Name string
	// Version is the datastore snapshot version the dataset came from
	// (0 = unversioned). Recorded as Spec.DatasetVersion / model Meta.
	Version int
}

// Progress is the journaled form of the engine's progress snapshots.
type Progress struct {
	Nodes        int64   `json:"nodes"`
	Groups       int64   `json:"groups"`
	MaxDepth     int     `json:"maxDepth"`
	MinconfFloor float64 `json:"minconfFloor"`
	// BudgetRemaining counts nodes left under Spec.MaxNodes (-1 when
	// unbounded).
	BudgetRemaining int64     `json:"budgetRemaining"`
	UpdatedAt       time.Time `json:"updatedAt"`
}

// MinedGroup is the wire form of one rule group in a mine job's
// Result.GroupList: plain slices and scalars so it journals and ships
// over HTTP losslessly. Confidence round-trips exactly through JSON
// (encoding/json emits the shortest representation that parses back to
// the same float64), which is what lets a cluster coordinator compare
// remote confidences with rules.CompareConf.
type MinedGroup struct {
	// Items is the sorted antecedent (upper bound) in dataset item ids.
	Items []int `json:"items"`
	// Class is the consequent class index.
	Class int `json:"class"`
	// Support and Confidence are the group's global measures.
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
	// Rows is the ascending row ids of the support set.
	Rows []int `json:"rows"`
}

// Summary condenses a finished job's result for listing; full mining
// output is not journaled (models are persisted separately) unless the
// spec asked for it with ReturnGroups.
type Summary struct {
	// Nodes is the enumeration node total.
	Nodes int `json:"nodes"`
	// Groups / Closed count rule groups and closed itemsets (mine).
	Groups int `json:"groups,omitempty"`
	Closed int `json:"closed,omitempty"`
	// Classifiers counts RCBT sub-classifiers (train).
	Classifiers int `json:"classifiers,omitempty"`
	// Aborted reports a node-budget cutoff (mirrors Record.Partial).
	Aborted bool `json:"aborted,omitempty"`
	// GroupList is the mined rule groups in significance order, present
	// only when Spec.ReturnGroups was set.
	GroupList []MinedGroup `json:"groupList,omitempty"`
}

// JournalSchemaVersion is the record layout written to the journal.
const JournalSchemaVersion = 1

// Record is one job's journaled state. Manager methods return defensive
// copies; mutating a returned record has no effect.
type Record struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	State  string `json:"state"`
	// Error is the human-readable failure/cancellation message; empty
	// for succeeded jobs (including budget-partial ones).
	Error string `json:"error,omitempty"`
	// ErrCause is the machine-readable cause tag (see the Cause*
	// constants); Cause maps it to an errors.Is-compatible sentinel.
	ErrCause string `json:"errCause,omitempty"`
	// Partial marks a succeeded job whose search was cut by MaxNodes:
	// the results are valid but not exhaustive.
	Partial bool `json:"partial,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	Progress *Progress `json:"progress,omitempty"`
	Result   *Summary  `json:"result,omitempty"`

	// ModelName / ModelPath locate the model envelope a succeeded train
	// job persisted.
	ModelName string `json:"modelName,omitempty"`
	ModelPath string `json:"modelPath,omitempty"`
}

// Cause maps the journaled ErrCause tag back to a sentinel, so callers
// can distinguish outcomes with errors.Is even across a restart:
// context.Canceled (canceled by request or shutdown),
// context.DeadlineExceeded (job timeout), engine.ErrNodeBudget (node
// cap; the job still succeeded with Partial set), ErrInterrupted
// (process died mid-job), or ErrDrained (queued job canceled by a
// clean shutdown). It returns nil for clean completions.
func (r *Record) Cause() error {
	switch r.ErrCause {
	case CauseCanceled:
		return context.Canceled
	case CauseDeadline:
		return context.DeadlineExceeded
	case CauseBudget:
		return engine.ErrNodeBudget
	case CauseInterrupted:
		return ErrInterrupted
	case CauseDrained:
		return ErrDrained
	}
	return nil
}

// Terminal reports whether the record reached a final state.
func (r *Record) Terminal() bool {
	switch r.State {
	case StateSucceeded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// clone deep-copies the record so callers never alias manager state.
func (r *Record) clone() *Record {
	c := *r
	if r.StartedAt != nil {
		t := *r.StartedAt
		c.StartedAt = &t
	}
	if r.FinishedAt != nil {
		t := *r.FinishedAt
		c.FinishedAt = &t
	}
	if r.Progress != nil {
		p := *r.Progress
		c.Progress = &p
	}
	if r.Result != nil {
		s := *r.Result
		if s.GroupList != nil {
			gl := make([]MinedGroup, len(s.GroupList))
			for i, g := range s.GroupList {
				g.Items = append([]int(nil), g.Items...)
				g.Rows = append([]int(nil), g.Rows...)
				gl[i] = g
			}
			s.GroupList = gl
		}
		c.Result = &s
	}
	return &c
}
