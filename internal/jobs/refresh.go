package jobs

import (
	"sync"
	"time"
)

// Refresher debounces auto-refresh triggers: every dataset append calls
// Trigger(name), and once appends go quiet for the configured delay the
// fire callback runs once for that name — so a burst of appends costs
// one re-train, on the latest snapshot, instead of one per row batch.
//
// The debounce is trailing-edge with a starvation cap: each Trigger
// resets the name's timer, but a name that has been waiting longer than
// maxDelayFactor x delay fires immediately even if appends keep
// arriving, so a steady ingest stream still refreshes its model.
//
// Fire callbacks run on timer goroutines, one name at a time per name;
// the callback resolves the latest snapshot itself, which is why
// Trigger carries no payload — the last append before the timer fires
// wins, and intermediate versions are never trained needlessly.
type Refresher struct {
	delay time.Duration
	fire  func(name string)

	mu      sync.Mutex
	timers  map[string]*time.Timer
	waiting map[string]time.Time // first un-fired Trigger per name
	stopped bool
}

// maxDelayFactor bounds how long a steadily-appended dataset can be
// starved by timer resets: once the oldest pending trigger is older
// than maxDelayFactor x delay, the next Trigger fires synchronously.
const maxDelayFactor = 8

// NewRefresher builds a refresher firing fn after delay of quiet. A
// non-positive delay fires synchronously on every Trigger (no
// debounce), which keeps tests deterministic.
func NewRefresher(delay time.Duration, fn func(name string)) *Refresher {
	return &Refresher{
		delay:   delay,
		fire:    fn,
		timers:  map[string]*time.Timer{},
		waiting: map[string]time.Time{},
	}
}

// Trigger schedules (or reschedules) a refresh of name.
func (r *Refresher) Trigger(name string) {
	if r.delay <= 0 {
		r.fire(name)
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	first, pending := r.waiting[name]
	if pending && now.Sub(first) >= maxDelayFactor*r.delay {
		// Starvation cap: stop resetting and fire now.
		if t := r.timers[name]; t != nil {
			t.Stop()
			delete(r.timers, name)
		}
		delete(r.waiting, name)
		r.mu.Unlock()
		r.fire(name)
		return
	}
	if !pending {
		r.waiting[name] = now
	}
	if t := r.timers[name]; t != nil {
		t.Stop()
	}
	r.timers[name] = time.AfterFunc(r.delay, func() { r.expire(name) })
	r.mu.Unlock()
}

// expire runs on the timer goroutine when a name's quiet period ends.
func (r *Refresher) expire(name string) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	delete(r.timers, name)
	delete(r.waiting, name)
	r.mu.Unlock()
	r.fire(name)
}

// Stop cancels every pending timer; subsequent Triggers are ignored.
// It does not wait for in-flight fire callbacks.
func (r *Refresher) Stop() {
	r.mu.Lock()
	r.stopped = true
	for name, t := range r.timers {
		t.Stop()
		delete(r.timers, name)
	}
	r.waiting = map[string]time.Time{}
	r.mu.Unlock()
}
