package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/rcbt"
)

// persist journals one record as DataDir/jobs/<id>.json via the
// write-temp-then-rename idiom, so a crash mid-write leaves either the
// old record or the new one, never a torn file.
func (m *Manager) persist(rec *Record) error {
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(m.jobsDir, rec.ID+".json"), data)
}

// saveModel writes a model envelope with the same atomicity guarantee;
// a crashed train job never leaves a half-written model a restarted
// server would try to load.
func (m *Manager) saveModel(path string, model *rcbt.Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := model.Save(f); err != nil {
		f.Close()      // vetsuite:allow uncheckederr -- error path, Save failure already reported
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	return os.Rename(tmp, path)
}

func atomicWrite(path string, data []byte) error {
	// The temp name is unique per call (not "<path>.tmp") so two
	// concurrent writers of the same record cannot steal each other's
	// staging file; the loser's rename just lands second.
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()      // vetsuite:allow uncheckederr -- error path, Write failure already reported
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) // vetsuite:allow uncheckederr -- best-effort staging cleanup
		return err
	}
	return nil
}

// recoverJournal creates the data directories and loads every journaled
// record. Jobs that were queued or running when their process died are
// rewritten as failed with an interrupted cause — a restarted manager
// never reports a job it is not actually running.
func (m *Manager) recoverJournal() error {
	for _, dir := range []string{m.jobsDir, m.modelsDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	paths, err := filepath.Glob(filepath.Join(m.jobsDir, "*.json"))
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	var recovered []*Record
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("jobs: recover: %w", err)
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			m.logf("jobs: skipping unreadable journal file %s: %v", p, err)
			continue
		}
		if rec.Schema != JournalSchemaVersion {
			m.logf("jobs: skipping journal file %s: schema %d (want %d)", p, rec.Schema, JournalSchemaVersion)
			continue
		}
		if rec.ID == "" {
			m.logf("jobs: skipping journal file %s: no job id", p)
			continue
		}
		if !rec.Terminal() {
			now := time.Now().UTC()
			rec.Error = "interrupted: manager exited while the job was " + rec.State
			rec.State = StateFailed
			rec.ErrCause = CauseInterrupted
			rec.FinishedAt = &now
			if err := m.persist(&rec); err != nil {
				return fmt.Errorf("jobs: recover: %w", err)
			}
			m.logf("job %s recovered as failed (interrupted)", rec.ID)
		}
		recovered = append(recovered, &rec)
	}
	sortRecovered(recovered)
	for _, rec := range recovered {
		m.recs[rec.ID] = rec
		m.order = append(m.order, rec.ID)
		m.noteTerminalLocked(rec)
	}
	return nil
}
