package hybrid

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts hybrid column-then-row mining to the engine.Miner
// interface under the name "hybrid".
type miner struct{}

func (miner) Name() string { return "hybrid" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	cfg := Config{
		K:                opts.K,
		Minsup:           opts.Minsup,
		MaxPartitionRows: opts.MaxPartitionRows,
		Workers:          opts.EffectiveWorkers(),
	}
	res, err := MineContext(ctx, d, opts.Class, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	return &engine.Result{
		PerRow:     res.PerRow,
		Groups:     res.Groups,
		Partitions: res.Partitions,
	}, engine.Stats{Groups: len(res.Groups), Workers: 1}, nil
}

func init() { engine.Register(miner{}) }
