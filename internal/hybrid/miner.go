package hybrid

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// miner adapts hybrid column-then-row mining to the engine.Miner
// interface under the name "hybrid".
type miner struct{}

func (miner) Name() string { return "hybrid" }

func (miner) Mine(ctx context.Context, d *dataset.Dataset, opts engine.Options) (*engine.Result, engine.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, engine.Stats{}, err
	}
	cfg := Config{
		K:                opts.K,
		Minsup:           opts.Minsup,
		MaxPartitionRows: opts.MaxPartitionRows,
		Workers:          opts.EffectiveWorkers(),
		MaxNodes:         opts.MaxNodes,
		Progress:         opts.Progress,
		ProgressEvery:    opts.ProgressEvery,
	}
	res, err := MineContext(ctx, d, opts.Class, cfg)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats := res.Stats
	stats.Groups = len(res.Groups)
	if stats.Workers < 1 {
		stats.Workers = 1
	}
	return &engine.Result{
		PerRow:     res.PerRow,
		Groups:     res.Groups,
		Partitions: res.Partitions,
	}, stats, nil
}

func init() { engine.Register(miner{}) }
