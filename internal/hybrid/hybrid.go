// Package hybrid implements the extension sketched in the paper's
// Section 8: TopkRGS mining for datasets with many rows, by "utilizing
// column-wise mining first, then switching to row-wise enumeration in
// later levels to mine top-k covering rules in the partition formed by
// column-wise mining, and finally aggregating the top-k covering rules
// in all partitions".
//
// The column phase enumerates single frequent items. Each item i forms
// a partition: the sub-dataset of the rows containing i. Every rule
// group whose antecedent includes i lives entirely inside that
// partition (its support set is a subset of R(i)), and every rule group
// has a non-empty antecedent, so mining each partition with the
// row-enumeration core and merging the per-row lists — deduplicating
// groups rediscovered from several of their items — reconstructs the
// exact global top-k covering rule groups. Partitions are independent
// and bounded by |R(i)| rows, which is what makes the approach viable
// when the whole table has too many rows for direct row enumeration
// (or does not fit in memory: partitions can be processed one at a
// time, as §8's disk-based variant suggests).
package hybrid

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rules"
)

// Config controls hybrid mining.
type Config struct {
	// K and Minsup as in core.Config.
	K      int
	Minsup int
	// MaxPartitionRows caps partitions: items supported by more rows
	// than this are deferred to a single residual row-enumeration pass
	// over the whole table restricted to those items (0 = no cap; all
	// partitions are mined regardless of size).
	MaxPartitionRows int
	// Workers is forwarded to the per-partition core runs (0 or 1 =
	// sequential).
	Workers int
	// MaxNodes, when positive, caps the cumulative enumeration nodes
	// across all partitions (and the residual pass). Once the budget is
	// spent, remaining partitions are skipped and Result.Stats.Aborted
	// is set; the groups merged so far are returned (possibly
	// incomplete).
	MaxNodes int
	// Progress, when non-nil, receives engine.ProgressSnapshots with
	// node and group counts cumulative across partitions, every
	// ProgressEvery nodes (0 = engine.DefaultProgressEvery).
	Progress      engine.ProgressFunc
	ProgressEvery int
}

// Result mirrors core.Result.
type Result struct {
	PerRow     map[int][]*rules.Group
	Groups     []*rules.Group
	Partitions int // partitions mined in the column phase
	// Stats aggregates the per-partition enumeration statistics; Nodes
	// is the cumulative count charged against Config.MaxNodes, and
	// Aborted reports a budget cutoff.
	Stats engine.Stats
}

// runState threads the cumulative node budget and progress offsets
// through the sequential per-partition core runs.
type runState struct {
	cfg   Config
	stats engine.Stats
}

// coreConfig maps the hybrid configuration onto one core run: the run
// is charged whatever budget is left, and its progress snapshots are
// offset so the caller's hook sees one monotone counter for the whole
// hybrid run.
func (s *runState) coreConfig() core.Config {
	c := core.DefaultConfig(s.cfg.Minsup, s.cfg.K)
	c.Workers = s.cfg.Workers
	if s.cfg.MaxNodes > 0 {
		c.MaxNodes = s.cfg.MaxNodes - s.stats.Nodes
	}
	if prog := s.cfg.Progress; prog != nil {
		baseNodes := int64(s.stats.Nodes)
		baseGroups := int64(s.stats.Groups)
		total := int64(s.cfg.MaxNodes)
		c.Progress = func(p engine.ProgressSnapshot) {
			p.Nodes += baseNodes
			p.Groups += baseGroups
			if total > 0 {
				p.BudgetRemaining = max(total-p.Nodes, 0)
			}
			prog(p)
		}
		c.ProgressEvery = s.cfg.ProgressEvery
	}
	return c
}

// absorb folds one core run's statistics into the cumulative totals.
func (s *runState) absorb(st engine.Stats) {
	s.stats.Nodes += st.Nodes
	s.stats.BackwardPruned += st.BackwardPruned
	s.stats.PrunedBeforeScan += st.PrunedBeforeScan
	s.stats.PrunedAfterScan += st.PrunedAfterScan
	s.stats.Groups += st.Groups
	s.stats.MaxDepth = max(s.stats.MaxDepth, st.MaxDepth)
	s.stats.Workers = max(s.stats.Workers, st.Workers)
	if st.Aborted {
		s.stats.Aborted = true
	}
}

// exhausted reports whether the cumulative budget is spent. Callers
// check it before mining more work; finishing the final partition at
// exactly the cap is not an abort.
func (s *runState) exhausted() bool {
	return s.cfg.MaxNodes > 0 && (s.stats.Aborted || s.stats.Nodes >= s.cfg.MaxNodes)
}

// PlanPartitions computes the column-phase partition plan for mining
// class cls of d with the given absolute minimum support: one
// partition per frequent item i — the rows containing i — with
// identical partitions (items sharing a support set) deduplicated,
// first occurrence kept. Items supported by more than maxRows rows
// (when maxRows > 0) are excluded from the plan and returned
// separately as wide; they are exactly the residual-pass items.
//
// The plan is deterministic: partitions appear in ascending order of
// their defining item, each as the ascending global row ids of that
// item's support set. Mining every partition (plus the wide residual)
// and merging per-row top-k boards reconstructs the exact single-node
// result — the invariant both hybrid.MineContext and the cluster
// coordinator build on. cls must be a valid class of d.
func PlanPartitions(d *dataset.Dataset, cls dataset.Label, minsup, maxRows int) (parts [][]int, wide []int) {
	pos := d.RowSet(cls)
	keys := map[string]bool{}
	for i := 0; i < d.NumItems(); i++ {
		rows := d.ItemRows(i)
		if rows.IntersectionCount(pos) < minsup {
			continue
		}
		if maxRows > 0 && rows.Count() > maxRows {
			wide = append(wide, i)
			continue
		}
		key := rows.Key()
		if keys[key] {
			continue
		}
		keys[key] = true
		parts = append(parts, rows.Indices())
	}
	return parts, wide
}

// Mine discovers the top-k covering rule groups of class cls by
// column-partitioned row enumeration. It is MineContext without
// cancellation.
func Mine(d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	return MineContext(context.Background(), d, cls, cfg) //vet:ignore ctxflow Mine is the documented context-free convenience wrapper over MineContext
}

// MineContext is Mine with cancellation: ctx cancellation or deadline
// expiry stops the in-progress partition and returns ctx.Err() with a
// nil Result.
func MineContext(ctx context.Context, d *dataset.Dataset, cls dataset.Label, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("hybrid: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Minsup < 1 {
		return nil, fmt.Errorf("hybrid: minsup must be >= 1, got %d", cfg.Minsup)
	}
	if int(cls) < 0 || int(cls) >= d.NumClasses() {
		return nil, fmt.Errorf("hybrid: class %d outside [0,%d)", cls, d.NumClasses())
	}
	pos := d.RowSet(cls)
	if pos.Count() == 0 {
		return nil, fmt.Errorf("hybrid: no rows of class %s", d.ClassNames[cls])
	}

	res := &Result{PerRow: map[int][]*rules.Group{}}
	for r := 0; r < d.NumRows(); r++ {
		if d.Labels[r] == cls {
			res.PerRow[r] = nil
		}
	}

	// Per-row accumulators merging partition results.
	lists := map[int]*rules.TopKList{}
	for r := range res.PerRow {
		lists[r] = rules.NewTopKList(cfg.K)
	}
	// Global dedup: a group is rediscovered once per antecedent item
	// whose partition is mined.
	seen := map[string]bool{}

	// Column phase: one partition per frequent item, deduplicated by
	// support set (identical partitions yield identical groups). The
	// plan is shared with the cluster coordinator via PlanPartitions.
	st := &runState{cfg: cfg}
	parts, wideItems := PlanPartitions(d, cls, cfg.Minsup, cfg.MaxPartitionRows)
	for _, rows := range parts {
		if st.exhausted() {
			// Budget spent with this partition (at least) still unmined:
			// the merged lists are a partial answer.
			st.stats.Aborted = true
			break
		}
		res.Partitions++
		if err := minePartition(ctx, d, cls, st, rows, lists, seen); err != nil {
			return nil, err
		}
	}

	// Residual pass for items whose partitions exceeded the cap: mine
	// the whole table restricted to those wide items (few in practice —
	// near-universal items produce shallow enumerations).
	if len(wideItems) > 0 && !st.stats.Aborted {
		isWide := make(map[int]bool, len(wideItems))
		for _, i := range wideItems {
			isWide[i] = true
		}
		wide, _ := d.FilterItems(func(i int) bool { return isWide[i] })
		switch {
		case st.exhausted():
			st.stats.Aborted = true
		default:
			sub, err := core.MineContext(ctx, wide, cls, st.coreConfig())
			if err != nil {
				return nil, err
			}
			st.absorb(sub.Stats)
			for _, g := range sub.Groups {
				// The closure over wide items only may not be globally
				// closed; recompute the global closure (which also
				// restores global item ids — `wide` renumbers them).
				g.Antecedent = d.CommonItems(g.Rows)
				offer(d, g, lists, seen)
			}
		}
	}

	// Collect.
	collected := map[*rules.Group]bool{}
	for r, l := range lists {
		gs := l.Groups()
		out := make([]*rules.Group, len(gs))
		copy(out, gs)
		res.PerRow[r] = out
		for _, g := range gs {
			if !collected[g] {
				collected[g] = true
				res.Groups = append(res.Groups, g)
			}
		}
	}
	rules.SortGroups(res.Groups)
	res.Stats = st.stats
	return res, nil
}

// minePartition runs the row-enumeration core on the sub-dataset of the
// given rows and merges the discovered groups into the global lists.
func minePartition(ctx context.Context, d *dataset.Dataset, cls dataset.Label, st *runState, rows []int, lists map[int]*rules.TopKList, seen map[string]bool) error {
	sub := d.Subset(rows)
	res, err := core.MineContext(ctx, sub, cls, st.coreConfig())
	if err != nil {
		return err
	}
	st.absorb(res.Stats)
	for _, g := range res.Groups {
		// Remap the support set to global row ids.
		global := bitset.New(d.NumRows())
		g.Rows.ForEach(func(localR int) bool {
			global.Add(rows[localR])
			return true
		})
		g.Rows = global
		// The antecedent is exact: the partition's defining item i is in
		// every partition row, so i ∈ I(X) for any X, which pins
		// R_global(I(X)) inside the partition — partition-local support,
		// confidence, and closure all equal their global values.
		offer(d, g, lists, seen)
	}
	return nil
}

// offer inserts a group into the lists of the positive rows it covers,
// deduplicating across partitions.
func offer(d *dataset.Dataset, g *rules.Group, lists map[int]*rules.TopKList, seen map[string]bool) {
	key := g.Key()
	if seen[key] {
		return
	}
	seen[key] = true
	g.Rows.ForEach(func(r int) bool {
		if l, ok := lists[r]; ok {
			l.Consider(g)
		}
		return true
	})
}
