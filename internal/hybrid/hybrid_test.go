package hybrid

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
)

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nRows := 3 + r.Intn(9)
	nItems := 2 + r.Intn(10)
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		var items []int
		for i := 0; i < nItems; i++ {
			if r.Intn(3) != 0 {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, dataset.Label(r.Intn(2)))
	}
	d.Labels[0] = 0
	return d
}

// assertSameLists compares per-row (confidence, support) sequences of
// hybrid and direct mining.
func assertSameLists(t *testing.T, d *dataset.Dataset, cls dataset.Label, minsup, k int, cfg Config) bool {
	t.Helper()
	direct, err := core.Mine(d, cls, core.DefaultConfig(minsup, k))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Mine(d, cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r, want := range direct.PerRow {
		got := hyb.PerRow[r]
		if len(got) != len(want) {
			t.Logf("row %d: hybrid %d groups, direct %d", r, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i].Confidence != want[i].Confidence || got[i].Support != want[i].Support {
				t.Logf("row %d rank %d: hybrid (%v,%d), direct (%v,%d)",
					r, i, got[i].Confidence, got[i].Support, want[i].Confidence, want[i].Support)
				return false
			}
		}
	}
	return true
}

func TestFigure1Equivalence(t *testing.T) {
	d, _ := dataset.RunningExample()
	for cls := dataset.Label(0); cls <= 1; cls++ {
		for k := 1; k <= 3; k++ {
			if !assertSameLists(t, d, cls, 2, k, Config{K: k, Minsup: 2}) {
				t.Fatalf("class %d k %d: hybrid differs from direct mining", cls, k)
			}
		}
	}
}

func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(2)
		k := 1 + r.Intn(3)
		for cls := dataset.Label(0); cls <= 1; cls++ {
			if d.ClassCount(cls) == 0 {
				continue
			}
			if !assertSameLists(t, d, cls, minsup, k, Config{K: k, Minsup: minsup}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCapWithResidualPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		cfg := Config{K: 2, Minsup: 1, MaxPartitionRows: 1 + r.Intn(4)}
		return assertSameLists(t, d, 0, 1, 2, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRowsScenario(t *testing.T) {
	// The §8 motivation: a dataset with ten times the usual row count.
	// Hybrid mining must agree with direct mining while using bounded
	// partitions.
	r := rand.New(rand.NewSource(12345))
	nRows, nItems := 400, 30
	d := &dataset.Dataset{ClassNames: []string{"C", "notC"}}
	for i := 0; i < nItems; i++ {
		d.Items = append(d.Items, dataset.Item{Gene: i, GeneName: "g"})
	}
	for row := 0; row < nRows; row++ {
		label := dataset.Label(row % 2)
		var items []int
		for i := 0; i < nItems; i++ {
			p := 0.15 // background noise
			if int(label) == i%2 {
				p = 0.5 // class-correlated items
			}
			if r.Float64() < p {
				items = append(items, i)
			}
		}
		d.Rows = append(d.Rows, items)
		d.Labels = append(d.Labels, label)
	}
	minsup := 30
	direct, err := core.Mine(d, 0, core.DefaultConfig(minsup, 2))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Mine(d, 0, Config{K: 2, Minsup: minsup})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Partitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", hyb.Partitions)
	}
	for r0, want := range direct.PerRow {
		got := hyb.PerRow[r0]
		if len(got) != len(want) {
			t.Fatalf("row %d: %d vs %d groups", r0, len(got), len(want))
		}
		for i := range want {
			if got[i].Confidence != want[i].Confidence || got[i].Support != want[i].Support {
				t.Fatalf("row %d rank %d mismatch", r0, i)
			}
		}
	}
}

// TestMaxNodesCumulative pins the budget semantics: the cap applies to
// the node total across partitions, an exhausted budget yields a
// partial result with Stats.Aborted, and a generous budget changes
// nothing.
func TestMaxNodesCumulative(t *testing.T) {
	d, _ := dataset.RunningExample()

	full, err := Mine(d, 0, Config{K: 2, Minsup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Aborted {
		t.Fatal("unbounded run reported aborted")
	}
	if full.Stats.Nodes == 0 {
		t.Fatal("unbounded run reported zero nodes")
	}

	// A budget at least as large as the actual work is a no-op.
	capped, err := Mine(d, 0, Config{K: 2, Minsup: 2, MaxNodes: full.Stats.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats.Aborted {
		t.Fatalf("budget %d >= actual work %d must not abort", full.Stats.Nodes, capped.Stats.Nodes)
	}
	if capped.Stats.Nodes != full.Stats.Nodes || len(capped.Groups) != len(full.Groups) {
		t.Fatalf("exact budget changed the result: %d/%d nodes, %d/%d groups",
			capped.Stats.Nodes, full.Stats.Nodes, len(capped.Groups), len(full.Groups))
	}

	// A budget of one node cannot cover all partitions.
	aborted, err := Mine(d, 0, Config{K: 2, Minsup: 2, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !aborted.Stats.Aborted {
		t.Fatal("one-node budget did not abort")
	}
	if aborted.Stats.Nodes > full.Stats.Nodes {
		t.Fatalf("aborted run did more work (%d) than the full run (%d)",
			aborted.Stats.Nodes, full.Stats.Nodes)
	}

	// Cumulative progress snapshots must be monotone across partitions.
	var nodesSeen []int64
	_, err = Mine(d, 0, Config{K: 2, Minsup: 2, ProgressEvery: 1,
		Progress: func(p engine.ProgressSnapshot) { nodesSeen = append(nodesSeen, p.Nodes) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodesSeen) == 0 {
		t.Fatal("no progress snapshots")
	}
	for i := 1; i < len(nodesSeen); i++ {
		if nodesSeen[i] < nodesSeen[i-1] {
			t.Fatalf("snapshot nodes regressed: %v", nodesSeen)
		}
	}
	if got := nodesSeen[len(nodesSeen)-1]; got != int64(full.Stats.Nodes) {
		t.Fatalf("final snapshot nodes = %d, want %d", got, full.Stats.Nodes)
	}
}

// TestMinerForwardsBudget covers the engine adapter: opts.MaxNodes
// reaches the hybrid config and stats.Aborted reaches the caller.
func TestMinerForwardsBudget(t *testing.T) {
	d, _ := dataset.RunningExample()
	m, ok := engine.Lookup("hybrid")
	if !ok {
		t.Fatal("hybrid miner not registered")
	}
	_, stats, err := m.Mine(context.Background(), d, engine.Options{
		Class: 0, K: 2, Minsup: 2, Workers: 1, MaxNodes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Aborted {
		t.Fatal("adapter dropped the abort flag")
	}
	_, stats, err = m.Mine(context.Background(), d, engine.Options{
		Class: 0, K: 2, Minsup: 2, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aborted || stats.Nodes == 0 {
		t.Fatalf("unbounded adapter run: aborted=%v nodes=%d", stats.Aborted, stats.Nodes)
	}
}

func TestValidation(t *testing.T) {
	d, _ := dataset.RunningExample()
	if _, err := Mine(d, 0, Config{K: 0, Minsup: 1}); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := Mine(d, 0, Config{K: 1, Minsup: 0}); err == nil {
		t.Fatal("minsup=0 must error")
	}
	if _, err := Mine(d, 9, Config{K: 1, Minsup: 1}); err == nil {
		t.Fatal("bad class must error")
	}
}
